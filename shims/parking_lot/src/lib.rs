//! Drop-in stand-in for the `parking_lot` crate, backed by `std::sync`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of the `parking_lot` API it actually uses:
//! [`Mutex`]/[`MutexGuard`], [`RwLock`] with its two guards, and
//! [`Condvar`]. Semantics follow `parking_lot`, not `std`:
//!
//! * `lock()` / `read()` / `write()` return guards directly (no
//!   `Result`); a poisoned `std` lock is transparently recovered, since
//!   `parking_lot` has no poisoning.
//! * `Condvar::wait` takes `&mut MutexGuard` instead of consuming the
//!   guard.
//!
//! Fairness and timed-wait APIs are intentionally absent — nothing in
//! this workspace uses them.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;

/// Mutual exclusion primitive (no poisoning, guard-returning `lock`).
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex`]. The inner `Option` exists so
/// [`Condvar::wait`] can temporarily take ownership of the underlying
/// `std` guard through a `&mut` borrow; it is `Some` at all other times.
pub struct MutexGuard<'a, T: ?Sized>(Option<sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(|e| e.into_inner())))
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard(Some(e.into_inner()))),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard invariant")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard invariant")
    }
}

/// Reader-writer lock (no poisoning, guard-returning `read`/`write`).
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Condition variable compatible with [`Mutex`]; `wait` reborrows the
/// guard instead of consuming it, as in `parking_lot`.
pub struct Condvar(sync::Condvar);

impl Condvar {
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard invariant");
        let inner = self.0.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.0 = Some(inner);
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn rwlock_many_readers() {
        let l = RwLock::new(7);
        let (a, b) = (l.read(), l.read());
        assert_eq!((*a, *b), (7, 7));
        drop((a, b));
        *l.write() = 8;
        assert_eq!(*l.read(), 8);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn poison_is_recovered() {
        let m = Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the lock");
        })
        .join();
        assert_eq!(*m.lock(), 0); // parking_lot semantics: no poisoning
    }
}
