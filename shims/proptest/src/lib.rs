//! Minimal, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this shim implements
//! exactly the surface the workspace's property tests use:
//!
//! * [`Strategy`] with `prop_map`, implemented for integer ranges and
//!   tuples of strategies;
//! * [`collection::vec`] for variable-length vectors;
//! * the [`proptest!`], [`prop_oneof!`], [`prop_assert!`] and
//!   [`prop_assert_eq!`] macros.
//!
//! Unlike real proptest there is no shrinking: a failing case reports its
//! deterministic seed and case index so it can be replayed by re-running
//! the (fully deterministic) test. Each `proptest!` test runs a fixed
//! number of cases derived from a per-test seed, so failures are
//! reproducible across runs.

use std::ops::Range;

/// Number of random cases each `proptest!` test executes.
pub const CASES: u64 = 48;

/// Deterministic SplitMix64 generator used to derive test cases.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> TestRng {
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// A generator of random values (no shrinking).
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy_unsigned {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

macro_rules! impl_range_strategy_signed {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + off) as $t
            }
        }
    )*};
}

impl_range_strategy_unsigned!(u8, u16, u32, u64, usize);
impl_range_strategy_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// Uniform choice between boxed strategies (built by [`prop_oneof!`]).
pub struct OneOf<V> {
    pub options: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Strategy for OneOf<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        assert!(!self.options.is_empty(), "prop_oneof! needs options");
        let i = (rng.next_u64() % self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for vectors with a size drawn from `size`.
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// Generates `Vec`s of `elem` values with lengths in `size`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = Strategy::generate(&self.size, rng);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Everything the tests import with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_oneof, proptest, Just, Strategy, TestCaseError,
    };
}

/// Error type carried by `prop_assert*` failures.
pub type TestCaseError = String;

/// FNV-1a over the test name: gives each test a stable, distinct seed.
pub fn seed_for(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("prop_assert failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err(format!($($fmt)*));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err(format!(
                "prop_assert_eq failed: {} != {} ({:?} vs {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {{
        $crate::OneOf {
            options: vec![$(Box::new($strategy) as Box<dyn $crate::Strategy<Value = _>>),+],
        }
    }};
}

/// Defines `#[test]` functions that run their body over `CASES` generated
/// inputs. Single-binding form: `fn name(pat in strategy) { .. }`.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($arg:ident in $strategy:expr) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let strategy = $strategy;
                let seed = $crate::seed_for(stringify!($name));
                for case in 0..$crate::CASES {
                    let mut rng = $crate::TestRng::new(seed ^ case.wrapping_mul(0x2545_f491_4f6c_dd1d));
                    let $arg = $crate::Strategy::generate(&strategy, &mut rng);
                    let result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    if let Err(e) = result {
                        panic!(
                            "proptest {} failed at case {case} (seed {seed:#x}): {e}",
                            stringify!($name)
                        );
                    }
                }
            }
        )+
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..1000 {
            let v = (-100i64..100).generate(&mut rng);
            assert!((-100..100).contains(&v));
            let u = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&u));
        }
    }

    #[test]
    fn vec_lengths_respect_size_range() {
        let mut rng = TestRng::new(2);
        for _ in 0..200 {
            let v = collection::vec(0u8..3, 1..40).generate(&mut rng);
            assert!((1..40).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 3));
        }
    }

    #[test]
    fn oneof_and_map_compose() {
        let s: OneOf<(usize, i64)> = prop_oneof![
            (0usize..4).prop_map(|i| (i, 0i64)),
            (0usize..4, -5i64..5).prop_map(|(i, d)| (i, d)),
        ];
        let mut rng = TestRng::new(3);
        for _ in 0..100 {
            let (i, d) = s.generate(&mut rng);
            assert!(i < 4 && (-5..5).contains(&d));
        }
    }

    proptest! {
        #[test]
        fn macro_smoke(xs in collection::vec(1u64..10, 1..5)) {
            prop_assert!(!xs.is_empty());
            prop_assert!(xs.iter().all(|&x| (1..10).contains(&x)));
        }
    }
}
