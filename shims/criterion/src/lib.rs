//! Minimal, dependency-free stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this shim implements
//! the API surface the workspace's benches use — [`Criterion`],
//! benchmark groups, [`Bencher::iter`]/[`Bencher::iter_batched`] and the
//! [`criterion_group!`]/[`criterion_main!`] macros — with a simple
//! warmup-then-measure timing loop. It reports mean ns/iteration to
//! stdout; there is no statistical analysis, HTML output, or regression
//! detection.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Batch sizing hint for [`Bencher::iter_batched`] (accepted for API
/// compatibility; the shim always re-runs setup per batch of one).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            measurement: Duration::from_millis(500),
            warmup: Duration::from_millis(100),
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(
            &id.to_string(),
            Duration::from_millis(100),
            Duration::from_millis(500),
            f,
        );
        self
    }
}

/// A named set of benchmarks sharing timing configuration.
pub struct BenchmarkGroup {
    name: String,
    #[allow(dead_code)]
    sample_size: usize,
    measurement: Duration,
    warmup: Duration,
}

impl BenchmarkGroup {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warmup = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(
            &format!("{}/{}", self.name, id),
            self.warmup,
            self.measurement,
            f,
        );
        self
    }

    pub fn finish(self) {}
}

/// Passed to each benchmark closure; records the timed iterations.
pub struct Bencher {
    warmup: Duration,
    measurement: Duration,
    /// (total duration, iterations) accumulated by the last `iter*` call.
    result: Option<(Duration, u64)>,
}

impl Bencher {
    /// Times `f` in a loop: warmup until `warmup` elapses, then measure
    /// until `measurement` elapses.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let warm_end = Instant::now() + self.warmup;
        while Instant::now() < warm_end {
            black_box(f());
        }
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < self.measurement {
            for _ in 0..8 {
                black_box(f());
            }
            iters += 8;
        }
        self.result = Some((start.elapsed(), iters));
    }

    /// Like [`Bencher::iter`], but excludes `setup` from the timing by
    /// timing each routine invocation individually.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_end = Instant::now() + self.warmup;
        while Instant::now() < warm_end {
            let input = setup();
            black_box(routine(input));
        }
        let mut timed = Duration::ZERO;
        let mut iters = 0u64;
        let wall = Instant::now();
        while wall.elapsed() < self.measurement {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            timed += t.elapsed();
            iters += 1;
        }
        self.result = Some((timed, iters));
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    label: &str,
    warmup: Duration,
    measurement: Duration,
    mut f: F,
) {
    let mut b = Bencher {
        warmup,
        measurement,
        result: None,
    };
    f(&mut b);
    match b.result {
        Some((elapsed, iters)) if iters > 0 => {
            let ns = elapsed.as_nanos() as f64 / iters as f64;
            println!("{label:<48} {ns:>12.1} ns/iter  ({iters} iters)");
        }
        _ => println!("{label:<48} (no iterations recorded)"),
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_records_timing() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.measurement_time(Duration::from_millis(10));
        g.warm_up_time(Duration::from_millis(1));
        g.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }
}
