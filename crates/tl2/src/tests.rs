//! Unit + property tests for the TL2 backend: the versioned-lock word,
//! the stripe hash (kept bit-for-bit compatible with mvstm's), collision
//! behaviour, and the `StmBackend` contract driven through
//! `wtf-backend`'s generic transaction layer.

use super::*;
use wtf_backend::{atomic, BackendTxn, TBox};
use wtf_trace::TraceLevel;

fn new_backend() -> Tl2Stm {
    Tl2Stm::new()
}

#[test]
fn kind_and_clock_start_at_zero() {
    let stm = new_backend();
    assert_eq!(stm.kind(), BackendKind::Tl2);
    assert_eq!(stm.clock(), 0);
    let snap = stm.acquire_snapshot();
    assert_eq!(snap.version(), 0);
}

#[test]
fn rmw_increments_commit_and_advance_clock() {
    let stm = new_backend();
    let x = TBox::new_on(&stm, 0i64);
    for i in 0..10 {
        atomic(&stm, |tx| {
            let v = tx.read(&x)?;
            tx.write(&x, v + 1)
        })
        .unwrap();
        assert_eq!(stm.clock(), i + 1);
    }
    assert_eq!(x.read_latest(), 10);
    let stats = stm.stats();
    assert_eq!(stats.commits, 10);
    assert_eq!(stats.read_only_commits, 0);
    assert_eq!(stats.aborts, 0);
}

#[test]
fn read_only_commits_count_and_leave_clock_alone() {
    let stm = new_backend();
    let x = TBox::new_on(&stm, 7i64);
    atomic(&stm, |tx| tx.write(&x, 8)).unwrap();
    let clock = stm.clock();
    for _ in 0..3 {
        assert_eq!(atomic(&stm, |tx| tx.read(&x)).unwrap(), 8);
    }
    assert_eq!(
        stm.clock(),
        clock,
        "read-only commits must not bump the clock"
    );
    let stats = stm.stats();
    assert_eq!(stats.read_only_commits, 3);
    assert_eq!(stats.commits, 4);
}

/// The single-version property itself: once a box is overwritten, an older
/// snapshot has nothing left to read — and the `Err` is justified by a
/// concrete newer install (slot version > snapshot), never spurious.
#[test]
fn stale_snapshot_read_conflicts_after_overwrite() {
    let stm = new_backend();
    let x = TBox::new_on(&stm, 0i64);
    let snap = stm.acquire_snapshot();
    assert!(x.body().read_at(snap.version()).is_ok());
    atomic(&stm, |tx| tx.write(&x, 1)).unwrap();
    match x.body().read_at(snap.version()) {
        Err(StmError::Conflict) => {}
        other => panic!("expected a read conflict, got {other:?}"),
    }
    // A fresh snapshot sees the new value again.
    let (ver, _) = x.body().read_at(stm.clock()).unwrap();
    assert_eq!(ver, 1);
}

/// Commit-time validation: a transaction whose read was overwritten must
/// abort (with the conflict charged to the right box), then succeed on
/// retry against a fresh snapshot.
#[test]
fn overwritten_read_fails_validation_once_then_retries() {
    let stm = new_backend();
    let x = TBox::new_on(&stm, 0i64);
    let y = TBox::new_on(&stm, 0i64);
    let mut first = true;
    atomic(&stm, |tx| {
        let v = tx.read(&x)?;
        if first {
            first = false;
            // Sneak in a conflicting commit between read and commit.
            atomic(&stm, |tx2| {
                let w = tx2.read(&x)?;
                tx2.write(&x, w + 100)
            })
            .unwrap();
        }
        tx.write(&y, v)
    })
    .unwrap();
    assert_eq!(stm.stats().aborts, 1);
    assert_eq!(y.read_latest(), 100);
}

/// Stripe-hash collisions must never cause false aborts: a commit into a
/// box that merely *shares a stripe* with one of our reads bumps the
/// stripe word, but validation checks the read box's own slot version.
#[test]
fn stripe_collision_does_not_falsely_abort() {
    let stm = new_backend();
    let a = TBox::new_on(&stm, 0i64);
    // Allocate until we find a box colliding with `a`'s stripe.
    let b = loop {
        let b = TBox::new_on(&stm, 0i64);
        if stripe_index(b.id()) == stripe_index(a.id()) {
            break b;
        }
    };
    let mut tx = BackendTxn::begin(&stm);
    let v = tx.read(&b).unwrap();
    // A commit into the colliding neighbour `a` while `tx` is open.
    atomic(&stm, |t| t.write(&a, 42)).unwrap();
    tx.write(&b, v + 1).unwrap();
    tx.commit()
        .expect("commit into an untouched box must survive a stripe-colliding neighbour commit");
    assert_eq!(b.read_latest(), 1);
    assert_eq!(stm.stats().aborts, 0);
}

/// The classic TL2 anti-pattern the fast path must catch: a reader racing
/// a committer never observes a half-written commit. Writer keeps
/// `x == y`; readers snapshot-read both and demand equality.
#[test]
fn readers_never_observe_torn_commits() {
    use std::sync::atomic::AtomicBool;
    let stm = new_backend();
    let x = TBox::new_on(&stm, 0i64);
    let y = TBox::new_on(&stm, 0i64);
    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let (stm, x, y, stop) = (stm.clone(), x.clone(), y.clone(), stop.clone());
        std::thread::spawn(move || {
            let mut i = 0i64;
            while !stop.load(Ordering::Relaxed) {
                i += 1;
                atomic(&stm, |tx| {
                    tx.write(&x, i)?;
                    tx.write(&y, i)
                })
                .unwrap();
            }
        })
    };
    let readers: Vec<_> = (0..3)
        .map(|_| {
            let (stm, x, y, stop) = (stm.clone(), x.clone(), y.clone(), stop.clone());
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    // Reads may conflict (single version) — but committed
                    // reads must always be mutually consistent.
                    let _ = atomic(&stm, |tx| {
                        let a = tx.read(&x)?;
                        let b = tx.read(&y)?;
                        assert_eq!(a, b, "torn read: x={a} y={b}");
                        Ok(())
                    });
                }
            })
        })
        .collect();
    std::thread::sleep(std::time::Duration::from_millis(200));
    stop.store(true, Ordering::Relaxed);
    writer.join().unwrap();
    for r in readers {
        r.join().unwrap();
    }
}

#[test]
fn concurrent_hot_counter_loses_no_increments() {
    const THREADS: usize = 8;
    const INCRS: usize = 200;
    let stm = new_backend();
    let x = TBox::new_on(&stm, 0u64);
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let (stm, x) = (stm.clone(), x.clone());
            std::thread::spawn(move || {
                for _ in 0..INCRS {
                    atomic(&stm, |tx| {
                        let v = tx.read(&x)?;
                        tx.write(&x, v + 1)
                    })
                    .unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(x.read_latest(), (THREADS * INCRS) as u64);
    assert_eq!(stm.stats().commits, (THREADS * INCRS) as u64);
    assert_eq!(stm.clock(), (THREADS * INCRS) as u64);
}

/// The trace contract mirrors mvstm: one `StmInstall` per written box,
/// commit/validation latency samples per update commit, conflict charges
/// on the exact failing box.
#[test]
fn trace_emission_matches_mvstm_contract() {
    let tracer = Tracer::with_capacity(TraceLevel::Full, 1 << 12);
    let stm = Tl2Stm::with_tracer(tracer.clone());
    let x = TBox::new_on(&stm, 0i64);
    let y = TBox::new_on(&stm, 0i64);
    atomic(&stm, |tx| {
        tx.write(&x, 1)?;
        tx.write(&y, 1)
    })
    .unwrap();
    let installs = tracer
        .lanes()
        .into_iter()
        .flat_map(|(_, events)| events)
        .filter(|e| e.kind == EventKind::StmInstall)
        .count();
    assert_eq!(installs, 2, "one StmInstall per written box");
    let summary = tracer.summary();
    assert_eq!(summary.commit_latency.count, 1);
    assert_eq!(summary.validation_latency.count, 1);
    // A justified conflict charges the failing box.
    let snap = stm.acquire_snapshot();
    atomic(&stm, |tx| {
        let v = tx.read(&x)?;
        tx.write(&x, v + 1)
    })
    .unwrap();
    let stale: Vec<Arc<dyn BackendBox>> = vec![x.body().clone()];
    let res = stm.commit_attributed(
        snap.version(),
        &stale,
        vec![(y.body().clone(), Arc::new(9i64) as Value)],
    );
    assert_eq!(res, Err(x.id()));
    assert_eq!(tracer.summary().conflict_total, 1);
}

#[test]
fn gauges_register_under_tracer() {
    let tracer = Tracer::with_capacity(TraceLevel::Full, 1 << 10);
    let stm = Tl2Stm::with_tracer(tracer.clone());
    let x = TBox::new_on(&stm, 0i64);
    atomic(&stm, |tx| tx.write(&x, 1)).unwrap();
    let gauges = tracer.gauges.read_all();
    let clock = gauges
        .iter()
        .find(|(name, _)| name == "stm_clock")
        .map(|(_, v)| *v);
    assert_eq!(clock, Some(1));
    assert!(gauges.iter().any(|(name, _)| name == "tl2_locked_stripes"));
}

mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Satellite: encode/decode roundtrip of the versioned-lock word —
        /// version ↔ lock-bit packing is lossless for every version that
        /// fits below the lock bit.
        #[test]
        fn lockword_roundtrip(case in (0u64..u64::MAX, 0u64..2)) {
            let (bits, locked_sel) = case;
            let version = bits & !lockword::LOCK_BIT;
            let locked = locked_sel == 1;
            let word = lockword::pack(version, locked);
            prop_assert_eq!(lockword::unpack(word), (version, locked));
            prop_assert_eq!(lockword::version_of(word), version);
            prop_assert_eq!(lockword::is_locked(word), locked);
            // Locking never disturbs the version; unlocking restores the word.
            prop_assert_eq!(lockword::version_of(word | lockword::LOCK_BIT), version);
            prop_assert_eq!(lockword::pack(version, false), version);
        }

        /// Satellite: the global clock advances monotonically — by exactly
        /// one per update commit, by zero per read-only commit — and every
        /// commit version equals the clock value it published.
        #[test]
        fn clock_advance_is_monotone(ops in proptest::collection::vec((0u64..2, 0usize..3), 1..40)) {
            let stm = Tl2Stm::new();
            let boxes: Vec<TBox<u64>> = (0..3).map(|_| TBox::new_on(&stm, 0u64)).collect();
            let mut expected = 0u64;
            for &(kind, i) in &ops {
                if kind == 0 {
                    let mut tx = BackendTxn::begin(&stm);
                    let v = tx.read(&boxes[i]).unwrap();
                    tx.write(&boxes[i], v + 1).unwrap();
                    tx.commit().unwrap();
                    expected += 1;
                } else {
                    atomic(&stm, |tx| tx.read(&boxes[i])).unwrap();
                }
                prop_assert_eq!(stm.clock(), expected);
                // The freshest read observes exactly the published clock's
                // state: version <= clock always holds.
                let (ver, _) = boxes[i].body().read_at(stm.clock()).unwrap();
                prop_assert!(ver <= stm.clock());
            }
        }

        /// Satellite: stripe-hash collision oracle, mirroring mvstm's
        /// chain-oracle proptest — TL2's stripe hash must agree with
        /// mvstm's stripe assignment on every id (the two backends'
        /// contention profiles are directly comparable), stay in range,
        /// and colliding neighbours must never invalidate each other.
        #[test]
        fn stripe_hash_matches_mvstm_oracle(ids in proptest::collection::vec(0u64..1_000_000, 1..50)) {
            for &raw_id in &ids {
                let id = BoxId(raw_id);
                let idx = stripe_index(id);
                prop_assert!(idx < STRIPES);
                prop_assert_eq!(idx, wtf_mvstm::raw::stripe_index(id));
            }
            // Collision oracle: group ids by stripe; within one TL2
            // instance, a commit into any box must leave every *other*
            // box's slot version untouched, collision or not.
            let stm = Tl2Stm::new();
            let boxes: Vec<TBox<u64>> = ids.iter().map(|_| TBox::new_on(&stm, 0u64)).collect();
            let victim = &boxes[0];
            atomic(&stm, |tx| tx.write(victim, 1)).unwrap();
            for (i, b) in boxes.iter().enumerate() {
                let (ver, _) = b.body().read_at(stm.clock()).unwrap();
                if i == 0 {
                    prop_assert_eq!(ver, stm.clock());
                } else {
                    // A commit must not leak into unwritten boxes' slots.
                    prop_assert_eq!(ver, 0);
                }
            }
        }

        /// Sequential oracle over the generic transaction layer: a random
        /// single-threaded op sequence behaves exactly like plain
        /// variables (mirrors mvstm's `matches_sequential_oracle`).
        #[test]
        fn matches_sequential_oracle(ops in proptest::collection::vec((0u64..3, 0usize..4, 0usize..4), 1..60)) {
            let stm = Tl2Stm::new();
            let boxes: Vec<TBox<i64>> = (0..4).map(|i| TBox::new_on(&stm, i as i64)).collect();
            let mut oracle = [0i64, 1, 2, 3];
            for &(kind, a, b) in &ops {
                match kind {
                    0 => {
                        atomic(&stm, |tx| {
                            let v = tx.read(&boxes[a])?;
                            tx.write(&boxes[a], v + 3)
                        }).unwrap();
                        oracle[a] += 3;
                    }
                    1 => {
                        atomic(&stm, |tx| {
                            let v = tx.read(&boxes[a])?;
                            tx.write(&boxes[b], v)
                        }).unwrap();
                        oracle[b] = oracle[a];
                    }
                    _ => {
                        atomic(&stm, |tx| {
                            let va = tx.read(&boxes[a])?;
                            let vb = tx.read(&boxes[b])?;
                            tx.write(&boxes[a], vb)?;
                            tx.write(&boxes[b], va)
                        }).unwrap();
                        oracle.swap(a, b);
                    }
                }
            }
            for (i, bx) in boxes.iter().enumerate() {
                prop_assert_eq!(bx.read_latest(), oracle[i]);
            }
        }
    }
}
