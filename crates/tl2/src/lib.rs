//! # wtf-tl2 — a single-version, lock-striped TL2 backend
//!
//! The second [`StmBackend`] substrate: where `wtf-mvstm` keeps a version
//! *chain* per box (reads never fail, read-only transactions never
//! validate, GC prunes), TL2 keeps exactly **one** version per box and
//! pays for it at read time — a box overwritten since the reader's
//! snapshot has nothing left to serve, so the read conflicts.
//!
//! The design follows the classic TL2 recipe (lazy versioning,
//! commit-time locking; see SNIPPETS.md snippet 3 for the versioned-lock
//! word exemplar):
//!
//! * a **global version clock** ([`Tl2Stm`]`::clock`), bumped once per
//!   update commit;
//! * **per-stripe versioned lock words** ([`lockword`]): the high bit is
//!   the write lock, the low 63 bits are the version of the newest commit
//!   into the stripe. Readers use the word only as an in-flight-commit
//!   detector (equality re-check around the slot read) — never as a
//!   validation source, which is what keeps stripe-hash collisions from
//!   causing false aborts;
//! * **read-set validation at commit** against the boxes' own slot
//!   versions, under the stripes covering reads ∪ writes (mask-ordered,
//!   deadlock-free, exactly mvstm's locking discipline);
//! * **write-back under the striped locks**: slots are rewritten at the
//!   freshly reserved version while every written stripe is held, so a
//!   snapshot never observes a half-installed commit (opacity).
//!
//! The trace contract is identical to mvstm's — `StmInstall` per written
//! box, sorted `CommitRead`s + `TxnCommit`/`TopCommit` serialization
//! records (emitted by the layers above), conflict charges on the exact
//! box that failed — so `wtf-check`'s offline serializability checker and
//! the abort-attribution reports work on TL2 histories unchanged.
//!
//! ## Why reads can never fail *spuriously*
//!
//! The checker rejects any abort it cannot justify with a concrete newer
//! install, so [`BackendBox::read_at`] must return `Err` **iff** the
//! box's current slot version exceeds the snapshot. The fast path reads
//! the slot between two stripe-word loads and retries through the slow
//! path on any disturbance; the slow path takes the stripe mutex itself,
//! which committers hold for their whole write-back — so a blocked reader
//! resumes to a stable slot and the `ver > snapshot` test is always
//! decided against fully committed state, never against a lock bit that a
//! colliding box's commit happened to set.

use parking_lot::{Mutex, MutexGuard};
use std::any::Any;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use wtf_backend::{BackendBox, BackendKind, BackendSnapshot, StmBackend};
use wtf_mvstm::{BoxId, StmError, StmStatsSnapshot, Value};
use wtf_trace::{EventKind, Tracer};

pub mod lockword {
    //! The per-stripe versioned lock word: version in the low 63 bits,
    //! write-lock in the high bit (the SNIPPETS.md snippet-3 packing).

    /// The write-lock bit (high bit; versions stay below it forever —
    /// `2^63` commits at one per nanosecond is ~292 years).
    pub const LOCK_BIT: u64 = 1 << 63;

    /// Packs a version and a lock flag into one word.
    pub fn pack(version: u64, locked: bool) -> u64 {
        debug_assert_eq!(
            version & LOCK_BIT,
            0,
            "version overflowed into the lock bit"
        );
        if locked {
            version | LOCK_BIT
        } else {
            version
        }
    }

    /// Splits a word back into `(version, locked)`.
    pub fn unpack(word: u64) -> (u64, bool) {
        (word & !LOCK_BIT, word & LOCK_BIT != 0)
    }

    /// The version part of a word.
    pub fn version_of(word: u64) -> u64 {
        word & !LOCK_BIT
    }

    /// Whether the write lock is held.
    pub fn is_locked(word: u64) -> bool {
        word & LOCK_BIT != 0
    }
}

/// Number of lock stripes (matches mvstm's commit-lock striping).
pub const STRIPES: usize = 64;

/// Maps a box id to its stripe — the same Fibonacci multiplicative hash
/// mvstm uses, so the two backends' contention profiles are comparable.
pub fn stripe_index(id: BoxId) -> usize {
    (id.0.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 58) as usize
}

/// One lock stripe: the commit mutex (held by committers for their whole
/// validate/write-back window, and by slow-path readers to wait one out)
/// plus the versioned lock word for the readers' fast path.
struct Stripe {
    // lock-order: tl2-stripe — multi-acquisition only through
    // `lock_mask`'s ascending bitmask walk; taken before `tl2-slot`.
    lock: Mutex<()>,
    // ordering: the committer's acqrel-rmw fetch_or sets the lock bit
    // before write-back and the release-store publishes the new version
    // after it; both pair with the fast-path reader's acquire-load
    // bracket around its slot read. relaxed-load only in the
    // `tl2_locked_stripes` gauge probe.
    word: AtomicU64,
}

struct StripeTable {
    stripes: Vec<Stripe>,
}

impl StripeTable {
    fn new() -> StripeTable {
        StripeTable {
            stripes: (0..STRIPES)
                .map(|_| Stripe {
                    lock: Mutex::new(()),
                    word: AtomicU64::new(0),
                })
                .collect(),
        }
    }

    /// Locks every stripe in `mask`, in ascending index order
    /// (deadlock-free; mirrors mvstm's `StripeTable::lock_mask`).
    fn lock_mask(&self, mut mask: u64) -> Vec<MutexGuard<'_, ()>> {
        let mut guards = Vec::with_capacity(mask.count_ones() as usize);
        while mask != 0 {
            let i = mask.trailing_zeros() as usize;
            guards.push(self.stripes[i].lock.lock());
            mask &= mask - 1;
        }
        guards
    }
}

/// The single version slot of a box: `(version, value)`, rewritten in
/// place by each commit (lazy versioning — the old value is simply gone).
struct Slot {
    version: u64,
    value: Value,
}

/// A TL2 transactional box.
pub struct Tl2Box {
    id: BoxId,
    stripes: Arc<StripeTable>,
    // lock-order: tl2-slot — leaf lock; acquired with the box's stripe
    // mutex held (commit validation/write-back, slow-path reads) or with
    // nothing held (fast-path reads), never the other way round.
    slot: Mutex<Slot>,
}

impl Tl2Box {
    fn stripe(&self) -> &Stripe {
        &self.stripes.stripes[stripe_index(self.id)]
    }

    /// Snapshot of the slot under its mutex.
    fn slot_read(&self) -> (u64, Value) {
        let slot = self.slot.lock();
        (slot.version, slot.value.clone())
    }
}

impl BackendBox for Tl2Box {
    fn id(&self) -> BoxId {
        self.id
    }

    fn read_at(&self, snapshot: u64) -> Result<(u64, Value), StmError> {
        let stripe = self.stripe();
        // Fast path: no commit in flight on this stripe across the slot
        // read (word unchanged and unlocked on both sides).
        let w1 = stripe.word.load(Ordering::Acquire);
        if !lockword::is_locked(w1) {
            let (ver, value) = self.slot_read();
            let w2 = stripe.word.load(Ordering::Acquire);
            if w2 == w1 {
                return if ver <= snapshot {
                    Ok((ver, value))
                } else {
                    Err(StmError::Conflict)
                };
            }
        }
        // Slow path: wait out the in-flight commit (committers hold the
        // stripe mutex for their whole write-back), then decide against
        // the stable slot. `Err` here is always justified: the slot's
        // version is the version of a fully recorded install.
        let _guard = stripe.lock.lock();
        let (ver, value) = self.slot_read();
        if ver <= snapshot {
            Ok((ver, value))
        } else {
            Err(StmError::Conflict)
        }
    }

    fn read_latest(&self) -> Value {
        self.slot_read().1
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

struct Tl2Inner {
    /// The global version clock: committed state has versions
    /// `0..=clock`, every one of them fully written back (write stripes
    /// stay locked until the write-back completes).
    // ordering: acqrel-rmw — the per-commit bump happens with every
    // written stripe locked, so the new version is fully written back
    // before any reader can observe it; acquire-load snapshot reads pair
    // with the bump.
    clock: AtomicU64,
    stripes: Arc<StripeTable>,
    // ordering: relaxed-rmw — a pure id dispenser.
    next_box: AtomicU64,
    // ordering: relaxed-rmw, relaxed-load — a statistics counter.
    commits: AtomicU64,
    // ordering: relaxed-rmw, relaxed-load — a statistics counter.
    read_only_commits: AtomicU64,
    // ordering: relaxed-rmw, relaxed-load — a statistics counter.
    aborts: AtomicU64,
    tracer: Arc<Tracer>,
    /// Contention manager consulted by the generic `wtf_backend::atomic`
    /// retry loop (and `wtf-core`'s top-level loop) for this instance.
    // lock-order: tl2-cm-slot — read before any stripe or slot lock is
    // taken; written only from setup code holding nothing.
    cm: parking_lot::RwLock<Arc<dyn wtf_cm::ContentionManager>>,
}

/// The TL2 STM instance. Cheap to clone; usually consumed as an
/// `Arc<dyn StmBackend>` through `wtf-core`'s backend selection.
#[derive(Clone)]
pub struct Tl2Stm {
    inner: Arc<Tl2Inner>,
}

impl Default for Tl2Stm {
    fn default() -> Self {
        Self::new()
    }
}

impl Tl2Stm {
    pub fn new() -> Tl2Stm {
        Tl2Stm::with_tracer(Tracer::disabled())
    }

    /// A TL2 instance reporting into `tracer` — same hook points as
    /// mvstm: commit/validation latency histograms, per-install events,
    /// per-box conflict charges, and a clock gauge.
    pub fn with_tracer(tracer: Arc<Tracer>) -> Tl2Stm {
        let stm = Tl2Stm {
            inner: Arc::new(Tl2Inner {
                clock: AtomicU64::new(0),
                stripes: Arc::new(StripeTable::new()),
                next_box: AtomicU64::new(0),
                commits: AtomicU64::new(0),
                read_only_commits: AtomicU64::new(0),
                aborts: AtomicU64::new(0),
                tracer,
                cm: parking_lot::RwLock::new(wtf_cm::CmKind::from_env().build()),
            }),
        };
        if stm.inner.tracer.on() {
            // Weak: the tracer is owned by the inner, so an Arc capture
            // would cycle and leak.
            let w: Weak<Tl2Inner> = Arc::downgrade(&stm.inner);
            stm.inner.tracer.gauges.register("stm_clock", move || {
                w.upgrade().map_or(0, |s| s.clock.load(Ordering::Acquire))
            });
            let w: Weak<Tl2Inner> = Arc::downgrade(&stm.inner);
            stm.inner
                .tracer
                .gauges
                .register("tl2_locked_stripes", move || {
                    w.upgrade().map_or(0, |s| {
                        s.stripes
                            .stripes
                            .iter()
                            .filter(|st| lockword::is_locked(st.word.load(Ordering::Relaxed)))
                            .count() as u64
                    })
                });
            // Cumulative commit/conflict counters for the telemetry
            // hub's per-epoch deltas (same names as mvstm's).
            let w: Weak<Tl2Inner> = Arc::downgrade(&stm.inner);
            stm.inner.tracer.gauges.register("stm_commits", move || {
                w.upgrade().map_or(0, |s| {
                    s.commits.load(Ordering::Relaxed) + s.read_only_commits.load(Ordering::Relaxed)
                })
            });
            let w: Weak<Tl2Inner> = Arc::downgrade(&stm.inner);
            stm.inner.tracer.gauges.register("stm_conflicts", move || {
                w.upgrade().map_or(0, |s| s.aborts.load(Ordering::Relaxed))
            });
        }
        stm
    }
}

fn tl2_box(b: &Arc<dyn BackendBox>) -> &Tl2Box {
    b.as_any()
        .downcast_ref::<Tl2Box>()
        .expect("box from a different backend passed to Tl2Stm")
}

impl StmBackend for Tl2Stm {
    fn kind(&self) -> BackendKind {
        BackendKind::Tl2
    }

    fn tracer(&self) -> &Arc<Tracer> {
        &self.inner.tracer
    }

    fn clock(&self) -> u64 {
        self.inner.clock.load(Ordering::Acquire)
    }

    fn stats(&self) -> StmStatsSnapshot {
        StmStatsSnapshot {
            commits: self.inner.commits.load(Ordering::Relaxed),
            read_only_commits: self.inner.read_only_commits.load(Ordering::Relaxed),
            aborts: self.inner.aborts.load(Ordering::Relaxed),
            // Single version, no chains to prune; the clock bump is
            // wait-free, so publication never stalls either.
            versions_pruned: 0,
            publish_waits: 0,
        }
    }

    fn note_abort(&self) {
        self.inner.aborts.fetch_add(1, Ordering::Relaxed);
    }

    fn note_read_only_commit(&self) {
        self.inner.commits.fetch_add(1, Ordering::Relaxed);
        self.inner.read_only_commits.fetch_add(1, Ordering::Relaxed);
    }

    fn set_gc_enabled(&self, _enabled: bool) {
        // Nothing to reclaim: old versions are overwritten in place.
    }

    fn cm(&self) -> Arc<dyn wtf_cm::ContentionManager> {
        self.inner.cm.read().clone()
    }

    fn set_cm(&self, cm: Arc<dyn wtf_cm::ContentionManager>) {
        *self.inner.cm.write() = cm;
    }

    fn new_box(&self, value: Value) -> Arc<dyn BackendBox> {
        let id = BoxId(self.inner.next_box.fetch_add(1, Ordering::Relaxed));
        // Stamp the current clock, like mvstm: the box is visible to
        // every snapshot at or after its creation point.
        let version = self.inner.clock.load(Ordering::Acquire);
        Arc::new(Tl2Box {
            id,
            stripes: self.inner.stripes.clone(),
            slot: Mutex::new(Slot { version, value }),
        })
    }

    fn acquire_snapshot(&self) -> BackendSnapshot {
        // Nothing to register: TL2 retains no old versions a snapshot
        // could pin. (The cost moves to read time — see `read_at`.)
        BackendSnapshot::new(self.inner.clock.load(Ordering::Acquire), None)
    }

    fn commit_attributed(
        &self,
        snapshot: u64,
        reads: &[Arc<dyn BackendBox>],
        writes: Vec<(Arc<dyn BackendBox>, Value)>,
    ) -> Result<u64, BoxId> {
        debug_assert!(!writes.is_empty(), "read-only commits skip the backend");
        let inner = &*self.inner;
        let tracer = &inner.tracer;
        let commit_start = tracer.span_start();
        let mut read_write_mask = 0u64;
        let mut write_mask = 0u64;
        for body in reads {
            read_write_mask |= 1 << stripe_index(body.id());
        }
        for (body, _) in &writes {
            write_mask |= 1 << stripe_index(body.id());
        }
        read_write_mask |= write_mask;
        // Stripe mutexes over reads ∪ writes, ascending (deadlock-free).
        // Held until the write-back completes: validation is stable (no
        // concurrent install into a read box) and no snapshot can observe
        // a half-written commit.
        let guards = inner.stripes.lock_mask(read_write_mask);
        // Validate every read against its box's own slot version — not
        // the stripe word, whose version is the max over hash-colliding
        // neighbours and would abort transactions that did nothing wrong.
        for body in reads {
            let b = tl2_box(body);
            if b.slot.lock().version > snapshot {
                // Mirror of mvstm's validation-failure record: identical
                // `TxnAttemptAbort` payloads keep retry-lineage profiles
                // comparable across backends.
                tracer.charge_conflict(b.id.0);
                tracer.record(EventKind::TxnAttemptAbort, b.id.0, snapshot);
                return Err(b.id);
            }
        }
        let validated = tracer.span_end(
            EventKind::StmValidationSpan,
            commit_start,
            reads.len() as u64,
        );
        if tracer.on() {
            tracer.metrics.validation_latency.record(validated);
        }
        // Set the write-lock bits (readers' fast-path fence), reserve the
        // version — certain to publish, validation already passed — and
        // write back.
        for i in 0..STRIPES {
            if write_mask & (1 << i) != 0 {
                inner.stripes.stripes[i]
                    .word
                    .fetch_or(lockword::LOCK_BIT, Ordering::AcqRel);
            }
        }
        let version = inner.clock.fetch_add(1, Ordering::AcqRel) + 1;
        for (body, value) in writes {
            let b = tl2_box(&body);
            {
                let mut slot = b.slot.lock();
                slot.version = version;
                slot.value = value;
            }
            tracer.record_full(EventKind::StmInstall, b.id.0, version);
        }
        // Release the lock words at the new version (lock bit cleared by
        // the plain store — versions never reach the high bit).
        for i in 0..STRIPES {
            if write_mask & (1 << i) != 0 {
                inner.stripes.stripes[i]
                    .word
                    .store(version, Ordering::Release);
            }
        }
        drop(guards);
        inner.commits.fetch_add(1, Ordering::Relaxed);
        if tracer.on() {
            let dur = tracer.span_end(EventKind::StmCommitSpan, commit_start, version);
            tracer.metrics.commit_latency.record(dur);
        }
        Ok(version)
    }
}

#[cfg(test)]
mod tests;
