//! Litmus tests for `wtf-tl2`'s versioned lock words — the dynamic
//! counterpart of `wtf-audit`'s static checks, named after the
//! inventory entry (`results/audit_inventory.json`) whose protocol they
//! drive. Run under Miri and TSan in CI; iteration counts scale down
//! under Miri.

use std::sync::Arc;
use wtf_backend::{atomic, StmBackend, TBox};
use wtf_tl2::Tl2Stm;

const ROUNDS: u64 = if cfg!(miri) { 30 } else { 10_000 };

/// MP shape over `word`: the committer's acqrel `fetch_or` sets the lock
/// bit before write-back and the release store publishes the bumped
/// version after it; the fast-path reader's acquire-load bracket must
/// therefore never observe `flag == i` without `data == i`.
#[test]
fn word_lock_bit_and_version_bracket_reads() {
    let stm = Arc::new(Tl2Stm::new());
    let data = Arc::new(TBox::new_on(&*stm, 0u64));
    let flag = Arc::new(TBox::new_on(&*stm, 0u64));

    let writer = {
        let (stm, data, flag) = (Arc::clone(&stm), Arc::clone(&data), Arc::clone(&flag));
        std::thread::spawn(move || {
            for i in 1..=ROUNDS {
                atomic(&*stm, |tx| {
                    tx.write(&data, i)?;
                    tx.write(&flag, i)
                })
                .unwrap();
            }
        })
    };

    let readers: Vec<_> = (0..2)
        .map(|_| {
            let (stm, data, flag) = (Arc::clone(&stm), Arc::clone(&data), Arc::clone(&flag));
            std::thread::spawn(move || {
                let mut last = 0u64;
                while last < ROUNDS {
                    let (f, d) = atomic(&*stm, |tx| {
                        let f = tx.read(&flag)?;
                        let d = tx.read(&data)?;
                        Ok((f, d))
                    })
                    .unwrap();
                    assert_eq!(f, d, "flag and data are committed together");
                    assert!(f >= last, "version clock is monotonic");
                    last = f;
                }
            })
        })
        .collect();

    writer.join().unwrap();
    for r in readers {
        r.join().unwrap();
    }
    assert!(stm.clock() >= ROUNDS, "every commit bumped the clock");
}
