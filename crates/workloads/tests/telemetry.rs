//! Telemetry-over-workloads integration: the sliding-window metrics are
//! byte-deterministic under the virtual clock, and a two-phase abort
//! storm drives the incident detector through exactly one open → peak →
//! recover cycle — on both STM backends.

use std::path::PathBuf;
use wtf_core::{BackendKind, Semantics};
use wtf_telemetry::{IncidentKind, TelemetryConfig, Thresholds};
use wtf_trace::{Json, TraceLevel};
use wtf_workloads::zipf::{storm_then_calm, zipf_hotbox_spec, StormConfig, ZipfConfig};
use wtf_workloads::RunSpec;

fn tmp(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    std::fs::create_dir_all(&dir).expect("create test tmpdir");
    dir
}

/// A telemetry config whose detector can never fire (abort rate is
/// bounded by 1.0): determinism tests want the metrics pipeline live
/// without incident side effects or file writes.
fn quiet_telemetry(epoch_len: u64) -> TelemetryConfig {
    TelemetryConfig {
        epoch_len,
        window_epochs: 4,
        thresholds: Thresholds {
            abort_rate: 1.1,
            gc_lag: u64::MAX,
            queue_p95_min: u64::MAX,
            ..Thresholds::default()
        },
        incidents_file: tmp("quiet").join("incidents.json"),
        ..TelemetryConfig::default()
    }
}

#[test]
fn zipf_telemetry_is_byte_deterministic_on_both_backends() {
    for backend in BackendKind::ALL {
        let cfg = ZipfConfig {
            array_size: 64,
            reads_per_task: 8,
            writes_per_task: 2,
            iter: 100,
            tasks_per_tx: 3,
            txs_per_client: 3,
            ..ZipfConfig::default()
        };
        let spec = RunSpec {
            units_per_client: (cfg.txs_per_client * cfg.tasks_per_tx) as u64,
            workers: 2 * cfg.tasks_per_tx + 2,
            ..RunSpec::new(Semantics::WO_GAC, 2, 1)
        }
        .with_trace(TraceLevel::Lifecycle)
        .with_backend(backend)
        .with_telemetry(Some(quiet_telemetry(2_000)))
        .with_workload("zipf_hotbox");
        let a = zipf_hotbox_spec(&cfg, &spec, 2);
        let b = zipf_hotbox_spec(&cfg, &spec, 2);
        let t = &a.telemetry;
        assert!(t.enabled, "telemetry live on {}", backend.name());
        assert_eq!(t.backend, backend.name());
        assert_eq!(t.workload, "zipf_hotbox");
        assert!(t.epochs_closed > 0);
        assert!(t.commits_total > 0);
        assert!(!t.series.is_empty());
        assert_eq!(
            a.telemetry.to_json().to_string(),
            b.telemetry.to_json().to_string(),
            "windowed metrics are byte-deterministic on {}",
            backend.name()
        );
        assert_eq!(
            a.to_json().to_string(),
            b.to_json().to_string(),
            "whole run report is byte-deterministic on {}",
            backend.name()
        );
    }
}

#[test]
fn abort_storm_yields_exactly_one_incident_on_both_backends() {
    for backend in BackendKind::ALL {
        let dir = tmp(&format!("storm_{}", backend.name()));
        let incidents_file = dir.join("incidents.json");
        let _ = std::fs::remove_file(&incidents_file);
        let tcfg = TelemetryConfig {
            epoch_len: 8_000,
            window_epochs: 4,
            metrics_file: Some(dir.join("metrics.prom")),
            incidents_file: incidents_file.clone(),
            thresholds: Thresholds {
                abort_rate: 0.25,
                min_window_attempts: 4,
                // Silence the other rules so the storm is the only signal.
                gc_lag: u64::MAX,
                queue_p95_min: u64::MAX,
                trigger_epochs: 1,
                recover_epochs: 2,
                ..Thresholds::default()
            },
            ..TelemetryConfig::default()
        };
        // Long calm tail: the 4-epoch window must fully drain of storm
        // conflicts and then stay calm for `recover_epochs` more epochs.
        let scfg = StormConfig {
            storm_txs: 48,
            calm_txs: 144,
            iter: 800,
            ..StormConfig::default()
        };
        let spec = RunSpec {
            units_per_client: (scfg.storm_txs + scfg.calm_txs) as u64,
            workers: 1,
            ..RunSpec::new(Semantics::WO_GAC, 4, 1)
        }
        .with_trace(TraceLevel::Lifecycle)
        .with_backend(backend)
        .with_telemetry(Some(tcfg))
        .with_workload("storm_calm");
        let res = storm_then_calm(&scfg, &spec);
        let t = &res.telemetry;
        assert!(t.enabled);
        assert!(
            t.conflicts_total > 0,
            "the storm phase conflicts on {}",
            backend.name()
        );
        assert_eq!(
            t.incidents.len(),
            1,
            "exactly one incident on {}: {:?}",
            backend.name(),
            t.incidents
        );
        let inc = &t.incidents[0];
        assert_eq!(inc.kind, IncidentKind::AbortStorm);
        let recovery_ts = inc.recovery_ts.expect("storm recovered before finish");
        let recovery_epoch = inc.recovery_epoch.expect("storm recovered before finish");
        assert!(inc.onset_ts < recovery_ts, "onset precedes recovery");
        assert!(inc.onset_epoch < recovery_epoch);
        assert!(
            inc.onset_ts <= inc.peak_ts && inc.peak_ts <= recovery_ts,
            "peak lies inside the incident"
        );
        assert!(inc.peak_value >= 0.25, "peak at least the threshold");

        // The structured incident report landed on disk, labeled with the
        // active backend, and parses back.
        let text = std::fs::read_to_string(&incidents_file).expect("incidents.json written");
        let parsed = Json::parse(&text).expect("incidents.json parses");
        assert_eq!(
            parsed.get("backend").and_then(|b| b.as_str()),
            Some(backend.name())
        );
        let listed = match parsed.get("incidents") {
            Some(Json::Arr(items)) => items.len(),
            other => panic!("incidents array missing: {other:?}"),
        };
        assert_eq!(listed, 1);

        // And the whole cycle is deterministic: a second identical run
        // reports the same incident bytes.
        let res2 = storm_then_calm(&scfg, &spec);
        assert_eq!(
            res.telemetry.to_json().to_string(),
            res2.telemetry.to_json().to_string(),
            "incident report is deterministic on {}",
            backend.name()
        );
    }
}
