//! The two determinism guarantees of the tracing layer:
//!
//! 1. Under the virtual clock, tracing output is a pure function of the
//!    workload — two identical runs produce *byte-identical* Chrome traces
//!    and metrics dumps.
//! 2. Tracing is an observer: turning it on (at any level) must not change
//!    the execution itself, i.e. the `TmStatsSnapshot` of a multi-threaded
//!    run is the same with tracing off, lifecycle, or full.

use std::sync::Arc;
use wtf_core::{Semantics, TxFuture, VBox};
use wtf_trace::TraceLevel;
use wtf_workloads::harness::{run_virtual, run_virtual_traced, RunSpec};
use wtf_workloads::ClientFn;

/// A fig3-style straggler pipeline with cross-client conflicts: each
/// client runs transactions parallelized over 3 futures (one straggler),
/// evaluated out of order, all bumping one shared hot counter.
fn straggler_client() -> ClientFn {
    let shared: Arc<parking_lot::Mutex<Option<VBox<u64>>>> =
        Arc::new(parking_lot::Mutex::new(None));
    Arc::new(move |_i, tm| {
        let hot = {
            let mut g = shared.lock();
            g.get_or_insert_with(|| tm.new_vbox(0u64)).clone()
        };
        for _ in 0..2 {
            let hot2 = hot.clone();
            tm.atomic(move |ctx| {
                let mut in_flight: Vec<TxFuture<u64>> = Vec::new();
                for t in 0..3u64 {
                    let work = if t == 0 { 5_000 } else { 500 };
                    in_flight.push(ctx.submit(move |c| {
                        c.work(work);
                        Ok(work)
                    })?);
                }
                let mut acc = 0;
                while !in_flight.is_empty() {
                    let (slot, v) = ctx.evaluate_any(&in_flight)?;
                    in_flight.remove(slot);
                    acc += v;
                }
                let cur = ctx.read(&hot2)?;
                ctx.write(&hot2, cur + acc)
            })
            .unwrap();
        }
    })
}

fn spec(trace: TraceLevel) -> RunSpec {
    RunSpec {
        units_per_client: 2,
        ..RunSpec::new(Semantics::WO_GAC, 3, 4)
    }
    .with_trace(trace)
}

#[test]
fn traced_runs_are_byte_identical_under_virtual_clock() {
    let (res_a, tracer_a) = run_virtual_traced(&spec(TraceLevel::Full), straggler_client());
    let (res_b, tracer_b) = run_virtual_traced(&spec(TraceLevel::Full), straggler_client());
    assert!(res_a.trace.events_recorded > 0, "workload produced events");
    assert_eq!(
        tracer_a.chrome_trace_json(),
        tracer_b.chrome_trace_json(),
        "event streams must be byte-identical across identical virtual runs"
    );
    assert_eq!(
        res_a.to_json().to_string(),
        res_b.to_json().to_string(),
        "metrics dumps must be byte-identical across identical virtual runs"
    );
}

#[test]
fn tracing_does_not_perturb_execution() {
    let off = run_virtual(&spec(TraceLevel::Off), straggler_client());
    let lifecycle = run_virtual(&spec(TraceLevel::Lifecycle), straggler_client());
    let full = run_virtual(&spec(TraceLevel::Full), straggler_client());
    assert_eq!(
        off.tm, lifecycle.tm,
        "lifecycle tracing changed the TM outcome"
    );
    assert_eq!(off.tm, full.tm, "full tracing changed the TM outcome");
    assert_eq!(off.stm, lifecycle.stm);
    assert_eq!(off.stm, full.stm);
    assert_eq!(off.makespan, lifecycle.makespan);
    assert_eq!(off.makespan, full.makespan);
    // And the levels really differed: full records per-read STM events.
    assert_eq!(off.trace.events_recorded, 0);
    assert!(full.trace.events_recorded > lifecycle.trace.events_recorded);
}
