//! CM conformance suite: every contention-management policy, on every
//! STM backend, run under the virtual clock.
//!
//! Three layers of guarantees, from generic to policy-specific:
//!
//! 1. **Determinism + soundness matrix** — for each policy × backend, a
//!    storm-then-calm run is byte-deterministic (two identical runs dump
//!    identical JSON), drops zero trace events, and the offline
//!    serializability checker accepts the full-detail history. A CM that
//!    waits is still an observer of correctness: it may only reshape
//!    *when* transactions retry, never what they read.
//! 2. **Policy invariants on real histories** — the `CmWait` /
//!    `CmBoxFlagged` / `AdaptiveFlip` events recorded by live runs obey
//!    each policy's contract (backoff gaps double then cap; karma stops
//!    starving the long transaction; a flagged box's abort streak dies
//!    inside the gate window; adaptive flips WO→SO exactly once with
//!    onset and recovery timestamps).
//! 3. **Liveness** — every run still commits exactly the configured
//!    number of transactions; no policy trades progress for pacing.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use wtf_check::HistoryChecker;
use wtf_core::{BackendKind, CmKind, Semantics, VBox};
use wtf_trace::{EventKind, TraceEvent, TraceLevel, Tracer};
use wtf_workloads::harness::{run_virtual_traced, RunResult, RunSpec};
use wtf_workloads::zipf::{storm_then_calm_traced, StormConfig};
use wtf_workloads::ClientFn;

/// Zero dropped events + the serializability checker accepts the run.
fn assert_clean(res: &RunResult, tracer: &Tracer, label: &str) {
    assert_eq!(res.trace.events_dropped, 0, "trace truncated under {label}");
    if let Err(e) = HistoryChecker::from_tracer(tracer).verify() {
        panic!("wtf-check rejects {label}: {e}");
    }
}

/// All events of one kind across all lanes, in timestamp order.
fn events(tracer: &Tracer, kind: EventKind) -> Vec<TraceEvent> {
    let mut out: Vec<TraceEvent> = tracer
        .lanes()
        .into_iter()
        .flat_map(|(_, events)| events)
        .filter(|e| e.kind == kind)
        .collect();
    out.sort_by_key(|e| (e.ts, e.a, e.b));
    out
}

fn storm_spec(backend: BackendKind, cm: CmKind, cfg: &StormConfig, clients: usize) -> RunSpec {
    RunSpec {
        units_per_client: (cfg.storm_txs + cfg.calm_txs) as u64,
        workers: 1,
        ..RunSpec::new(Semantics::WO_GAC, clients, 1)
    }
    .with_trace(TraceLevel::Full)
    .with_backend(backend)
    .with_cm(cm)
    .with_workload("cm_storm")
}

/// Layer 1: the full policy × backend matrix is byte-deterministic,
/// lossless and checker-clean, and every policy preserves liveness
/// (all configured transactions commit).
#[test]
fn cm_matrix_is_deterministic_and_checker_clean() {
    let cfg = StormConfig {
        storm_txs: 10,
        calm_txs: 10,
        iter: 600,
        ..StormConfig::default()
    };
    let clients = 4;
    for backend in BackendKind::ALL {
        for cm in CmKind::ALL {
            let label = format!("{}/{}", backend.name(), cm.name());
            let spec = storm_spec(backend, cm, &cfg, clients);
            let (a, tracer_a) = storm_then_calm_traced(&cfg, &spec);
            let (b, tracer_b) = storm_then_calm_traced(&cfg, &spec);
            assert_clean(&a, &tracer_a, &label);
            assert_clean(&b, &tracer_b, &label);
            assert_eq!(
                a.to_json().to_string(),
                b.to_json().to_string(),
                "run report not byte-deterministic under {label}"
            );
            assert_eq!(
                tracer_a.chrome_trace_json(),
                tracer_b.chrome_trace_json(),
                "event stream not byte-deterministic under {label}"
            );
            assert_eq!(
                a.tm.top_commits,
                (clients * (cfg.storm_txs + cfg.calm_txs)) as u64,
                "liveness: every transaction commits under {label}"
            );
            // The result JSON names the policy that produced it.
            let doc = a.to_json();
            assert_eq!(
                doc.get("cm").and_then(|c| c.as_str()),
                Some(cm.name()),
                "RunResult carries the cm key under {label}"
            );
        }
    }
}

/// Layer 2, backoff: each aborting transaction's recorded waits follow
/// the capped-doubling schedule — strictly growing per retry until the
/// cap, never past it.
#[test]
fn backoff_retry_gaps_grow_then_cap() {
    let cfg = StormConfig {
        storm_txs: 16,
        calm_txs: 4,
        iter: 1_200,
        ..StormConfig::default()
    };
    for backend in BackendKind::ALL {
        let spec = storm_spec(backend, CmKind::Backoff, &cfg, 6);
        let (res, tracer) = storm_then_calm_traced(&cfg, &spec);
        assert_clean(&res, &tracer, &format!("{}/backoff", backend.name()));
        let waits = events(&tracer, EventKind::CmWait);
        assert!(
            !waits.is_empty(),
            "the storm produced CM waits on {}",
            backend.name()
        );
        // Group per actor token: one actor = one logical transaction's
        // retry chain, so its waits are the schedule for streak 1, 2, ...
        let mut by_actor: std::collections::BTreeMap<u64, Vec<u64>> = Default::default();
        for e in &waits {
            by_actor.entry(e.a).or_default().push(e.b);
        }
        const CAP: u64 = 12_800;
        let mut saw_growth = false;
        for (actor, seq) in &by_actor {
            for pair in seq.windows(2) {
                assert!(
                    pair[1] == 2 * pair[0] || (pair[0] == CAP && pair[1] == CAP),
                    "actor {actor} gaps neither doubled nor capped: {seq:?} on {}",
                    backend.name()
                );
                saw_growth |= pair[1] > pair[0];
            }
            assert!(
                seq.iter().all(|&w| w <= CAP),
                "actor {actor} waited past the cap: {seq:?}"
            );
        }
        assert!(
            saw_growth,
            "at least one retry chain grew its gap on {}",
            backend.name()
        );
    }
}

/// Starvation rig: client 0 runs a few *long* read-modify-writes of one
/// hot box (its read stays open ~13x longer than everyone else's),
/// clients 1.. hammer the same box with short transactions. Under
/// `immediate` the shorts repeatedly invalidate the long reader; under
/// `karma` the shorts' own aborts charge them a wait proportional to
/// their priority deficit against the long transaction's accrued
/// aborted work, opening windows the long one can commit in. `execs`
/// counts body executions per client; aborts are `execs - committed`.
fn starvation_client(execs: Arc<Vec<AtomicU64>>, plan: Arc<Vec<(usize, u64)>>) -> ClientFn {
    let shared: Arc<parking_lot::Mutex<Option<VBox<u64>>>> =
        Arc::new(parking_lot::Mutex::new(None));
    Arc::new(move |i, tm| {
        let hot = {
            let mut g = shared.lock();
            g.get_or_insert_with(|| tm.new_vbox(0u64)).clone()
        };
        let (txs, work) = plan[i];
        for _ in 0..txs {
            let hot2 = hot.clone();
            let execs = execs.clone();
            tm.atomic(move |ctx| {
                execs[i].fetch_add(1, Ordering::Relaxed);
                let v = ctx.read(&hot2)?;
                ctx.work(work);
                ctx.write(&hot2, v + 1)
            })
            .unwrap();
        }
    })
}

/// Per-client abort counts for the starvation rig under one policy.
fn run_starvation(backend: BackendKind, cm: CmKind, plan: &[(usize, u64)]) -> Vec<u64> {
    let plan: Arc<Vec<(usize, u64)>> = Arc::new(plan.to_vec());
    let execs: Arc<Vec<AtomicU64>> = Arc::new(plan.iter().map(|_| AtomicU64::new(0)).collect());
    let spec = RunSpec {
        units_per_client: plan[0].0 as u64,
        workers: 1,
        ..RunSpec::new(Semantics::WO_GAC, plan.len(), 1)
    }
    .with_trace(TraceLevel::Full)
    .with_backend(backend)
    .with_cm(cm)
    .with_workload("cm_starvation");
    let (res, tracer) = run_virtual_traced(&spec, starvation_client(execs.clone(), plan.clone()));
    assert_clean(&res, &tracer, &format!("{}/{}", backend.name(), cm.name()));
    plan.iter()
        .zip(execs.iter())
        .map(|(&(txs, _), e)| e.load(Ordering::Relaxed) - txs as u64)
        .collect()
}

/// Layer 2, karma: accrued priority ends the starvation of the
/// long-running transaction. Under `immediate` the long client loses
/// more conflicts *per commit* than any short aggressor; under `karma`
/// its aborted work buys priority (and a repeat-victim window), so it
/// loses strictly less than before and no more than half of the run's
/// total aborts.
#[test]
fn karma_long_transaction_wins_fair_share() {
    // Client 0: 6 long transactions (work 4000); clients 1-3: 40 short
    // ones (work 300) each. The shorts also conflict among themselves,
    // which is what gives karma its lever: an aborting short consults
    // the CM and is paced by its deficit against the long transaction.
    let plan = [(6usize, 4_000u64), (40, 300), (40, 300), (40, 300)];
    let (long_txs, short_txs) = (plan[0].0 as u64, plan[1].0 as u64);
    for backend in BackendKind::ALL {
        let imm = run_starvation(backend, CmKind::Immediate, &plan);
        let kar = run_starvation(backend, CmKind::Karma, &plan);
        let imm_short_max = imm[1..].iter().copied().max().unwrap();
        // Starvation is per committed transaction: the long client runs
        // far fewer transactions, so compare abort *rates* by
        // cross-multiplying (imm[0]/long_txs > imm_short_max/short_txs).
        assert!(
            imm[0] * short_txs > imm_short_max * long_txs,
            "baseline sanity: immediate starves the long client on {} \
             (long {}/{long_txs} vs worst short {imm_short_max}/{short_txs})",
            backend.name(),
            imm[0],
        );
        assert!(
            kar[0] < imm[0],
            "karma reduces the long client's losses on {} ({} -> {})",
            backend.name(),
            imm[0],
            kar[0]
        );
        let total: u64 = kar.iter().sum();
        assert!(
            2 * kar[0] <= total + 1,
            "karma holds the long client to at most half the aborts on {}: \
             lost {} of {total}",
            backend.name(),
            kar[0],
        );
    }
}

/// Layer 2, hotspot: once the storm box is flagged, its abort streak
/// dies inside the gate window — admissions are serialized (bounded by
/// the slot spacing) and after the last gate expires the box never
/// builds another threshold-length streak.
#[test]
fn hotspot_flagged_box_streak_ends_within_gate_window() {
    let cfg = StormConfig {
        storm_txs: 16,
        calm_txs: 8,
        iter: 1_200,
        ..StormConfig::default()
    };
    // Defaults of `HotspotCm::new(threshold, window, slot)`.
    const THRESHOLD: u64 = 3;
    const WINDOW: u64 = 20_000;
    const SLOT: u64 = 800;
    for backend in BackendKind::ALL {
        let spec = storm_spec(backend, CmKind::Hotspot, &cfg, 6);
        let (res, tracer) = storm_then_calm_traced(&cfg, &spec);
        assert_clean(&res, &tracer, &format!("{}/hotspot", backend.name()));
        let flags = events(&tracer, EventKind::CmBoxFlagged);
        assert!(
            !flags.is_empty(),
            "the storm box got flagged on {}",
            backend.name()
        );
        let aborts = events(&tracer, EventKind::TopConflictAbort);
        // The flagged box is the conflict-dominant one.
        let mut per_box: std::collections::BTreeMap<u64, u64> = Default::default();
        for e in &aborts {
            *per_box.entry(e.b).or_default() += 1;
        }
        let hottest = per_box
            .iter()
            .max_by_key(|(box_id, n)| (**n, std::cmp::Reverse(**box_id)))
            .map(|(box_id, _)| *box_id)
            .expect("storm aborted at least once");
        assert!(
            flags.iter().any(|f| f.a == hottest),
            "the dominant conflict box {hottest} was flagged on {}",
            backend.name()
        );
        for (box_id, _) in flags.iter().map(|f| (f.a, f.b)) {
            let last_flag = flags
                .iter()
                .filter(|f| f.a == box_id)
                .max_by_key(|f| f.ts)
                .unwrap();
            let deadline = last_flag.b;
            let in_window = aborts
                .iter()
                .filter(|e| e.b == box_id && e.ts > last_flag.ts && e.ts <= deadline)
                .count() as u64;
            assert!(
                in_window <= WINDOW / SLOT + 1,
                "gate serializes admissions to box {box_id} on {}: {} aborts in window",
                backend.name(),
                in_window
            );
            let after = aborts
                .iter()
                .filter(|e| e.b == box_id && e.ts > deadline)
                .count() as u64;
            assert!(
                after < THRESHOLD,
                "box {box_id} built a fresh streak after its last gate on {} \
                 ({after} post-deadline aborts, no re-flag)",
                backend.name()
            );
        }
    }
}

/// A two-phase futures workload for the adaptive policy, single client.
///
/// Storm transactions use the §5.3 future-vs-continuation conflict
/// shape: the future reads `x` and writes `y`, while the continuation
/// first reads `y` inside a checkpointed step (the forward conflict —
/// in WO the future's completion parks as pending, in SO it dooms just
/// that step) and then read-modify-writes `x` in a later step (the
/// backward conflict). Under WO every storm transaction therefore
/// discards exactly one speculative attempt (backward validation fails
/// at evaluation, the body re-executes inline) and then serializes the
/// re-execution — a 500‰ attempt-abort rate, exactly the adaptive hot
/// threshold. Once the policy flips to SO-at-submission the same code
/// dooms the reader step instead, discarding *no* future attempts, so
/// the window rate drops to zero and stays there through the calm
/// private-box tail until the hysteresis recovers.
fn future_storm_client(storm_txs: usize, calm_txs: usize) -> ClientFn {
    Arc::new(move |_i, tm| {
        let x = tm.new_vbox(0u64);
        let y = tm.new_vbox(0u64);
        let own = tm.new_vbox(0u64);
        for _ in 0..storm_txs {
            let (x, y) = (x.clone(), y.clone());
            tm.atomic_infallible(move |ctx| {
                let (xf, xc) = (x.clone(), x.clone());
                let yf = y.clone();
                let f = ctx.submit(move |c| {
                    let v = c.read(&xf)?;
                    c.work(600);
                    c.write(&yf, v + 1)
                })?;
                let yc = y.clone();
                ctx.step(move |c| {
                    c.read(&yc)?;
                    Ok(())
                })?;
                ctx.work(1_000);
                ctx.step(move |c| {
                    let v = c.read(&xc)?;
                    c.write(&xc, v + 1)
                })?;
                ctx.evaluate(&f)?;
                Ok(())
            });
        }
        for _ in 0..calm_txs {
            let own = own.clone();
            tm.atomic_infallible(move |ctx| {
                let own2 = own.clone();
                let f = ctx.submit(move |c| {
                    let v = c.read(&own2)?;
                    c.work(200);
                    c.write(&own2, v + 1)
                })?;
                ctx.evaluate(&f)?;
                Ok(())
            });
        }
    })
}

/// Layer 2, adaptive: the future-attempt storm flips WO→SO exactly
/// once (onset), the calm tail flips back exactly once (recovery), and
/// the two edges are ordered. Also deterministic: both runs report the
/// same flip timestamps.
#[test]
fn adaptive_flips_once_with_onset_and_recovery() {
    // Window = 16 attempts, trigger = 1, recover = 2. Each WO storm
    // transaction contributes [abort, success] (500‰); each SO storm or
    // calm transaction contributes one clean attempt. 12 storm txs fill
    // the first (hot) window after 8 and leave 4 post-flip; 32 calm txs
    // then supply the two all-clean windows that recover, with slack.
    let storm_txs = 12;
    let calm_txs = 32;
    for backend in BackendKind::ALL {
        let spec = RunSpec {
            units_per_client: (storm_txs + calm_txs) as u64,
            workers: 4,
            ..RunSpec::new(Semantics::WO_GAC, 1, 1)
        }
        .with_trace(TraceLevel::Full)
        .with_backend(backend)
        .with_cm(CmKind::Adaptive)
        .with_workload("cm_future_storm");
        let (res, tracer) = run_virtual_traced(&spec, future_storm_client(storm_txs, calm_txs));
        assert_clean(&res, &tracer, &format!("{}/adaptive", backend.name()));
        let flips = events(&tracer, EventKind::AdaptiveFlip);
        let onsets: Vec<&TraceEvent> = flips.iter().filter(|f| f.a == 1).collect();
        let recoveries: Vec<&TraceEvent> = flips.iter().filter(|f| f.a == 0).collect();
        assert_eq!(
            onsets.len(),
            1,
            "exactly one WO→SO flip on {}: {flips:?}",
            backend.name()
        );
        assert_eq!(
            recoveries.len(),
            1,
            "exactly one recovery flip on {}: {flips:?}",
            backend.name()
        );
        assert!(
            onsets[0].ts < recoveries[0].ts,
            "onset precedes recovery on {}",
            backend.name()
        );
        assert!(
            onsets[0].b >= 500,
            "onset window was storm-hot on {} ({}‰)",
            backend.name(),
            onsets[0].b
        );
        // Deterministic down to the flip timestamps.
        let (res2, tracer2) = run_virtual_traced(&spec, future_storm_client(storm_txs, calm_txs));
        assert_eq!(
            flips,
            events(&tracer2, EventKind::AdaptiveFlip),
            "flip edges are byte-deterministic on {}",
            backend.name()
        );
        assert_eq!(res.to_json().to_string(), res2.to_json().to_string());
    }
}
