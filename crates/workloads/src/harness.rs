//! Virtual-time measurement harness.

use std::sync::Arc;
use wtf_core::{BackendKind, CmKind, CostModel, FutureTm, Semantics, TmConfig, TmStatsSnapshot};
use wtf_mvstm::StmStatsSnapshot;
use wtf_telemetry::{TelemetryConfig, TelemetryHub, TelemetrySummary};
use wtf_trace::{Json, TraceLevel, TraceSummary, Tracer};
use wtf_vclock::Clock;

/// Per-client workload body: `(client_index, tm)`.
pub type ClientFn = Arc<dyn Fn(usize, &FutureTm) + Send + Sync>;

/// Outcome of one measured run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Virtual makespan of the whole run (units ≈ ns on the paper's Xeon).
    pub makespan: u64,
    /// Work units completed (workload-defined, e.g. transactions or tasks).
    pub completed: u64,
    /// Which STM substrate the run executed over.
    pub backend: BackendKind,
    /// Which contention-management policy governed abort/retry pacing.
    pub cm: CmKind,
    pub tm: TmStatsSnapshot,
    pub stm: StmStatsSnapshot,
    /// Tracing summary for the run (all-zero when tracing was off).
    pub trace: TraceSummary,
    /// Sliding-window telemetry block (disabled default when the run had
    /// no [`RunSpec::telemetry`] config or tracing was off).
    pub telemetry: TelemetrySummary,
    /// Causal critical-path profile (`wtf-profile` report block), present
    /// when the run had [`RunSpec::profile`] set and tracing on.
    pub profile: Option<Json>,
}

impl RunResult {
    /// Completed work per virtual time unit.
    pub fn throughput(&self) -> f64 {
        if self.makespan == 0 {
            0.0
        } else {
            self.completed as f64 / self.makespan as f64
        }
    }

    /// This run's throughput normalized to `baseline`'s.
    pub fn speedup_vs(&self, baseline: &RunResult) -> f64 {
        let b = baseline.throughput();
        if b == 0.0 {
            0.0
        } else {
            self.throughput() / b
        }
    }

    /// Top-level abort rate (Figs. 7b left, 9 right).
    pub fn top_abort_rate(&self) -> f64 {
        self.tm.top_abort_rate()
    }

    /// Internal abort rate (Figs. 7b right, 8 bottom).
    pub fn internal_abort_rate(&self) -> f64 {
        self.tm.internal_abort_rate()
    }

    /// Machine-readable dump of everything this run measured. Key order is
    /// fixed and all integers stay `u64`, so the rendering is deterministic
    /// under the virtual clock (the figure binaries diff these files).
    pub fn to_json(&self) -> Json {
        let counters = |fields: Vec<(&'static str, u64)>| {
            Json::Obj(
                fields
                    .into_iter()
                    .map(|(k, v)| (k.to_string(), Json::U64(v)))
                    .collect(),
            )
        };
        Json::obj(vec![
            ("makespan", self.makespan.into()),
            ("completed", self.completed.into()),
            ("backend", Json::Str(self.backend.name().to_string())),
            ("cm", Json::Str(self.cm.name().to_string())),
            ("throughput", Json::F64(self.throughput())),
            ("top_abort_rate", Json::F64(self.top_abort_rate())),
            ("internal_abort_rate", Json::F64(self.internal_abort_rate())),
            ("tm", counters(self.tm.fields())),
            ("stm", counters(self.stm.fields().to_vec())),
            // Surfaced at top level (not only inside `trace`) so `wtf-check`
            // can reject truncated-trace results without digging into the
            // summary shape.
            ("dropped_events", self.trace.events_dropped.into()),
            ("trace", self.trace.to_json()),
            ("telemetry", self.telemetry.to_json()),
            ("profile", self.profile.clone().unwrap_or(Json::Null)),
        ])
    }
}

/// Parameters of a virtual-time run.
#[derive(Clone)]
pub struct RunSpec {
    pub semantics: Semantics,
    pub costs: CostModel,
    pub memory_bus: bool,
    /// Worker threads for future bodies.
    pub workers: usize,
    /// Concurrent client (top-level) threads.
    pub clients: usize,
    /// Work units each client contributes (for throughput accounting).
    pub units_per_client: u64,
    /// Tracing level for this run. [`RunSpec::new`] seeds it from the
    /// `WTF_TRACE` environment variable, so every figure binary honours
    /// `WTF_TRACE=1` without plumbing a flag through each workload wrapper.
    pub trace: TraceLevel,
    /// STM substrate for this run. [`RunSpec::new`] seeds it from the
    /// `WTF_BACKEND` environment variable (default mvstm), so every figure
    /// binary honours `WTF_BACKEND=tl2` without per-workload plumbing.
    pub backend: BackendKind,
    /// Contention-management policy for this run. [`RunSpec::new`] seeds
    /// it from the `WTF_CM` environment variable (default immediate), so
    /// every figure binary honours `WTF_CM=karma` without per-workload
    /// plumbing.
    pub cm: CmKind,
    /// Sliding-window telemetry for this run. [`RunSpec::new`] seeds it
    /// from the environment (`WTF_TELEMETRY` / `WTF_METRICS_FILE` /
    /// `WTF_METRICS_ADDR`); `None` disables the hub entirely. Telemetry
    /// rides on tracer hooks, so it additionally needs `trace` ≥
    /// [`TraceLevel::Lifecycle`] to observe anything.
    pub telemetry: Option<TelemetryConfig>,
    /// Workload label stamped on every exported metric series (and the
    /// incident report), so one exposition file can hold several runs.
    pub workload: &'static str,
    /// Causal profiling for this run. [`RunSpec::new`] seeds it from the
    /// `WTF_PROFILE` environment variable. Profiling needs the full event
    /// stream, so (like `WTF_CHECK`) it deepens the tracer rings and
    /// requires `trace` ≠ [`TraceLevel::Off`] to observe anything.
    pub profile: bool,
}

/// Scoped backend override for workload sweeps — re-exported from
/// `wtf-backend` (it pins [`BackendKind::from_env`], which both
/// [`RunSpec::new`] and `FutureTm::builder` consult).
pub use wtf_core::with_backend;

/// Scoped contention-manager override for workload sweeps — re-exported
/// from `wtf-cm` (it pins [`CmKind::from_env`], which both
/// [`RunSpec::new`] and the STM constructors consult).
pub use wtf_core::with_cm;

impl RunSpec {
    pub fn new(semantics: Semantics, clients: usize, workers: usize) -> RunSpec {
        RunSpec {
            semantics,
            costs: CostModel::CALIBRATED,
            memory_bus: true,
            workers,
            clients,
            units_per_client: 1,
            trace: TraceLevel::from_env(),
            backend: BackendKind::from_env(),
            cm: CmKind::from_env(),
            telemetry: TelemetryConfig::from_env(),
            workload: "run",
            profile: profile_enabled(),
        }
    }

    /// Overrides the tracing level (tests want this independent of env).
    pub fn with_trace(mut self, level: TraceLevel) -> RunSpec {
        self.trace = level;
        self
    }

    /// Overrides the STM substrate (differential tests want this
    /// independent of env).
    pub fn with_backend(mut self, backend: BackendKind) -> RunSpec {
        self.backend = backend;
        self
    }

    /// Overrides the contention-management policy (conformance tests
    /// want this independent of env).
    pub fn with_cm(mut self, cm: CmKind) -> RunSpec {
        self.cm = cm;
        self
    }

    /// Overrides the telemetry config (tests want this independent of
    /// env); `None` disables the hub.
    pub fn with_telemetry(mut self, cfg: Option<TelemetryConfig>) -> RunSpec {
        self.telemetry = cfg;
        self
    }

    /// Sets the workload label used on exported metric series.
    pub fn with_workload(mut self, workload: &'static str) -> RunSpec {
        self.workload = workload;
        self
    }

    /// Overrides causal profiling (tests want this independent of env).
    pub fn with_profile(mut self, profile: bool) -> RunSpec {
        self.profile = profile;
        self
    }
}

/// Runs `client` on `spec.clients` virtual threads over a fresh TM under a
/// fresh deterministic virtual clock, and measures the result.
pub fn run_virtual(spec: &RunSpec, client: ClientFn) -> RunResult {
    run_virtual_traced(spec, client).0
}

/// Like [`run_virtual`], also handing back the [`Tracer`] so callers can
/// export the raw event rings (e.g. as a Perfetto trace) in addition to
/// the summary embedded in the [`RunResult`].
pub fn run_virtual_traced(spec: &RunSpec, client: ClientFn) -> (RunResult, Arc<Tracer>) {
    let clock = Clock::virtual_time();
    // `WTF_CHECK=1`: every traced run is re-verified by the offline
    // serializability checker after it finishes. Checking and causal
    // profiling both need the full event stream, so lanes get a much
    // deeper ring than the default.
    let check = check_enabled() && spec.trace != TraceLevel::Off;
    let profiling = spec.profile && spec.trace != TraceLevel::Off;
    let tracer = if check || profiling {
        Tracer::with_capacity(spec.trace, 1 << 18)
    } else {
        Tracer::new(spec.trace)
    };
    // The telemetry hub rides on the tracer's sampling hook, so it only
    // attaches when tracing is live; its epochs advance at virtual
    // timestamps and the resulting summary is byte-deterministic.
    let hub = spec
        .telemetry
        .as_ref()
        .filter(|_| spec.trace != TraceLevel::Off)
        .map(|cfg| {
            TelemetryHub::attach(
                Arc::clone(&tracer),
                cfg.clone(),
                spec.backend.name(),
                spec.workload,
            )
        });
    let spec2 = spec.clone();
    let t2 = Arc::clone(&tracer);
    let hub2 = hub.clone();
    let (tm_stats, stm_stats, telemetry) = clock.enter(move || {
        let tm = FutureTm::builder()
            .config(
                TmConfig::new(spec2.semantics)
                    .with_costs(spec2.costs)
                    .with_memory_bus(spec2.memory_bus),
            )
            .workers(spec2.workers)
            .backend_kind(spec2.backend)
            .cm(spec2.cm)
            .tracer(t2)
            .build();
        // Delta against the post-construction baseline so the measurement
        // covers exactly the client work, not TM setup.
        let tm0 = tm.stats();
        let stm0 = tm.stm().stats();
        let c = Clock::current();
        let handles: Vec<_> = (0..spec2.clients)
            .map(|i| {
                let tm = tm.clone();
                let client = client.clone();
                c.spawn(&format!("client-{i}"), move || client(i, &tm))
            })
            .collect();
        for h in handles {
            h.join();
        }
        let tm_stats = tm.stats().delta_since(&tm0);
        let stm_stats = tm.stm().stats().delta_since(&stm0);
        // Close every gauge series with one end-of-run sample, taken at
        // deterministic virtual time (no-op when tracing is off).
        tm.tracer().sample_gauges();
        // Finish telemetry before shutdown so the final epoch still sees
        // the pool/STM gauges alive.
        let telemetry = match &hub2 {
            Some(h) => h.finish(c.now()),
            None => TelemetrySummary::default(),
        };
        tm.shutdown();
        (tm_stats, stm_stats, telemetry)
    });
    let profile = if profiling {
        // A truncated trace would silently misattribute the missing time,
        // so (like WTF_CHECK) a dropped-events profile is a hard failure.
        match wtf_profile::Profile::from_tracer_with_makespan(&tracer, clock.makespan()) {
            Ok(p) => Some(p.report(10)),
            Err(e) => panic!("WTF_PROFILE failed for this run: {e}"),
        }
    } else {
        None
    };
    let result = RunResult {
        makespan: clock.makespan(),
        completed: spec.units_per_client * spec.clients as u64,
        backend: spec.backend,
        cm: spec.cm,
        tm: tm_stats,
        stm: stm_stats,
        trace: tracer.summary(),
        telemetry,
        profile,
    };
    if check {
        match wtf_check::HistoryChecker::from_tracer(&tracer).verify() {
            Ok(report) => eprintln!("wtf-check: {}", report.summary()),
            Err(e) => panic!("WTF_CHECK failed for this run: {e}"),
        }
    }
    (result, tracer)
}

fn check_enabled() -> bool {
    std::env::var("WTF_CHECK").is_ok_and(|v| v != "0" && !v.is_empty())
}

fn profile_enabled() -> bool {
    std::env::var("WTF_PROFILE").is_ok_and(|v| v != "0" && !v.is_empty())
}

/// Deterministic xorshift64* generator for workload decisions. We keep a
/// tiny local generator (rather than threading `rand` through every
/// workload closure) so that runs are bit-reproducible functions of the
/// seed and all state lives in a single `u64`.
#[derive(Debug, Clone)]
pub struct Xorshift {
    state: u64,
}

impl Xorshift {
    pub fn new(seed: u64) -> Xorshift {
        Xorshift {
            state: seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1,
        }
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform in `0..n`.
    #[inline]
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }

    /// True with probability `per_mille`/1000.
    #[inline]
    pub fn chance(&mut self, per_mille: u64) -> bool {
        self.next_u64() % 1000 < per_mille
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wtf_core::Semantics;

    #[test]
    fn harness_measures_simple_run() {
        let spec = RunSpec {
            units_per_client: 4,
            ..RunSpec::new(Semantics::WO_GAC, 2, 4)
        };
        let counter_holder: Arc<parking_lot::Mutex<Option<wtf_core::VBox<i64>>>> =
            Arc::new(parking_lot::Mutex::new(None));
        let ch = counter_holder.clone();
        let res = run_virtual(
            &spec,
            Arc::new(move |_i, tm| {
                let counter = {
                    let mut g = ch.lock();
                    g.get_or_insert_with(|| tm.new_vbox(0i64)).clone()
                };
                for _ in 0..4 {
                    let c2 = counter.clone();
                    tm.atomic(move |ctx| {
                        let v = ctx.read(&c2)?;
                        ctx.write(&c2, v + 1)
                    })
                    .unwrap();
                }
            }),
        );
        assert_eq!(res.completed, 8);
        assert_eq!(res.tm.top_commits, 8);
        assert!(res.makespan > 0);
        assert!(res.throughput() > 0.0);
    }

    #[test]
    fn traced_run_captures_summary_and_exports_json() {
        let spec = RunSpec {
            units_per_client: 2,
            ..RunSpec::new(Semantics::WO_GAC, 2, 2)
        }
        .with_trace(TraceLevel::Lifecycle);
        let (res, tracer) = run_virtual_traced(
            &spec,
            Arc::new(move |_i, tm| {
                let b = tm.new_vbox(0u64);
                for _ in 0..2 {
                    let b2 = b.clone();
                    tm.atomic(move |ctx| {
                        let v = ctx.read(&b2)?;
                        ctx.write(&b2, v + 1)
                    })
                    .unwrap();
                }
            }),
        );
        assert!(res.trace.enabled());
        assert!(res.trace.events_recorded > 0);
        assert_eq!(res.trace.commit_latency.count, res.stm.commits);
        // The dump is valid JSON and round-trips the headline numbers.
        let text = res.to_json().to_string();
        let parsed = Json::parse(&text).expect("RunResult::to_json parses");
        assert_eq!(parsed.get("makespan"), Some(&Json::U64(res.makespan)));
        assert_eq!(
            parsed.get("tm").and_then(|t| t.get("top_commits")),
            Some(&Json::U64(res.tm.top_commits))
        );
        assert_eq!(
            parsed
                .get("trace")
                .and_then(|t| t.get("level"))
                .and_then(|l| l.as_str()),
            Some("lifecycle")
        );
        // The tracer handle exposes the raw rings for Perfetto export.
        assert!(tracer.chrome_trace_json().starts_with('['));
    }

    #[test]
    fn untraced_run_summary_is_empty() {
        let spec = RunSpec {
            units_per_client: 1,
            ..RunSpec::new(Semantics::WO_GAC, 1, 2)
        }
        .with_trace(TraceLevel::Off);
        let res = run_virtual(
            &spec,
            Arc::new(move |_i, tm| {
                let b = tm.new_vbox(1u64);
                tm.atomic(move |ctx| {
                    let v = ctx.read(&b)?;
                    ctx.write(&b, v + 1)
                })
                .unwrap();
            }),
        );
        assert!(!res.trace.enabled());
        assert_eq!(res.trace.events_recorded, 0);
        assert_eq!(res.trace.commit_latency.count, 0);
    }

    /// Contended future-spawning workload used by the profiling tests:
    /// every transaction submits a future and bumps a shared counter, so
    /// runs exercise spawn/join edges and conflict-retry chains.
    fn contended_future_client() -> ClientFn {
        let holder: Arc<parking_lot::Mutex<Option<wtf_core::VBox<u64>>>> =
            Arc::new(parking_lot::Mutex::new(None));
        Arc::new(move |_i, tm| {
            let counter = {
                let mut g = holder.lock();
                g.get_or_insert_with(|| tm.new_vbox(0u64)).clone()
            };
            for _ in 0..3 {
                let c2 = counter.clone();
                tm.atomic(move |ctx| {
                    let f = ctx.submit(move |c| {
                        c.work(200);
                        Ok(())
                    })?;
                    let v = ctx.read(&c2)?;
                    ctx.write(&c2, v + 1)?;
                    ctx.evaluate(&f)
                })
                .unwrap();
            }
        })
    }

    /// The acceptance gate of the profiling PR, end-to-end on the live
    /// runtime: under *both* STM substrates the profile block is present,
    /// its critical-path categories sum exactly to the run's makespan
    /// (retry lineage included), and the whole report is byte-
    /// deterministic under the virtual clock.
    #[test]
    fn profiled_run_partitions_makespan_on_both_backends() {
        for kind in wtf_core::BackendKind::ALL {
            let spec = RunSpec {
                units_per_client: 3,
                ..RunSpec::new(Semantics::WO_GAC, 2, 3)
            }
            .with_trace(TraceLevel::Lifecycle)
            .with_backend(kind)
            .with_profile(true);
            let res = run_virtual(&spec, contended_future_client());
            let profile = res.profile.clone().unwrap_or_else(|| {
                panic!("profile block missing under {}", kind.name());
            });
            assert_eq!(
                profile.get("makespan").and_then(|j| j.as_u64()),
                Some(res.makespan),
                "profile horizon == run makespan under {}",
                kind.name()
            );
            assert_eq!(
                profile
                    .get("critical_path")
                    .and_then(|c| c.get("length"))
                    .and_then(|j| j.as_u64()),
                Some(res.makespan),
                "critical-path categories partition the makespan under {}",
                kind.name()
            );
            // Both backends emit the same attempt lineage, so a retried
            // run shows up in the counts block on either substrate.
            assert!(
                profile
                    .get("counts")
                    .and_then(|c| c.get("txn_attempt_aborts"))
                    .and_then(|j| j.as_u64())
                    .is_some(),
                "counts block present under {}",
                kind.name()
            );
            let res2 = run_virtual(&spec, contended_future_client());
            assert_eq!(
                profile.to_string(),
                res2.profile.expect("second run profiled").to_string(),
                "profile is byte-deterministic under {}",
                kind.name()
            );
        }
    }

    /// `RunResult::to_json` carries the profile block under its own key
    /// (after `telemetry`), and `null` when profiling was off.
    #[test]
    fn run_result_json_carries_profile_block() {
        let spec = RunSpec {
            units_per_client: 2,
            ..RunSpec::new(Semantics::WO_GAC, 1, 2)
        }
        .with_trace(TraceLevel::Lifecycle)
        .with_profile(true);
        let res = run_virtual(&spec, contended_future_client());
        let doc = Json::parse(&res.to_json().to_string()).unwrap();
        assert_eq!(
            doc.get("profile")
                .and_then(|p| p.get("schema"))
                .and_then(|s| s.as_str()),
            Some("wtf-profile/v1")
        );

        let off = run_virtual(&spec.clone().with_profile(false), contended_future_client());
        let doc = Json::parse(&off.to_json().to_string()).unwrap();
        assert_eq!(doc.get("profile"), Some(&Json::Null));
    }

    #[test]
    fn xorshift_deterministic_and_spread() {
        let mut a = Xorshift::new(42);
        let mut b = Xorshift::new(42);
        let va: Vec<u64> = (0..100).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..100).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
        let mut hits = [0usize; 10];
        let mut r = Xorshift::new(7);
        for _ in 0..10_000 {
            hits[r.below(10)] += 1;
        }
        for h in hits {
            assert!((700..1300).contains(&h), "roughly uniform: {hits:?}");
        }
    }
}
