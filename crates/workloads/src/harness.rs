//! Virtual-time measurement harness.

use std::sync::Arc;
use wtf_core::{CostModel, FutureTm, Semantics, TmConfig, TmStatsSnapshot};
use wtf_mvstm::StmStatsSnapshot;
use wtf_vclock::Clock;

/// Per-client workload body: `(client_index, tm)`.
pub type ClientFn = Arc<dyn Fn(usize, &FutureTm) + Send + Sync>;

/// Outcome of one measured run.
#[derive(Debug, Clone, Copy)]
pub struct RunResult {
    /// Virtual makespan of the whole run (units ≈ ns on the paper's Xeon).
    pub makespan: u64,
    /// Work units completed (workload-defined, e.g. transactions or tasks).
    pub completed: u64,
    pub tm: TmStatsSnapshot,
    pub stm: StmStatsSnapshot,
}

impl RunResult {
    /// Completed work per virtual time unit.
    pub fn throughput(&self) -> f64 {
        if self.makespan == 0 {
            0.0
        } else {
            self.completed as f64 / self.makespan as f64
        }
    }

    /// This run's throughput normalized to `baseline`'s.
    pub fn speedup_vs(&self, baseline: &RunResult) -> f64 {
        let b = baseline.throughput();
        if b == 0.0 {
            0.0
        } else {
            self.throughput() / b
        }
    }

    /// Top-level abort rate (Figs. 7b left, 9 right).
    pub fn top_abort_rate(&self) -> f64 {
        self.tm.top_abort_rate()
    }

    /// Internal abort rate (Figs. 7b right, 8 bottom).
    pub fn internal_abort_rate(&self) -> f64 {
        self.tm.internal_abort_rate()
    }
}

/// Parameters of a virtual-time run.
#[derive(Clone)]
pub struct RunSpec {
    pub semantics: Semantics,
    pub costs: CostModel,
    pub memory_bus: bool,
    /// Worker threads for future bodies.
    pub workers: usize,
    /// Concurrent client (top-level) threads.
    pub clients: usize,
    /// Work units each client contributes (for throughput accounting).
    pub units_per_client: u64,
}

impl RunSpec {
    pub fn new(semantics: Semantics, clients: usize, workers: usize) -> RunSpec {
        RunSpec {
            semantics,
            costs: CostModel::CALIBRATED,
            memory_bus: true,
            workers,
            clients,
            units_per_client: 1,
        }
    }
}

/// Runs `client` on `spec.clients` virtual threads over a fresh TM under a
/// fresh deterministic virtual clock, and measures the result.
pub fn run_virtual(spec: &RunSpec, client: ClientFn) -> RunResult {
    let clock = Clock::virtual_time();
    let spec2 = spec.clone();
    let (tm_stats, stm_stats) = clock.enter(move || {
        let tm = FutureTm::builder()
            .config(
                TmConfig::new(spec2.semantics)
                    .with_costs(spec2.costs)
                    .with_memory_bus(spec2.memory_bus),
            )
            .workers(spec2.workers)
            .build();
        let c = Clock::current();
        let handles: Vec<_> = (0..spec2.clients)
            .map(|i| {
                let tm = tm.clone();
                let client = client.clone();
                c.spawn(&format!("client-{i}"), move || client(i, &tm))
            })
            .collect();
        for h in handles {
            h.join();
        }
        let tm_stats = tm.stats();
        let stm_stats = tm.stm().stats();
        tm.shutdown();
        (tm_stats, stm_stats)
    });
    RunResult {
        makespan: clock.makespan(),
        completed: spec.units_per_client * spec.clients as u64,
        tm: tm_stats,
        stm: stm_stats,
    }
}

/// Deterministic xorshift64* generator for workload decisions. We keep a
/// tiny local generator (rather than threading `rand` through every
/// workload closure) so that runs are bit-reproducible functions of the
/// seed and all state lives in a single `u64`.
#[derive(Debug, Clone)]
pub struct Xorshift {
    state: u64,
}

impl Xorshift {
    pub fn new(seed: u64) -> Xorshift {
        Xorshift {
            state: seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1,
        }
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform in `0..n`.
    #[inline]
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }

    /// True with probability `per_mille`/1000.
    #[inline]
    pub fn chance(&mut self, per_mille: u64) -> bool {
        self.next_u64() % 1000 < per_mille
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wtf_core::Semantics;

    #[test]
    fn harness_measures_simple_run() {
        let spec = RunSpec {
            units_per_client: 4,
            ..RunSpec::new(Semantics::WO_GAC, 2, 4)
        };
        let counter_holder: Arc<parking_lot::Mutex<Option<wtf_core::VBox<i64>>>> =
            Arc::new(parking_lot::Mutex::new(None));
        let ch = counter_holder.clone();
        let res = run_virtual(
            &spec,
            Arc::new(move |_i, tm| {
                let counter = {
                    let mut g = ch.lock();
                    g.get_or_insert_with(|| tm.new_vbox(0i64)).clone()
                };
                for _ in 0..4 {
                    let c2 = counter.clone();
                    tm.atomic(move |ctx| {
                        let v = ctx.read(&c2)?;
                        ctx.write(&c2, v + 1)
                    })
                    .unwrap();
                }
            }),
        );
        assert_eq!(res.completed, 8);
        assert_eq!(res.tm.top_commits, 8);
        assert!(res.makespan > 0);
        assert!(res.throughput() > 0.0);
    }

    #[test]
    fn xorshift_deterministic_and_spread() {
        let mut a = Xorshift::new(42);
        let mut b = Xorshift::new(42);
        let va: Vec<u64> = (0..100).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..100).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
        let mut hits = [0usize; 10];
        let mut r = Xorshift::new(7);
        for _ in 0..10_000 {
            hits[r.below(10)] += 1;
        }
        for h in hits {
            assert!((700..1300).contains(&h), "roughly uniform: {hits:?}");
        }
    }
}
