//! A from-scratch STAMP-Vacation analogue (§5.3, Fig. 9).
//!
//! The travel agency keeps three relations — flights, cars, rooms — each a
//! table of items with price and availability, plus a customer table with
//! reservation lists. Client sessions issue three operation types with the
//! STAMP mix (the paper runs `-u 98`: 98% reservations):
//!
//! * **MakeReservation** — `queries` random lookups across the three
//!   relations tracking the best (highest-price, available) item per
//!   relation, then reserves the picks for a customer;
//! * **DeleteCustomer** — releases everything a customer holds;
//! * **UpdateTables** — mutates prices/availability of random items.
//!
//! With futures, the lookup phase of `MakeReservation` is split across
//! `futures_per_tx` transactional futures, "similarly to what was done in
//! previous work"; each future has a 10% probability of suffering a 100 ms
//! remote-database delay right after it begins — the paper's straggler
//! injection. JTF (SO) can only activate/evaluate futures in spawn order;
//! WTF-TM's out-of-order evaluation sidesteps the stragglers.

use crate::harness::{run_virtual, RunResult, RunSpec, Xorshift};
use std::sync::Arc;
use wtf_core::{FutureTm, Semantics, TxCtx, TxResult, VBox};

/// One reservable item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Item {
    pub price: i64,
    pub free: i64,
    pub total: i64,
}

/// Relation kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    Flight = 0,
    Car = 1,
    Room = 2,
}

const KINDS: [Kind; 3] = [Kind::Flight, Kind::Car, Kind::Room];

/// A customer's reservation list (kind, item index, price).
pub type Reservations = Vec<(u8, usize, i64)>;

pub struct Agency {
    pub tables: [Vec<VBox<Item>>; 3],
    pub customers: Vec<VBox<Reservations>>,
}

#[derive(Debug, Clone, Copy)]
pub struct VacationConfig {
    /// Items per relation.
    pub relations: usize,
    pub customers: usize,
    /// Lookups per MakeReservation.
    pub queries_per_tx: usize,
    /// Chunks the lookups are split into (one future per chunk).
    pub chunks_per_tx: usize,
    /// Maximum futures in flight (the thread-count axis). JTF activates a
    /// new future only when the *oldest* completes; WTF when *any* does.
    pub futures_per_tx: usize,
    /// Percentage of MakeReservation operations (the paper's `-u 98`);
    /// the remainder splits evenly between DeleteCustomer and UpdateTables.
    pub user_percent: u64,
    /// Transactions per client session.
    pub txs_per_client: usize,
    /// Spin work between queries.
    pub iter: u64,
    /// Straggler injection: probability (per mille) that a future starts
    /// with `delay` units of remote-lookup latency.
    pub straggler_per_mille: u64,
    /// Injected delay in virtual units (the paper: 100 ms = 1e8 ns).
    pub delay: u64,
    pub seed: u64,
}

impl Default for VacationConfig {
    fn default() -> Self {
        VacationConfig {
            relations: 128,
            customers: 64,
            queries_per_tx: 48,
            chunks_per_tx: 16,
            futures_per_tx: 8,
            user_percent: 98,
            txs_per_client: 4,
            iter: 1_000,
            straggler_per_mille: 100,
            delay: 1_000_000, // scaled from the paper's 100 ms (see EXPERIMENTS.md)
            seed: 0x7ac0,
        }
    }
}

pub fn make_agency(tm: &FutureTm, cfg: &VacationConfig, seed: u64) -> Agency {
    let mut rng = Xorshift::new(seed);
    let mut table = |_k: Kind| -> Vec<VBox<Item>> {
        (0..cfg.relations)
            .map(|_| {
                let total = 1 + rng.below(5) as i64;
                tm.new_vbox(Item {
                    price: 50 + rng.below(450) as i64,
                    free: total,
                    total,
                })
            })
            .collect()
    };
    Agency {
        tables: [table(Kind::Flight), table(Kind::Car), table(Kind::Room)],
        customers: (0..cfg.customers)
            .map(|_| tm.new_vbox(Vec::new()))
            .collect(),
    }
}

/// Lookup phase of one future: scan `queries` random items, returning the
/// best available pick per relation as (kind, index, price).
fn lookup_chunk(
    ctx: &mut TxCtx,
    agency: &Agency,
    cfg: &VacationConfig,
    rng: &mut Xorshift,
    queries: usize,
) -> TxResult<[Option<(usize, i64)>; 3]> {
    let mut best: [Option<(usize, i64)>; 3] = [None; 3];
    for _ in 0..queries {
        ctx.work(cfg.iter);
        let k = rng.below(3);
        let idx = rng.below(cfg.relations);
        let item = ctx.read(&agency.tables[k][idx])?;
        if item.free > 0 && best[k].map(|(_, p)| item.price > p).unwrap_or(true) {
            best[k] = Some((idx, item.price));
        }
    }
    Ok(best)
}

/// Reservation phase: decrement availability of the picks and append them
/// to the customer's list.
fn reserve(
    ctx: &mut TxCtx,
    agency: &Agency,
    customer: usize,
    picks: &[Option<(usize, i64)>; 3],
) -> TxResult<u64> {
    let mut reserved = 0;
    let mut list = ctx.read(&agency.customers[customer])?;
    for k in KINDS {
        if let Some((idx, _)) = picks[k as usize] {
            let vbox = &agency.tables[k as usize][idx];
            let mut item = ctx.read(vbox)?;
            if item.free > 0 {
                item.free -= 1;
                ctx.write(vbox, item)?;
                list.push((k as u8, idx, item.price));
                reserved += 1;
            }
        }
    }
    ctx.write(&agency.customers[customer], list)?;
    Ok(reserved)
}

fn merge_picks(into: &mut [Option<(usize, i64)>; 3], from: &[Option<(usize, i64)>; 3]) {
    for k in 0..3 {
        if let Some((idx, price)) = from[k] {
            if into[k].map(|(_, p)| price > p).unwrap_or(true) {
                into[k] = Some((idx, price));
            }
        }
    }
}

fn delete_customer(ctx: &mut TxCtx, agency: &Agency, customer: usize) -> TxResult<()> {
    let list = ctx.read(&agency.customers[customer])?;
    for (k, idx, _) in &list {
        let vbox = &agency.tables[*k as usize][*idx];
        let mut item = ctx.read(vbox)?;
        item.free += 1;
        ctx.write(vbox, item)?;
    }
    ctx.write(&agency.customers[customer], Vec::new())?;
    Ok(())
}

fn update_tables(
    ctx: &mut TxCtx,
    agency: &Agency,
    cfg: &VacationConfig,
    rng: &mut Xorshift,
) -> TxResult<()> {
    for _ in 0..4 {
        ctx.work(cfg.iter);
        let k = rng.below(3);
        let idx = rng.below(cfg.relations);
        let mut item = ctx.read(&agency.tables[k][idx])?;
        item.price = 50 + rng.below(450) as i64;
        ctx.write(&agency.tables[k][idx], item)?;
    }
    Ok(())
}

/// Futures variant: lookups split across futures; `in_order` selects JTF's
/// oldest-first activation vs WTF's any-completes activation (the paper's
/// out-of-order streaming).
pub fn vacation_futures(
    cfg: &VacationConfig,
    semantics: Semantics,
    in_order: bool,
    clients: usize,
) -> RunResult {
    let spec = RunSpec {
        units_per_client: cfg.txs_per_client as u64,
        workers: clients * cfg.futures_per_tx + 2,
        ..RunSpec::new(semantics, clients, 1)
    };
    let cfg = *cfg;
    let agency: Arc<parking_lot::Mutex<Option<Arc<Agency>>>> =
        Arc::new(parking_lot::Mutex::new(None));
    run_virtual(
        &spec,
        Arc::new(move |client, tm| {
            let agency = agency
                .lock()
                .get_or_insert_with(|| Arc::new(make_agency(tm, &cfg, cfg.seed)))
                .clone();
            let mut rng = Xorshift::new(cfg.seed ^ ((client as u64 + 1) << 40));
            for _ in 0..cfg.txs_per_client {
                let kind = rng.next_u64() % 100;
                let tx_seed = rng.next_u64();
                let customer = rng.below(cfg.customers);
                let agency = agency.clone();
                if kind < cfg.user_percent {
                    tm.atomic_infallible(move |ctx| {
                        let mut picks: [Option<(usize, i64)>; 3] = [None; 3];
                        let per_chunk = cfg.queries_per_tx / cfg.chunks_per_tx;
                        let mut in_flight = Vec::with_capacity(cfg.futures_per_tx);
                        let mut next_chunk = 0usize;
                        while next_chunk < cfg.chunks_per_tx || !in_flight.is_empty() {
                            // Fill the in-flight window.
                            while next_chunk < cfg.chunks_per_tx
                                && in_flight.len() < cfg.futures_per_tx
                            {
                                let agency2 = agency.clone();
                                let fseed = tx_seed ^ ((next_chunk as u64) << 13);
                                in_flight.push(ctx.submit(move |c| {
                                    let mut frng = Xorshift::new(fseed);
                                    // 10% of futures hit the remote database.
                                    if frng.chance(cfg.straggler_per_mille) {
                                        c.work(cfg.delay);
                                    }
                                    lookup_chunk(c, &agency2, &cfg, &mut frng, per_chunk)
                                })?);
                                next_chunk += 1;
                            }
                            // Free a slot: oldest (JTF) or any (WTF).
                            let (i, best) = if in_order {
                                (0, ctx.evaluate(&in_flight[0])?)
                            } else {
                                ctx.evaluate_any(&in_flight)?
                            };
                            merge_picks(&mut picks, &best);
                            in_flight.remove(i);
                        }
                        reserve(ctx, &agency, customer, &picks)
                    });
                } else if kind < cfg.user_percent + (100 - cfg.user_percent) / 2 {
                    tm.atomic_infallible(move |ctx| delete_customer(ctx, &agency, customer));
                } else {
                    tm.atomic_infallible(move |ctx| {
                        let mut urng = Xorshift::new(tx_seed);
                        update_tables(ctx, &agency, &cfg, &mut urng)
                    });
                }
            }
        }),
    )
}

/// JVSTM variant: the whole MakeReservation runs sequentially in one
/// top-level transaction (stragglers hit the transaction inline).
pub fn vacation_toplevel(cfg: &VacationConfig, clients: usize) -> RunResult {
    let spec = RunSpec {
        units_per_client: cfg.txs_per_client as u64,
        workers: 1,
        ..RunSpec::new(Semantics::WO_GAC, clients, 1)
    };
    let cfg = *cfg;
    let agency: Arc<parking_lot::Mutex<Option<Arc<Agency>>>> =
        Arc::new(parking_lot::Mutex::new(None));
    run_virtual(
        &spec,
        Arc::new(move |client, tm| {
            let agency = agency
                .lock()
                .get_or_insert_with(|| Arc::new(make_agency(tm, &cfg, cfg.seed)))
                .clone();
            let mut rng = Xorshift::new(cfg.seed ^ ((client as u64 + 1) << 40));
            for _ in 0..cfg.txs_per_client {
                let kind = rng.next_u64() % 100;
                let tx_seed = rng.next_u64();
                let customer = rng.below(cfg.customers);
                let agency = agency.clone();
                if kind < cfg.user_percent {
                    tm.atomic_infallible(move |ctx| {
                        let mut picks: [Option<(usize, i64)>; 3] = [None; 3];
                        let per_chunk = cfg.queries_per_tx / cfg.chunks_per_tx;
                        for fidx in 0..cfg.chunks_per_tx {
                            let mut frng = Xorshift::new(tx_seed ^ ((fidx as u64) << 13));
                            if frng.chance(cfg.straggler_per_mille) {
                                ctx.work(cfg.delay);
                            }
                            let best = lookup_chunk(ctx, &agency, &cfg, &mut frng, per_chunk)?;
                            merge_picks(&mut picks, &best);
                        }
                        reserve(ctx, &agency, customer, &picks)
                    });
                } else if kind < cfg.user_percent + (100 - cfg.user_percent) / 2 {
                    tm.atomic_infallible(move |ctx| delete_customer(ctx, &agency, customer));
                } else {
                    tm.atomic_infallible(move |ctx| {
                        let mut urng = Xorshift::new(tx_seed);
                        update_tables(ctx, &agency, &cfg, &mut urng)
                    });
                }
            }
        }),
    )
}

/// Sequential denominator (1 client, no futures).
pub fn vacation_sequential(cfg: &VacationConfig) -> RunResult {
    vacation_toplevel(cfg, 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> VacationConfig {
        VacationConfig {
            relations: 32,
            customers: 16,
            queries_per_tx: 16,
            chunks_per_tx: 8,
            futures_per_tx: 2,
            user_percent: 90,
            txs_per_client: 4,
            iter: 100,
            straggler_per_mille: 200,
            delay: 20_000,
            seed: 3,
        }
    }

    #[test]
    fn runs_all_variants_and_commits() {
        let cfg = tiny();
        for sem in [Semantics::WO_GAC, Semantics::SO] {
            let r = vacation_futures(&cfg, sem, sem == Semantics::SO, 2);
            assert_eq!(r.tm.top_commits as usize, 2 * cfg.txs_per_client, "{sem:?}");
        }
        let r = vacation_toplevel(&cfg, 2);
        assert_eq!(r.tm.top_commits as usize, 2 * cfg.txs_per_client);
    }

    #[test]
    fn availability_never_negative_and_capacity_respected() {
        let cfg = tiny();
        // Run under a virtual clock and inspect the final tables.
        let clock = wtf_vclock::Clock::virtual_time();
        clock.enter(|| {
            let tm = FutureTm::builder()
                .semantics(Semantics::WO_GAC)
                .workers(16)
                .build();
            let agency = Arc::new(make_agency(&tm, &cfg, cfg.seed));
            let c = wtf_vclock::Clock::current();
            let hs: Vec<_> = (0..3)
                .map(|client| {
                    let tm = tm.clone();
                    let agency = agency.clone();
                    c.spawn(&format!("v{client}"), move || {
                        let mut rng = Xorshift::new(cfg.seed ^ (client as u64 + 1));
                        for _ in 0..cfg.txs_per_client {
                            let customer = rng.below(cfg.customers);
                            let tx_seed = rng.next_u64();
                            let agency = agency.clone();
                            tm.atomic(move |ctx| {
                                let mut frng = Xorshift::new(tx_seed);
                                let picks = lookup_chunk(
                                    ctx,
                                    &agency,
                                    &cfg,
                                    &mut frng,
                                    cfg.queries_per_tx,
                                )?;
                                reserve(ctx, &agency, customer, &picks)
                            })
                            .unwrap();
                        }
                    })
                })
                .collect();
            for h in hs {
                h.join();
            }
            // Invariant: free in [0, total] and total - free equals the
            // number of matching reservations across customers.
            let mut held = std::collections::HashMap::new();
            for cust in &agency.customers {
                for (k, idx, _) in cust.read_latest() {
                    *held.entry((k, idx)).or_insert(0i64) += 1;
                }
            }
            for (k, table) in agency.tables.iter().enumerate() {
                for (idx, vbox) in table.iter().enumerate() {
                    let item = vbox.read_latest();
                    assert!(item.free >= 0 && item.free <= item.total);
                    let reserved = held.get(&(k as u8, idx)).copied().unwrap_or(0);
                    assert_eq!(item.total - item.free, reserved, "item ({k},{idx})");
                }
            }
            tm.shutdown();
        });
    }

    #[test]
    fn out_of_order_beats_in_order_with_stragglers() {
        let cfg = VacationConfig {
            straggler_per_mille: 300,
            delay: 50_000,
            txs_per_client: 6,
            ..tiny()
        };
        let ooo = vacation_futures(&cfg, Semantics::WO_GAC, false, 1);
        let ino = vacation_futures(&cfg, Semantics::SO, true, 1);
        assert!(
            (ooo.makespan as f64) < ino.makespan as f64 * 0.95,
            "straggler avoidance: {} vs {}",
            ooo.makespan,
            ino.makespan
        );
    }

    #[test]
    fn deterministic() {
        let cfg = tiny();
        let a = vacation_futures(&cfg, Semantics::WO_GAC, false, 2);
        let b = vacation_futures(&cfg, Semantics::WO_GAC, false, 2);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.tm, b.tm);
    }
}
