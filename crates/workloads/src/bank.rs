//! The Bank benchmark (§5.3, Fig. 8): replaying a log of banking
//! operations for backup/verification.
//!
//! Two operations over a fixed set of accounts:
//!
//! * `transfer` — moves money between a list of (sender, receiver) account
//!   pairs;
//! * `getTotalAmount` — sums every account. Since all transfers are
//!   internal, the total is invariant: the workload asserts this sanity
//!   check exactly like the paper's verification process.
//!
//! The log is split into fixed chunks; each chunk runs as one top-level
//! transaction. Without futures (`jvstm`), the chunk's operations execute
//! sequentially. With futures, every operation is delegated to a future,
//! with at most `concurrent_futures` in flight, and the two WTF variants
//! differ in evaluation policy: **InOrder** evaluates the oldest spawned
//! future (JTF's only option), **OutOfOrder** evaluates whichever future
//! completes first — quantifying straggler avoidance (the long
//! `getTotalAmount` operations straggle the short `transfer`s).

use crate::harness::{run_virtual, RunResult, RunSpec, Xorshift};
use std::sync::Arc;
use wtf_core::{FutureTm, Semantics, TxCtx, TxFuture, TxResult, VBox};

/// Evaluation policy for the futures variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvalPolicy {
    /// Evaluate futures in spawning order (JTF; WTF-InOrder).
    InOrder,
    /// Evaluate futures as soon as any completes (WTF-OutOfOrder).
    OutOfOrder,
}

#[derive(Debug, Clone, Copy)]
pub struct BankConfig {
    pub accounts: usize,
    /// (sender, receiver) pairs per transfer operation.
    pub pairs_per_transfer: usize,
    /// Percentage (0-100) of operations that are transfers; the rest are
    /// getTotalAmount.
    pub update_percent: u64,
    /// Spin work between accesses.
    pub iter: u64,
    /// Operations per chunk (= per top-level transaction).
    pub chunk_size: usize,
    /// Chunks per client.
    pub chunks_per_client: usize,
    /// Max futures in flight per transaction (the thread-count axis).
    pub concurrent_futures: usize,
    pub initial_balance: i64,
    pub seed: u64,
}

impl Default for BankConfig {
    fn default() -> Self {
        BankConfig {
            accounts: 1_000,
            pairs_per_transfer: 10,
            update_percent: 50,
            iter: 1_000,
            chunk_size: 16,
            chunks_per_client: 2,
            concurrent_futures: 8,
            initial_balance: 1_000,
            seed: 0xba2c,
        }
    }
}

struct Bank {
    accounts: Vec<VBox<i64>>,
}

fn make_bank(tm: &FutureTm, cfg: &BankConfig) -> Bank {
    Bank {
        accounts: (0..cfg.accounts)
            .map(|_| tm.new_vbox(cfg.initial_balance))
            .collect(),
    }
}

/// One log operation.
#[derive(Debug, Clone)]
enum Op {
    /// (from, to) account index pairs.
    Transfer(Vec<(usize, usize)>, i64),
    GetTotalAmount,
}

fn generate_log(cfg: &BankConfig, seed: u64) -> Vec<Op> {
    let mut rng = Xorshift::new(seed);
    (0..cfg.chunk_size * cfg.chunks_per_client)
        .map(|_| {
            if rng.chance(cfg.update_percent * 10) {
                let pairs = (0..cfg.pairs_per_transfer)
                    .map(|_| {
                        let from = rng.below(cfg.accounts);
                        let mut to = rng.below(cfg.accounts);
                        if to == from {
                            to = (to + 1) % cfg.accounts;
                        }
                        (from, to)
                    })
                    .collect();
                Op::Transfer(pairs, 1 + rng.below(5) as i64)
            } else {
                Op::GetTotalAmount
            }
        })
        .collect()
}

fn apply_op(ctx: &mut TxCtx, bank: &Bank, cfg: &BankConfig, op: &Op) -> TxResult<i64> {
    match op {
        Op::Transfer(pairs, amount) => {
            for &(from, to) in pairs {
                ctx.work(cfg.iter);
                let f = ctx.read(&bank.accounts[from])?;
                ctx.write(&bank.accounts[from], f - amount)?;
                let t = ctx.read(&bank.accounts[to])?;
                ctx.write(&bank.accounts[to], t + amount)?;
            }
            Ok(0)
        }
        Op::GetTotalAmount => {
            let mut total = 0i64;
            for account in &bank.accounts {
                ctx.work(cfg.iter / 16); // long scan, lighter per-element spin
                total += ctx.read(account)?;
            }
            Ok(total)
        }
    }
}

fn expected_total(cfg: &BankConfig) -> i64 {
    cfg.initial_balance * cfg.accounts as i64
}

/// Futures variant: each log operation is delegated to a future, at most
/// `concurrent_futures` in flight, evaluated per `policy`. The sanity
/// check asserts every `getTotalAmount` saw the invariant total.
pub fn futures_replay(
    cfg: &BankConfig,
    semantics: Semantics,
    policy: EvalPolicy,
    clients: usize,
) -> RunResult {
    let spec = RunSpec {
        units_per_client: (cfg.chunk_size * cfg.chunks_per_client) as u64,
        workers: clients * cfg.concurrent_futures + 2,
        ..RunSpec::new(semantics, clients, 1)
    };
    let cfg = *cfg;
    let bank: Arc<parking_lot::Mutex<Option<Arc<Bank>>>> = Arc::new(parking_lot::Mutex::new(None));
    run_virtual(
        &spec,
        Arc::new(move |client, tm| {
            let bank = bank
                .lock()
                .get_or_insert_with(|| Arc::new(make_bank(tm, &cfg)))
                .clone();
            let log = Arc::new(generate_log(&cfg, cfg.seed ^ (client as u64) << 24));
            let expected = expected_total(&cfg);
            for chunk_idx in 0..cfg.chunks_per_client {
                let bank = bank.clone();
                let log = log.clone();
                tm.atomic_infallible(move |ctx| {
                    let chunk = &log[chunk_idx * cfg.chunk_size..(chunk_idx + 1) * cfg.chunk_size];
                    let mut in_flight: Vec<TxFuture<i64>> = Vec::new();
                    let mut kinds: Vec<bool> = Vec::new(); // is_total per in-flight
                    let mut next = 0usize;
                    let settle = |ctx: &mut TxCtx,
                                  in_flight: &mut Vec<TxFuture<i64>>,
                                  kinds: &mut Vec<bool>|
                     -> TxResult<()> {
                        let (idx, value) = match policy {
                            EvalPolicy::InOrder => (0, ctx.evaluate(&in_flight[0])?),
                            EvalPolicy::OutOfOrder => ctx.evaluate_any(in_flight)?,
                        };
                        if kinds[idx] {
                            assert_eq!(value, expected, "getTotalAmount invariant");
                        }
                        in_flight.remove(idx);
                        kinds.remove(idx);
                        Ok(())
                    };
                    while next < chunk.len() {
                        if in_flight.len() == cfg.concurrent_futures {
                            settle(ctx, &mut in_flight, &mut kinds)?;
                        }
                        let op = chunk[next].clone();
                        let bank2 = bank.clone();
                        kinds.push(matches!(op, Op::GetTotalAmount));
                        in_flight.push(ctx.submit(move |c| apply_op(c, &bank2, &cfg, &op))?);
                        next += 1;
                    }
                    while !in_flight.is_empty() {
                        settle(ctx, &mut in_flight, &mut kinds)?;
                    }
                    Ok(())
                });
            }
        }),
    )
}

/// No-futures variant (JVSTM): each chunk runs sequentially in one
/// top-level transaction; `clients` chunks run concurrently.
pub fn toplevel_replay(cfg: &BankConfig, clients: usize) -> RunResult {
    let spec = RunSpec {
        units_per_client: (cfg.chunk_size * cfg.chunks_per_client) as u64,
        workers: 1,
        ..RunSpec::new(Semantics::WO_GAC, clients, 1)
    };
    let cfg = *cfg;
    let bank: Arc<parking_lot::Mutex<Option<Arc<Bank>>>> = Arc::new(parking_lot::Mutex::new(None));
    run_virtual(
        &spec,
        Arc::new(move |client, tm| {
            let bank = bank
                .lock()
                .get_or_insert_with(|| Arc::new(make_bank(tm, &cfg)))
                .clone();
            let log = Arc::new(generate_log(&cfg, cfg.seed ^ (client as u64) << 24));
            let expected = expected_total(&cfg);
            for chunk_idx in 0..cfg.chunks_per_client {
                let bank = bank.clone();
                let log = log.clone();
                tm.atomic_infallible(move |ctx| {
                    let chunk = &log[chunk_idx * cfg.chunk_size..(chunk_idx + 1) * cfg.chunk_size];
                    for op in chunk {
                        let v = apply_op(ctx, &bank, &cfg, op)?;
                        if matches!(op, Op::GetTotalAmount) {
                            assert_eq!(v, expected, "getTotalAmount invariant");
                        }
                    }
                    Ok(())
                });
            }
        }),
    )
}

/// Sequential denominator for Fig. 8's speedups.
pub fn sequential_replay(cfg: &BankConfig) -> RunResult {
    toplevel_replay(cfg, 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> BankConfig {
        BankConfig {
            accounts: 64,
            pairs_per_transfer: 3,
            update_percent: 50,
            iter: 64,
            chunk_size: 8,
            chunks_per_client: 2,
            concurrent_futures: 4,
            initial_balance: 100,
            seed: 7,
        }
    }

    #[test]
    fn invariant_holds_across_variants() {
        // The getTotalAmount asserts inside the workload are the invariant
        // check; completing without panicking is the test.
        let cfg = tiny();
        for (sem, pol) in [
            (Semantics::WO_GAC, EvalPolicy::OutOfOrder),
            (Semantics::WO_GAC, EvalPolicy::InOrder),
            (Semantics::SO, EvalPolicy::InOrder),
        ] {
            let r = futures_replay(&cfg, sem, pol, 2);
            assert_eq!(r.tm.top_commits, 4, "{sem:?}/{pol:?}");
        }
        let r = toplevel_replay(&cfg, 2);
        assert_eq!(r.tm.top_commits, 4);
    }

    #[test]
    fn out_of_order_not_slower_than_in_order() {
        let cfg = BankConfig {
            update_percent: 70,
            ..tiny()
        };
        let ooo = futures_replay(&cfg, Semantics::WO_GAC, EvalPolicy::OutOfOrder, 1);
        let ino = futures_replay(&cfg, Semantics::WO_GAC, EvalPolicy::InOrder, 1);
        assert!(
            ooo.makespan <= ino.makespan * 11 / 10,
            "straggler avoidance: {} vs {}",
            ooo.makespan,
            ino.makespan
        );
    }

    #[test]
    fn deterministic() {
        let cfg = tiny();
        let a = futures_replay(&cfg, Semantics::WO_GAC, EvalPolicy::OutOfOrder, 2);
        let b = futures_replay(&cfg, Semantics::WO_GAC, EvalPolicy::OutOfOrder, 2);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.tm, b.tm);
    }
}
