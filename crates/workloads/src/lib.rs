//! # wtf-workloads — the paper's evaluation workloads
//!
//! Faithful re-implementations of the three workloads §5 evaluates
//! WTF-TM on, plus the measurement harness:
//!
//! * [`synthetic`] — the configurable array benchmark of §5.1/§5.2 (reads,
//!   hot-spot writes, `iter` spin-work) and the future-vs-continuation
//!   conflict workload of §5.3 (Figs. 6 and 7);
//! * [`bank`] — the Bank log-replay benchmark (`transfer` /
//!   `getTotalAmount`, Fig. 8), including the `getTotalAmount` sanity
//!   invariant;
//! * [`vacation`] — a from-scratch STAMP-Vacation analogue (travel agency
//!   over flight/car/room tables and customers) parallelized with
//!   transactional futures and 10%-probability 100 ms remote-lookup delays
//!   (Fig. 9);
//! * [`harness`] — virtual-time measurement: spawn client threads under a
//!   deterministic clock, run transactions, report makespan/throughput and
//!   the paper's two abort rates;
//! * [`zipf`] — a Zipf-skewed hot-box workload (plus a two-phase abort
//!   storm) used to exercise the `wtf-telemetry` sliding-window metrics
//!   and incident detector with deterministic, assertable shapes.
//!
//! All workloads are deterministic functions of their seeds under the
//! virtual clock, which is what lets `wtf-bench` regenerate the figures
//! reproducibly.

pub mod bank;
pub mod harness;
pub mod synthetic;
pub mod vacation;
pub mod zipf;

pub use harness::{
    run_virtual, run_virtual_traced, with_backend, with_cm, ClientFn, RunResult, RunSpec,
};
