//! Zipf hot-box workload: the telemetry exercise rig.
//!
//! The §5 synthetic workloads spread contention uniformly over a small
//! hot-spot set, which makes per-box conflict attribution flat and
//! boring. Observability work wants the opposite: a *skewed* access
//! pattern whose conflict mass concentrates on a few identifiable boxes,
//! so the sliding-window conflict rank ([`wtf_trace::ConflictMap`] →
//! `wtf_rolling`/`hot_boxes`) has a deterministic, assertable shape.
//!
//! Two entry points:
//!
//! * [`zipf_hotbox`] — transactional futures reading and read-modify-
//!   writing array slots sampled from a Zipf(θ) distribution (rank 0 is
//!   hottest). The canonical byte-determinism workload for telemetry.
//! * [`storm_then_calm`] — a two-phase top-level workload: every client
//!   first hammers one shared box (abort storm), then retreats to a
//!   private box (calm). Drives the incident detector through exactly
//!   one open → peak → recover cycle under the virtual clock.

use crate::harness::{run_virtual_traced, RunResult, RunSpec, Xorshift};
use std::sync::Arc;
use wtf_core::{FutureTm, Semantics, VBox};
use wtf_trace::Tracer;

/// Shared lazily-initialized box array: the first client to run allocates
/// it (so box ids are rank-ordered), later clients reuse it.
type LazyBoxes = Arc<parking_lot::Mutex<Option<Arc<Vec<VBox<i64>>>>>>;

/// Parameters of the Zipf hot-box workload.
#[derive(Debug, Clone, Copy)]
pub struct ZipfConfig {
    /// Shared array size (ranks 0..size, rank 0 hottest).
    pub array_size: usize,
    /// Zipf skew θ (0 = uniform; the classic web value is ~0.99).
    pub theta: f64,
    /// Zipf-sampled reads per task.
    pub reads_per_task: usize,
    /// Zipf-sampled read-modify-writes per task.
    pub writes_per_task: usize,
    /// Spin units between accesses (±50% deterministic jitter).
    pub iter: u64,
    /// Futures per top-level transaction.
    pub tasks_per_tx: usize,
    /// Transactions per client.
    pub txs_per_client: usize,
    pub seed: u64,
}

impl Default for ZipfConfig {
    fn default() -> Self {
        ZipfConfig {
            array_size: 256,
            theta: 0.99,
            reads_per_task: 32,
            writes_per_task: 2,
            iter: 200,
            tasks_per_tx: 4,
            txs_per_client: 4,
            seed: 0x21bf,
        }
    }
}

/// Cumulative-weight Zipf sampler. Weights `1/(rank+1)^θ` are
/// precomputed once; sampling is a binary search over the cumulative
/// table driven by a [`Xorshift`] draw, so every sample is a pure
/// function of the seed (bit-reproducible across runs and platforms —
/// the table is built with the same f64 ops everywhere).
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cumulative: Vec<f64>,
}

impl ZipfSampler {
    pub fn new(size: usize, theta: f64) -> ZipfSampler {
        assert!(size > 0, "zipf over an empty domain");
        let mut cumulative = Vec::with_capacity(size);
        let mut total = 0.0f64;
        for rank in 0..size {
            total += 1.0 / ((rank + 1) as f64).powf(theta);
            cumulative.push(total);
        }
        // Normalize so the last entry is exactly 1.0 and the search
        // below can never fall off the end.
        for c in &mut cumulative {
            *c /= total;
        }
        if let Some(last) = cumulative.last_mut() {
            *last = 1.0;
        }
        ZipfSampler { cumulative }
    }

    /// Draws a rank in `0..size`; rank 0 is the most probable.
    pub fn sample(&self, rng: &mut Xorshift) -> usize {
        // 53 uniform mantissa bits → u in [0, 1).
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.cumulative.partition_point(|&c| c <= u)
    }
}

fn jittered(rng: &mut Xorshift, iter: u64) -> u64 {
    if iter == 0 {
        0
    } else {
        iter / 2 + rng.next_u64() % (iter + 1)
    }
}

/// Futures workload over a Zipf-skewed array: each task performs
/// `reads_per_task` Zipf-sampled reads and `writes_per_task` Zipf-sampled
/// read-modify-writes, with jittered spin between accesses. Conflict
/// mass lands on the low ranks (box ids are allocated in rank order by
/// the first client, so rank 0 is the lowest-id box in the run).
pub fn zipf_hotbox(cfg: &ZipfConfig, semantics: Semantics, clients: usize) -> RunResult {
    let spec = RunSpec {
        units_per_client: (cfg.txs_per_client * cfg.tasks_per_tx) as u64,
        workers: clients * cfg.tasks_per_tx + 2,
        ..RunSpec::new(semantics, clients, 1)
    }
    .with_workload("zipf_hotbox");
    zipf_hotbox_spec(cfg, &spec, clients)
}

/// [`zipf_hotbox`] with a caller-supplied [`RunSpec`] (tests override
/// trace level, backend and telemetry config independently of env).
pub fn zipf_hotbox_spec(cfg: &ZipfConfig, spec: &RunSpec, _clients: usize) -> RunResult {
    zipf_hotbox_traced(cfg, spec).0
}

/// [`zipf_hotbox_spec`], also handing back the [`Tracer`] so callers can
/// inspect the raw event stream (the CM conformance suite asserts on
/// `CmWait`/`CmBoxFlagged` records).
pub fn zipf_hotbox_traced(cfg: &ZipfConfig, spec: &RunSpec) -> (RunResult, Arc<Tracer>) {
    let cfg = *cfg;
    let sampler = Arc::new(ZipfSampler::new(cfg.array_size, cfg.theta));
    let array: LazyBoxes = Arc::new(parking_lot::Mutex::new(None));
    run_virtual_traced(
        spec,
        Arc::new(move |client, tm: &FutureTm| {
            let array = array
                .lock()
                .get_or_insert_with(|| {
                    Arc::new((0..cfg.array_size).map(|i| tm.new_vbox(i as i64)).collect())
                })
                .clone();
            let mut seeder = Xorshift::new(cfg.seed ^ ((client as u64) << 32));
            for _ in 0..cfg.txs_per_client {
                let array = array.clone();
                let sampler = sampler.clone();
                let tx_seed = seeder.next_u64();
                tm.atomic_infallible(move |ctx| {
                    let mut futs = Vec::with_capacity(cfg.tasks_per_tx);
                    for t in 0..cfg.tasks_per_tx {
                        let array = array.clone();
                        let sampler = sampler.clone();
                        let task_seed = tx_seed ^ ((t as u64) << 17);
                        futs.push(ctx.submit(move |c| {
                            let mut rng = Xorshift::new(task_seed);
                            let mut acc = 0i64;
                            for _ in 0..cfg.reads_per_task {
                                c.work(jittered(&mut rng, cfg.iter));
                                acc = acc.wrapping_add(c.read(&array[sampler.sample(&mut rng)])?);
                            }
                            for _ in 0..cfg.writes_per_task {
                                c.work(jittered(&mut rng, cfg.iter));
                                let slot = &array[sampler.sample(&mut rng)];
                                let v = c.read(slot)?;
                                c.write(slot, v.wrapping_add(1))?;
                            }
                            Ok(acc)
                        })?);
                    }
                    for f in &futs {
                        ctx.evaluate(f)?;
                    }
                    Ok(())
                });
            }
        }),
    )
}

/// Top-level variant of the Zipf hot-box: the same skewed access
/// pattern, but each task runs as its *own* top-level transaction
/// instead of a future — so every conflict lands as a top-level abort,
/// which is exactly the decision point the contention managers govern
/// (retry pacing via `on_abort`, admission via the karma priority
/// window, per-box gates via hotspot). `fig10_cm`'s workload.
pub fn zipf_hotbox_top(cfg: &ZipfConfig, spec: &RunSpec) -> RunResult {
    zipf_hotbox_top_traced(cfg, spec).0
}

/// [`zipf_hotbox_top`], also handing back the [`Tracer`].
pub fn zipf_hotbox_top_traced(cfg: &ZipfConfig, spec: &RunSpec) -> (RunResult, Arc<Tracer>) {
    let cfg = *cfg;
    let sampler = Arc::new(ZipfSampler::new(cfg.array_size, cfg.theta));
    let array: LazyBoxes = Arc::new(parking_lot::Mutex::new(None));
    run_virtual_traced(
        spec,
        Arc::new(move |client, tm: &FutureTm| {
            let array = array
                .lock()
                .get_or_insert_with(|| {
                    Arc::new((0..cfg.array_size).map(|i| tm.new_vbox(i as i64)).collect())
                })
                .clone();
            let mut seeder = Xorshift::new(cfg.seed ^ ((client as u64) << 32));
            for _ in 0..cfg.txs_per_client * cfg.tasks_per_tx {
                let array = array.clone();
                let sampler = sampler.clone();
                let tx_seed = seeder.next_u64();
                tm.atomic_infallible(move |ctx| {
                    let mut rng = Xorshift::new(tx_seed);
                    let mut acc = 0i64;
                    for _ in 0..cfg.reads_per_task {
                        ctx.work(jittered(&mut rng, cfg.iter));
                        acc = acc.wrapping_add(ctx.read(&array[sampler.sample(&mut rng)])?);
                    }
                    for _ in 0..cfg.writes_per_task {
                        ctx.work(jittered(&mut rng, cfg.iter));
                        let slot = &array[sampler.sample(&mut rng)];
                        let v = ctx.read(slot)?;
                        ctx.write(slot, v.wrapping_add(acc.rem_euclid(3) + 1))?;
                    }
                    Ok(())
                });
            }
        }),
    )
}

/// Parameters of the two-phase incident workload.
#[derive(Debug, Clone, Copy)]
pub struct StormConfig {
    /// Read-modify-writes of the one shared box per client in phase 1.
    pub storm_txs: usize,
    /// Read-modify-writes of the client-private box in phase 2.
    pub calm_txs: usize,
    /// Spin units between the storm read and its write (the conflict
    /// window — larger means more overlap and a denser storm).
    pub iter: u64,
    pub seed: u64,
}

impl Default for StormConfig {
    fn default() -> Self {
        StormConfig {
            storm_txs: 48,
            calm_txs: 48,
            iter: 800,
            seed: 0x5707,
        }
    }
}

/// Abort storm, then calm: phase 1 has every client read-modify-write
/// the *same* box with a long jittered gap between read and write, so
/// concurrent top-levels overlap and all but one abort per round; phase
/// 2 moves each client to its own private box, so conflicts stop dead.
/// Under the virtual clock this produces one deterministic abort-storm
/// incident (onset in phase 1, recovery a few calm epochs into phase 2).
pub fn storm_then_calm(cfg: &StormConfig, spec: &RunSpec) -> RunResult {
    storm_then_calm_traced(cfg, spec).0
}

/// [`storm_then_calm`], also handing back the [`Tracer`] (the CM
/// conformance suite asserts on the raw decision events).
pub fn storm_then_calm_traced(cfg: &StormConfig, spec: &RunSpec) -> (RunResult, Arc<Tracer>) {
    let cfg = *cfg;
    let boxes: LazyBoxes = Arc::new(parking_lot::Mutex::new(None));
    let clients = spec.clients;
    run_virtual_traced(
        spec,
        Arc::new(move |client, tm: &FutureTm| {
            // Box 0 is the shared storm target; boxes 1..=clients are the
            // private calm targets.
            let boxes = boxes
                .lock()
                .get_or_insert_with(|| {
                    Arc::new((0..clients + 1).map(|_| tm.new_vbox(0i64)).collect())
                })
                .clone();
            let mut rng = Xorshift::new(cfg.seed ^ ((client as u64) << 32));
            for _ in 0..cfg.storm_txs {
                let hot = boxes[0].clone();
                let spin = jittered(&mut rng, cfg.iter);
                tm.atomic_infallible(move |ctx| {
                    let v = ctx.read(&hot)?;
                    ctx.work(spin);
                    ctx.write(&hot, v + 1)
                });
            }
            for _ in 0..cfg.calm_txs {
                let own = boxes[client + 1].clone();
                let spin = jittered(&mut rng, cfg.iter);
                tm.atomic_infallible(move |ctx| {
                    let v = ctx.read(&own)?;
                    ctx.work(spin);
                    ctx.write(&own, v + 1)
                });
            }
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_sampler_is_skewed_and_deterministic() {
        let sampler = ZipfSampler::new(64, 0.99);
        let mut a = Xorshift::new(9);
        let mut b = Xorshift::new(9);
        let draws: Vec<usize> = (0..4096).map(|_| sampler.sample(&mut a)).collect();
        let again: Vec<usize> = (0..4096).map(|_| sampler.sample(&mut b)).collect();
        assert_eq!(draws, again, "sampling is a pure function of the seed");
        let mut hits = [0usize; 64];
        for &d in &draws {
            assert!(d < 64);
            hits[d] += 1;
        }
        // Rank 0 dominates and the tail is still reachable.
        assert!(hits[0] > hits[1] && hits[1] >= hits[8]);
        assert!(hits[0] > draws.len() / 16, "head rank is hot: {hits:?}");
        assert!(hits.iter().skip(32).sum::<usize>() > 0, "tail reachable");
    }

    #[test]
    fn zipf_theta_zero_is_uniform() {
        let sampler = ZipfSampler::new(16, 0.0);
        let mut rng = Xorshift::new(3);
        let mut hits = [0usize; 16];
        for _ in 0..16_000 {
            hits[sampler.sample(&mut rng)] += 1;
        }
        for h in hits {
            assert!((600..1500).contains(&h), "roughly uniform: {hits:?}");
        }
    }

    #[test]
    fn zipf_hotbox_runs_and_counts_work() {
        let cfg = ZipfConfig {
            array_size: 32,
            reads_per_task: 4,
            writes_per_task: 1,
            iter: 50,
            tasks_per_tx: 2,
            txs_per_client: 2,
            ..ZipfConfig::default()
        };
        let res = zipf_hotbox(&cfg, Semantics::WO_GAC, 2);
        assert_eq!(res.completed, 8);
        assert!(res.tm.top_commits >= 4);
        assert!(res.makespan > 0);
    }
}
