//! The synthetic array benchmark of §5.1–§5.3.
//!
//! A shared array of transactional boxes is read at uniformly random
//! positions; contended variants add writes to a small "hot spot" set, and
//! CPU-bound computation between accesses is emulated by `iter` spin units
//! (exactly the paper's knob). Three harness entry points correspond to
//! the three experiments built on this workload:
//!
//! * [`read_only`] / [`read_only_nt`] — Fig. 6 (left): WTF-TM futures vs
//!   plain (non-transactional) futures on a read-only workload;
//! * [`contended`] — Fig. 6 (right): reads plus hot-spot updates under
//!   different top-level × futures splits of a fixed thread budget;
//! * [`conflict_prone`] — Fig. 7: futures whose hot-spot writes conflict
//!   with their continuations' hot-spot reads (the workload where WO's
//!   serialization-upon-evaluation pays off).

use crate::harness::{run_virtual, RunResult, RunSpec, Xorshift};
use std::sync::Arc;
use wtf_core::{CostModel, FutureTm, Semantics, TxCtx, TxResult, VBox};
use wtf_vclock::Clock;

/// Parameters of the synthetic workload family.
#[derive(Debug, Clone, Copy)]
pub struct SyntheticConfig {
    /// Shared array size (the paper uses 1M; scaled down hosts use less —
    /// uniform reads make conflicts independent of this size).
    pub array_size: usize,
    /// Read accesses per task.
    pub reads_per_task: usize,
    /// Spin iterations between accesses (the paper's `iter`).
    pub iter: u64,
    /// Hot-spot set size (contended variants; 0 = no writes).
    pub hot_spots: usize,
    /// Hot-spot writes per task.
    pub writes_per_task: usize,
    /// Blind hot-spot writes (the paper's Fig. 7 workload: futures "write
    /// once" to hot spots) vs read-modify-write updates (Fig. 6 right).
    pub blind_writes: bool,
    /// Tasks per top-level transaction (== concurrent futures when
    /// parallelized).
    pub tasks_per_tx: usize,
    /// Transactions per client.
    pub txs_per_client: usize,
    pub seed: u64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        SyntheticConfig {
            array_size: 1 << 14,
            reads_per_task: 1_000,
            iter: 1_000,
            hot_spots: 0,
            writes_per_task: 0,
            blind_writes: false,
            tasks_per_tx: 8,
            txs_per_client: 2,
            seed: 0x5eed,
        }
    }
}

struct Arrays {
    data: Vec<VBox<i64>>,
    hot: Vec<VBox<i64>>,
}

fn make_arrays(tm: &FutureTm, cfg: &SyntheticConfig) -> Arrays {
    Arrays {
        data: (0..cfg.array_size).map(|i| tm.new_vbox(i as i64)).collect(),
        hot: (0..cfg.hot_spots).map(|_| tm.new_vbox(0i64)).collect(),
    }
}

/// Per-access spin with ±50% deterministic jitter (mean `iter`). Real
/// hardware staggers identical tasks through cache/scheduling noise; a
/// deterministic virtual clock must model that explicitly or identical
/// futures complete in lockstep and conflict maximally.
fn jittered(rng: &mut Xorshift, iter: u64) -> u64 {
    if iter == 0 {
        0
    } else {
        iter / 2 + rng.next_u64() % (iter + 1)
    }
}

/// One task: `reads_per_task` random reads with `iter` spin between
/// accesses, then `writes_per_task` hot-spot updates.
fn run_task(
    ctx: &mut TxCtx,
    arrays: &Arrays,
    cfg: &SyntheticConfig,
    rng: &mut Xorshift,
) -> TxResult<i64> {
    let mut acc = 0i64;
    for _ in 0..cfg.reads_per_task {
        ctx.work(jittered(rng, cfg.iter));
        acc = acc.wrapping_add(ctx.read(&arrays.data[rng.below(cfg.array_size)])?);
    }
    for _ in 0..cfg.writes_per_task {
        ctx.work(jittered(rng, cfg.iter));
        let slot = &arrays.hot[rng.below(cfg.hot_spots)];
        if cfg.blind_writes {
            ctx.write(slot, rng.next_u64() as i64)?;
        } else {
            let v = ctx.read(slot)?;
            ctx.write(slot, v + 1)?;
        }
    }
    Ok(acc)
}

/// Shared-array workload with transactional futures: each transaction runs
/// `tasks_per_tx` tasks, one future per task, evaluated in spawn order.
pub fn futures_run(cfg: &SyntheticConfig, semantics: Semantics, clients: usize) -> RunResult {
    let spec = RunSpec {
        units_per_client: (cfg.txs_per_client * cfg.tasks_per_tx) as u64,
        workers: clients * cfg.tasks_per_tx + 2,
        ..RunSpec::new(semantics, clients, 1)
    };
    let cfg = *cfg;
    let arrays: Arc<parking_lot::Mutex<Option<Arc<Arrays>>>> =
        Arc::new(parking_lot::Mutex::new(None));
    run_virtual(
        &spec,
        Arc::new(move |client, tm| {
            let arrays = arrays
                .lock()
                .get_or_insert_with(|| Arc::new(make_arrays(tm, &cfg)))
                .clone();
            let mut seeder = Xorshift::new(cfg.seed ^ (client as u64) << 32);
            for _ in 0..cfg.txs_per_client {
                let arrays = arrays.clone();
                let tx_seed = seeder.next_u64();
                tm.atomic_infallible(move |ctx| {
                    let mut futs = Vec::with_capacity(cfg.tasks_per_tx);
                    for t in 0..cfg.tasks_per_tx {
                        let arrays = arrays.clone();
                        let task_seed = tx_seed ^ t as u64;
                        futs.push(ctx.submit(move |c| {
                            let mut rng = Xorshift::new(task_seed);
                            run_task(c, &arrays, &cfg, &mut rng)
                        })?);
                    }
                    for f in &futs {
                        ctx.evaluate(f)?;
                    }
                    Ok(())
                });
            }
        }),
    )
}

/// Same workload executed as plain top-level transactions without
/// futures: the JVSTM baseline. With `grouped = true` each transaction
/// executes `tasks_per_tx` tasks sequentially (the paper's unparallelized
/// long transactions — "these last longer and are more prone to
/// conflict"); with `grouped = false` each task is its own short
/// transaction.
pub fn toplevel_run(cfg: &SyntheticConfig, clients: usize, grouped: bool) -> RunResult {
    let spec = RunSpec {
        units_per_client: (cfg.txs_per_client * cfg.tasks_per_tx) as u64,
        workers: 1,
        ..RunSpec::new(Semantics::WO_GAC, clients, 1)
    };
    let cfg = *cfg;
    let arrays: Arc<parking_lot::Mutex<Option<Arc<Arrays>>>> =
        Arc::new(parking_lot::Mutex::new(None));
    run_virtual(
        &spec,
        Arc::new(move |client, tm| {
            let arrays = arrays
                .lock()
                .get_or_insert_with(|| Arc::new(make_arrays(tm, &cfg)))
                .clone();
            let mut seeder = Xorshift::new(cfg.seed ^ (client as u64) << 32);
            if grouped {
                for _ in 0..cfg.txs_per_client {
                    let arrays = arrays.clone();
                    let seed = seeder.next_u64();
                    tm.atomic_infallible(move |ctx| {
                        let mut tx_rng = Xorshift::new(seed);
                        for t in 0..cfg.tasks_per_tx {
                            // The unparallelized transaction performs the
                            // same hot-spot read its futures-based version
                            // does in the continuation before each spawn.
                            if cfg.hot_spots > 0 {
                                ctx.read(&arrays.hot[tx_rng.below(cfg.hot_spots)])?;
                            }
                            let mut rng = Xorshift::new(seed ^ ((t as u64) << 17));
                            run_task(ctx, &arrays, &cfg, &mut rng)?;
                        }
                        Ok(())
                    });
                }
            } else {
                for _ in 0..cfg.txs_per_client * cfg.tasks_per_tx {
                    let arrays = arrays.clone();
                    let seed = seeder.next_u64();
                    tm.atomic_infallible(move |ctx| {
                        let mut rng = Xorshift::new(seed);
                        run_task(ctx, &arrays, &cfg, &mut rng)
                    });
                }
            }
        }),
    )
}

/// Sequential baseline: one client executing all tasks as top-level
/// transactions, back to back (the denominator of Figs. 7a and 8/9
/// speedups). `scale` multiplies the per-client task count so the
/// sequential run covers the same total work as a parallel one.
pub fn sequential_run(cfg: &SyntheticConfig) -> RunResult {
    toplevel_run(cfg, 1, true)
}

/// Fig. 6 (left): read-only configuration (no hot spots).
pub fn read_only(cfg: &SyntheticConfig, clients: usize) -> RunResult {
    assert_eq!(cfg.hot_spots, 0);
    futures_run(cfg, Semantics::WO_GAC, clients)
}

/// Fig. 6 (left) baseline: the same read pattern executed by plain
/// (non-transactional) pool futures — same virtual costs minus the STM.
/// Returns the equivalent of a [`RunResult`] with empty STM stats.
pub fn read_only_nt(cfg: &SyntheticConfig, clients: usize, parallel: bool) -> RunResult {
    let clock = Clock::virtual_time();
    let cfg = *cfg;
    let costs = CostModel::CALIBRATED;
    clock.enter(|| {
        let c = Clock::current();
        let bus = c.new_resource();
        let pool = Arc::new(wtf_taskpool::TaskPool::with_dispatch_cost(
            &c,
            clients * cfg.tasks_per_tx + 2,
            costs.submit_cost,
        ));
        let handles: Vec<_> = (0..clients)
            .map(|client| {
                let pool = pool.clone();
                c.spawn(&format!("nt-{client}"), move || {
                    let c = Clock::current();
                    let mut seeder = Xorshift::new(cfg.seed ^ (client as u64) << 32);
                    for _ in 0..cfg.txs_per_client {
                        let tx_seed = seeder.next_u64();
                        if parallel {
                            let tasks: Vec<_> = (0..cfg.tasks_per_tx)
                                .map(|t| {
                                    let mut rng = Xorshift::new(tx_seed ^ t as u64);
                                    pool.submit(move || nt_task(&cfg, &costs, bus, &mut rng))
                                })
                                .collect();
                            for t in tasks {
                                t.join();
                            }
                        } else {
                            for t in 0..cfg.tasks_per_tx {
                                let mut rng = Xorshift::new(tx_seed ^ t as u64);
                                nt_task(&cfg, &costs, bus, &mut rng);
                            }
                        }
                        let _ = c.now();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join();
        }
        match Arc::try_unwrap(pool) {
            Ok(p) => p.shutdown(),
            Err(_) => panic!("pool handles leaked"),
        }
    });
    RunResult {
        makespan: clock.makespan(),
        completed: (clients * cfg.txs_per_client * cfg.tasks_per_tx) as u64,
        backend: wtf_core::BackendKind::from_env(),
        cm: wtf_core::CmKind::from_env(),
        tm: Default::default(),
        stm: Default::default(),
        trace: Default::default(),
        telemetry: Default::default(),
        profile: None,
    }
}

/// A non-transactional task: identical virtual charges, no STM bookkeeping
/// beyond the raw memory traffic.
fn nt_task(
    cfg: &SyntheticConfig,
    costs: &CostModel,
    bus: wtf_vclock::Resource,
    rng: &mut Xorshift,
) {
    let c = Clock::current();
    for _ in 0..cfg.reads_per_task {
        c.advance(cfg.iter);
        // A plain memory read: bus share only (no STM CPU overhead).
        c.acquire(bus, costs.read_mem);
        rng.next_u64();
    }
}

/// Fig. 6 (right): contended configuration — `clients x tasks_per_tx`
/// splits of a fixed thread budget, WTF vs JTF, JVSTM as baseline.
pub fn contended(cfg: &SyntheticConfig, semantics: Semantics, clients: usize) -> RunResult {
    assert!(cfg.hot_spots > 0 && cfg.writes_per_task > 0);
    futures_run(cfg, semantics, clients)
}

/// Fig. 7 configuration knobs.
#[derive(Debug, Clone, Copy)]
pub struct ConflictConfig {
    pub array_size: usize,
    pub reads_per_future: usize,
    pub iter: u64,
    /// Hot-spot set size: 100 / 1k / 50k in the paper (contention level).
    pub hot_spots: usize,
    /// Hot-spot writes per future.
    pub writes_per_future: usize,
    /// Concurrent futures per transaction (the x-axis thread count).
    pub futures_per_tx: usize,
    pub txs_per_client: usize,
    pub seed: u64,
}

impl Default for ConflictConfig {
    fn default() -> Self {
        ConflictConfig {
            array_size: 1 << 14,
            reads_per_future: 1_000,
            iter: 1_000,
            hot_spots: 100,
            writes_per_future: 1,
            futures_per_tx: 8,
            txs_per_client: 2,
            seed: 0xc0ffee,
        }
    }
}

/// Fig. 7 workload with futures (WTF or JTF): each future performs its
/// reads then writes hot spots; **each continuation reads a random hot
/// spot** before spawning the next future (the read that SO's
/// at-submission serialization invalidates); finally all futures are
/// evaluated in spawning order.
pub fn conflict_prone(cfg: &ConflictConfig, semantics: Semantics, clients: usize) -> RunResult {
    let spec = RunSpec {
        units_per_client: (cfg.txs_per_client * cfg.futures_per_tx) as u64,
        workers: clients * cfg.futures_per_tx + 2,
        ..RunSpec::new(semantics, clients, 1)
    };
    let cfg = *cfg;
    let arrays: Arc<parking_lot::Mutex<Option<Arc<Arrays>>>> =
        Arc::new(parking_lot::Mutex::new(None));
    let syn = SyntheticConfig {
        array_size: cfg.array_size,
        reads_per_task: cfg.reads_per_future,
        iter: cfg.iter,
        hot_spots: cfg.hot_spots,
        writes_per_task: cfg.writes_per_future,
        blind_writes: true, // Fig. 7: futures write "once" (blindly)
        tasks_per_tx: cfg.futures_per_tx,
        txs_per_client: cfg.txs_per_client,
        seed: cfg.seed,
    };
    run_virtual(
        &spec,
        Arc::new(move |client, tm| {
            let arrays = arrays
                .lock()
                .get_or_insert_with(|| Arc::new(make_arrays(tm, &syn)))
                .clone();
            let mut seeder = Xorshift::new(cfg.seed ^ (client as u64) << 32);
            for _ in 0..cfg.txs_per_client {
                let arrays = arrays.clone();
                let tx_seed = seeder.next_u64();
                tm.atomic_infallible(move |ctx| {
                    let mut rng = Xorshift::new(tx_seed);
                    let mut futs = Vec::with_capacity(cfg.futures_per_tx);
                    for t in 0..cfg.futures_per_tx {
                        // Continuation reads a random hot spot inside a
                        // checkpointed segment (partial rollback on doom).
                        let hot_idx = rng.below(cfg.hot_spots);
                        let arrays2 = arrays.clone();
                        ctx.step(move |c| {
                            c.read(&arrays2.hot[hot_idx])?;
                            Ok(())
                        })?;
                        let arrays2 = arrays.clone();
                        let task_seed = tx_seed ^ ((t as u64) << 17);
                        futs.push(ctx.submit(move |c| {
                            let mut rng = Xorshift::new(task_seed);
                            run_task(c, &arrays2, &syn, &mut rng)
                        })?);
                    }
                    for f in &futs {
                        ctx.evaluate(f)?;
                    }
                    Ok(())
                });
            }
        }),
    )
}

/// Fig. 7 JVSTM configuration: `clients` concurrent *unparallelized*
/// top-level transactions, each running the whole `futures_per_tx`-task
/// transaction sequentially (long transactions; abort-prone).
pub fn conflict_prone_toplevel(cfg: &ConflictConfig, clients: usize) -> RunResult {
    let syn = SyntheticConfig {
        array_size: cfg.array_size,
        reads_per_task: cfg.reads_per_future,
        iter: cfg.iter,
        hot_spots: cfg.hot_spots,
        writes_per_task: cfg.writes_per_future,
        blind_writes: true,
        tasks_per_tx: cfg.futures_per_tx,
        txs_per_client: cfg.txs_per_client,
        seed: cfg.seed,
    };
    toplevel_run(&syn, clients, true)
}

/// Fig. 7 sequential denominator: the same long transactions, one client.
pub fn conflict_prone_sequential(cfg: &ConflictConfig) -> RunResult {
    conflict_prone_toplevel(cfg, 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SyntheticConfig {
        SyntheticConfig {
            array_size: 64,
            reads_per_task: 20,
            iter: 10,
            hot_spots: 0,
            writes_per_task: 0,
            blind_writes: false,
            tasks_per_tx: 4,
            txs_per_client: 2,
            seed: 1,
        }
    }

    #[test]
    fn read_only_futures_faster_than_sequential() {
        let cfg = SyntheticConfig {
            iter: 1_000,
            ..tiny()
        };
        let par = read_only(&cfg, 1);
        let seq = sequential_run(&cfg);
        assert_eq!(par.tm.top_aborts, 0, "read-only: no aborts");
        let speedup = par.speedup_vs(&seq);
        assert!(speedup > 2.0, "CPU-bound 4-way futures speed up: {speedup}");
    }

    #[test]
    fn memory_bound_workload_does_not_scale() {
        // iter = 0: the memory bus serializes everything (Fig. 6 left's
        // flat It.0 line).
        let cfg = SyntheticConfig { iter: 0, ..tiny() };
        let par = read_only(&cfg, 1);
        let seq = sequential_run(&cfg);
        let speedup = par.speedup_vs(&seq);
        assert!(
            speedup < 1.6,
            "memory-bound: futures cannot beat the bus ({speedup})"
        );
    }

    #[test]
    fn nt_baseline_runs_and_is_faster_than_stm() {
        let cfg = SyntheticConfig {
            iter: 100,
            ..tiny()
        };
        let nt = read_only_nt(&cfg, 1, true);
        let stm = read_only(&cfg, 1);
        assert!(nt.makespan > 0);
        assert!(
            nt.makespan <= stm.makespan,
            "NT futures skip STM overhead: {} vs {}",
            nt.makespan,
            stm.makespan
        );
    }

    #[test]
    fn contended_runs_all_semantics() {
        let cfg = SyntheticConfig {
            hot_spots: 8,
            writes_per_task: 2,
            iter: 100,
            ..tiny()
        };
        for sem in [Semantics::WO_GAC, Semantics::SO] {
            let r = contended(&cfg, sem, 2);
            assert_eq!(r.tm.top_commits, 4, "all transactions commit ({sem:?})");
        }
    }

    #[test]
    fn conflict_prone_wo_avoids_internal_aborts_vs_so() {
        let cfg = ConflictConfig {
            array_size: 64,
            reads_per_future: 50,
            iter: 50,
            hot_spots: 4, // high contention
            writes_per_future: 2,
            futures_per_tx: 4,
            txs_per_client: 3,
            seed: 9,
        };
        let wo = conflict_prone(&cfg, Semantics::WO_GAC, 1);
        let so = conflict_prone(&cfg, Semantics::SO, 1);
        assert_eq!(wo.tm.top_commits, 3);
        assert_eq!(so.tm.top_commits, 3);
        assert!(
            wo.internal_abort_rate() <= so.internal_abort_rate(),
            "WO {} <= SO {}",
            wo.internal_abort_rate(),
            so.internal_abort_rate()
        );
    }

    #[test]
    fn determinism_of_workloads() {
        let cfg = tiny();
        let a = read_only(&cfg, 2);
        let b = read_only(&cfg, 2);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.tm, b.tm);
    }
}
