//! Atomics inventory + ordering-contract checker.
//!
//! Every atomic declaration in an audited crate (struct field, tuple
//! struct, or `static`) must carry a structured contract comment in the
//! comment block directly above it:
//!
//! ```text
//! // ordering: release-store in install(), acquire-load in read_at();
//! // relaxed-load under the stripe lock; relaxed-guard (CAS revalidates)
//! ```
//!
//! The machine-checked part is the `<ord>-<op>` tokens, with
//! `ord ∈ {seqcst, acqrel, acquire, release, relaxed}` and
//! `op ∈ {load, store, swap, cas, rmw}`, plus the special clause
//! `relaxed-guard` which declares that Relaxed loads of this atomic may
//! legitimately feed branch/CAS decisions (single-writer reads, probe
//! hints that a CAS revalidates, advisory flags). Everything else in the
//! comment is prose for the reader. `// ordering(key1, key2): ...`
//! declares explicit lookup keys — used when call sites reach the atomic
//! through an alias (`struct Slot(AtomicU64)` accessed via a `slots`
//! array, say).
//!
//! The checker then walks every `load/store/swap/compare_exchange/
//! fetch_*` call site, resolves the receiver to a declared key in the
//! same crate, and fails when:
//!
//! * a declaration has no contract (`missing-contract`) or a contract
//!   with no tokens (`contract-empty`);
//! * a call site's `Ordering::` argument is outside the declared
//!   protocol (`ordering-violation`);
//! * a Relaxed load flows into a branch, assert, or compare-exchange
//!   decision in the same function without a `relaxed-guard` clause
//!   (`relaxed-guard`);
//! * a call site's receiver is not a declared atomic
//!   (`undeclared-atomic`).
//!
//! Keys are scoped per crate. If two declarations in one crate share a
//! key (two structs with a `doomed` field, say), each still needs its
//! own contract and call sites are checked against the union of the
//! declared protocols.

use std::collections::{BTreeMap, BTreeSet};

use crate::scan::{self, Receiver, SourceFile};
use crate::Finding;

/// Concrete `std::sync::atomic` types the inventory recognizes. A plain
/// substring match would also catch `AtomicitySemantics`, hence the
/// exact list.
pub const ATOMIC_TYPES: [&str; 12] = [
    "AtomicBool",
    "AtomicU8",
    "AtomicU16",
    "AtomicU32",
    "AtomicU64",
    "AtomicUsize",
    "AtomicI8",
    "AtomicI16",
    "AtomicI32",
    "AtomicI64",
    "AtomicIsize",
    "AtomicPtr",
];

const ORDS: [(&str, &str); 5] = [
    ("SeqCst", "seqcst"),
    ("AcqRel", "acqrel"),
    ("Acquire", "acquire"),
    ("Release", "release"),
    ("Relaxed", "relaxed"),
];

const OPS: [&str; 5] = ["load", "store", "swap", "cas", "rmw"];

/// Atomic method → contract op class.
const METHODS: [(&str, &str); 14] = [
    ("load", "load"),
    ("store", "store"),
    ("swap", "swap"),
    ("compare_exchange", "cas"),
    ("compare_exchange_weak", "cas"),
    ("fetch_add", "rmw"),
    ("fetch_sub", "rmw"),
    ("fetch_and", "rmw"),
    ("fetch_or", "rmw"),
    ("fetch_xor", "rmw"),
    ("fetch_nand", "rmw"),
    ("fetch_max", "rmw"),
    ("fetch_min", "rmw"),
    ("fetch_update", "rmw"),
];

/// One declared atomic (field, tuple struct, or static).
#[derive(Debug, Clone)]
pub struct AtomicDecl {
    pub crate_name: String,
    pub file: String,
    pub line: usize,
    /// Concrete atomic type (`AtomicU64`, ...).
    pub ty: String,
    /// Lookup keys: the field/static/struct name, or the explicit
    /// `ordering(key, ...)` list when given.
    pub keys: Vec<String>,
    /// Parsed `<ord>-<op>` / `relaxed-guard` tokens; empty set when the
    /// contract comment is missing entirely.
    pub tokens: BTreeSet<String>,
    pub has_contract: bool,
}

/// One atomic call site with an explicit ordering argument.
#[derive(Debug, Clone)]
pub struct CallSite {
    pub crate_name: String,
    pub file: String,
    pub line: usize,
    /// Resolved declaration key, if the receiver resolved + matched.
    pub key: Option<String>,
    pub method: String,
    pub op: &'static str,
    /// Lowercased ordering names in argument order.
    pub orderings: Vec<&'static str>,
}

#[derive(Debug, Default)]
pub struct AtomicsReport {
    pub decls: Vec<AtomicDecl>,
    /// Non-test call sites only (contracts bind to runtime code).
    pub sites: Vec<CallSite>,
    pub findings: Vec<Finding>,
}

/// Runs the inventory + contract checks over every audited file.
pub fn analyze(files: &[SourceFile]) -> AtomicsReport {
    let mut report = AtomicsReport::default();
    for f in files {
        if f.test_file {
            continue;
        }
        collect_decls(f, &mut report);
    }
    // key → decl indices, per crate
    let mut keymap: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
    for (i, d) in report.decls.iter().enumerate() {
        for k in &d.keys {
            keymap
                .entry((d.crate_name.as_str(), k.as_str()))
                .or_default()
                .push(i);
        }
    }
    let mut findings = Vec::new();
    for d in &report.decls {
        if !d.has_contract {
            findings.push(Finding {
                file: d.file.clone(),
                line: d.line,
                rule: "missing-contract",
                message: format!(
                    "atomic `{}` ({}) has no `// ordering:` contract comment",
                    d.keys.join("/"),
                    d.ty
                ),
            });
        } else if d.tokens.is_empty() {
            findings.push(Finding {
                file: d.file.clone(),
                line: d.line,
                rule: "contract-empty",
                message: format!(
                    "contract on `{}` declares no `<ord>-<op>` tokens",
                    d.keys.join("/")
                ),
            });
        }
    }
    let mut sites = Vec::new();
    for f in files {
        if f.test_file {
            continue;
        }
        check_sites(f, &keymap, &report.decls, &mut sites, &mut findings);
    }
    report.sites = sites;
    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    report.findings = findings;
    report
}

fn atomic_type_in(type_text: &str) -> Option<&'static str> {
    ATOMIC_TYPES
        .iter()
        .find(|t| scan::has_word(type_text, t))
        .copied()
}

/// Blanks `macro_rules!` repetition markers — `$(`, the matching `)`,
/// and its separator/repeat suffix — so fields declared inside a
/// repetition (`$( $name: AtomicU64, )+`) parse like plain fields.
/// Offsets are preserved (replacement with spaces).
fn strip_macro_repetitions(masked: &str) -> String {
    let mut out: Vec<u8> = masked.as_bytes().to_vec();
    let mut i = 0;
    while i + 1 < out.len() {
        if out[i] == b'$' && out[i + 1] == b'(' {
            out[i] = b' ';
            out[i + 1] = b' ';
            let mut depth = 1usize;
            let mut j = i + 2;
            while j < out.len() && depth > 0 {
                match out[j] {
                    b'(' => depth += 1,
                    b')' => depth -= 1,
                    _ => {}
                }
                j += 1;
            }
            if depth == 0 {
                out[j - 1] = b' ';
                // optional separator + repeat operator
                for _ in 0..2 {
                    if j < out.len() && matches!(out[j], b',' | b';' | b'+' | b'*' | b'?') {
                        out[j] = b' ';
                        j += 1;
                    }
                }
            }
        }
        i += 1;
    }
    String::from_utf8(out).unwrap_or_else(|_| masked.to_string())
}

/// All `static NAME: <Atomic...>` and struct-field/tuple-struct atomic
/// declarations in one file (test regions excluded).
fn collect_decls(f: &SourceFile, report: &mut AtomicsReport) {
    let masked = &strip_macro_repetitions(&f.masked);
    // statics (skip `'static` lifetimes: preceded by a quote)
    for off in scan::find_word_all(masked, "static") {
        if off > 0 && masked.as_bytes()[off - 1] == b'\'' {
            continue;
        }
        if f.in_test(off) {
            continue;
        }
        let rest = &masked[off + "static".len()..];
        let rest = rest.trim_start();
        let rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
        let name: String = rest
            .chars()
            .take_while(|&c| scan::is_ident_char(c))
            .collect();
        if name.is_empty() {
            continue;
        }
        let after = rest[name.len()..].trim_start();
        let Some(ty_text) = after.strip_prefix(':') else {
            continue;
        };
        let end = ty_text
            .find(['=', ';'])
            .unwrap_or_else(|| ty_text.len().min(200));
        let Some(ty) = atomic_type_in(&ty_text[..end]) else {
            continue;
        };
        push_decl(f, report, off, ty, name);
    }
    // struct fields + tuple structs
    for off in scan::find_word_all(masked, "struct") {
        if f.in_test(off) {
            continue;
        }
        let bytes = masked.as_bytes();
        let mut i = off + "struct".len();
        while i < bytes.len() && (bytes[i] as char).is_whitespace() {
            i += 1;
        }
        let name_start = i;
        while i < bytes.len() && scan::is_ident_char(bytes[i] as char) {
            i += 1;
        }
        let struct_name = masked[name_start..i].to_string();
        if struct_name.is_empty() {
            continue;
        }
        // skip generics
        let mut angle = 0i32;
        while i < bytes.len() {
            match bytes[i] {
                b'<' => angle += 1,
                b'>' => angle -= 1,
                c if angle == 0 && !(c as char).is_whitespace() => break,
                _ => {}
            }
            i += 1;
        }
        match bytes.get(i) {
            Some(b'(') => {
                if let Some((args, _)) = scan::call_args(masked, i) {
                    if let Some(ty) = atomic_type_in(args) {
                        push_decl(f, report, off, ty, struct_name);
                    }
                }
            }
            Some(b'{') => {
                let body_start = i + 1;
                let mut depth = 1usize;
                let mut j = body_start;
                while j < bytes.len() && depth > 0 {
                    match bytes[j] {
                        b'{' => depth += 1,
                        b'}' => depth -= 1,
                        _ => {}
                    }
                    j += 1;
                }
                let body_end = j.saturating_sub(1);
                collect_fields(f, masked, report, body_start, body_end);
            }
            _ => {}
        }
    }
}

/// Named fields of a struct body: chunks split on commas at top level
/// (angle-, paren-, bracket-, and brace-depth zero within the body).
fn collect_fields(
    f: &SourceFile,
    masked: &str,
    report: &mut AtomicsReport,
    start: usize,
    end: usize,
) {
    let bytes = masked.as_bytes();
    let (mut angle, mut paren, mut bracket, mut brace) = (0i32, 0i32, 0i32, 0i32);
    let mut chunk_start = start;
    let mut chunks = Vec::new();
    for (i, &byte) in bytes.iter().enumerate().take(end).skip(start) {
        match byte {
            b'<' => angle += 1,
            b'>' => angle = (angle - 1).max(0), // `->` never appears in field types
            b'(' => paren += 1,
            b')' => paren -= 1,
            b'[' => bracket += 1,
            b']' => bracket -= 1,
            b'{' => brace += 1,
            b'}' => brace -= 1,
            b',' if angle == 0 && paren == 0 && bracket == 0 && brace == 0 => {
                chunks.push((chunk_start, i));
                chunk_start = i + 1;
            }
            _ => {}
        }
    }
    chunks.push((chunk_start, end));
    for (cs, ce) in chunks {
        let chunk = &masked[cs..ce];
        // top-level `name: Type` colon (skip `::` paths)
        let cb = chunk.as_bytes();
        let (mut angle, mut paren) = (0i32, 0i32);
        let mut colon = None;
        let mut k = 0;
        while k < cb.len() {
            match cb[k] {
                b'<' => angle += 1,
                b'>' => angle -= 1,
                b'(' => paren += 1,
                b')' => paren -= 1,
                b':' if angle == 0 && paren == 0 => {
                    if k + 1 < cb.len() && cb[k + 1] == b':' {
                        k += 2;
                        continue;
                    }
                    colon = Some(k);
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        let Some(colon) = colon else { continue };
        let Some(ty) = atomic_type_in(&chunk[colon + 1..]) else {
            continue;
        };
        // field name: last identifier before the colon
        let name_part = &chunk[..colon];
        let name_end = name_part.trim_end().len();
        let name_start = name_part[..name_end]
            .char_indices()
            .rev()
            .take_while(|(_, c)| scan::is_ident_char(*c))
            .last()
            .map(|(i, _)| i);
        let Some(name_start) = name_start else {
            continue;
        };
        let name = name_part[name_start..name_end].to_string();
        if name.is_empty() || f.in_test(cs + name_start) {
            continue;
        }
        push_decl(f, report, cs + name_start, ty, name);
    }
}

fn push_decl(
    f: &SourceFile,
    report: &mut AtomicsReport,
    off: usize,
    ty: &str,
    default_key: String,
) {
    let line = f.line_of(off);
    let (keys, tokens, has_contract) = parse_contract(f, line, default_key);
    report.decls.push(AtomicDecl {
        crate_name: f.crate_name.clone(),
        file: f.path.clone(),
        line,
        ty: ty.to_string(),
        keys,
        tokens,
        has_contract,
    });
}

/// Parses the `// ordering[(keys)]: ...` contract from the comment block
/// above `line`. Returns `(keys, tokens, has_contract)`.
fn parse_contract(
    f: &SourceFile,
    line: usize,
    default_key: String,
) -> (Vec<String>, BTreeSet<String>, bool) {
    let block = f.comment_block_above(line);
    let stripped: Vec<&str> = block
        .iter()
        .map(|l| l.trim_start_matches('/').trim_start_matches('!').trim())
        .collect();
    let Some(start) = stripped.iter().position(|l| l.starts_with("ordering")) else {
        return (vec![default_key], BTreeSet::new(), false);
    };
    let text = stripped[start..].join(" ");
    let after = &text["ordering".len()..];
    let (keys, rest) = if let Some(after_paren) = after.trim_start().strip_prefix('(') {
        match after_paren.split_once(')') {
            Some((keylist, rest)) => (
                keylist
                    .split(',')
                    .map(|k| k.trim().to_string())
                    .filter(|k| !k.is_empty())
                    .collect(),
                rest,
            ),
            None => (vec![default_key.clone()], after_paren),
        }
    } else {
        (vec![default_key.clone()], after)
    };
    let keys = if keys.is_empty() {
        vec![default_key]
    } else {
        keys
    };
    let rest = rest.trim_start().strip_prefix(':').unwrap_or(rest);
    let mut tokens = BTreeSet::new();
    for (_, ord) in ORDS {
        for op in OPS {
            let tok = format!("{ord}-{op}");
            if contract_token_in(rest, &tok) {
                tokens.insert(tok);
            }
        }
    }
    if contract_token_in(rest, "relaxed-guard") {
        tokens.insert("relaxed-guard".to_string());
    }
    (keys, tokens, true)
}

/// Token match with `-`-aware word boundaries, so `acqrel-rmw` does not
/// match inside `acqrel-rmw-ticket` but does before punctuation.
fn contract_token_in(text: &str, tok: &str) -> bool {
    let boundary = |c: char| !(c.is_alphanumeric() || c == '_' || c == '-');
    let mut from = 0;
    while let Some(p) = text[from..].find(tok) {
        let at = from + p;
        let before_ok = at == 0 || text[..at].chars().next_back().is_some_and(boundary);
        let after = at + tok.len();
        let after_ok = text[after..].chars().next().is_none_or(boundary);
        if before_ok && after_ok {
            return true;
        }
        from = at + tok.len();
    }
    false
}

/// Ordering arguments of one call: `Ordering::X` paths plus bare
/// imported names (`Relaxed`), at paren depth zero of the argument list
/// (orderings inside nested closure bodies belong to the nested calls,
/// which are scanned separately).
fn parse_orderings(args: &str) -> Vec<&'static str> {
    let bytes = args.as_bytes();
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'(' | b'[' | b'{' => depth += 1,
            b')' | b']' | b'}' => depth -= 1,
            c if depth == 0 && scan::is_ident_char(c as char) => {
                let start = i;
                while i < bytes.len() && scan::is_ident_char(bytes[i] as char) {
                    i += 1;
                }
                let word = &args[start..i];
                if let Some((_, ord)) = ORDS.iter().find(|(name, _)| *name == word) {
                    // `Ordering::Relaxed` counts; a bare word only if not
                    // part of some other enum's `Foo::Relaxed` path.
                    let preceded_by_path = start >= 2 && &args[start - 2..start] == "::";
                    let is_ordering_path =
                        preceded_by_path && args[..start - 2].ends_with("Ordering");
                    if is_ordering_path || !preceded_by_path {
                        out.push(*ord);
                    }
                }
                continue;
            }
            _ => {}
        }
        i += 1;
    }
    out
}

fn check_sites(
    f: &SourceFile,
    keymap: &BTreeMap<(&str, &str), Vec<usize>>,
    decls: &[AtomicDecl],
    sites: &mut Vec<CallSite>,
    findings: &mut Vec<Finding>,
) {
    let masked = &f.masked;
    let bytes = masked.as_bytes();
    let impls = scan::impl_blocks(masked);
    let depths = scan::brace_depths(masked);
    for (method, op) in METHODS {
        for off in scan::find_word_all(masked, method) {
            // must be a method call: `.method(`
            if off == 0 || bytes[off - 1] != b'.' {
                continue;
            }
            let Some((args, _)) = scan::call_args(masked, off + method.len()) else {
                continue;
            };
            let orderings = parse_orderings(args);
            if orderings.is_empty() {
                continue; // not an atomic call (or ordering not literal)
            }
            if f.in_test(off) {
                continue;
            }
            let line = f.line_of(off);
            let dot = off - 1;
            let key = match scan::resolve_receiver(masked, dot) {
                Receiver::Ident(name) => Some(name),
                Receiver::SelfValue => {
                    scan::enclosing_impl_type(&impls, off).map(|t| t.to_string())
                }
                Receiver::Opaque => None,
            };
            let resolved = key
                .as_deref()
                .and_then(|k| keymap.get(&(f.crate_name.as_str(), k)));
            let Some(decl_idxs) = resolved else {
                findings.push(Finding {
                    file: f.path.clone(),
                    line,
                    rule: "undeclared-atomic",
                    message: match &key {
                        Some(k) => format!(
                            "`.{method}(..)` on `{k}` which is not a declared atomic in \
                             crate `{}` — add it to the inventory with an `// ordering:` \
                             contract (or an explicit `ordering({k}, ..)` key)",
                            f.crate_name
                        ),
                        None => format!(
                            "`.{method}(..)` with an `Ordering::` argument on an \
                             unresolvable receiver — bind the atomic to a named \
                             field/static so the audit can track it"
                        ),
                    },
                });
                continue;
            };
            let union: BTreeSet<&str> = decl_idxs
                .iter()
                .flat_map(|&i| decls[i].tokens.iter().map(|s| s.as_str()))
                .collect();
            let contract_known = decl_idxs.iter().any(|&i| decls[i].has_contract);
            for ord in &orderings {
                let tok = format!("{ord}-{op}");
                if contract_known && !union.contains(tok.as_str()) {
                    findings.push(Finding {
                        file: f.path.clone(),
                        line,
                        rule: "ordering-violation",
                        message: format!(
                            "`{}.{}(..)` uses `{}` but the contract only allows [{}]",
                            key.as_deref().unwrap_or("?"),
                            method,
                            tok,
                            union.iter().cloned().collect::<Vec<_>>().join(", ")
                        ),
                    });
                }
            }
            // Relaxed load feeding a branch/CAS decision needs an
            // explicit relaxed-guard clause.
            if op == "load"
                && orderings == ["relaxed"]
                && !union.contains("relaxed-guard")
                && contract_known
                && relaxed_guarded(f, &depths, dot)
            {
                findings.push(Finding {
                    file: f.path.clone(),
                    line,
                    rule: "relaxed-guard",
                    message: format!(
                        "Relaxed load of `{}` flows into a branch/CAS decision; declare \
                         `relaxed-guard` in its contract (with the reason it is safe) or \
                         strengthen the ordering",
                        key.as_deref().unwrap_or("?")
                    ),
                });
            }
            sites.push(CallSite {
                crate_name: f.crate_name.clone(),
                file: f.path.clone(),
                line,
                key,
                method: method.to_string(),
                op,
                orderings,
            });
        }
    }
}

/// Does the Relaxed load at `dot` feed a control decision? True when the
/// statement head is a branch/assert, or when the load is `let`-bound
/// and the binding is used in a branch condition, assert, or
/// compare-exchange argument within the enclosing block.
fn relaxed_guarded(f: &SourceFile, depths: &[u32], dot: usize) -> bool {
    let masked = &f.masked;
    let (stmt_start, stmt_end) = scan::statement_span(masked, dot);
    let head = &masked[stmt_start..dot];
    for kw in ["if", "while", "match"] {
        if scan::has_word(head, kw) {
            return true;
        }
    }
    if head.contains("assert") {
        return true;
    }
    let trimmed = head.trim_start();
    let Some(binding) = trimmed.strip_prefix("let ") else {
        return false;
    };
    // binding idents up to the first `=` (not `==`)
    let eq = binding
        .char_indices()
        .find(|&(i, c)| c == '=' && !binding[i + 1..].starts_with('='))
        .map(|(i, _)| i)
        .unwrap_or(binding.len());
    let idents: Vec<&str> = binding[..eq]
        .split(|c: char| !scan::is_ident_char(c))
        .filter(|s| !s.is_empty() && *s != "mut" && *s != "_")
        .collect();
    if idents.is_empty() {
        return false;
    }
    let scope_end = scan::enclosing_block_end(depths, stmt_start.min(depths.len() - 1));
    let region = &masked[stmt_end.min(scope_end)..scope_end];
    for kw in ["if", "while", "match"] {
        for off in scan::find_word_all(region, kw) {
            let cond_end = region[off..]
                .find('{')
                .map(|p| off + p)
                .unwrap_or(region.len());
            let cond = &region[off..cond_end];
            if idents.iter().any(|id| scan::has_word(cond, id)) {
                return true;
            }
        }
    }
    for callee in ["assert", "compare_exchange"] {
        let mut from = 0;
        while let Some(p) = region[from..].find(callee) {
            let at = from + p;
            from = at + callee.len();
            if let Some((args, _)) = scan::call_args(region, from) {
                if idents.iter().any(|id| scan::has_word(args, id)) {
                    return true;
                }
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> SourceFile {
        SourceFile::new("crates/x/src/lib.rs".into(), "x".into(), false, src.into())
    }

    fn run(src: &str) -> AtomicsReport {
        analyze(&[file(src)])
    }

    #[test]
    fn missing_contract_flagged() {
        let r = run("struct S {\n    flag: AtomicBool,\n}\n");
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].rule, "missing-contract");
        assert_eq!(r.findings[0].line, 2);
    }

    #[test]
    fn contract_tokens_parse() {
        let r = run(
            "struct S {\n    // ordering: release-store in install(), acquire-load;\n    \
             // relaxed-load under lock, relaxed-guard (CAS revalidates)\n    head: AtomicU64,\n}\n",
        );
        assert!(r.findings.is_empty(), "{:?}", r.findings);
        let d = &r.decls[0];
        assert!(d.tokens.contains("release-store"));
        assert!(d.tokens.contains("acquire-load"));
        assert!(d.tokens.contains("relaxed-load"));
        assert!(d.tokens.contains("relaxed-guard"));
    }

    #[test]
    fn ordering_violation_flagged() {
        let src = "struct S {\n    // ordering: relaxed-load\n    n: AtomicU64,\n}\n\
                   impl S {\n    fn f(&self) { self.n.store(1, Ordering::SeqCst); }\n}\n";
        let r = run(src);
        assert!(
            r.findings.iter().any(|f| f.rule == "ordering-violation"),
            "{:?}",
            r.findings
        );
    }

    #[test]
    fn conforming_sites_pass() {
        let src = "struct S {\n    // ordering: release-store, acquire-load, acqrel-rmw\n    n: AtomicU64,\n}\n\
                   impl S {\n    fn f(&self) -> u64 {\n        self.n.store(1, Ordering::Release);\n        \
                   self.n.fetch_add(1, Ordering::AcqRel);\n        self.n.load(Ordering::Acquire)\n    }\n}\n";
        let r = run(src);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
        assert_eq!(r.sites.len(), 3);
    }

    #[test]
    fn undeclared_atomic_flagged() {
        let src = "fn f(x: &AtomicBoolAlias) { x.load(Ordering::Acquire); }\n";
        let r = run(src);
        assert!(
            r.findings.iter().any(|f| f.rule == "undeclared-atomic"),
            "{:?}",
            r.findings
        );
    }

    #[test]
    fn relaxed_guard_requires_clause() {
        let bad = "struct S {\n    // ordering: relaxed-load\n    n: AtomicU64,\n}\n\
                   impl S {\n    fn f(&self) { if self.n.load(Ordering::Relaxed) > 0 { work(); } }\n}\n";
        let r = run(bad);
        assert!(
            r.findings.iter().any(|f| f.rule == "relaxed-guard"),
            "{:?}",
            r.findings
        );
        let good = bad.replace("relaxed-load", "relaxed-load, relaxed-guard (probe)");
        assert!(run(&good).findings.is_empty());
    }

    #[test]
    fn let_bound_relaxed_guard_detected() {
        let src = "struct S {\n    // ordering: relaxed-load\n    n: AtomicU64,\n}\n\
                   impl S {\n    fn f(&self) {\n        let v = self.n.load(Ordering::Relaxed);\n        \
                   if v > 3 { work(); }\n    }\n}\n";
        let r = run(src);
        assert!(
            r.findings.iter().any(|f| f.rule == "relaxed-guard"),
            "{:?}",
            r.findings
        );
    }

    #[test]
    fn cas_checks_both_orderings() {
        let src = "struct S {\n    // ordering: acqrel-cas, relaxed-cas\n    n: AtomicU64,\n}\n\
                   impl S {\n    fn f(&self) {\n        let _ = self.n.compare_exchange(0, 1, \
                   Ordering::AcqRel, Ordering::Relaxed);\n    }\n}\n";
        assert!(run(src).findings.is_empty());
        let bad = src.replace("Ordering::AcqRel", "Ordering::SeqCst");
        assert!(run(&bad)
            .findings
            .iter()
            .any(|f| f.rule == "ordering-violation"));
    }

    #[test]
    fn explicit_keys_alias_tuple_struct() {
        let src = "// ordering(slots, Slot): seqcst-load, seqcst-cas\nstruct Slot(AtomicU64);\n\
                   struct Shard {\n    // ordering: relaxed-load\n    occupancy: AtomicUsize,\n}\n\
                   fn f(s: &Shard, slots: &[Slot]) {\n    let _ = slots[0].0.compare_exchange(0, 1, \
                   Ordering::SeqCst, Ordering::SeqCst);\n}\n";
        let r = run(src);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn static_decl_and_macro_fields() {
        let src = "// ordering: relaxed-rmw\nstatic NEXT_ID: AtomicU64 = AtomicU64::new(0);\n\
                   fn f() -> u64 { NEXT_ID.fetch_add(1, Ordering::Relaxed) }\n\
                   macro_rules! counters {\n    ($($name:ident),+) => {\n        struct C {\n            \
                   // ordering: relaxed-load, relaxed-rmw\n            $( $name: AtomicU64, )+\n        }\n        \
                   impl C {\n            fn snap(&self) -> u64 { self.$name.load(Ordering::Relaxed) }\n        }\n    };\n}\n";
        let r = run(src);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
        assert!(r.decls.iter().any(|d| d.keys == ["$name"]));
    }

    #[test]
    fn test_regions_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    static FLAG: AtomicBool = AtomicBool::new(false);\n    \
                   fn f() { FLAG.store(true, Ordering::SeqCst); }\n}\n";
        assert!(run(src).findings.is_empty());
    }
}
