//! `wtf-audit` CLI.
//!
//! ```text
//! wtf-audit [--check] [--inventory PATH] [--dot PATH] [ROOT]
//! ```
//!
//! * `--check` — print findings and exit nonzero if any (the CI gate).
//! * `--inventory PATH` — write the JSON inventory baseline.
//! * `--dot PATH` — write the lock-order graph in DOT.
//! * `ROOT` — tree to audit (default `.`, the workspace root).
//!
//! With no flags, `--check` is implied.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut check = false;
    let mut inventory: Option<PathBuf> = None;
    let mut dot: Option<PathBuf> = None;
    let mut root = PathBuf::from(".");
    let mut args = std::env::args().skip(1);
    let mut any_flag = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => {
                check = true;
                any_flag = true;
            }
            "--inventory" => match args.next() {
                Some(p) => {
                    inventory = Some(PathBuf::from(p));
                    any_flag = true;
                }
                None => return usage("--inventory needs a path"),
            },
            "--dot" => match args.next() {
                Some(p) => {
                    dot = Some(PathBuf::from(p));
                    any_flag = true;
                }
                None => return usage("--dot needs a path"),
            },
            "--help" | "-h" => {
                eprintln!("usage: wtf-audit [--check] [--inventory PATH] [--dot PATH] [ROOT]");
                return ExitCode::SUCCESS;
            }
            other if !other.starts_with('-') => root = PathBuf::from(other),
            other => return usage(&format!("unknown flag {other}")),
        }
    }
    if !any_flag {
        check = true;
    }

    let report = match wtf_audit::audit_tree(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("wtf-audit: {e}");
            return ExitCode::from(2);
        }
    };
    if let Some(path) = inventory {
        if let Err(e) = std::fs::write(&path, report.inventory_json()) {
            eprintln!("wtf-audit: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if let Some(path) = dot {
        if let Err(e) = std::fs::write(&path, report.lock_dot()) {
            eprintln!("wtf-audit: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    let findings = report.findings();
    for f in &findings {
        println!("{f}");
    }
    if check {
        let decls = report.atomics.decls.len();
        let sites = report.atomics.sites.len();
        let classes = report.locks.classes.len();
        let unsafes: usize = report.unsafes.files.iter().map(|u| u.sites).sum();
        eprintln!(
            "wtf-audit: {} atomics, {} call sites, {} lock classes, {} unsafe sites; \
             {} finding(s)",
            decls,
            sites,
            classes,
            unsafes,
            findings.len()
        );
        if !findings.is_empty() {
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("wtf-audit: {msg}");
    eprintln!("usage: wtf-audit [--check] [--inventory PATH] [--dot PATH] [ROOT]");
    ExitCode::from(2)
}
