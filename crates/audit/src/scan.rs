//! Shared scanner plumbing for the audit passes.
//!
//! Same hand-rolled approach as `wtf-lint` (no proc-macro parser is
//! available offline): comments and string/char literals are masked to
//! spaces first so structural scans never match inside them, offsets and
//! line numbers survive masking, and `#[cfg(test)]` / `#[test]` regions
//! are brace-tracked so contracts only bind to runtime code. On top of
//! the lint's machinery this adds the pieces the audit needs: receiver
//! resolution for method calls (`self.slots[i].0.load(..)` → `slots`),
//! `impl` block spans (so `self.0` resolves to the wrapper type), brace
//! depth maps (binding scopes), and comment-block extraction (contract
//! comments live in the *unmasked* text directly above a declaration).
//!
//! `$` counts as an identifier character throughout so `macro_rules!`
//! bodies audit like ordinary code: the `$name: AtomicU64` field in
//! `core/src/stats.rs`'s `counters!` macro and its `self.$name.load(..)`
//! call sites match each other under the key `$name`.

/// One parsed source file plus the derived views every pass needs.
pub struct SourceFile {
    /// Workspace-relative display path.
    pub path: String,
    /// Owning crate short name (`mvstm`, `tl2`, ...) — or the file stem
    /// for loose files (fixtures), so fixture keys never cross-talk.
    pub crate_name: String,
    /// Whole file is test code (under `tests/`, `benches/`, ...).
    pub test_file: bool,
    /// Raw source (contract comments are read from here).
    pub src: String,
    /// Comments and string/char literals blanked, same length as `src`.
    pub masked: String,
    /// Byte offset of each line start.
    pub starts: Vec<usize>,
    /// Per-line flag: inside a `#[cfg(test)]` / `#[test]` region.
    pub test_lines: Vec<bool>,
}

impl SourceFile {
    pub fn new(path: String, crate_name: String, test_file: bool, src: String) -> SourceFile {
        let masked = mask_comments_and_strings(&src);
        let starts = line_starts(&masked);
        let test_lines = test_line_mask(&masked, &starts);
        SourceFile {
            path,
            crate_name,
            test_file,
            src,
            masked,
            starts,
            test_lines,
        }
    }

    /// 1-based line number of a byte offset.
    pub fn line_of(&self, off: usize) -> usize {
        match self.starts.binary_search(&off) {
            Ok(i) => i + 1,
            Err(i) => i,
        }
    }

    /// Is this offset inside test code (test file or `#[cfg(test)]`)?
    pub fn in_test(&self, off: usize) -> bool {
        self.test_file
            || self
                .test_lines
                .get(self.line_of(off) - 1)
                .copied()
                .unwrap_or(false)
    }

    /// Raw text of a 1-based line (without trailing newline).
    pub fn raw_line(&self, line: usize) -> &str {
        let begin = self.starts[line - 1];
        let end = self.starts.get(line).copied().unwrap_or(self.src.len());
        self.src[begin..end].trim_end_matches('\n')
    }

    /// The contiguous comment block directly above `line` (1-based), in
    /// top-to-bottom order, with attribute lines (`#[...]`) transparent —
    /// so a contract sits naturally above `#[repr(align(64))]`.
    pub fn comment_block_above(&self, line: usize) -> Vec<&str> {
        let mut block = Vec::new();
        let mut l = line;
        while l > 1 {
            l -= 1;
            let text = self.raw_line(l).trim();
            if text.starts_with("#[") || text.starts_with("#![") {
                continue;
            }
            if text.starts_with("//") {
                block.push(text);
            } else {
                break;
            }
        }
        block.reverse();
        block
    }
}

/// Replaces the contents of comments and string/char literals with spaces
/// (newlines kept), so offsets and line numbers survive.
///
/// Works byte-wise: a multi-byte character inside a masked region becomes
/// one space *per byte*, so `masked` is always exactly as long as `src`
/// and every offset computed against one indexes the other. (Replaced
/// runs sit between ASCII delimiters, so whole UTF-8 sequences are always
/// replaced together and the result stays valid UTF-8.)
pub fn mask_comments_and_strings(src: &str) -> String {
    let b = src.as_bytes();
    let mut out = b.to_vec();
    let n = b.len();
    let mut i = 0;
    let blank = |out: &mut [u8], from: usize, to: usize| {
        for c in out.iter_mut().take(to).skip(from) {
            if *c != b'\n' {
                *c = b' ';
            }
        }
    };
    while i < n {
        match b[i] {
            b'/' if i + 1 < n && b[i + 1] == b'/' => {
                let start = i;
                while i < n && b[i] != b'\n' {
                    i += 1;
                }
                blank(&mut out, start, i);
            }
            b'/' if i + 1 < n && b[i + 1] == b'*' => {
                let start = i;
                let mut depth = 1;
                i += 2;
                while i < n && depth > 0 {
                    if b[i] == b'/' && i + 1 < n && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < n && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                blank(&mut out, start, i);
            }
            b'"' => {
                let start = i;
                i += 1;
                while i < n {
                    if b[i] == b'\\' {
                        i += 2;
                    } else if b[i] == b'"' {
                        i += 1;
                        break;
                    } else {
                        i += 1;
                    }
                }
                blank(&mut out, start + 1, i.saturating_sub(1).min(n));
            }
            b'r' if i + 1 < n && (b[i + 1] == b'"' || b[i + 1] == b'#') => {
                // raw string r"..." / r#"..."# (only when it starts a
                // token: previous byte must not be identifier-ish)
                if i > 0 && (is_ident_byte(b[i - 1]) || b[i - 1] >= 0x80) {
                    i += 1;
                    continue;
                }
                let start = i;
                let mut j = i + 1;
                let mut hashes = 0;
                while j < n && b[j] == b'#' {
                    hashes += 1;
                    j += 1;
                }
                if j >= n || b[j] != b'"' {
                    i += 1;
                    continue;
                }
                j += 1;
                'raw: while j < n {
                    if b[j] == b'"' {
                        let mut k = 0;
                        while k < hashes && j + 1 + k < n && b[j + 1 + k] == b'#' {
                            k += 1;
                        }
                        if k == hashes {
                            j += 1 + hashes;
                            break 'raw;
                        }
                    }
                    j += 1;
                }
                blank(&mut out, start + 1, j.saturating_sub(1));
                i = j;
            }
            b'\'' => {
                // char literal vs lifetime: a literal closes within a few
                // bytes; a lifetime never closes with `'`.
                if i + 2 < n && b[i + 1] == b'\\' {
                    let mut j = i + 2;
                    while j < n && b[j] != b'\'' && j - i < 12 {
                        j += 1;
                    }
                    if j < n && b[j] == b'\'' {
                        blank(&mut out, i + 1, j);
                        i = j + 1;
                        continue;
                    }
                } else if i + 2 < n && b[i + 2] == b'\'' {
                    // one-byte char literal 'x'
                    blank(&mut out, i + 1, i + 2);
                    i += 3;
                    continue;
                } else if i + 1 < n && b[i + 1] >= 0x80 {
                    // multi-byte char literal '…' (lifetimes are ASCII, so
                    // a non-ASCII byte here can only start a literal)
                    let mut j = i + 1;
                    while j < n && b[j] != b'\'' && j - i < 6 {
                        j += 1;
                    }
                    if j < n && b[j] == b'\'' {
                        blank(&mut out, i + 1, j);
                        i = j + 1;
                        continue;
                    }
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
    String::from_utf8(out).expect("masking only rewrites whole delimited runs to ASCII")
}

pub fn line_starts(s: &str) -> Vec<usize> {
    let mut starts = vec![0usize];
    for (i, c) in s.char_indices() {
        if c == '\n' {
            starts.push(i + 1);
        }
    }
    starts
}

/// Marks every line inside a `#[cfg(test)]` / `#[test]` item as test code
/// (brace-matched; `mod tests;`-style declarations end at the `;`).
fn test_line_mask(masked: &str, starts: &[usize]) -> Vec<bool> {
    let mut mask = vec![false; starts.len()];
    let bytes = masked.as_bytes();
    let mut mark = |from: usize, to: usize| {
        let first = match starts.binary_search(&from) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        let last = match starts.binary_search(&to) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        for m in mask.iter_mut().take(last + 1).skip(first) {
            *m = true;
        }
    };
    for attr in ["#[cfg(test)]", "#[test]"] {
        for off in find_all(masked, attr) {
            let mut i = off + attr.len();
            let mut depth = 0usize;
            let mut seen_brace = false;
            while i < bytes.len() {
                match bytes[i] {
                    b'{' => {
                        depth += 1;
                        seen_brace = true;
                    }
                    b'}' => {
                        depth = depth.saturating_sub(1);
                        if seen_brace && depth == 0 {
                            break;
                        }
                    }
                    b';' if !seen_brace => break,
                    _ => {}
                }
                i += 1;
            }
            mark(off, i.min(bytes.len().saturating_sub(1)));
        }
    }
    mask
}

pub fn find_all(haystack: &str, needle: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(p) = haystack[from..].find(needle) {
        out.push(from + p);
        from += p + needle.len();
    }
    out
}

pub fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_' || c == '$'
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b == b'$'
}

/// Word-boundary occurrences of `word` (identifier boundaries, `$`
/// counted as an identifier char so macro metavariables stay whole).
pub fn find_word_all(haystack: &str, word: &str) -> Vec<usize> {
    let bytes = haystack.as_bytes();
    find_all(haystack, word)
        .into_iter()
        .filter(|&at| {
            let before_ok = at == 0 || !is_ident_byte(bytes[at - 1]);
            let after = at + word.len();
            let after_ok = after >= bytes.len() || !is_ident_byte(bytes[after]);
            before_ok && after_ok
        })
        .collect()
}

pub fn has_word(haystack: &str, word: &str) -> bool {
    !find_word_all(haystack, word).is_empty()
}

/// The parenthesized argument text starting at the first `(` at/after
/// `from` (paren-matched), if any; returns `(args, end_offset)` where
/// `end_offset` is just past the closing paren.
pub fn call_args(masked: &str, from: usize) -> Option<(&str, usize)> {
    let bytes = masked.as_bytes();
    let open = (from..masked.len()).find(|&i| bytes[i] == b'(')?;
    if masked[from..open].trim() != "" {
        return None;
    }
    let mut depth = 0usize;
    for i in open..bytes.len() {
        match bytes[i] {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return Some((&masked[open + 1..i], i + 1));
                }
            }
            _ => {}
        }
    }
    None
}

/// Brace depth *before* each byte (number of unclosed `{`).
pub fn brace_depths(masked: &str) -> Vec<u32> {
    let bytes = masked.as_bytes();
    let mut depths = Vec::with_capacity(bytes.len() + 1);
    let mut d: u32 = 0;
    for &b in bytes {
        depths.push(d);
        match b {
            b'{' => d += 1,
            b'}' => d = d.saturating_sub(1),
            _ => {}
        }
    }
    depths.push(d);
    depths
}

/// What a method call's receiver resolves to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Receiver {
    /// Nearest field/binding/static identifier (`self.slots[i].0.load`
    /// → `slots`; `NEXT_THREAD.fetch_add` → `NEXT_THREAD`).
    Ident(String),
    /// The call is directly on `self` (via tuple index, e.g.
    /// `self.0.load` in a newtype impl) — resolve via the `impl` type.
    SelfValue,
    /// Call result, parenthesized expression, or otherwise untraceable.
    Opaque,
}

/// Resolves the receiver of a `.method(...)` call: scans left from the
/// `.` at `dot`, skipping tuple indices (`.0`) and index expressions
/// (`[...]`), to the nearest path segment identifier.
pub fn resolve_receiver(masked: &str, dot: usize) -> Receiver {
    let b = masked.as_bytes();
    let mut i = dot; // points at '.'
    loop {
        while i > 0 && (b[i - 1] as char).is_whitespace() {
            i -= 1;
        }
        if i == 0 {
            return Receiver::Opaque;
        }
        match b[i - 1] {
            b']' => {
                // skip a balanced [...] index expression
                let mut depth = 0i32;
                let mut k = i - 1;
                loop {
                    match b[k] {
                        b']' => depth += 1,
                        b'[' => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    if k == 0 {
                        return Receiver::Opaque;
                    }
                    k -= 1;
                }
                i = k;
            }
            b')' | b'>' => return Receiver::Opaque,
            c if is_ident_byte(c) => {
                let mut k = i;
                while k > 0 && is_ident_byte(b[k - 1]) {
                    k -= 1;
                }
                let ident = &masked[k..i];
                if ident.bytes().all(|c| c.is_ascii_digit()) {
                    // tuple index: continue through the preceding '.'
                    let mut m = k;
                    while m > 0 && (b[m - 1] as char).is_whitespace() {
                        m -= 1;
                    }
                    if m > 0 && b[m - 1] == b'.' {
                        i = m - 1;
                        continue;
                    }
                    return Receiver::Opaque;
                }
                if ident == "self" {
                    return Receiver::SelfValue;
                }
                // deref/star prefixes don't change the segment name
                return Receiver::Ident(ident.to_string());
            }
            _ => return Receiver::Opaque,
        }
    }
}

/// `impl` block spans: `(start, end, type_name)`, where `type_name` is
/// the last path segment of the implemented type (generics stripped).
pub fn impl_blocks(masked: &str) -> Vec<(usize, usize, String)> {
    let bytes = masked.as_bytes();
    let mut out = Vec::new();
    for off in find_word_all(masked, "impl") {
        // header runs to the block's `{` (generics contain no braces)
        let Some(open_rel) = masked[off..].find('{') else {
            continue;
        };
        let open = off + open_rel;
        let header = &masked[off + "impl".len()..open];
        let ty_part = match header.rfind(" for ") {
            Some(p) => &header[p + 5..],
            None => header,
        };
        // strip generics and `where` clauses, take the last path segment
        let ty_part = ty_part.split('<').next().unwrap_or(ty_part);
        let ty_part = ty_part.split("where").next().unwrap_or(ty_part);
        let name = ty_part
            .split("::")
            .last()
            .unwrap_or("")
            .trim()
            .trim_start_matches('&')
            .trim();
        if name.is_empty() || !name.chars().all(is_ident_char) {
            continue;
        }
        // brace-match to the block end
        let mut depth = 0usize;
        let mut end = bytes.len();
        for (j, &c) in bytes.iter().enumerate().skip(open) {
            match c {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        end = j + 1;
                        break;
                    }
                }
                _ => {}
            }
        }
        out.push((off, end, name.to_string()));
    }
    out
}

/// The innermost `impl` type containing `off`, if any.
pub fn enclosing_impl_type(impls: &[(usize, usize, String)], off: usize) -> Option<&str> {
    impls
        .iter()
        .filter(|(s, e, _)| *s <= off && off < *e)
        .min_by_key(|(s, e, _)| e - s)
        .map(|(_, _, n)| n.as_str())
}

/// Statement bounds around `off`: from just after the previous `;`, `{`
/// or `}` to just before the next `;` or `{` (shallow; good enough to
/// classify statement heads and trailing `.push(..)` shapes).
pub fn statement_span(masked: &str, off: usize) -> (usize, usize) {
    let bytes = masked.as_bytes();
    let start = bytes[..off]
        .iter()
        .rposition(|&c| c == b';' || c == b'{' || c == b'}')
        .map(|p| p + 1)
        .unwrap_or(0);
    let mut end = bytes.len();
    let mut depth = 0usize;
    for (j, &c) in bytes.iter().enumerate().skip(off) {
        match c {
            b'(' | b'[' => depth += 1,
            b')' | b']' => depth = depth.saturating_sub(1),
            b';' | b'{' if depth == 0 => {
                end = j;
                break;
            }
            _ => {}
        }
    }
    (start, end)
}

/// End offset of the innermost block containing `off`: scans forward to
/// the first point where brace depth drops below `depths[off]`.
pub fn enclosing_block_end(depths: &[u32], off: usize) -> usize {
    let base = depths[off];
    for (j, &d) in depths.iter().enumerate().skip(off + 1) {
        if d < base {
            return j;
        }
    }
    depths.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn receiver_resolution() {
        let m = "self.slots[shard.idx].0.load(x)";
        let dot = m.rfind(".load").unwrap();
        assert_eq!(
            resolve_receiver(m, dot),
            Receiver::Ident("slots".to_string())
        );
        let m = "self.0.fetch_add(1, o)";
        assert_eq!(
            resolve_receiver(m, m.find(".fetch_add").unwrap()),
            Receiver::SelfValue
        );
        let m = "NEXT_THREAD.fetch_add(1, o)";
        assert_eq!(
            resolve_receiver(m, m.find(".fetch_add").unwrap()),
            Receiver::Ident("NEXT_THREAD".to_string())
        );
        let m = "(*node).next.load(o)";
        assert_eq!(
            resolve_receiver(m, m.find(".load").unwrap()),
            Receiver::Ident("next".to_string())
        );
        let m = "self.$name.load(o)";
        assert_eq!(
            resolve_receiver(m, m.find(".load").unwrap()),
            Receiver::Ident("$name".to_string())
        );
        let m = "make().load(o)";
        assert_eq!(
            resolve_receiver(m, m.find(".load").unwrap()),
            Receiver::Opaque
        );
    }

    #[test]
    fn impl_block_types() {
        let src =
            "impl Counter { fn a(&self) {} }\nimpl fmt::Display for ActorSource { fn b() {} }\n";
        let impls = impl_blocks(src);
        assert_eq!(impls.len(), 2);
        assert_eq!(impls[0].2, "Counter");
        assert_eq!(impls[1].2, "ActorSource");
        let off = src.find("fn a").unwrap();
        assert_eq!(enclosing_impl_type(&impls, off), Some("Counter"));
    }

    #[test]
    fn masking_preserves_byte_length_with_multibyte_chars() {
        // Em-dashes and other multi-byte chars inside comments/strings
        // must not shift offsets: masked and src index each other.
        let src = "// a — dash\nlet s = \"τ —\";\nlet c = '—';\nfn f<'a>(x: &'a u8) {}\n";
        let masked = mask_comments_and_strings(src);
        assert_eq!(masked.len(), src.len());
        assert_eq!(masked.matches('\n').count(), src.matches('\n').count());
        assert!(masked.contains("fn f<'a>(x: &'a u8)"));
        let f = SourceFile::new(
            "x.rs".into(),
            "x".into(),
            false,
            "// prose — prose\n// ordering: relaxed-load\nstatic A: AtomicU64 = AtomicU64::new(0);\n"
                .into(),
        );
        assert_eq!(
            f.comment_block_above(3),
            vec!["// prose — prose", "// ordering: relaxed-load"]
        );
    }

    #[test]
    fn comment_block_skips_attributes() {
        let f = SourceFile::new(
            "x.rs".into(),
            "x".into(),
            false,
            "// ordering: relaxed-load\n#[repr(align(64))]\nstruct S(AtomicU64);\n".into(),
        );
        let block = f.comment_block_above(3);
        assert_eq!(block, vec!["// ordering: relaxed-load"]);
    }
}
