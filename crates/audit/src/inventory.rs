//! Inventory assembly + deterministic pretty-JSON rendering.
//!
//! The inventory is the checked-in CI baseline (`results/
//! audit_inventory.json`): one entry per `(crate, key)` atomic with its
//! contract tokens and per-op ordering *counts* across the workspace,
//! the lock-order classes/edges, and per-file unsafe accounting. Line
//! numbers are deliberately omitted so unrelated edits never churn the
//! baseline — but adding, removing, or re-ordering any atomic call site
//! shifts the counts and shows up in the CI diff.

use std::collections::BTreeMap;

use crate::atomics::AtomicsReport;
use crate::lockorder::LockReport;
use crate::unsafe_audit::UnsafeReport;

/// Renders the full inventory as deterministic, diff-friendly JSON.
pub fn render(atomics: &AtomicsReport, locks: &LockReport, unsafes: &UnsafeReport) -> String {
    // merge declarations by (crate, key)
    #[derive(Default)]
    struct Entry {
        types: BTreeMap<String, ()>,
        files: BTreeMap<String, ()>,
        contract: BTreeMap<String, ()>,
        // op -> ordering -> count
        sites: BTreeMap<&'static str, BTreeMap<&'static str, u64>>,
    }
    let mut entries: BTreeMap<(String, String), Entry> = BTreeMap::new();
    for d in &atomics.decls {
        for k in &d.keys {
            let e = entries
                .entry((d.crate_name.clone(), k.clone()))
                .or_default();
            e.types.insert(d.ty.clone(), ());
            e.files.insert(d.file.clone(), ());
            for t in &d.tokens {
                e.contract.insert(t.clone(), ());
            }
        }
    }
    for s in &atomics.sites {
        let Some(key) = &s.key else { continue };
        let Some(e) = entries.get_mut(&(s.crate_name.clone(), key.clone())) else {
            continue;
        };
        for ord in &s.orderings {
            *e.sites.entry(s.op).or_default().entry(ord).or_insert(0) += 1;
        }
    }

    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"wtf-audit-inventory/v1\",\n  \"atomics\": [\n");
    let n = entries.len();
    for (i, ((krate, key), e)) in entries.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"crate\": {},\n", quote(krate)));
        out.push_str(&format!("      \"key\": {},\n", quote(key)));
        out.push_str(&format!(
            "      \"types\": [{}],\n",
            e.types
                .keys()
                .map(|t| quote(t))
                .collect::<Vec<_>>()
                .join(", ")
        ));
        out.push_str(&format!(
            "      \"files\": [{}],\n",
            e.files
                .keys()
                .map(|f| quote(f))
                .collect::<Vec<_>>()
                .join(", ")
        ));
        out.push_str(&format!(
            "      \"contract\": [{}],\n",
            e.contract
                .keys()
                .map(|t| quote(t))
                .collect::<Vec<_>>()
                .join(", ")
        ));
        out.push_str("      \"sites\": {");
        let mut first_op = true;
        for (op, ords) in &e.sites {
            if !first_op {
                out.push_str(", ");
            }
            first_op = false;
            out.push_str(&format!("{}: {{", quote(op)));
            let mut first_ord = true;
            for (ord, count) in ords {
                if !first_ord {
                    out.push_str(", ");
                }
                first_ord = false;
                out.push_str(&format!("{}: {}", quote(ord), count));
            }
            out.push('}');
        }
        out.push_str("}\n");
        out.push_str(if i + 1 == n { "    }\n" } else { "    },\n" });
    }
    out.push_str("  ],\n  \"locks\": {\n    \"classes\": [\n");
    let n = locks.classes.len();
    for (i, c) in locks.classes.iter().enumerate() {
        out.push_str(&format!(
            "      {{\"crate\": {}, \"class\": {}, \"key\": {}, \"file\": {}, \
             \"mask_ordered\": {}}}{}\n",
            quote(&c.crate_name),
            quote(&c.class),
            quote(&c.key),
            quote(&c.file),
            c.mask_ordered,
            if i + 1 == n { "" } else { "," }
        ));
    }
    out.push_str("    ],\n    \"edges\": [\n");
    let n = locks.edges.len();
    for (i, e) in locks.edges.iter().enumerate() {
        out.push_str(&format!(
            "      {{\"from\": {}, \"to\": {}, \"site\": {}}}{}\n",
            quote(&e.from),
            quote(&e.to),
            quote(&e.site),
            if i + 1 == n { "" } else { "," }
        ));
    }
    out.push_str("    ],\n    \"mask_sources\": [");
    out.push_str(
        &locks
            .mask_sources
            .iter()
            .map(|s| quote(s))
            .collect::<Vec<_>>()
            .join(", "),
    );
    out.push_str("]\n  },\n  \"unsafe\": [\n");
    let n = unsafes.files.len();
    for (i, u) in unsafes.files.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"file\": {}, \"sites\": {}, \"refs\": [{}]}}{}\n",
            quote(&u.file),
            u.sites,
            u.refs
                .iter()
                .map(|r| quote(r))
                .collect::<Vec<_>>()
                .join(", "),
            if i + 1 == n { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::SourceFile;

    #[test]
    fn render_is_deterministic_and_counts_sites() {
        let src = "struct S {\n    // ordering: release-store, acquire-load\n    head: AtomicU64,\n}\n\
                   impl S {\n    fn f(&self) -> u64 {\n        self.head.store(1, Ordering::Release);\n        \
                   self.head.load(Ordering::Acquire)\n    }\n}\n";
        let files = vec![SourceFile::new(
            "crates/x/src/lib.rs".into(),
            "x".into(),
            false,
            src.into(),
        )];
        let atomics = crate::atomics::analyze(&files);
        let locks = crate::lockorder::analyze(&files);
        let unsafes = crate::unsafe_audit::analyze(&files, &Default::default());
        let a = render(&atomics, &locks, &unsafes);
        let b = render(&atomics, &locks, &unsafes);
        assert_eq!(a, b);
        assert!(a.contains("\"key\": \"head\""));
        assert!(a.contains("\"load\": {\"acquire\": 1}"));
        assert!(a.contains("\"store\": {\"release\": 1}"));
    }
}
