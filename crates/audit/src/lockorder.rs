//! Static lock-order graph for the striped commit paths.
//!
//! Scope: the lock-holding runtime crates (`mvstm`, `tl2`). Every
//! `Mutex`/`RwLock` struct field there must carry a
//! `// lock-order: <class>` annotation naming its lock class; the pass
//! then tracks `.lock()` / `.read()` / `.write()` acquisition sites,
//! guard lifetimes (temporaries die with their statement, `let`-bound
//! guards with their block or an explicit `drop(g)`, guards pushed into
//! a collection live to the end of the function), and intra-crate calls
//! (a call made while holding class A to a function that acquires class
//! B adds the edge A → B; functions returning a `*Guard` transfer their
//! acquisitions to the caller's binding). The resulting class graph is
//! emitted as DOT/JSON and must be acyclic — cycle detection reuses the
//! `fsg` polygraph cycle finder.
//!
//! Multi-lock discipline: acquiring the *same* class repeatedly in a
//! loop with the guards outliving the iteration (the commit path's
//! stripe-mask walk) is only accepted when the loop is provably
//! index-sorted — it walks an ascending bitmask via `trailing_zeros` +
//! `mask &= mask - 1` — and at most one function per (crate, class) may
//! contain such a walk, so there is a single source of the ordering
//! mask (`unsorted-multi-lock` / `multiple-mask-sources` otherwise).

use std::collections::{BTreeMap, BTreeSet};

use crate::scan::{self, Receiver, SourceFile};
use crate::Finding;

/// One classified lock field.
#[derive(Debug, Clone)]
pub struct LockClass {
    pub crate_name: String,
    /// Field name call sites resolve to.
    pub key: String,
    /// Declared class (`stripe`, `registry-overflow`, ...).
    pub class: String,
    pub file: String,
    pub line: usize,
    /// Acquired under the sorted bitmask walk somewhere.
    pub mask_ordered: bool,
}

/// One ordered acquisition edge: `from` held while `to` is acquired.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct LockEdge {
    /// `crate/class` labels.
    pub from: String,
    pub to: String,
    /// Example site (file only, so line churn never moves the baseline).
    pub site: String,
}

#[derive(Debug, Default)]
pub struct LockReport {
    pub classes: Vec<LockClass>,
    pub edges: Vec<LockEdge>,
    /// Functions containing a sorted mask walk, as `crate::fn (class)`.
    pub mask_sources: Vec<String>,
    pub findings: Vec<Finding>,
}

struct FnDef {
    name: String,
    file_idx: usize,
    body_start: usize,
    body_end: usize,
    returns_guard: bool,
}

#[derive(Clone)]
struct Acquisition {
    off: usize,
    classes: Vec<String>, // >1 when a guard-returning call transfers them
    binding: Binding,
    in_sorted_loop: bool,
    in_loop: bool,
}

#[derive(Clone, PartialEq)]
enum Binding {
    Temporary,
    Let { ident: String, depth: u32 },
    Pushed,
}

/// Analyzes lock ordering across the given files (already filtered to
/// the lock-audited crates by the caller).
pub fn analyze(files: &[SourceFile]) -> LockReport {
    let mut report = LockReport::default();
    let mut crates: BTreeSet<&str> = BTreeSet::new();
    for f in files {
        crates.insert(&f.crate_name);
    }
    for krate in crates {
        analyze_crate(krate, files, &mut report);
    }
    report.edges.sort();
    report
        .edges
        .dedup_by(|a, b| a.from == b.from && a.to == b.to);
    // Cycle detection over distinct classes (mask-ordered self-edges are
    // an ordered discipline, not a cycle).
    let labels: Vec<String> = report
        .classes
        .iter()
        .map(|c| format!("{}/{}", c.crate_name, c.class))
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect();
    let index: BTreeMap<&str, usize> = labels
        .iter()
        .enumerate()
        .map(|(i, l)| (l.as_str(), i))
        .collect();
    let edge_idx: Vec<(usize, usize)> = report
        .edges
        .iter()
        .filter(|e| e.from != e.to)
        .filter_map(|e| Some((*index.get(e.from.as_str())?, *index.get(e.to.as_str())?)))
        .collect();
    if let Some(cycle) = wtf_fsg::find_cycle_in(labels.len(), &edge_idx) {
        let path: Vec<&str> = cycle
            .iter()
            .map(|&(a, _)| labels[a].as_str())
            .chain(cycle.last().map(|&(_, b)| labels[b].as_str()))
            .collect();
        report.findings.push(Finding {
            file: report
                .edges
                .first()
                .map(|e| e.site.clone())
                .unwrap_or_default(),
            line: 0,
            rule: "lock-cycle",
            message: format!("lock-order graph has a cycle: {}", path.join(" -> ")),
        });
    }
    report
        .findings
        .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    report
}

fn analyze_crate(krate: &str, files: &[SourceFile], report: &mut LockReport) {
    let file_idxs: Vec<usize> = files
        .iter()
        .enumerate()
        .filter(|(_, f)| f.crate_name == krate && !f.test_file)
        .map(|(i, _)| i)
        .collect();
    // 1. lock classes from Mutex/RwLock struct fields
    let mut key_to_class: BTreeMap<String, String> = BTreeMap::new();
    let mut class_decls: Vec<LockClass> = Vec::new();
    for &fi in &file_idxs {
        collect_classes(&files[fi], &mut key_to_class, &mut class_decls, report);
    }
    // 2. function definitions + their local acquisition events
    let mut fns: Vec<FnDef> = Vec::new();
    for &fi in &file_idxs {
        collect_fns(&files[fi], fi, &mut fns);
    }
    let mut local_events: Vec<Vec<Acquisition>> = Vec::with_capacity(fns.len());
    for d in &fns {
        let f = &files[d.file_idx];
        local_events.push(collect_acquisitions(
            f,
            d,
            &key_to_class,
            &mut class_decls,
            report,
        ));
    }
    // 3. fixpoint: classes each function may acquire (incl. callees)
    let name_to_fns: BTreeMap<&str, Vec<usize>> = {
        let mut m: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (i, d) in fns.iter().enumerate() {
            m.entry(d.name.as_str()).or_default().push(i);
        }
        m
    };
    let mut acquires: Vec<BTreeSet<String>> = local_events
        .iter()
        .map(|evs| evs.iter().flat_map(|e| e.classes.clone()).collect())
        .collect();
    let call_sites: Vec<Vec<(usize, Vec<usize>)>> = fns
        .iter()
        .map(|d| collect_calls(&files[d.file_idx], d, &name_to_fns))
        .collect();
    for _ in 0..fns.len().min(32) {
        let mut changed = false;
        for i in 0..fns.len() {
            for (_, callees) in &call_sites[i] {
                for &c in callees {
                    let extra: Vec<String> = acquires[c]
                        .iter()
                        .filter(|x| !acquires[i].contains(*x))
                        .cloned()
                        .collect();
                    if !extra.is_empty() {
                        changed = true;
                        acquires[i].extend(extra);
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    // 4. per-function walk: held set → edges
    for (i, d) in fns.iter().enumerate() {
        let f = &files[d.file_idx];
        let depths = scan::brace_depths(&f.masked);
        // merge local acquisitions and calls into one ordered stream
        #[derive(Clone)]
        enum Ev {
            Acq(Acquisition),
            Call { off: usize, callees: Vec<usize> },
        }
        let mut evs: Vec<Ev> = local_events[i].iter().cloned().map(Ev::Acq).collect();
        for (off, callees) in &call_sites[i] {
            evs.push(Ev::Call {
                off: *off,
                callees: callees.clone(),
            });
        }
        evs.sort_by_key(|e| match e {
            Ev::Acq(a) => a.off,
            Ev::Call { off, .. } => *off,
        });
        struct Held {
            class: String,
            binding: Binding,
            off: usize,
        }
        let mut held: Vec<Held> = Vec::new();
        for ev in evs {
            let ev_off = match &ev {
                Ev::Acq(a) => a.off,
                Ev::Call { off, .. } => *off,
            };
            // evict dead guards: block ended below the binding depth, or
            // an explicit drop(ident) appeared since
            held.retain(|h| match &h.binding {
                Binding::Temporary => {
                    let (_, stmt_end) = scan::statement_span(&f.masked, h.off);
                    ev_off <= stmt_end
                }
                Binding::Let { ident, depth } => {
                    let alive_scope =
                        (h.off..ev_off.min(depths.len())).all(|p| depths[p] >= *depth);
                    let dropped = scan::find_all(&f.masked[h.off..ev_off], "drop")
                        .into_iter()
                        .any(|p| {
                            let at = h.off + p + 4;
                            scan::call_args(&f.masked, at)
                                .is_some_and(|(args, _)| args.trim() == ident)
                        });
                    alive_scope && !dropped
                }
                Binding::Pushed => true, // collection assumed live to fn end
            });
            match ev {
                Ev::Acq(a) => {
                    for new_class in &a.classes {
                        for h in &held {
                            if &h.class == new_class {
                                // same class re-acquired while held: only
                                // the sorted mask walk may do this
                                if !a.in_sorted_loop {
                                    report.findings.push(Finding {
                                        file: f.path.clone(),
                                        line: f.line_of(a.off),
                                        rule: "unsorted-multi-lock",
                                        message: format!(
                                            "class `{krate}/{new_class}` re-acquired while \
                                             already held outside a sorted bitmask walk"
                                        ),
                                    });
                                }
                            } else {
                                report.edges.push(LockEdge {
                                    from: format!("{krate}/{}", h.class),
                                    to: format!("{krate}/{new_class}"),
                                    site: f.path.clone(),
                                });
                            }
                        }
                    }
                    // accumulating same-class acquisition inside a loop
                    // (guards outlive the iteration) needs the idiom even
                    // on its first event
                    if a.in_loop && a.binding == Binding::Pushed && !a.in_sorted_loop {
                        report.findings.push(Finding {
                            file: f.path.clone(),
                            line: f.line_of(a.off),
                            rule: "unsorted-multi-lock",
                            message: format!(
                                "loop accumulates `{krate}/{}` guards without the sorted \
                                 bitmask idiom (trailing_zeros + `mask &= mask - 1`)",
                                a.classes.join(",")
                            ),
                        });
                    }
                    if a.in_sorted_loop {
                        for c in &a.classes {
                            report
                                .mask_sources
                                .push(format!("{krate}::{} ({c})", d.name));
                            for cd in class_decls.iter_mut() {
                                if &cd.class == c {
                                    cd.mask_ordered = true;
                                }
                            }
                        }
                    }
                    for c in a.classes {
                        held.push(Held {
                            class: c,
                            binding: a.binding.clone(),
                            off: a.off,
                        });
                    }
                }
                Ev::Call { off, callees } => {
                    let stmt = scan::statement_span(&f.masked, off);
                    let binding = classify_binding(f, stmt, off, &depths);
                    for c in callees {
                        if fns[c].returns_guard {
                            // transfers its acquisitions to our binding
                            for cls in acquires[c].iter() {
                                for h in &held {
                                    if &h.class != cls {
                                        report.edges.push(LockEdge {
                                            from: format!("{krate}/{}", h.class),
                                            to: format!("{krate}/{cls}"),
                                            site: f.path.clone(),
                                        });
                                    }
                                }
                            }
                            for cls in acquires[c].iter() {
                                held.push(Held {
                                    class: cls.clone(),
                                    binding: binding.clone(),
                                    off,
                                });
                            }
                        } else {
                            // transient: callee acquires and releases
                            for cls in acquires[c].iter() {
                                for h in &held {
                                    if &h.class != cls {
                                        report.edges.push(LockEdge {
                                            from: format!("{krate}/{}", h.class),
                                            to: format!("{krate}/{cls}"),
                                            site: f.path.clone(),
                                        });
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    report.mask_sources.sort();
    report.mask_sources.dedup();
    // single source of the ordering mask, per (crate, class)
    let mut per_class: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for s in &report.mask_sources {
        if let Some((func, class)) = s.rsplit_once(" (") {
            if func.starts_with(&format!("{krate}::")) {
                per_class
                    .entry(class.trim_end_matches(')').to_string())
                    .or_default()
                    .insert(func.to_string());
            }
        }
    }
    for (class, sources) in per_class {
        if sources.len() > 1 {
            report.findings.push(Finding {
                file: class_decls
                    .iter()
                    .find(|c| c.class == class)
                    .map(|c| c.file.clone())
                    .unwrap_or_default(),
                line: 0,
                rule: "multiple-mask-sources",
                message: format!(
                    "class `{krate}/{class}` has {} sorted-mask walk sites ({}); the \
                     ordering mask must have a single source",
                    sources.len(),
                    sources.into_iter().collect::<Vec<_>>().join(", ")
                ),
            });
        }
    }
    report.classes.append(&mut class_decls);
}

fn collect_classes(
    f: &SourceFile,
    key_to_class: &mut BTreeMap<String, String>,
    class_decls: &mut Vec<LockClass>,
    report: &mut LockReport,
) {
    for needle in ["Mutex<", "RwLock<"] {
        for off in scan::find_all(&f.masked, needle) {
            if f.in_test(off) {
                continue;
            }
            // only struct fields / statics shaped `name: Mutex<..>` —
            // walking back over any `path::segments` before the type
            let mut before = f.masked[..off].trim_end();
            loop {
                if before.ends_with("::") {
                    // path segment (`parking_lot::RwLock`): skip it
                    let p = before[..before.len() - 2].trim_end();
                    let seg_start = p
                        .char_indices()
                        .rev()
                        .take_while(|(_, c)| scan::is_ident_char(*c))
                        .last()
                        .map(|(i, _)| i);
                    let Some(seg_start) = seg_start else { break };
                    before = p[..seg_start].trim_end();
                } else {
                    break;
                }
            }
            if !before.ends_with(':') {
                continue;
            }
            let name_part = before.trim_end_matches(':').trim_end();
            let name_start = name_part
                .char_indices()
                .rev()
                .take_while(|(_, c)| scan::is_ident_char(*c))
                .last()
                .map(|(i, _)| i);
            let Some(name_start) = name_start else {
                continue;
            };
            let key = name_part[name_start..].to_string();
            if key.is_empty() || key == "Option" {
                continue;
            }
            let line = f.line_of(off);
            let block = f.comment_block_above(line);
            let class = block.iter().find_map(|l| {
                let t = l.trim_start_matches('/').trim_start_matches('!').trim();
                t.strip_prefix("lock-order:").map(|c| {
                    c.trim()
                        .chars()
                        .take_while(|&ch| scan::is_ident_char(ch) || ch == '-')
                        .collect::<String>()
                })
            });
            let Some(class) = class.filter(|c| !c.is_empty()) else {
                report.findings.push(Finding {
                    file: f.path.clone(),
                    line,
                    rule: "lock-unclassified",
                    message: format!(
                        "lock field `{key}` has no `// lock-order: <class>` annotation"
                    ),
                });
                continue;
            };
            if let Some(prev) = key_to_class.get(&key) {
                if prev != &class {
                    report.findings.push(Finding {
                        file: f.path.clone(),
                        line,
                        rule: "lock-key-collision",
                        message: format!(
                            "lock field key `{key}` maps to classes `{prev}` and `{class}`; \
                             rename one field so acquisition sites resolve unambiguously"
                        ),
                    });
                    continue;
                }
            }
            key_to_class.insert(key.clone(), class.clone());
            class_decls.push(LockClass {
                crate_name: f.crate_name.clone(),
                key,
                class,
                file: f.path.clone(),
                line,
                mask_ordered: false,
            });
        }
    }
}

fn collect_fns(f: &SourceFile, file_idx: usize, fns: &mut Vec<FnDef>) {
    let masked = &f.masked;
    let bytes = masked.as_bytes();
    for off in scan::find_word_all(masked, "fn") {
        if f.in_test(off) {
            continue;
        }
        let mut i = off + 2;
        while i < bytes.len() && (bytes[i] as char).is_whitespace() {
            i += 1;
        }
        let name_start = i;
        while i < bytes.len() && scan::is_ident_char(bytes[i] as char) {
            i += 1;
        }
        let name = masked[name_start..i].to_string();
        if name.is_empty() {
            continue;
        }
        // signature args, then body brace (trait decls end with `;`)
        let Some((_, sig_end)) = scan::call_args(
            masked,
            masked[i..].find('(').map(|p| i + p).unwrap_or(masked.len()),
        ) else {
            continue;
        };
        let ret_and_where = &masked[sig_end..];
        let body_rel = ret_and_where.find('{');
        let semi_rel = ret_and_where.find(';');
        let body_rel = match (body_rel, semi_rel) {
            (Some(b), Some(s)) if s < b => continue,
            (Some(b), _) => b,
            (None, _) => continue,
        };
        let returns_guard = {
            let ret = &ret_and_where[..body_rel];
            ret.contains("Guard") || ret.contains("Hold")
        };
        let body_start = sig_end + body_rel;
        let mut depth = 0usize;
        let mut body_end = bytes.len();
        for (j, &c) in bytes.iter().enumerate().skip(body_start) {
            match c {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        body_end = j + 1;
                        break;
                    }
                }
                _ => {}
            }
        }
        fns.push(FnDef {
            name,
            file_idx,
            body_start,
            body_end,
            returns_guard,
        });
    }
}

/// Loop spans (keyword offset → body end) for sorted-walk checks.
fn loop_spans(masked: &str, from: usize, to: usize) -> Vec<(usize, usize)> {
    let bytes = masked.as_bytes();
    let mut out = Vec::new();
    for kw in ["while", "for", "loop"] {
        for off in scan::find_word_all(&masked[from..to], kw) {
            let off = from + off;
            let Some(body_rel) = masked[off..to].find('{') else {
                continue;
            };
            let body_start = off + body_rel;
            let mut depth = 0usize;
            let mut end = to;
            for (j, &c) in bytes
                .iter()
                .enumerate()
                .skip(body_start)
                .take(to - body_start)
            {
                match c {
                    b'{' => depth += 1,
                    b'}' => {
                        depth -= 1;
                        if depth == 0 {
                            end = j + 1;
                            break;
                        }
                    }
                    _ => {}
                }
            }
            out.push((off, end));
        }
    }
    out
}

fn classify_binding(f: &SourceFile, stmt: (usize, usize), _off: usize, depths: &[u32]) -> Binding {
    let stmt_text = &f.masked[stmt.0..stmt.1];
    if stmt_text.contains(".push(") || stmt_text.contains(".insert(") {
        return Binding::Pushed;
    }
    let trimmed = stmt_text.trim_start();
    if let Some(binding) = trimmed.strip_prefix("let ") {
        let eq = binding.find('=').unwrap_or(binding.len());
        let idents: Vec<&str> = binding[..eq]
            .split(|c: char| !scan::is_ident_char(c))
            .filter(|s| !s.is_empty() && *s != "mut")
            .collect();
        if let Some(ident) = idents.first() {
            return Binding::Let {
                ident: ident.to_string(),
                depth: depths[stmt.0.min(depths.len() - 1)],
            };
        }
    }
    Binding::Temporary
}

fn collect_acquisitions(
    f: &SourceFile,
    d: &FnDef,
    key_to_class: &BTreeMap<String, String>,
    _class_decls: &mut [LockClass],
    _report: &mut LockReport,
) -> Vec<Acquisition> {
    let masked = &f.masked;
    let bytes = masked.as_bytes();
    let depths = scan::brace_depths(masked);
    let loops = loop_spans(masked, d.body_start, d.body_end);
    let mut out = Vec::new();
    for method in ["lock", "read", "write"] {
        for off in scan::find_word_all(&masked[d.body_start..d.body_end], method) {
            let off = d.body_start + off;
            if off == 0 || bytes[off - 1] != b'.' || f.in_test(off) {
                continue;
            }
            let Some((args, _)) = scan::call_args(masked, off + method.len()) else {
                continue;
            };
            if !args.trim().is_empty() {
                continue; // lock acquisition methods take no arguments
            }
            let Receiver::Ident(recv) = scan::resolve_receiver(masked, off - 1) else {
                continue;
            };
            let Some(class) = key_to_class.get(&recv) else {
                continue;
            };
            let stmt = scan::statement_span(masked, off);
            let binding = classify_binding(f, stmt, off, &depths);
            let enclosing_loop = loops
                .iter()
                .filter(|(s, e)| *s <= off && off < *e)
                .min_by_key(|(s, e)| e - s);
            let in_sorted_loop = enclosing_loop.is_some_and(|&(s, e)| {
                let text = &masked[s..e];
                text.contains("trailing_zeros") && text.contains("&=")
            });
            out.push(Acquisition {
                off,
                classes: vec![class.clone()],
                binding,
                in_sorted_loop,
                in_loop: enclosing_loop.is_some(),
            });
        }
    }
    out.sort_by_key(|a| a.off);
    out
}

fn collect_calls(
    f: &SourceFile,
    d: &FnDef,
    name_to_fns: &BTreeMap<&str, Vec<usize>>,
) -> Vec<(usize, Vec<usize>)> {
    let masked = &f.masked;
    let bytes = masked.as_bytes();
    let mut out = Vec::new();
    for (name, idxs) in name_to_fns {
        if *name == d.name {
            continue; // recursion adds no new ordering information
        }
        for off in scan::find_word_all(&masked[d.body_start..d.body_end], name) {
            let off = d.body_start + off;
            // must be a call: followed by `(`; not a definition (`fn name`)
            let after = off + name.len();
            if bytes.get(after) != Some(&b'(') {
                continue;
            }
            let before = masked[..off].trim_end();
            if before.ends_with("fn") {
                continue;
            }
            out.push((off, idxs.clone()));
        }
    }
    out.sort_by_key(|(off, _)| *off);
    out
}

/// DOT rendering of the class graph.
pub fn to_dot(report: &LockReport) -> String {
    let mut out = String::from("digraph lock_order {\n  rankdir=LR;\n");
    let mut nodes: BTreeSet<String> = BTreeSet::new();
    for c in &report.classes {
        let label = format!("{}/{}", c.crate_name, c.class);
        if nodes.insert(label.clone()) {
            let shape = if c.mask_ordered {
                " [shape=box, style=\"rounded,bold\", xlabel=\"mask-ordered\"]"
            } else {
                " [shape=box]"
            };
            out.push_str(&format!("  \"{label}\"{shape};\n"));
        }
    }
    for e in &report.edges {
        out.push_str(&format!(
            "  \"{}\" -> \"{}\" [label=\"{}\"];\n",
            e.from, e.to, e.site
        ));
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(path: &str, krate: &str, src: &str) -> SourceFile {
        SourceFile::new(path.into(), krate.into(), false, src.into())
    }

    #[test]
    fn unannotated_lock_flagged() {
        let r = analyze(&[file(
            "crates/x/src/lib.rs",
            "x",
            "struct S {\n    guard: Mutex<()>,\n}\n",
        )]);
        assert!(r.findings.iter().any(|f| f.rule == "lock-unclassified"));
    }

    #[test]
    fn ordered_pair_builds_edge() {
        let src = "struct S {\n    // lock-order: outer\n    a: Mutex<()>,\n    \
                   // lock-order: inner\n    b: Mutex<()>,\n}\n\
                   impl S {\n    fn f(&self) {\n        let g = self.a.lock();\n        \
                   let h = self.b.lock();\n        drop(h);\n        drop(g);\n    }\n}\n";
        let r = analyze(&[file("crates/x/src/lib.rs", "x", src)]);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
        assert!(r
            .edges
            .iter()
            .any(|e| e.from == "x/outer" && e.to == "x/inner"));
    }

    #[test]
    fn cycle_detected() {
        let src = "struct S {\n    // lock-order: outer\n    a: Mutex<()>,\n    \
                   // lock-order: inner\n    b: Mutex<()>,\n}\n\
                   impl S {\n    fn f(&self) {\n        let g = self.a.lock();\n        \
                   let h = self.b.lock();\n    }\n    fn g(&self) {\n        \
                   let h = self.b.lock();\n        let g = self.a.lock();\n    }\n}\n";
        let r = analyze(&[file("crates/x/src/lib.rs", "x", src)]);
        assert!(
            r.findings.iter().any(|f| f.rule == "lock-cycle"),
            "{:?}",
            r.findings
        );
    }

    #[test]
    fn sorted_mask_walk_accepted_unsorted_rejected() {
        let sorted = "struct Stripes {\n    // lock-order: stripe\n    lock: Mutex<()>,\n}\n\
                      impl T {\n    fn lock_mask(&self, mask: u64) -> Vec<Guard> {\n        \
                      let mut guards = Vec::new();\n        let mut rest = mask;\n        \
                      while rest != 0 {\n            let idx = rest.trailing_zeros() as usize;\n            \
                      guards.push(self.stripes[idx].lock.lock());\n            rest &= rest - 1;\n        }\n        \
                      guards\n    }\n}\n";
        let r = analyze(&[file("crates/x/src/stripe.rs", "x", sorted)]);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
        assert!(r
            .classes
            .iter()
            .any(|c| c.class == "stripe" && c.mask_ordered));
        let unsorted = "struct Stripes {\n    // lock-order: stripe\n    lock: Mutex<()>,\n}\n\
                        impl T {\n    fn lock_all(&self) -> Vec<Guard> {\n        \
                        let mut guards = Vec::new();\n        for s in &self.stripes {\n            \
                        guards.push(s.lock.lock());\n        }\n        guards\n    }\n}\n";
        let r = analyze(&[file("crates/x/src/stripe.rs", "x", unsorted)]);
        assert!(
            r.findings.iter().any(|f| f.rule == "unsorted-multi-lock"),
            "{:?}",
            r.findings
        );
    }

    #[test]
    fn call_propagation_builds_edge() {
        let src = "struct S {\n    // lock-order: stripe\n    lock: Mutex<()>,\n    \
                   // lock-order: registry\n    overflow: Mutex<()>,\n}\n\
                   impl S {\n    fn gc(&self) {\n        let g = self.overflow.lock();\n    }\n    \
                   fn commit(&self) {\n        let g = self.lock.lock();\n        self.gc();\n    }\n}\n";
        let r = analyze(&[file("crates/x/src/lib.rs", "x", src)]);
        assert!(r
            .edges
            .iter()
            .any(|e| e.from == "x/stripe" && e.to == "x/registry"));
    }
}
