//! Unsafe audit: every `unsafe` block / `unsafe impl` / `unsafe fn` in
//! runtime code must carry a `// SAFETY:` comment stating the invariant
//! it relies on — either trailing on the same line or in the comment
//! block directly above the statement.
//!
//! SAFETY comments are cross-referenced to the atomics inventory:
//! backtick-quoted identifiers in the justification that name declared
//! atomic keys of the same crate are recorded per file, so the inventory
//! shows which unsafe code depends on which published atomic protocol
//! (e.g. vbox reclamation depending on `head`'s release/acquire pairs).

use std::collections::BTreeSet;

use crate::scan::{self, SourceFile};
use crate::Finding;

/// Per-file unsafe accounting for the inventory.
#[derive(Debug, Clone)]
pub struct UnsafeFile {
    pub file: String,
    /// Number of `unsafe` occurrences audited (blocks + impls + fns).
    pub sites: usize,
    /// Inventory keys referenced from SAFETY justifications.
    pub refs: Vec<String>,
}

#[derive(Debug, Default)]
pub struct UnsafeReport {
    pub files: Vec<UnsafeFile>,
    pub findings: Vec<Finding>,
}

/// `atomic_keys`: declared atomic keys of each crate, as
/// `(crate_name, key)` pairs, for SAFETY cross-referencing.
pub fn analyze(files: &[SourceFile], atomic_keys: &BTreeSet<(String, String)>) -> UnsafeReport {
    let mut report = UnsafeReport::default();
    for f in files {
        if f.test_file {
            continue;
        }
        let mut sites = 0usize;
        let mut refs: BTreeSet<String> = BTreeSet::new();
        for off in scan::find_word_all(&f.masked, "unsafe") {
            if f.in_test(off) {
                continue;
            }
            sites += 1;
            let line = f.line_of(off);
            // SAFETY on the same line (raw text: comments are masked) or
            // in the contiguous comment block above.
            let mut justification = String::new();
            let raw = f.raw_line(line);
            if let Some(p) = raw.find("SAFETY:") {
                justification.push_str(&raw[p..]);
            } else {
                for l in f.comment_block_above(line) {
                    justification.push_str(l);
                    justification.push(' ');
                }
                if !justification.contains("SAFETY:") {
                    justification.clear();
                }
            }
            if justification.is_empty() {
                report.findings.push(Finding {
                    file: f.path.clone(),
                    line,
                    rule: "unsafe-missing-safety",
                    message: "`unsafe` without a `// SAFETY:` justification stating the \
                              invariant it relies on"
                        .to_string(),
                });
                continue;
            }
            // backtick-quoted inventory keys in the justification
            let mut rest = justification.as_str();
            while let Some(p) = rest.find('`') {
                let tail = &rest[p + 1..];
                let Some(end) = tail.find('`') else { break };
                let ident = &tail[..end];
                if !ident.is_empty()
                    && ident.chars().all(scan::is_ident_char)
                    && atomic_keys.contains(&(f.crate_name.clone(), ident.to_string()))
                {
                    refs.insert(ident.to_string());
                }
                rest = &tail[end + 1..];
            }
        }
        if sites > 0 {
            report.files.push(UnsafeFile {
                file: f.path.clone(),
                sites,
                refs: refs.into_iter().collect(),
            });
        }
    }
    report
        .findings
        .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    report.files.sort_by(|a, b| a.file.cmp(&b.file));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(pairs: &[(&str, &str)]) -> BTreeSet<(String, String)> {
        pairs
            .iter()
            .map(|(c, k)| (c.to_string(), k.to_string()))
            .collect()
    }

    #[test]
    fn missing_safety_flagged() {
        let f = SourceFile::new(
            "crates/x/src/lib.rs".into(),
            "x".into(),
            false,
            "fn f(p: *const u32) -> u32 {\n    unsafe { *p }\n}\n".into(),
        );
        let r = analyze(&[f], &keys(&[]));
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].rule, "unsafe-missing-safety");
    }

    #[test]
    fn safety_above_or_trailing_accepted_and_cross_referenced() {
        let src = "fn f(p: *const u32) -> u32 {\n    // SAFETY: `head` is published with \
                   release-store, so *p is initialized.\n    unsafe { *p }\n}\n\
                   unsafe impl Sync for T {} // SAFETY: single-writer `len` protocol\n";
        let f = SourceFile::new("crates/x/src/lib.rs".into(), "x".into(), false, src.into());
        let r = analyze(&[f], &keys(&[("x", "head"), ("x", "len")]));
        assert!(r.findings.is_empty(), "{:?}", r.findings);
        assert_eq!(r.files[0].sites, 2);
        assert_eq!(r.files[0].refs, vec!["head".to_string(), "len".to_string()]);
    }

    #[test]
    fn test_regions_exempt() {
        let src =
            "#[cfg(test)]\nmod tests {\n    fn f(p: *const u32) -> u32 { unsafe { *p } }\n}\n";
        let f = SourceFile::new("crates/x/src/lib.rs".into(), "x".into(), false, src.into());
        assert!(analyze(&[f], &keys(&[])).findings.is_empty());
    }
}
