//! `wtf-audit`: whole-workspace concurrency static analysis.
//!
//! Grown from the `wtf-lint` scanner (`crates/check/src/lint.rs`), this
//! crate makes every concurrency protocol in the runtime an explicit,
//! machine-checked contract — the prerequisite for the ROADMAP's
//! epoch-based-reclamation and privatization work:
//!
//! 1. **Atomics inventory + ordering contracts** ([`atomics`]): every
//!    atomic declaration must carry a `// ordering:` contract comment;
//!    every `load/store/swap/compare_exchange/fetch_*` call site is
//!    checked against it, Relaxed loads feeding branch/CAS decisions
//!    need an explicit `relaxed-guard` clause, undeclared atomics fail.
//! 2. **Static lock-order graph** ([`lockorder`]): `Mutex`/`RwLock`
//!    fields in `mvstm`/`tl2` are classified via `// lock-order:`
//!    annotations; acquisition order (including the sorted stripe-mask
//!    walk) is verified and the class graph must be acyclic.
//! 3. **Unsafe audit** ([`unsafe_audit`]): every `unsafe` needs a
//!    `// SAFETY:` justification, cross-referenced to the inventory.
//! 4. **Inventory baseline** ([`inventory`]): deterministic JSON diffed
//!    in CI (`results/audit_inventory.json`) so any new/changed atomic
//!    or ordering is a visible diff, never a silent slip.
//!
//! The dynamic counterpart is the litmus suite (`crates/*/tests/
//! litmus.rs`) run under Miri and TSan; each litmus test is named after
//! the inventory entry whose protocol it enforces.

use std::collections::BTreeSet;
use std::fmt;
use std::path::Path;

pub mod atomics;
pub mod inventory;
pub mod lockorder;
pub mod scan;
pub mod unsafe_audit;

/// Crates whose runtime source is subject to the atomics + unsafe audit.
pub const AUDIT_CRATES: [&str; 9] = [
    "backend",
    "cm",
    "core",
    "mvstm",
    "taskpool",
    "telemetry",
    "tl2",
    "trace",
    "vclock",
];

/// Crates subject to the lock-order audit (the lock-holding substrates).
pub const LOCK_CRATES: [&str; 2] = ["mvstm", "tl2"];

/// One audit finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub file: String,
    /// 1-based; 0 for whole-graph findings (cycles).
    pub line: usize,
    /// `missing-contract`, `contract-empty`, `ordering-violation`,
    /// `relaxed-guard`, `undeclared-atomic`, `lock-unclassified`,
    /// `lock-key-collision`, `unsorted-multi-lock`,
    /// `multiple-mask-sources`, `lock-cycle`, `unsafe-missing-safety`.
    pub rule: &'static str,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Combined result of all audit passes.
pub struct AuditReport {
    pub atomics: atomics::AtomicsReport,
    pub locks: lockorder::LockReport,
    pub unsafes: unsafe_audit::UnsafeReport,
}

impl AuditReport {
    /// All findings across the passes, file/line sorted.
    pub fn findings(&self) -> Vec<Finding> {
        let mut out: Vec<Finding> = self
            .atomics
            .findings
            .iter()
            .chain(&self.locks.findings)
            .chain(&self.unsafes.findings)
            .cloned()
            .collect();
        out.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
        out
    }

    /// The checked-in JSON baseline text.
    pub fn inventory_json(&self) -> String {
        inventory::render(&self.atomics, &self.locks, &self.unsafes)
    }

    /// The lock-order graph in DOT.
    pub fn lock_dot(&self) -> String {
        lockorder::to_dot(&self.locks)
    }
}

/// Audits a set of pre-classified source files. Lock-order analysis runs
/// over the [`LOCK_CRATES`] subset — except in fixture mode (any file
/// whose crate is not one of [`AUDIT_CRATES`] is a loose fixture file,
/// which gets the full treatment so failing-case fixtures can exercise
/// every rule).
pub fn audit_files(files: Vec<scan::SourceFile>) -> AuditReport {
    let atomics_report = atomics::analyze(&files);
    let lock_files: Vec<scan::SourceFile> = files
        .iter()
        .filter(|f| {
            LOCK_CRATES.contains(&f.crate_name.as_str())
                || !AUDIT_CRATES.contains(&f.crate_name.as_str())
        })
        .map(|f| {
            scan::SourceFile::new(
                f.path.clone(),
                f.crate_name.clone(),
                f.test_file,
                f.src.clone(),
            )
        })
        .collect();
    let locks_report = lockorder::analyze(&lock_files);
    let keys: BTreeSet<(String, String)> = atomics_report
        .decls
        .iter()
        .flat_map(|d| d.keys.iter().map(|k| (d.crate_name.clone(), k.clone())))
        .collect();
    let unsafe_report = unsafe_audit::analyze(&files, &keys);
    AuditReport {
        atomics: atomics_report,
        locks: locks_report,
        unsafes: unsafe_report,
    }
}

/// Loads and classifies every audited `.rs` file under `root`, then runs
/// all passes. Files under `crates/<name>/src` belong to crate `<name>`
/// and are audited only when `<name>` is in [`AUDIT_CRATES`]; loose
/// files (e.g. a fixtures directory given as the root) audit standalone
/// under their file stem, so fixture keys never cross-talk. `tests/`,
/// `benches/`, `examples/`, `fixtures/` (when recursed into), `shims/`,
/// and `src/tests.rs` unit-test modules are not runtime code and are
/// skipped. Unreadable files are reported as errors naming the file.
pub fn audit_tree(root: &Path) -> std::io::Result<AuditReport> {
    let mut paths = Vec::new();
    collect_rs_files(root, &mut paths)?;
    paths.sort();
    let mut files = Vec::new();
    for path in paths {
        // Root-relative: the inventory baseline must not depend on where
        // the walk was started from (CLI runs from the repo root, the
        // workspace gate test runs from `crates/audit`).
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .to_string();
        let comps: Vec<&str> = rel.split('/').collect();
        let crate_name = comps
            .windows(3)
            .find(|w| w[0] == "crates" && w[2] == "src")
            .map(|w| w[1].to_string());
        let stem = path
            .file_stem()
            .map(|s| s.to_string_lossy().to_string())
            .unwrap_or_default();
        if stem == "tests" {
            continue;
        }
        let crate_name = match crate_name {
            Some(name) => {
                if !AUDIT_CRATES.contains(&name.as_str()) {
                    continue;
                }
                name
            }
            None => {
                // A fixtures directory given *as the root* (the walk only
                // prunes `fixtures/` when recursing past it) stays a loose
                // fixture file even though its path mentions `crates/`.
                let fixture = comps.contains(&"fixtures");
                if !fixture
                    && (comps.contains(&"crates")
                        || comps.contains(&"src")
                        || comps.contains(&"shims"))
                {
                    // workspace file outside an audited crate's src
                    continue;
                }
                stem
            }
        };
        let src = std::fs::read_to_string(&path)
            .map_err(|e| std::io::Error::new(e.kind(), format!("{}: {e}", path.display())))?;
        files.push(scan::SourceFile::new(rel, crate_name, false, src));
    }
    Ok(audit_files(files))
}

fn collect_rs_files(dir: &Path, out: &mut Vec<std::path::PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)
        .map_err(|e| std::io::Error::new(e.kind(), format!("{}: {e}", dir.display())))?
    {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy().to_string();
        if path.is_dir() {
            if [
                "target", ".git", "fixtures", "tests", "benches", "examples", "results",
            ]
            .contains(&name.as_str())
            {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}
