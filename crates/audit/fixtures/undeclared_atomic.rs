//! Seeded failing case: an atomic operated on without any declaration
//! (and therefore without a contract) in the audited source.

use std::sync::atomic::{AtomicBool, Ordering};

pub fn poke(flag: &AtomicBool) {
    flag.store(true, Ordering::SeqCst);
}
