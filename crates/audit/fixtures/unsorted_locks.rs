//! Seeded failing cases for the lock-order pass: a cross-class cycle
//! (alpha→beta in one function, beta→alpha in another), a same-class
//! multi-acquisition without the sorted bitmask walk, and a lock field
//! with no `// lock-order:` class at all.

use std::sync::Mutex;

pub struct Pair {
    // lock-order: alpha
    a: Mutex<u64>,
    // lock-order: beta
    b: Mutex<u64>,
}

impl Pair {
    pub fn ab(&self) -> u64 {
        let ga = self.a.lock().unwrap();
        let gb = self.b.lock().unwrap();
        *ga + *gb
    }

    pub fn ba(&self) -> u64 {
        let gb = self.b.lock().unwrap();
        let ga = self.a.lock().unwrap();
        *ga + *gb
    }
}

pub struct Stripes {
    // lock-order: stripe
    left: Mutex<u64>,
    // lock-order: stripe
    right: Mutex<u64>,
}

impl Stripes {
    pub fn both(&self) -> u64 {
        let gl = self.left.lock().unwrap();
        let gr = self.right.lock().unwrap();
        *gl + *gr
    }
}

pub struct Bag {
    items: Mutex<u64>,
}

impl Bag {
    pub fn take(&self) -> u64 {
        *self.items.lock().unwrap()
    }
}
