//! Seeded failing case: a `Relaxed` load feeds a branch decision but the
//! contract has no `relaxed-guard` clause explaining why that is sound.

use std::sync::atomic::{AtomicBool, Ordering};

pub struct Gate {
    // ordering: relaxed-store, relaxed-load — cheap flag.
    open: AtomicBool,
}

impl Gate {
    pub fn open(&self) {
        self.open.store(true, Ordering::Relaxed);
    }

    pub fn enter(&self) -> bool {
        if self.open.load(Ordering::Relaxed) {
            return true;
        }
        false
    }
}
