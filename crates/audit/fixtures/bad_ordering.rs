//! Seeded failing case: a call site whose `Ordering::` falls outside the
//! declared contract (the contract says relaxed, the load says SeqCst).

use std::sync::atomic::{AtomicU64, Ordering};

pub struct Counter {
    // ordering: relaxed-rmw, relaxed-load — a statistics counter.
    hits: AtomicU64,
}

impl Counter {
    pub fn bump(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    pub fn read(&self) -> u64 {
        self.hits.load(Ordering::SeqCst)
    }
}
