//! Seeded failing case: an atomic declared without an `// ordering:`
//! contract comment. CI asserts the audit goes red on this directory.

use std::sync::atomic::{AtomicU64, Ordering};

pub struct Counter {
    hits: AtomicU64,
}

impl Counter {
    pub fn bump(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }
}
