//! Mutation tests: the audit's teeth. Take the *real* `wtf-mvstm`
//! source, break one thing — delete a contract comment, strengthen one
//! `Ordering::` past its contract — and assert the audit notices. If
//! these fail, the checker has gone soft and the workspace gate is
//! theater.

use std::path::Path;
use wtf_audit::scan::SourceFile;

/// Every runtime source file of `wtf-mvstm`, classified as the audit
/// walk would classify it, with `mutate` applied to `vbox.rs`.
fn mvstm_files(mutate: impl Fn(&str) -> String) -> Vec<SourceFile> {
    let src_dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../mvstm/src");
    let mut paths: Vec<_> = std::fs::read_dir(&src_dir)
        .expect("crates/mvstm/src")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .filter(|p| p.file_stem().is_some_and(|s| s != "tests"))
        .collect();
    paths.sort();
    paths
        .into_iter()
        .map(|p| {
            let mut src = std::fs::read_to_string(&p).expect("read mvstm source");
            if p.file_name().is_some_and(|n| n == "vbox.rs") {
                src = mutate(&src);
            }
            SourceFile::new(
                p.to_string_lossy().to_string(),
                "mvstm".to_string(),
                false,
                src,
            )
        })
        .collect()
}

fn findings_for(mutate: impl Fn(&str) -> String) -> Vec<wtf_audit::Finding> {
    wtf_audit::audit_files(mvstm_files(mutate)).findings()
}

#[test]
fn unmutated_mvstm_is_clean() {
    let findings = findings_for(|s| s.to_string());
    assert!(findings.is_empty(), "baseline must be clean: {findings:?}");
}

#[test]
fn deleting_a_contract_comment_fails_the_audit() {
    // Drop the whole `// ordering:` block above `head` (contract lines
    // are contiguous `//` comments; removing only lines containing
    // contract tokens suffices to decapitate it).
    let findings = findings_for(|s| {
        let mut removed = 0;
        let out: Vec<&str> = s
            .lines()
            .filter(|l| {
                let t = l.trim_start();
                let is_contract =
                    t.starts_with("//") && (t.contains("ordering:") || t.contains("ordering("));
                if is_contract {
                    removed += 1;
                }
                !is_contract
            })
            .collect();
        assert!(removed > 0, "vbox.rs should have contract comments");
        out.join("\n")
    });
    assert!(
        findings.iter().any(|f| f.rule == "missing-contract"),
        "decapitated contracts must be caught: {findings:?}"
    );
}

#[test]
fn strengthening_one_ordering_fails_the_audit() {
    // `vbox.rs` contracts allow acquire loads; a SeqCst load is outside
    // every declared protocol there.
    let findings = findings_for(|s| {
        assert!(s.contains("Ordering::Acquire"), "vbox.rs uses Acquire");
        s.replacen("Ordering::Acquire", "Ordering::SeqCst", 1)
    });
    assert!(
        findings.iter().any(|f| f.rule == "ordering-violation"),
        "an off-contract Ordering:: must be caught: {findings:?}"
    );
}

#[test]
fn deleting_a_safety_comment_fails_the_audit() {
    let findings = findings_for(|s| {
        let out: Vec<&str> = s
            .lines()
            .filter(|l| !l.trim_start().starts_with("// SAFETY:"))
            .collect();
        out.join("\n")
    });
    assert!(
        findings.iter().any(|f| f.rule == "unsafe-missing-safety"),
        "stripped SAFETY comments must be caught: {findings:?}"
    );
}
