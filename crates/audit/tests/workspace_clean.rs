//! The workspace gate: the audit must be clean on the repo's own source,
//! and the checked-in inventory baseline must match what the audit
//! produces today (a drifted baseline means an atomic, ordering, lock
//! class or unsafe site changed without the diff being acknowledged).

use std::path::Path;

fn repo_root() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn workspace_audit_is_clean() {
    let report = wtf_audit::audit_tree(&repo_root()).expect("audit walk");
    let findings = report.findings();
    assert!(
        findings.is_empty(),
        "workspace audit found {} problem(s):\n{}",
        findings.len(),
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn inventory_baseline_matches() {
    let report = wtf_audit::audit_tree(&repo_root()).expect("audit walk");
    let baseline_path = repo_root().join("results/audit_inventory.json");
    let baseline = std::fs::read_to_string(&baseline_path)
        .expect("results/audit_inventory.json is checked in");
    assert_eq!(
        report.inventory_json(),
        baseline,
        "inventory drifted from results/audit_inventory.json — regenerate \
         it with `wtf-audit --inventory results/audit_inventory.json` and \
         review the diff"
    );
}

#[test]
fn seeded_fixtures_trip_every_rule() {
    let fixtures = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let report = wtf_audit::audit_tree(&fixtures).expect("fixture walk");
    let findings = report.findings();
    for rule in [
        "missing-contract",
        "ordering-violation",
        "relaxed-guard",
        "undeclared-atomic",
        "unsafe-missing-safety",
        "lock-unclassified",
        "unsorted-multi-lock",
        "lock-cycle",
    ] {
        assert!(
            findings.iter().any(|f| f.rule == rule),
            "fixtures should trip {rule}: {findings:?}"
        );
    }
}
