//! Events: the blocking primitive shared by both clock modes.
//!
//! An event is a wakeup channel with no payload. Real mode implements it as
//! a generation counter plus a condition variable (the usual lost-wakeup-free
//! pattern: notifiers bump the generation *after* making their state change
//! visible, waiters re-check their predicate whenever the generation moves).
//! Virtual mode stores an index into the scheduler's waiter table; the
//! cooperative scheduler makes the check-then-wait sequence atomic.

use parking_lot::{Condvar, Mutex};
use std::sync::Arc;

#[derive(Clone)]
pub struct Event {
    inner: EventImpl,
}

#[derive(Clone)]
enum EventImpl {
    Real(Arc<RealEvent>),
    Virtual(usize),
}

struct RealEvent {
    generation: Mutex<u64>,
    cv: Condvar,
}

impl Event {
    pub(crate) fn new_real() -> Event {
        Event {
            inner: EventImpl::Real(Arc::new(RealEvent {
                generation: Mutex::new(0),
                cv: Condvar::new(),
            })),
        }
    }

    pub(crate) fn new_virtual(id: usize) -> Event {
        Event {
            inner: EventImpl::Virtual(id),
        }
    }

    pub(crate) fn virtual_id(&self) -> usize {
        match &self.inner {
            EventImpl::Virtual(id) => *id,
            EventImpl::Real(_) => panic!("real event used with a virtual clock"),
        }
    }

    pub(crate) fn real_wait_until(&self, pred: &mut dyn FnMut() -> bool) {
        let ev = match &self.inner {
            EventImpl::Real(ev) => ev,
            EventImpl::Virtual(_) => panic!("virtual event used with a real clock"),
        };
        let mut generation = ev.generation.lock();
        loop {
            // The predicate reads state guarded by its own synchronization
            // (atomics / other mutexes). Notifiers change that state first,
            // then bump `generation` under this lock, so if we observe a
            // stale predicate we are guaranteed to also observe the coming
            // generation bump.
            if pred() {
                return;
            }
            ev.cv.wait(&mut generation);
        }
    }

    pub(crate) fn real_notify_all(&self) {
        let ev = match &self.inner {
            EventImpl::Real(ev) => ev,
            EventImpl::Virtual(_) => panic!("virtual event used with a real clock"),
        };
        let mut generation = ev.generation.lock();
        *generation = generation.wrapping_add(1);
        ev.cv.notify_all();
    }
}

impl std::fmt::Debug for Event {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            EventImpl::Real(_) => write!(f, "Event::Real"),
            EventImpl::Virtual(id) => write!(f, "Event::Virtual({id})"),
        }
    }
}
