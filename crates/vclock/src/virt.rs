//! The deterministic discrete-event scheduler behind `Clock::virtual_time`.
//!
//! Exactly one virtual thread holds the *execution token* at any instant;
//! everyone else is parked on a per-thread gate. A thread releases the token
//! when it advances its clock past another ready thread's timestamp, blocks
//! on an event, or finishes. The scheduler then wakes the ready thread with
//! the smallest `(time, seq)` pair — `seq` is the FIFO arrival order, which
//! makes tie-breaking (and therefore the whole simulation) deterministic.

use parking_lot::{Condvar, Mutex};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TState {
    /// Holds the execution token.
    Running,
    /// In the runnable heap, waiting to be scheduled.
    Ready,
    /// Parked on an event.
    Blocked,
    /// Deregistered.
    Finished,
}

struct Gate {
    state: Mutex<GateState>,
    cv: Condvar,
}

#[derive(Default)]
struct GateState {
    go: bool,
    poisoned: bool,
}

impl Gate {
    fn new() -> Arc<Gate> {
        Arc::new(Gate {
            state: Mutex::new(GateState::default()),
            cv: Condvar::new(),
        })
    }

    fn open(&self) {
        let mut g = self.state.lock();
        g.go = true;
        self.cv.notify_all();
    }

    fn poison(&self) {
        let mut g = self.state.lock();
        g.poisoned = true;
        self.cv.notify_all();
    }

    fn pass(&self) {
        let mut g = self.state.lock();
        while !g.go {
            if g.poisoned {
                panic!("virtual clock poisoned by a panicking thread");
            }
            self.cv.wait(&mut g);
        }
        g.go = false;
    }
}

struct ThreadSlot {
    time: u64,
    state: TState,
    gate: Arc<Gate>,
}

struct Sched {
    threads: Vec<ThreadSlot>,
    /// Min-heap of ready threads keyed by (time, seq).
    runnable: BinaryHeap<Reverse<(u64, u64, usize)>>,
    seq: u64,
    /// Registered and not yet finished.
    live: usize,
    /// Per-resource "free at" horizon.
    resources: Vec<u64>,
    /// Per-event list of blocked thread ids.
    events: Vec<Vec<usize>>,
    makespan: u64,
    poisoned: bool,
}

pub(crate) struct VirtualClock {
    sched: Mutex<Sched>,
}

impl VirtualClock {
    pub(crate) fn new() -> Self {
        VirtualClock {
            sched: Mutex::new(Sched {
                threads: Vec::new(),
                runnable: BinaryHeap::new(),
                seq: 0,
                live: 0,
                resources: Vec::new(),
                events: Vec::new(),
                makespan: 0,
                poisoned: false,
            }),
        }
    }

    pub(crate) fn register_root(&self) -> usize {
        let mut g = self.sched.lock();
        assert!(
            !g.threads.iter().any(|t| t.state == TState::Running),
            "a root thread is already running under this virtual clock"
        );
        let tid = g.threads.len();
        let start_time = g.makespan;
        g.threads.push(ThreadSlot {
            time: start_time,
            state: TState::Running,
            gate: Gate::new(),
        });
        g.live += 1;
        tid
    }

    pub(crate) fn register_child(&self, parent: usize) -> usize {
        let mut g = self.sched.lock();
        let time = g.threads[parent].time;
        let tid = g.threads.len();
        g.threads.push(ThreadSlot {
            time,
            state: TState::Ready,
            gate: Gate::new(),
        });
        g.live += 1;
        let seq = g.seq;
        g.seq += 1;
        g.runnable.push(Reverse((time, seq, tid)));
        tid
    }

    /// First call made by a child OS thread: park until scheduled.
    pub(crate) fn start_child(&self, tid: usize) {
        let gate = self.sched.lock().threads[tid].gate.clone();
        gate.pass();
    }

    pub(crate) fn now(&self, tid: usize) -> u64 {
        self.sched.lock().threads[tid].time
    }

    pub(crate) fn makespan(&self) -> u64 {
        self.sched.lock().makespan
    }

    pub(crate) fn new_resource(&self) -> crate::Resource {
        let mut g = self.sched.lock();
        g.resources.push(0);
        crate::Resource(g.resources.len() - 1)
    }

    pub(crate) fn new_event(&self) -> usize {
        let mut g = self.sched.lock();
        g.events.push(Vec::new());
        g.events.len() - 1
    }

    pub(crate) fn advance(&self, me: usize, dt: u64) {
        let mut g = self.sched.lock();
        debug_assert_eq!(g.threads[me].state, TState::Running);
        g.threads[me].time += dt;
        self.maybe_yield(g, me);
    }

    pub(crate) fn acquire(&self, me: usize, res: crate::Resource, cost: u64) {
        let mut g = self.sched.lock();
        debug_assert_eq!(g.threads[me].state, TState::Running);
        let start = g.threads[me].time.max(g.resources[res.0]);
        let end = start + cost;
        g.resources[res.0] = end;
        g.threads[me].time = end;
        self.maybe_yield(g, me);
    }

    /// After `me`'s time moved forward, hand the token to an earlier ready
    /// thread if one exists. Holding on to the token when we are still the
    /// minimum is the fast path that keeps long runs of small advances cheap.
    fn maybe_yield(&self, mut g: parking_lot::MutexGuard<'_, Sched>, me: usize) {
        let my_time = g.threads[me].time;
        match g.runnable.peek() {
            Some(&Reverse((t, _, _))) if t < my_time => {
                let seq = g.seq;
                g.seq += 1;
                g.runnable.push(Reverse((my_time, seq, me)));
                g.threads[me].state = TState::Ready;
                let gate = Self::dispatch_next(&mut g).expect("runnable heap cannot be empty");
                drop(g);
                if let Some(gt) = gate {
                    gt.open();
                }
                self.park(me);
            }
            _ => {}
        }
    }

    /// Pops the minimum ready thread and marks it Running. Returns the gate
    /// to open, or `None` inside the `Some` if the popped thread is the
    /// caller itself (no parking needed). Outer `None` = heap empty.
    #[allow(clippy::option_option)]
    fn dispatch_next(g: &mut Sched) -> Option<Option<Arc<Gate>>> {
        let Reverse((_, _, tid)) = g.runnable.pop()?;
        g.threads[tid].state = TState::Running;
        Some(Some(g.threads[tid].gate.clone()))
    }

    fn park(&self, me: usize) {
        let gate = self.sched.lock().threads[me].gate.clone();
        gate.pass();
    }

    pub(crate) fn wait(&self, me: usize, event: usize) {
        let mut g = self.sched.lock();
        debug_assert_eq!(g.threads[me].state, TState::Running);
        g.threads[me].state = TState::Blocked;
        g.events[event].push(me);
        match Self::dispatch_next(&mut g) {
            Some(gate) => {
                drop(g);
                if let Some(gt) = gate {
                    gt.open();
                }
                self.park(me);
            }
            None => self.deadlock(g, me),
        }
    }

    pub(crate) fn notify_all(&self, me: Option<usize>, event: usize) {
        let mut g = self.sched.lock();
        let now = match me {
            Some(tid) => g.threads[tid].time,
            // A notify from outside the clock (should not happen in normal
            // runs) wakes waiters at their own timestamps.
            None => 0,
        };
        let waiters = std::mem::take(&mut g.events[event]);
        for w in waiters {
            debug_assert_eq!(g.threads[w].state, TState::Blocked);
            // A woken thread cannot resume before the notifier's present.
            g.threads[w].time = g.threads[w].time.max(now);
            g.threads[w].state = TState::Ready;
            let seq = g.seq;
            g.seq += 1;
            let t = g.threads[w].time;
            g.runnable.push(Reverse((t, seq, w)));
        }
        // The notifier keeps the token: every woken thread has time >= now,
        // so the notifier is still a minimum. (If `me` is None there is no
        // token holder; the next blocking operation will dispatch.)
    }

    pub(crate) fn deregister(&self, me: usize, panicked: bool) {
        let mut g = self.sched.lock();
        g.threads[me].state = TState::Finished;
        g.live -= 1;
        g.makespan = g.makespan.max(g.threads[me].time);
        if panicked {
            g.poisoned = true;
            for t in &g.threads {
                t.gate.poison();
            }
            return;
        }
        if g.live == 0 {
            return;
        }
        match Self::dispatch_next(&mut g) {
            Some(gate) => {
                drop(g);
                if let Some(gt) = gate {
                    gt.open();
                }
            }
            None => self.deadlock(g, me),
        }
    }

    /// All live threads are blocked and nobody can make progress. Poison
    /// every gate (so parked threads unwind too) and panic.
    fn deadlock(&self, mut g: parking_lot::MutexGuard<'_, Sched>, me: usize) -> ! {
        g.poisoned = true;
        let blocked: Vec<usize> = g
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.state == TState::Blocked)
            .map(|(i, _)| i)
            .collect();
        for t in &g.threads {
            t.gate.poison();
        }
        drop(g);
        panic!(
            "virtual clock deadlock: thread {me} blocked with no runnable thread \
             (blocked threads: {blocked:?})"
        );
    }
}
