//! Real-time clock: OS threads, wall-clock time, calibrated spin work.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

pub(crate) struct RealClock {
    origin: Instant,
    spin: bool,
    // ordering: relaxed-rmw — monotonic thread-id source; ids only need
    // uniqueness, nothing is published through the counter.
    next_tid: AtomicUsize,
}

impl RealClock {
    pub(crate) fn new() -> Self {
        RealClock {
            origin: Instant::now(),
            spin: true,
            next_tid: AtomicUsize::new(0),
        }
    }

    pub(crate) fn new_nospin() -> Self {
        RealClock {
            origin: Instant::now(),
            spin: false,
            next_tid: AtomicUsize::new(0),
        }
    }

    pub(crate) fn register(&self) -> usize {
        self.next_tid.fetch_add(1, Ordering::Relaxed)
    }

    pub(crate) fn deregister(&self) {}

    pub(crate) fn now(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }

    pub(crate) fn advance(&self, cost: u64) {
        if self.spin {
            crate::spin::spin_work(cost);
        }
    }
}
