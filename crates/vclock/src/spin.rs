//! CPU-burning spin loop for real-time mode.
//!
//! The paper's synthetic workloads emulate CPU-bound computation by
//! "spinning for a configurable amount of iterations" (`iter`). One cost
//! unit corresponds to one spin iteration, roughly a nanosecond on the
//! paper's 2 GHz Xeon.

use std::hint::black_box;

/// Burns `iters` iterations of dependent integer work. The result is fed
/// through `black_box` so the loop cannot be optimized away.
#[inline]
pub fn spin_work(iters: u64) {
    let mut acc: u64 = 0x9e37_79b9_7f4a_7c15;
    for i in 0..iters {
        // xorshift-style dependent chain: one multiply + xor per iteration.
        acc ^= acc << 13;
        acc ^= acc >> 7;
        acc = acc.wrapping_add(i);
    }
    black_box(acc);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spin_runs() {
        spin_work(0);
        spin_work(10_000);
    }
}
