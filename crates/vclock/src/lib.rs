//! # wtf-vclock — virtual-time and real-time execution substrate
//!
//! The PPoPP'21 transactional-futures paper evaluates WTF-TM on a 56-core
//! Xeon. To reproduce the *shape* of those experiments on arbitrary hosts
//! (including single-core CI boxes), this crate provides a **deterministic
//! discrete-event virtual clock**: every simulated thread owns a virtual
//! timestamp, work is charged in virtual cost units via [`Clock::advance`],
//! and a cooperative scheduler always runs the thread with the smallest
//! timestamp. Blocking (future evaluation, commit waits, injected delays)
//! is virtualized through [`Event`]s, and shared hardware bottlenecks (the
//! memory bus) are modeled with [`Resource`]s.
//!
//! The same API also runs in **real-time mode** ([`Clock::real`]), where
//! `advance` burns calibrated CPU work, events are condition variables and
//! threads are plain OS threads — used by the unit/stress tests and the
//! Criterion micro-benchmarks.
//!
//! Virtual executions are fully deterministic: scheduling ties are broken
//! by thread spawn order, so a run is a pure function of the workload's RNG
//! seeds. This is what makes the figure harnesses in `wtf-bench`
//! reproducible.
//!
//! ## Example
//!
//! ```
//! use wtf_vclock::Clock;
//!
//! let clock = Clock::virtual_time();
//! let total = clock.enter(|| {
//!     let c = Clock::current();
//!     let h = c.spawn("worker", || {
//!         Clock::current().advance(500);
//!         42u64
//!     });
//!     c.advance(100);
//!     h.join()
//! });
//! assert_eq!(total, 42);
//! // the worker ran 500 units of virtual work => makespan is 500
//! assert_eq!(clock.makespan(), 500);
//! ```

mod event;
mod real;
mod spin;
mod virt;

pub use event::Event;
pub use spin::spin_work;

use parking_lot::Mutex;
use std::cell::RefCell;
use std::sync::Arc;

use real::RealClock;
use virt::VirtualClock;

/// Identifier of a shared serializing resource (e.g. the memory bus).
///
/// In virtual mode, [`Clock::acquire`] on a resource serializes the charged
/// cost across all threads: the resource has a single "free-at" horizon and
/// each acquisition pushes it forward, so aggregate throughput through the
/// resource is bounded regardless of thread count. This is how the
/// evaluation models memory-bandwidth saturation (Fig. 6 left: a fully
/// memory-bound workload does not speed up with more futures).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Resource(pub(crate) usize);

/// Handle for joining a thread spawned with [`Clock::spawn`].
pub struct JoinHandle<T> {
    result: Arc<Mutex<Option<std::thread::Result<T>>>>,
    done: Event,
    clock: Clock,
    os: Option<std::thread::JoinHandle<()>>,
}

impl<T> JoinHandle<T> {
    /// Blocks (in clock time) until the thread finishes and returns its
    /// result. Panics raised inside the thread are propagated.
    pub fn join(mut self) -> T {
        let result = self.result.clone();
        self.clock
            .wait_until(&self.done, || result.lock().is_some());
        // In real mode also join the OS thread so its stack is reclaimed
        // deterministically. In virtual mode the OS thread has already
        // deregistered from the scheduler by the time `done` fires; joining
        // it here keeps teardown tidy without affecting virtual time.
        if let Some(os) = self.os.take() {
            let _ = os.join();
        }
        match self.result.lock().take().expect("thread result present") {
            Ok(v) => v,
            Err(p) => std::panic::resume_unwind(p),
        }
    }

    /// Returns true once the thread has finished (non-blocking).
    pub fn is_finished(&self) -> bool {
        self.result.lock().is_some()
    }
}

enum ClockImpl {
    Real(RealClock),
    Virtual(VirtualClock),
}

/// A clock under which threads execute, charge work and block.
///
/// Cloning a `Clock` yields another handle to the same underlying clock.
#[derive(Clone)]
pub struct Clock {
    inner: Arc<ClockImpl>,
}

thread_local! {
    /// The clock the current OS thread is registered with (if any) and its
    /// virtual thread id. Real-mode threads register too, so that
    /// `Clock::current()` works uniformly.
    static CURRENT: RefCell<Option<(Clock, usize)>> = const { RefCell::new(None) };
}

impl Clock {
    /// A real-time clock: `advance` burns calibrated CPU work, events are
    /// condition variables, `now` is wall-clock nanoseconds.
    pub fn real() -> Self {
        Clock {
            inner: Arc::new(ClockImpl::Real(RealClock::new())),
        }
    }

    /// A real-time clock whose `advance` is a no-op (no spinning). Useful
    /// in unit tests where costs are irrelevant.
    pub fn real_nospin() -> Self {
        Clock {
            inner: Arc::new(ClockImpl::Real(RealClock::new_nospin())),
        }
    }

    /// A deterministic virtual-time clock. Enter it with [`Clock::enter`].
    pub fn virtual_time() -> Self {
        Clock {
            inner: Arc::new(ClockImpl::Virtual(VirtualClock::new())),
        }
    }

    /// The clock the calling thread is registered with.
    ///
    /// Panics if the thread is not running under any clock (i.e. neither
    /// inside [`Clock::enter`] nor spawned via [`Clock::spawn`]).
    pub fn current() -> Clock {
        CURRENT.with(|c| {
            c.borrow()
                .as_ref()
                .map(|(clock, _)| clock.clone())
                .expect("Clock::current() called outside any clock context")
        })
    }

    /// Like [`Clock::current`] but returns `None` instead of panicking.
    pub fn try_current() -> Option<Clock> {
        CURRENT.with(|c| c.borrow().as_ref().map(|(clock, _)| clock.clone()))
    }

    fn current_tid() -> Option<usize> {
        CURRENT.with(|c| c.borrow().as_ref().map(|(_, tid)| *tid))
    }

    /// True for virtual-time clocks.
    pub fn is_virtual(&self) -> bool {
        matches!(&*self.inner, ClockImpl::Virtual(_))
    }

    /// Registers the calling OS thread as the root thread of this clock and
    /// runs `f` under it. All threads spawned inside must be joined before
    /// `f` returns (the virtual scheduler panics on leaked live threads so
    /// that lost-thread bugs surface immediately).
    pub fn enter<T>(&self, f: impl FnOnce() -> T) -> T {
        let tid = match &*self.inner {
            ClockImpl::Real(r) => r.register(),
            ClockImpl::Virtual(v) => v.register_root(),
        };
        let prev = CURRENT.with(|c| c.borrow_mut().replace((self.clone(), tid)));
        let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
        CURRENT.with(|c| *c.borrow_mut() = prev);
        match &*self.inner {
            ClockImpl::Real(r) => r.deregister(),
            ClockImpl::Virtual(v) => v.deregister(tid, out.is_err()),
        }
        match out {
            Ok(v) => v,
            Err(p) => std::panic::resume_unwind(p),
        }
    }

    /// Current time of the calling thread: virtual units in virtual mode,
    /// nanoseconds since clock creation in real mode.
    pub fn now(&self) -> u64 {
        match &*self.inner {
            ClockImpl::Real(r) => r.now(),
            ClockImpl::Virtual(v) => v.now(Self::current_tid().expect("not a clock thread")),
        }
    }

    /// Charges `cost` units of CPU work to the calling thread.
    pub fn advance(&self, cost: u64) {
        if cost == 0 {
            return;
        }
        match &*self.inner {
            ClockImpl::Real(r) => r.advance(cost),
            ClockImpl::Virtual(v) => {
                v.advance(Self::current_tid().expect("not a clock thread"), cost)
            }
        }
    }

    /// Creates a new shared serializing resource.
    pub fn new_resource(&self) -> Resource {
        match &*self.inner {
            ClockImpl::Real(_) => Resource(usize::MAX),
            ClockImpl::Virtual(v) => v.new_resource(),
        }
    }

    /// Charges `cost` units through a shared resource: in virtual mode the
    /// cost is serialized globally across threads (modeling a saturated
    /// bus); in real mode this is equivalent to [`Clock::advance`].
    pub fn acquire(&self, res: Resource, cost: u64) {
        if cost == 0 {
            return;
        }
        match &*self.inner {
            ClockImpl::Real(r) => r.advance(cost),
            ClockImpl::Virtual(v) => {
                v.acquire(Self::current_tid().expect("not a clock thread"), res, cost)
            }
        }
    }

    /// Creates an event usable with [`Clock::wait_until`] / [`Clock::notify_all`].
    pub fn new_event(&self) -> Event {
        match &*self.inner {
            ClockImpl::Real(_) => Event::new_real(),
            ClockImpl::Virtual(v) => Event::new_virtual(v.new_event()),
        }
    }

    /// Blocks the calling thread until `pred()` is true. `pred` is
    /// re-checked after every notification of `event`.
    ///
    /// The contract mirrors condition variables: any state change that can
    /// turn `pred` true must be followed by `notify_all(event)`.
    pub fn wait_until(&self, event: &Event, mut pred: impl FnMut() -> bool) {
        match &*self.inner {
            ClockImpl::Real(_) => event.real_wait_until(&mut pred),
            ClockImpl::Virtual(v) => {
                let tid = Self::current_tid().expect("not a clock thread");
                loop {
                    if pred() {
                        return;
                    }
                    // Cooperative scheduling: no other virtual thread can
                    // run between the check above and the wait below, so
                    // there is no lost-wakeup window.
                    v.wait(tid, event.virtual_id());
                }
            }
        }
    }

    /// Wakes every thread waiting on `event`.
    pub fn notify_all(&self, event: &Event) {
        match &*self.inner {
            ClockImpl::Real(_) => event.real_notify_all(),
            ClockImpl::Virtual(v) => v.notify_all(Self::current_tid(), event.virtual_id()),
        }
    }

    /// Spawns a thread under this clock. In virtual mode the child starts
    /// at the parent's current virtual time.
    pub fn spawn<T: Send + 'static>(
        &self,
        name: &str,
        f: impl FnOnce() -> T + Send + 'static,
    ) -> JoinHandle<T> {
        let result: Arc<Mutex<Option<std::thread::Result<T>>>> = Arc::new(Mutex::new(None));
        let done = self.new_event();
        let clock = self.clone();
        let r2 = result.clone();
        let d2 = done.clone();
        let tid = match &*self.inner {
            ClockImpl::Real(r) => r.register(),
            ClockImpl::Virtual(v) => {
                v.register_child(Self::current_tid().expect("spawn outside clock context"))
            }
        };
        let os = std::thread::Builder::new()
            .name(name.to_string())
            .spawn(move || {
                if let ClockImpl::Virtual(v) = &*clock.inner {
                    // Block until the scheduler hands us the execution token.
                    v.start_child(tid);
                }
                let prev = CURRENT.with(|c| c.borrow_mut().replace((clock.clone(), tid)));
                let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
                CURRENT.with(|c| *c.borrow_mut() = prev);
                let panicked = out.is_err();
                *r2.lock() = Some(out);
                clock.notify_all(&d2);
                match &*clock.inner {
                    ClockImpl::Real(r) => r.deregister(),
                    ClockImpl::Virtual(v) => v.deregister(tid, panicked),
                }
            })
            .expect("failed to spawn OS thread");
        JoinHandle {
            result,
            done,
            clock: self.clone(),
            os: Some(os),
        }
    }

    /// Largest virtual time reached by any finished thread (virtual mode),
    /// or elapsed nanoseconds (real mode). This is the makespan used by the
    /// figure harnesses to compute speedups.
    pub fn makespan(&self) -> u64 {
        match &*self.inner {
            ClockImpl::Real(r) => r.now(),
            ClockImpl::Virtual(v) => v.makespan(),
        }
    }
}

impl std::fmt::Debug for Clock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &*self.inner {
            ClockImpl::Real(_) => write!(f, "Clock::Real"),
            ClockImpl::Virtual(_) => write!(f, "Clock::Virtual"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_clock_basic() {
        let clock = Clock::real_nospin();
        let out = clock.enter(|| {
            let c = Clock::current();
            c.advance(1000);
            let h = c.spawn("t", || 7u32);
            h.join()
        });
        assert_eq!(out, 7);
    }

    #[test]
    fn virtual_sequentializes_by_time() {
        let clock = Clock::virtual_time();
        let order = Arc::new(Mutex::new(Vec::new()));
        let o1 = order.clone();
        let o2 = order.clone();
        clock.enter(move || {
            let c = Clock::current();
            let h1 = c.spawn("a", move || {
                let c = Clock::current();
                c.advance(10);
                o1.lock().push(("a", c.now()));
            });
            let h2 = c.spawn("b", move || {
                let c = Clock::current();
                c.advance(5);
                o2.lock().push(("b", c.now()));
            });
            h1.join();
            h2.join();
        });
        let v = order.lock().clone();
        // "b" reaches time 5 before "a" reaches 10: deterministic order.
        assert_eq!(v, vec![("b", 5), ("a", 10)]);
        assert_eq!(clock.makespan(), 10);
    }

    #[test]
    fn virtual_event_wait_notify() {
        let clock = Clock::virtual_time();
        let total = clock.enter(|| {
            let c = Clock::current();
            let ev = c.new_event();
            let flag = Arc::new(Mutex::new(false));
            let f2 = flag.clone();
            let ev2 = ev.clone();
            let h = c.spawn("producer", move || {
                let c = Clock::current();
                c.advance(100);
                *f2.lock() = true;
                c.notify_all(&ev2);
                1u64
            });
            c.wait_until(&ev, || *flag.lock());
            // The waiter inherits the notifier's time.
            let now = c.now();
            h.join();
            now
        });
        assert_eq!(total, 100);
    }

    #[test]
    fn resource_serializes_cost() {
        let clock = Clock::virtual_time();
        clock.enter(|| {
            let c = Clock::current();
            let bus = c.new_resource();
            let mut handles = Vec::new();
            for i in 0..4 {
                handles.push(c.spawn(&format!("m{i}"), move || {
                    let c = Clock::current();
                    for _ in 0..10 {
                        c.acquire(bus, 10);
                    }
                }));
            }
            for h in handles {
                h.join();
            }
        });
        // 4 threads x 10 ops x 10 units fully serialized = 400.
        assert_eq!(clock.makespan(), 400);
    }

    #[test]
    fn parallel_cpu_work_overlaps() {
        let clock = Clock::virtual_time();
        clock.enter(|| {
            let c = Clock::current();
            let hs: Vec<_> = (0..8)
                .map(|i| {
                    c.spawn(&format!("w{i}"), || {
                        Clock::current().advance(1000);
                    })
                })
                .collect();
            for h in hs {
                h.join();
            }
        });
        // Independent CPU work is fully parallel in virtual time.
        assert_eq!(clock.makespan(), 1000);
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn virtual_deadlock_detected() {
        let clock = Clock::virtual_time();
        clock.enter(|| {
            let c = Clock::current();
            let ev = c.new_event();
            // Nobody will ever notify.
            c.wait_until(&ev, || false);
        });
    }

    #[test]
    fn panics_propagate_through_join() {
        let clock = Clock::virtual_time();
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            clock.enter(|| {
                let c = Clock::current();
                let h = c.spawn("boom", || panic!("kapow"));
                h.join()
            })
        }));
        assert!(res.is_err());
    }

    #[test]
    fn determinism_across_runs() {
        let run = || {
            let clock = Clock::virtual_time();
            let log = Arc::new(Mutex::new(Vec::new()));
            clock.enter(|| {
                let c = Clock::current();
                let hs: Vec<_> = (0..5u64)
                    .map(|i| {
                        let log = log.clone();
                        c.spawn(&format!("t{i}"), move || {
                            let c = Clock::current();
                            for k in 0..4u64 {
                                c.advance((i + 1) * 7 + k);
                                log.lock().push((i, c.now()));
                            }
                        })
                    })
                    .collect();
                for h in hs {
                    h.join();
                }
            });
            let v = log.lock().clone();
            (v, clock.makespan())
        };
        assert_eq!(run(), run());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The virtual makespan of independent workers equals the maximum
        /// per-worker total, regardless of interleaving.
        #[test]
        fn makespan_is_max_of_sums(work in proptest::collection::vec(
            proptest::collection::vec(1u64..500, 1..8), 1..6)) {
            let clock = Clock::virtual_time();
            let expected: u64 = work.iter().map(|w| w.iter().sum::<u64>()).max().unwrap();
            clock.enter(|| {
                let c = Clock::current();
                let hs: Vec<_> = work
                    .iter()
                    .cloned()
                    .enumerate()
                    .map(|(i, chunks)| {
                        c.spawn(&format!("w{i}"), move || {
                            for ch in chunks {
                                Clock::current().advance(ch);
                            }
                        })
                    })
                    .collect();
                for h in hs {
                    h.join();
                }
            });
            prop_assert_eq!(clock.makespan(), expected);
        }

        /// A serializing resource bounds aggregate throughput: makespan is
        /// at least the total cost through the resource and at least every
        /// thread's own demand.
        #[test]
        fn resource_lower_bounds(costs in proptest::collection::vec(
            (1u64..100, 1u64..100), 1..6)) {
            let clock = Clock::virtual_time();
            let bus_total: u64 = costs.iter().map(|&(_, bus)| bus * 3).sum();
            let per_thread_max: u64 = costs.iter().map(|&(cpu, bus)| (cpu + bus) * 3).max().unwrap();
            clock.enter(|| {
                let c = Clock::current();
                let bus = c.new_resource();
                let hs: Vec<_> = costs
                    .iter()
                    .copied()
                    .enumerate()
                    .map(|(i, (cpu, b))| {
                        c.spawn(&format!("m{i}"), move || {
                            let c = Clock::current();
                            for _ in 0..3 {
                                c.advance(cpu);
                                c.acquire(bus, b);
                            }
                        })
                    })
                    .collect();
                for h in hs {
                    h.join();
                }
            });
            prop_assert!(clock.makespan() >= bus_total);
            prop_assert!(clock.makespan() >= per_thread_max);
        }
    }
}
