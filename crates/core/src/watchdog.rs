//! Stall watchdog: detects no-commit-progress windows and dumps the
//! live dependency graphs + hotspot report before (optionally) aborting
//! the straggler.
//!
//! ## Virtual-clock awareness
//!
//! The watchdog runs on a **plain OS thread, never registered with the
//! TM's clock**: a clock-registered poller would participate in the
//! virtual scheduler and change every makespan (and the trace
//! determinism guarantees with it). Instead the thread only *reads*
//! shared atomics — the STM version clock, the TM counters, the live
//! top-level list — and measures its window in wall time, which is
//! meaningful under both clock modes. Consequences:
//!
//! * it is an observer by default; detection and dumping never touch
//!   the clock, so a watchdog-carrying run stays byte-deterministic
//!   under the virtual clock as long as it doesn't fire (and firing
//!   only writes files + wall-timestamped events);
//! * [`WatchdogConfig::abort_straggler`] dooms the straggler only under
//!   a **real** clock, where `Clock::notify_all` is safe from an
//!   unregistered thread. Under a virtual clock a stall means the
//!   scheduler itself is wedged (or the workload livelocked) and an
//!   unregistered doom could corrupt the simulation, so the watchdog
//!   downgrades to dump-only.
//!
//! The watchdog is also feature-gated (`watchdog`, on by default) so
//! minimal builds can compile it out entirely.

use crate::toplevel::TopLevel;
use crate::{FutureTm, TmInner, TmStatsSnapshot};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use wtf_trace::{EventKind, Json};

/// Tuning for [`FutureTm::start_watchdog`].
#[derive(Clone)]
pub struct WatchdogConfig {
    /// How often the watchdog thread polls for progress.
    pub poll: Duration,
    /// No commit/abort/clock progress for this long (while top-levels
    /// are live) counts as a stall.
    pub window: Duration,
    /// Doom the oldest live top-level on stall (real clocks only; see
    /// the module docs). The doomed top restarts with a fresh snapshot.
    pub abort_straggler: bool,
    /// Where to write `watchdog_*.dot` / `watchdog_report.json`;
    /// defaults to [`crate::inspect::snapshot_dir`].
    pub snapshot_dir: Option<PathBuf>,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            poll: Duration::from_millis(50),
            window: Duration::from_secs(1),
            abort_straggler: false,
            snapshot_dir: None,
        }
    }
}

/// Handle to a running watchdog; stops (and joins) the thread on
/// [`WatchdogHandle::stop`] or drop.
pub struct WatchdogHandle {
    // ordering: release-store signals shutdown; the poll loop's
    // acquire-load pairs with it (the join in `stop` provides the final
    // synchronization either way).
    stop: Arc<AtomicBool>,
    // ordering: acqrel-rmw when a stall fires, so the report write-out
    // happens-before a `times_fired` acquire-load that observes the
    // count.
    fired: Arc<AtomicU64>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl WatchdogHandle {
    /// How many distinct stalls the watchdog has reported.
    pub fn times_fired(&self) -> u64 {
        self.fired.load(Ordering::Acquire)
    }

    /// Signals the watchdog thread and joins it.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for WatchdogHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Everything that counts as forward progress. Any change resets the
/// stall window.
#[derive(PartialEq)]
struct Progress {
    stm_clock: u64,
    stats: TmStatsSnapshot,
}

fn progress(tm: &TmInner) -> Progress {
    Progress {
        stm_clock: tm.stm.clock(),
        stats: tm.stats.snapshot(),
    }
}

impl FutureTm {
    /// Starts a stall watchdog over this TM. Explicit opt-in: runs that
    /// need byte-determinism simply never start one.
    ///
    /// The watchdog holds only a `Weak` reference, so it never keeps a
    /// TM alive; it exits on its own once the TM is dropped.
    pub fn start_watchdog(&self, cfg: WatchdogConfig) -> WatchdogHandle {
        let stop = Arc::new(AtomicBool::new(false));
        let fired = Arc::new(AtomicU64::new(0));
        let weak = Arc::downgrade(&self.inner);
        let stop2 = Arc::clone(&stop);
        let fired2 = Arc::clone(&fired);
        let thread = std::thread::Builder::new()
            .name("wtf-watchdog".into())
            .spawn(move || watch_loop(&weak, &cfg, &stop2, &fired2))
            .expect("spawn watchdog thread");
        WatchdogHandle {
            stop,
            fired,
            thread: Some(thread),
        }
    }
}

fn watch_loop(
    weak: &std::sync::Weak<TmInner>,
    cfg: &WatchdogConfig,
    stop: &AtomicBool,
    fired: &AtomicU64,
) {
    let mut last = match weak.upgrade() {
        Some(tm) => progress(&tm),
        None => return,
    };
    let mut since = Instant::now();
    let mut latched = false;
    while !stop.load(Ordering::Acquire) {
        std::thread::sleep(cfg.poll);
        let Some(tm) = weak.upgrade() else { return };
        let now = progress(&tm);
        if now != last {
            last = now;
            since = Instant::now();
            latched = false;
            continue;
        }
        let live = tm.live_tops();
        if live.is_empty() {
            // Idle is not stalled: nothing is supposed to commit.
            since = Instant::now();
            latched = false;
            continue;
        }
        if !latched && since.elapsed() >= cfg.window {
            latched = true; // one report per stall episode
            fired.fetch_add(1, Ordering::AcqRel);
            report_stall(&tm, &live, cfg, since.elapsed());
        }
    }
}

/// Dumps each live top-level's graph DOT, a JSON hotspot report, and
/// (if configured, real clocks only) dooms the straggler.
fn report_stall(tm: &TmInner, live: &[Arc<TopLevel>], cfg: &WatchdogConfig, stalled: Duration) {
    // The straggler: the oldest live top-level (smallest id) — under
    // in-order commit disciplines it is the one everyone else waits on.
    let straggler = live.iter().min_by_key(|t| t.id);
    let straggler_id = straggler.map_or(u64::MAX, |t| t.id);
    tm.watchdog_stalls.add(1);
    tm.tracer.record(
        EventKind::WatchdogStall,
        straggler_id,
        stalled.as_millis() as u64,
    );
    let dir = cfg
        .snapshot_dir
        .clone()
        .unwrap_or_else(crate::inspect::snapshot_dir);
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("[wtf-watchdog] cannot create {}: {e}", dir.display());
        return;
    }
    for top in live {
        let path = dir.join(format!("watchdog_top{}.dot", top.id));
        if let Err(e) = std::fs::write(&path, top.graph_dot()) {
            eprintln!("[wtf-watchdog] cannot write {}: {e}", path.display());
        }
    }
    let summary = tm.tracer.summary();
    let hotspots: Vec<Json> = summary
        .hotspots
        .iter()
        .map(|&(id, n)| Json::obj(vec![("box", id.into()), ("conflicts", n.into())]))
        .collect();
    let report = Json::obj(vec![
        ("stalled_ms", (stalled.as_millis() as u64).into()),
        ("straggler", straggler_id.into()),
        (
            "live_tops",
            Json::Arr(live.iter().map(|t| t.id.into()).collect()),
        ),
        ("stm_clock", tm.stm.clock().into()),
        ("hotspots", Json::Arr(hotspots)),
        (
            "graphs",
            Json::Arr(live.iter().map(|t| t.graph_json()).collect()),
        ),
    ]);
    let path = dir.join("watchdog_report.json");
    if let Err(e) = std::fs::write(&path, report.to_string()) {
        eprintln!("[wtf-watchdog] cannot write {}: {e}", path.display());
    }
    if cfg.abort_straggler && !tm.clock.is_virtual() {
        if let Some(top) = straggler {
            top.doom();
            // Real-clock notify is safe from an unregistered thread;
            // wakes settle/evaluate waits so they observe the doom.
            tm.clock.notify_all(&top.change);
        }
    }
}
