//! Runtime configuration: semantics selection and the virtual cost model.

pub use wtf_fsg::{AtomicitySemantics, OrderingSemantics, Semantics};

/// Virtual-time costs charged by the runtime, in clock units (1 unit ≈ one
/// spin iteration ≈ 1 ns on the paper's 2 GHz Xeon).
///
/// The defaults are calibrated against the paper's Fig. 6 observations:
///
/// * a fully memory-bound workload (`iter = 0`) must not speed up with
///   intra-transaction parallelism — so a transactional read costs about
///   as much *memory-bus* time as CPU time;
/// * future activation costs enough that transactions shorter than ~1k
///   operations don't benefit from parallelization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// CPU cost of a transactional read (STM bookkeeping included).
    pub read_cpu: u64,
    /// Memory-bus share of a read: serialized across all threads.
    pub read_mem: u64,
    /// CPU cost of a transactional write (buffered, no bus traffic until
    /// commit).
    pub write_cpu: u64,
    /// Bus share of publishing one write at commit.
    pub write_mem: u64,
    /// Submitter-side cost of spawning a future (task handoff, wakeup).
    pub submit_cost: u64,
    /// Cost of an evaluate call (synchronization with the future).
    pub evaluate_cost: u64,
    /// Fixed cost of a top-level commit (validation, clock bump).
    pub commit_cost: u64,
    /// Fixed per-transaction begin cost (snapshot acquisition).
    pub begin_cost: u64,
}

impl CostModel {
    /// The calibrated model used by the figure harnesses.
    pub const CALIBRATED: CostModel = CostModel {
        read_cpu: 30,
        read_mem: 25,
        write_cpu: 30,
        write_mem: 25,
        submit_cost: 2_000,
        evaluate_cost: 500,
        commit_cost: 500,
        begin_cost: 200,
    };

    /// All-zero costs: for unit tests that exercise semantics, not timing.
    pub const ZERO: CostModel = CostModel {
        read_cpu: 0,
        read_mem: 0,
        write_cpu: 0,
        write_mem: 0,
        submit_cost: 0,
        evaluate_cost: 0,
        commit_cost: 0,
        begin_cost: 0,
    };
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::ZERO
    }
}

/// Full runtime configuration.
#[derive(Debug, Clone, Copy)]
pub struct TmConfig {
    pub semantics: Semantics,
    pub costs: CostModel,
    /// Model memory-bus contention with a shared virtual resource
    /// (virtual-clock mode only).
    pub model_memory_bus: bool,
}

impl TmConfig {
    pub fn new(semantics: Semantics) -> TmConfig {
        TmConfig {
            semantics,
            costs: CostModel::ZERO,
            model_memory_bus: false,
        }
    }

    pub fn with_costs(mut self, costs: CostModel) -> TmConfig {
        self.costs = costs;
        self
    }

    pub fn with_memory_bus(mut self, on: bool) -> TmConfig {
        self.model_memory_bus = on;
        self
    }
}

impl Default for TmConfig {
    fn default() -> Self {
        TmConfig::new(Semantics::WO_GAC)
    }
}
