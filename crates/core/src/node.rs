//! Sub-transaction nodes: per-node read/write sets and freeze protocol.

use crate::graph::NodeId;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use wtf_backend::BackendBox;
use wtf_mvstm::{BoxId, FxHashMap, Value};

/// Where a read's value came from — needed for top-level commit validation
/// (only `Global` reads are validated against the STM clock) and for
/// resolving escaping futures' read-sets when their spawning top-level
/// commits.
#[derive(Clone)]
pub enum ReadOrigin {
    /// Read the multi-versioned snapshot; records the observed version.
    Global(u64),
    /// Read an iCommitted ancestor's buffered write.
    Ancestor(NodeId),
}

pub struct ReadEntry {
    pub body: Arc<dyn BackendBox>,
    pub origin: ReadOrigin,
}

/// What kind of sub-transaction a node hosts (diagnostics + tracing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// The top-level transaction's first segment.
    Root,
    /// A transactional future's body.
    Future,
    /// A continuation segment (after a submit or an explicit step).
    Continuation,
    /// An evaluation segment (starts with an evaluate).
    Eval,
}

/// One incarnation of a sub-transaction. Aborted incarnations are replaced
/// wholesale (fresh `Arc`) so stale readers can never resurrect old state.
pub struct SubTxNode {
    pub id: NodeId,
    /// Role of this node in its top-level transaction (diagnostics).
    #[allow(dead_code)]
    pub kind: NodeKind,
    /// Set by a conflicting serialization (SO mode) or a cancelled
    /// top-level; the owning thread notices at its next operation.
    // ordering: release-store dooms the node so the doom reason's side
    // effects are visible to the owner; acquire-load at the owner's next
    // operation pairs with it.
    pub doomed: AtomicBool,
    /// Read-set; locked because validators scan it concurrently.
    pub reads: Mutex<FxHashMap<BoxId, ReadEntry>>,
    /// Private write buffer; locked for symmetric access, though only the
    /// owning thread writes it before freeze.
    writes: Mutex<WriteMap>,
    /// Set exactly once at iCommit; after that the write-set is immutable
    /// and shared without locking.
    frozen: OnceLock<FrozenWrites>,
}

/// A node's buffered writes: backend box handle + pending value per id.
pub type WriteMap = FxHashMap<BoxId, (Arc<dyn BackendBox>, Value)>;

/// An iCommitted node's immutable write-set, shared without locking.
pub type FrozenWrites = Arc<WriteMap>;

impl SubTxNode {
    pub fn new(id: NodeId, kind: NodeKind) -> Arc<SubTxNode> {
        Arc::new(SubTxNode {
            id,
            kind,
            doomed: AtomicBool::new(false),
            reads: Mutex::new(FxHashMap::default()),
            writes: Mutex::new(FxHashMap::default()),
            frozen: OnceLock::new(),
        })
    }

    pub fn is_doomed(&self) -> bool {
        self.doomed.load(Ordering::Acquire)
    }

    pub fn doom(&self) {
        self.doomed.store(true, Ordering::Release);
    }

    /// Buffers a write. Must not be called after freeze (enforced: only
    /// the owning thread writes, and it freezes before moving on).
    pub fn buffer_write(&self, id: BoxId, body: Arc<dyn BackendBox>, value: Value) {
        debug_assert!(self.frozen.get().is_none(), "write after iCommit");
        self.writes.lock().insert(id, (body, value));
    }

    /// Looks up the node's own buffered write.
    pub fn own_write(&self, id: BoxId) -> Option<Value> {
        if let Some(frozen) = self.frozen.get() {
            return frozen.get(&id).map(|(_, v)| v.clone());
        }
        self.writes.lock().get(&id).map(|(_, v)| v.clone())
    }

    /// Records a read (later entries win: re-reads refresh the origin).
    pub fn record_read(&self, id: BoxId, body: Arc<dyn BackendBox>, origin: ReadOrigin) {
        self.reads.lock().insert(id, ReadEntry { body, origin });
    }

    /// Freezes the write buffer (iCommit). Idempotent.
    pub fn freeze(&self) -> FrozenWrites {
        self.frozen
            .get_or_init(|| Arc::new(std::mem::take(&mut *self.writes.lock())))
            .clone()
    }

    /// The frozen write-set, if iCommitted.
    pub fn frozen_writes(&self) -> Option<&FrozenWrites> {
        self.frozen.get()
    }

    /// Does the (frozen or live) write-set intersect `ids`? Used by both
    /// validation passes.
    pub fn writes_intersect(&self, ids: &FxHashMap<BoxId, ()>) -> bool {
        if let Some(frozen) = self.frozen.get() {
            return frozen.keys().any(|k| ids.contains_key(k));
        }
        self.writes.lock().keys().any(|k| ids.contains_key(k))
    }

    /// Does the read-set intersect `ids`?
    pub fn reads_intersect(&self, ids: &FxHashMap<BoxId, ()>) -> bool {
        self.reads.lock().keys().any(|k| ids.contains_key(k))
    }

    /// The smallest box id in `reads ∩ ids`, for abort attribution (the
    /// minimum — not iteration order — so traces stay deterministic).
    pub fn read_conflict_witness(&self, ids: &FxHashMap<BoxId, ()>) -> Option<BoxId> {
        self.reads
            .lock()
            .keys()
            .filter(|k| ids.contains_key(k))
            .copied()
            .min_by_key(|b| b.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wtf_backend::{StmBackend, TBox};

    fn backend() -> wtf_backend::MvstmBackend {
        wtf_backend::MvstmBackend::new(wtf_mvstm::Stm::new())
    }

    #[test]
    fn freeze_makes_writes_shared_and_immutable() {
        let stm = backend();
        let b: TBox<i64> = TBox::from_body(stm.new_box(Arc::new(1i64)));
        let node = SubTxNode::new(0, NodeKind::Root);
        let body = b.body().clone();
        node.buffer_write(b.id(), body.clone(), Arc::new(2i64));
        assert_eq!(
            *node
                .own_write(b.id())
                .unwrap()
                .downcast_ref::<i64>()
                .unwrap(),
            2
        );
        let frozen = node.freeze();
        assert_eq!(frozen.len(), 1);
        // Idempotent.
        let again = node.freeze();
        assert!(Arc::ptr_eq(&frozen, &again));
        assert!(node.frozen_writes().is_some());
    }

    #[test]
    fn intersections() {
        let stm = backend();
        let a: TBox<i64> = TBox::from_body(stm.new_box(Arc::new(0i64)));
        let b: TBox<i64> = TBox::from_body(stm.new_box(Arc::new(0i64)));
        let node = SubTxNode::new(0, NodeKind::Future);
        node.buffer_write(a.id(), a.body().clone(), Arc::new(1i64));
        node.record_read(b.id(), b.body().clone(), ReadOrigin::Global(0));
        let mut ids = FxHashMap::default();
        ids.insert(a.id(), ());
        assert!(node.writes_intersect(&ids));
        assert!(!node.reads_intersect(&ids));
        let mut ids_b = FxHashMap::default();
        ids_b.insert(b.id(), ());
        assert!(node.reads_intersect(&ids_b));
        assert!(!node.writes_intersect(&ids_b));
    }

    #[test]
    fn doom_flag() {
        let node = SubTxNode::new(3, NodeKind::Continuation);
        assert!(!node.is_doomed());
        node.doom();
        assert!(node.is_doomed());
    }
}
