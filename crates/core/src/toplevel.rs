//! Top-level transactions: graph ownership, future serialization
//! (forward/backward validation), settlement policies and final commit.

use crate::ctx::TxCtx;
use crate::future::{BodyFn, EscapeRecord, FutState, FutureCore};
use crate::graph::{Graph, NodeId, NodeStatus};
use crate::node::{NodeKind, ReadOrigin, SubTxNode};
use crate::{AtomicitySemantics, OrderingSemantics, TmInner};
use parking_lot::{Mutex, RwLock};
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use wtf_backend::{BackendBox, BackendSnapshot};
use wtf_mvstm::{BoxId, FxHashMap, StmError, Value};
use wtf_trace::EventKind;
use wtf_vclock::Event;

/// Outcome of a future body's commit request (§4.1 commit logic).
pub(crate) enum FutureCommitOutcome {
    /// Forward validation passed (or SO forced it): serialized at the
    /// submission point.
    SerializedAtSubmission,
    /// WO: forward validation failed; the commit "blocks" (state-wise)
    /// until the future is evaluated.
    Pending,
    /// The spawning top-level already committed (GAC): the future escaped
    /// and awaits adoption.
    Escaped,
    /// The future itself was doomed during execution (a stale read): the
    /// body must re-execute.
    Doomed,
}

/// Why a top-level commit attempt failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CommitFail {
    /// Commit-time read validation failed against another top-level
    /// transaction: restart with a fresh snapshot.
    CrossTop,
    /// An internal doom (SO continuation conflict) cascaded: restart the
    /// top-level thread, keeping the snapshot and already-serialized
    /// futures (replay restart — the library's stand-in for JTF's
    /// continuation-based partial rollback).
    Internal,
}

/// Final-commit byproducts needed to resolve escaping futures.
pub(crate) struct CommitInfo {
    pub version: u64,
    /// Which node's write won the final overlay for each box.
    pub winners: FxHashMap<BoxId, NodeId>,
}

/// One incarnation of a top-level transaction.
pub struct TopLevel {
    pub id: u64,
    pub(crate) snapshot: BackendSnapshot,
    pub(crate) graph: Graph,
    pub(crate) nodes: RwLock<Vec<Arc<SubTxNode>>>,
    /// Internal doom that cannot be contained to one segment: forces a
    /// whole-top-level restart.
    // ordering: release-store dooms (or, on restart, re-arms) the
    // incarnation; acquire-load at the next operation pairs with it so
    // the doom reason's side effects are visible.
    doomed: AtomicBool,
    /// This incarnation was abandoned (retry or explicit abort).
    // ordering: release-store on retry/abort; acquire-load observers
    // pair with it before tearing the incarnation down.
    cancelled: AtomicBool,
    /// GAC: the top-level committed; no more serialize-at-submission.
    // ordering: release-store at commit publishes the seal after the
    // commit itself; acquire-load in the serialization checks pairs
    // with it.
    sealed: AtomicBool,
    /// Effective ordering, sampled once at begin: the configured SO, or
    /// the contention manager's adaptive WO→SO flip. Settlement and
    /// forward validation consult this field, never the live config —
    /// one transaction must not mix orderings mid-flight (a flip between
    /// `complete_future` and `settle_wait_all` would deadlock commit on
    /// a future that parked itself Pending).
    pub(crate) strong: bool,
    /// Box id of the most recent cross-top conflict abort charged to
    /// this incarnation (`u64::MAX` = none): the attribution
    /// `FutureTm::atomic` hands the contention manager on a full
    /// restart.
    // ordering: relaxed-store, relaxed-load — written and read by the
    // owning thread across an abort boundary; the abort path's unwinding
    // already orders the pair. relaxed-guard: the attribution hint only
    // biases the contention manager — a stale read picks a slightly
    // wrong victim, never breaks safety.
    pub(crate) conflict_box: AtomicU64,
    /// Every future (transitively) spawned under this top-level.
    pub(crate) futures: Mutex<Vec<Arc<FutureCore>>>,
    /// Futures submitted by the top-level thread itself, in submission
    /// order — the replay-restart reuse queue.
    pub(crate) top_submissions: Mutex<Vec<Arc<FutureCore>>>,
    /// Notified on future completion and other settlement-relevant events.
    pub(crate) change: Event,
    pub(crate) committed: Mutex<Option<CommitInfo>>,
}

impl TopLevel {
    pub(crate) fn begin(tm: &Arc<TmInner>) -> Arc<TopLevel> {
        let id = tm.next_top_id();
        let strong = tm.cfg.semantics.ordering == OrderingSemantics::Strong
            || tm.stm.cm().serialize_at_submission();
        let top = Arc::new(TopLevel {
            id,
            snapshot: tm.stm.acquire_snapshot(),
            graph: Graph::with_root(),
            nodes: RwLock::new(vec![SubTxNode::new(0, NodeKind::Root)]),
            doomed: AtomicBool::new(false),
            cancelled: AtomicBool::new(false),
            sealed: AtomicBool::new(false),
            strong,
            conflict_box: AtomicU64::new(u64::MAX),
            futures: Mutex::new(Vec::new()),
            top_submissions: Mutex::new(Vec::new()),
            change: tm.clock.new_event(),
            committed: Mutex::new(None),
        });
        tm.clock.advance(tm.cfg.costs.begin_cost);
        tm.register_top(&top);
        tm.tracer
            .record(EventKind::TopBegin, id, top.snapshot.version());
        tm.tracer.maybe_sample_gauges();
        top
    }

    pub fn snapshot_version(&self) -> u64 {
        self.snapshot.version()
    }

    pub(crate) fn is_doomed(&self) -> bool {
        self.doomed.load(Ordering::Acquire)
    }

    pub(crate) fn doom(&self) {
        self.doomed.store(true, Ordering::Release);
    }

    pub(crate) fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Acquire)
    }

    pub(crate) fn is_sealed(&self) -> bool {
        self.sealed.load(Ordering::Acquire)
    }

    pub(crate) fn node_arc(&self, id: NodeId) -> Arc<SubTxNode> {
        self.nodes.read()[id].clone()
    }

    pub(crate) fn node_count(&self) -> usize {
        self.nodes.read().len()
    }

    /// Creates the future + continuation node pair for a submit, marking
    /// the spawning node iCommitted (its writes become visible to both).
    pub(crate) fn spawn_nodes(&self, cur: NodeId) -> (NodeId, NodeId, Arc<SubTxNode>) {
        let mut nodes = self.nodes.write();
        let (f, c) = self.graph.update(|g| {
            g.set_status(cur, NodeStatus::ICommitted);
            let f = g.add_node(NodeStatus::Active, &[cur]);
            let c = g.add_node(NodeStatus::Active, &[cur]);
            (f, c)
        });
        debug_assert_eq!(f, nodes.len());
        nodes.push(SubTxNode::new(f, NodeKind::Future));
        nodes.push(SubTxNode::new(c, NodeKind::Continuation));
        let cont = nodes[c].clone();
        (f, c, cont)
    }

    /// Opens a fresh segment node after `pred` (which the caller froze).
    pub(crate) fn open_segment(&self, pred: NodeId, kind: NodeKind) -> Arc<SubTxNode> {
        let mut nodes = self.nodes.write();
        let id = self.graph.update(|g| {
            g.set_status(pred, NodeStatus::ICommitted);
            g.add_node(NodeStatus::Active, &[pred])
        });
        debug_assert_eq!(id, nodes.len());
        let node = SubTxNode::new(id, kind);
        nodes.push(node.clone());
        node
    }

    /// Replaces a node with a fresh incarnation (segment retry / future
    /// body retry).
    pub(crate) fn reset_node(&self, id: NodeId, kind: NodeKind) -> Arc<SubTxNode> {
        let mut nodes = self.nodes.write();
        let fresh = SubTxNode::new(id, kind);
        nodes[id] = fresh.clone();
        self.graph.update(|g| g.set_status(id, NodeStatus::Active));
        fresh
    }

    pub(crate) fn register_future(
        &self,
        tm: &Arc<TmInner>,
        fnode: NodeId,
        cnode: NodeId,
        body: BodyFn,
        parent: Option<&Arc<FutureCore>>,
    ) -> Arc<FutureCore> {
        let core = Arc::new(FutureCore {
            id: tm.next_future_id(),
            top_id: self.id,
            node: fnode,
            cont_node: cnode,
            final_node: Mutex::new(None),
            state: Mutex::new(FutState::Running),
            result: Mutex::new(None),
            event: tm.clock.new_event(),
            body,
            spawn_commit_version: Mutex::new(None),
            escape: Mutex::new(None),
            children: Mutex::new(Vec::new()),
        });
        self.futures.lock().push(core.clone());
        if let Some(p) = parent {
            p.children.lock().push(core.clone());
        }
        core
    }

    /// The nodes whose effects a future's serialization carries: the
    /// future's own chain plus nested futures already serialized inside it
    /// — computed as the ancestors of the final node that lie within the
    /// future's subtree.
    fn subtree_members(
        g: &crate::graph::GraphInner,
        fnode: NodeId,
        final_node: NodeId,
    ) -> Vec<NodeId> {
        let mut subtree: HashSet<NodeId> = g.reachable_from(fnode).into_iter().collect();
        subtree.insert(fnode);
        let mut members: Vec<NodeId> = g
            .ancestors(final_node)
            .into_iter()
            .filter(|n| subtree.contains(n))
            .collect();
        members.push(final_node);
        if !members.contains(&fnode) {
            members.insert(0, fnode);
        }
        members
    }

    /// External read-set of a future: every box read by its members whose
    /// value came from outside the subtree.
    fn external_reads(
        nodes: &[Arc<SubTxNode>],
        members: &[NodeId],
    ) -> Vec<(Arc<dyn BackendBox>, ReadOrigin)> {
        let member_set: HashSet<NodeId> = members.iter().copied().collect();
        let mut seen: HashSet<BoxId> = HashSet::new();
        let mut out = Vec::new();
        for &m in members {
            for (id, entry) in nodes[m].reads.lock().iter() {
                let external = match entry.origin {
                    ReadOrigin::Global(_) => true,
                    ReadOrigin::Ancestor(a) => !member_set.contains(&a),
                };
                if external && seen.insert(*id) {
                    out.push((entry.body.clone(), entry.origin.clone()));
                }
            }
        }
        out
    }

    /// Overlay of the members' write-sets in rank order.
    fn overlay_writes(
        g: &crate::graph::GraphInner,
        nodes: &[Arc<SubTxNode>],
        members: &[NodeId],
    ) -> FxHashMap<BoxId, (Arc<dyn BackendBox>, Value, NodeId)> {
        let mut ordered: Vec<NodeId> = members.to_vec();
        ordered.sort_by_key(|&n| (g.rank[n], n));
        let mut out: FxHashMap<BoxId, (Arc<dyn BackendBox>, Value, NodeId)> = FxHashMap::default();
        for n in ordered {
            if let Some(frozen) = nodes[n].frozen_writes() {
                for (id, (body, value)) in frozen.iter() {
                    out.insert(*id, (body.clone(), value.clone(), n));
                }
            }
        }
        out
    }

    /// A future's body finished executing: attempt serialization at the
    /// submission point (forward validation), or park it.
    pub(crate) fn complete_future(
        &self,
        tm: &Arc<TmInner>,
        core: &Arc<FutureCore>,
        final_node: NodeId,
        value: Value,
    ) -> FutureCommitOutcome {
        if core.state() == FutState::Cancelled {
            // The future was cancelled (replay restart or top abort) while
            // its body was finishing: discard the incarnation's effects.
            tm.clock.notify_all(&core.event);
            tm.clock.notify_all(&self.change);
            return FutureCommitOutcome::Escaped;
        }
        *core.final_node.lock() = Some(final_node);
        *core.result.lock() = Some(value);
        let nodes = self.nodes.read();
        let strong = self.strong;
        let outcome = self.graph.update(|g| {
            if self.is_sealed() {
                g.set_status(core.node, NodeStatus::CompletedPending);
                g.set_status(final_node, NodeStatus::CompletedPending);
                return FutureCommitOutcome::Escaped;
            }
            let members = Self::subtree_members(g, core.node, final_node);
            // A doomed member read state that a conflicting serialization
            // invalidated: this incarnation cannot serialize anywhere.
            if members.iter().any(|&m| nodes[m].is_doomed()) {
                return FutureCommitOutcome::Doomed;
            }
            // Union of the subtree's (frozen) writes.
            let mut write_ids: FxHashMap<BoxId, ()> = FxHashMap::default();
            for &m in &members {
                if let Some(frozen) = nodes[m].frozen_writes() {
                    write_ids.extend(frozen.keys().map(|&k| (k, ())));
                }
            }
            // Forward validation (§4.1): no sub-transaction reachable from
            // the continuation may have read anything the future wrote.
            let conflicters: Vec<NodeId> = g
                .reachable_from(core.cont_node)
                .into_iter()
                .chain(std::iter::once(core.cont_node))
                .filter(|&n| {
                    g.status[n] != NodeStatus::Aborted && nodes[n].reads_intersect(&write_ids)
                })
                .collect();
            if conflicters.is_empty() {
                g.add_edge(final_node, core.cont_node);
                for &m in &members {
                    g.set_status(m, NodeStatus::ICommitted);
                }
                FutureCommitOutcome::SerializedAtSubmission
            } else if strong {
                // SO: the future wins its submission point; conflicting
                // readers are doomed. An already-iCommitted (or branched)
                // reader cannot be rolled back alone: cascade to a
                // whole-top-level restart.
                g.add_edge(final_node, core.cont_node);
                for &m in &members {
                    g.set_status(m, NodeStatus::ICommitted);
                }
                for &n in &conflicters {
                    if crate::debug_enabled() {
                        eprintln!(
                            "[debug] future {} dooms node {} (active={})",
                            core.id,
                            n,
                            g.status[n] == NodeStatus::Active && g.succs[n].is_empty()
                        );
                    }
                    nodes[n].doom();
                    tm.stats.internal_aborts();
                    if tm.tracer.on() {
                        // Attribute the doom to the box the reader lost.
                        let witness = nodes[n].read_conflict_witness(&write_ids);
                        if let Some(b) = witness {
                            tm.tracer.charge_conflict(b.0);
                        }
                        tm.tracer.record(
                            EventKind::SegmentDoomed,
                            n as u64,
                            witness.map(|b| b.0).unwrap_or(u64::MAX),
                        );
                    }
                    let contained = g.status[n] == NodeStatus::Active && g.succs[n].is_empty();
                    if !contained {
                        self.doom();
                    }
                }
                FutureCommitOutcome::SerializedAtSubmission
            } else {
                g.set_status(core.node, NodeStatus::CompletedPending);
                g.set_status(final_node, NodeStatus::CompletedPending);
                FutureCommitOutcome::Pending
            }
        });
        drop(nodes);
        if tm.tracer.full() && self.is_doomed() {
            // An uncontained doom cascades to a whole-top restart: dump
            // the graph that forced it while the evidence is still live.
            crate::inspect::auto_dump(tm, self, "doom");
        }
        // A replay restart may have cancelled us concurrently; never
        // resurrect a cancelled incarnation.
        let transition = |next: FutState| {
            let mut st = core.state.lock();
            if *st != FutState::Cancelled {
                *st = next;
                true
            } else {
                false
            }
        };
        match &outcome {
            FutureCommitOutcome::SerializedAtSubmission => {
                if transition(FutState::Serialized) {
                    tm.stats.serialized_at_submission();
                    tm.tracer
                        .record(EventKind::FutureSerializedSubmission, core.id, self.id);
                }
            }
            FutureCommitOutcome::Pending => {
                transition(FutState::Completed);
            }
            FutureCommitOutcome::Escaped => {
                // The spawner already committed: resolve the escape record
                // immediately from the recorded commit info.
                self.resolve_escape(core);
                transition(FutState::Completed);
            }
            FutureCommitOutcome::Doomed => {}
        }
        tm.clock.notify_all(&core.event);
        tm.clock.notify_all(&self.change);
        outcome
    }

    /// Serialization upon evaluation (§4.1 backward validation). Returns
    /// the result value, or `Err(())` if the future must re-execute.
    pub(crate) fn serialize_at_evaluation(
        &self,
        core: &Arc<FutureCore>,
        eval_pred: NodeId,
        eval_node: NodeId,
    ) -> Result<Value, ()> {
        let nodes = self.nodes.read();
        let final_node = core.final_node.lock().expect("completed future");
        let ok = self.graph.update(|g| {
            let members = Self::subtree_members(g, core.node, final_node);
            if members.iter().any(|&m| nodes[m].is_doomed()) {
                return false;
            }
            let member_set: HashSet<NodeId> = members.iter().copied().collect();
            // Boxes the future observed from outside its subtree.
            let mut read_ids: FxHashMap<BoxId, ()> = FxHashMap::default();
            for (body, _) in Self::external_reads(&nodes, &members) {
                read_ids.insert(body.id(), ());
            }
            // The sub-transactions that ran concurrently with the future:
            // the backward chain from the evaluation point, minus the
            // future's own ancestors (whose writes it did see).
            let f_anc: HashSet<NodeId> = g.ancestors(core.node).into_iter().collect();
            let chain: Vec<NodeId> = g
                .backward_chain(eval_node, usize::MAX)
                .into_iter()
                .filter(|n| !f_anc.contains(n) && !member_set.contains(n))
                .collect();
            let conflict = chain.iter().any(|&n| {
                g.status[n] != NodeStatus::Aborted && nodes[n].writes_intersect(&read_ids)
            });
            if conflict {
                return false;
            }
            // Serialize after the continuation, before the evaluation.
            g.add_edge(eval_pred, core.node);
            g.add_edge(final_node, eval_node);
            for &m in &members {
                g.set_status(m, NodeStatus::ICommitted);
            }
            true
        });
        drop(nodes);
        if ok {
            core.set_state(FutState::Serialized);
            Ok(core.result_value().expect("result"))
        } else {
            Err(())
        }
    }

    /// Re-incarnates a future's node as a direct successor of the
    /// evaluation point (inline re-execution).
    pub(crate) fn reincarnate_future_at(
        &self,
        core: &Arc<FutureCore>,
        eval_pred: NodeId,
    ) -> Arc<SubTxNode> {
        let mut nodes = self.nodes.write();
        let fresh = SubTxNode::new(core.node, NodeKind::Future);
        nodes[core.node] = fresh.clone();
        self.graph.update(|g| {
            g.set_status(core.node, NodeStatus::Active);
            g.add_edge(eval_pred, core.node);
        });
        fresh
    }

    /// Finishes an inline re-execution: publishes the subtree at the
    /// evaluation point.
    pub(crate) fn finish_inline_serialization(
        &self,
        core: &Arc<FutureCore>,
        final_node: NodeId,
        eval_node: NodeId,
        value: Value,
    ) {
        self.graph.update(|g| {
            g.add_edge(final_node, eval_node);
            let members = Self::subtree_members(g, core.node, final_node);
            for m in members {
                g.set_status(m, NodeStatus::ICommitted);
            }
        });
        *core.final_node.lock() = Some(final_node);
        *core.result.lock() = Some(value);
        core.set_state(FutState::Serialized);
    }

    /// Recursively cancels futures spawned by an aborted body incarnation.
    pub(crate) fn cancel_children(&self, tm: &Arc<TmInner>, core: &Arc<FutureCore>) {
        let children: Vec<Arc<FutureCore>> = core.children.lock().drain(..).collect();
        for child in children {
            self.cancel_children(tm, &child);
            child.set_state(FutState::Cancelled);
            tm.tracer
                .record(EventKind::FutureCancelled, child.id, self.id);
            self.graph.update(|g| {
                g.set_status(child.node, NodeStatus::Aborted);
                if let Some(f) = *child.final_node.lock() {
                    g.set_status(f, NodeStatus::Aborted);
                }
            });
            tm.clock.notify_all(&child.event);
        }
    }

    /// Abandons this incarnation (retry or explicit abort).
    pub(crate) fn cancel(&self, tm: &Arc<TmInner>) {
        self.cancelled.store(true, Ordering::Release);
        let futures: Vec<Arc<FutureCore>> = self.futures.lock().clone();
        for fut in futures {
            let st = fut.state();
            if st != FutState::Adopted {
                fut.set_state(FutState::Cancelled);
                if st != FutState::Cancelled {
                    tm.tracer
                        .record(EventKind::FutureCancelled, fut.id, self.id);
                }
            }
            tm.clock.notify_all(&fut.event);
        }
        tm.clock.notify_all(&self.change);
    }

    /// Replay restart (internal doom recovery): abandons the current
    /// top-level *thread chain* but keeps the snapshot, the graph, and
    /// every already-serialized future. Returns the reuse queue and the
    /// fresh root node the re-execution starts from.
    ///
    /// Soundness rests on the standard replay-determinism assumption (the
    /// same one behind JTF's continuation rollback): re-running the
    /// transaction body observes identical values up to the first doomed
    /// read — earlier reads were validated against the same snapshot and
    /// graph — hence issues the identical prefix of submissions.
    pub(crate) fn restart_top_chain(
        &self,
        tm: &Arc<TmInner>,
    ) -> (Vec<Arc<FutureCore>>, Arc<SubTxNode>) {
        let replay: Vec<Arc<FutureCore>> = std::mem::take(&mut *self.top_submissions.lock());
        // Cancel not-yet-serialized top submissions: they are respawned at
        // their submission index. (Serialized ones are reused; their
        // nested pending children stay alive and valid.)
        for fut in &replay {
            if fut.state() != FutState::Serialized {
                fut.set_state(FutState::Cancelled);
                self.graph.update(|g| {
                    g.set_status(fut.node, NodeStatus::Aborted);
                    if let Some(f) = *fut.final_node.lock() {
                        g.set_status(f, NodeStatus::Aborted);
                    }
                });
                tm.clock.notify_all(&fut.event);
            }
        }
        self.doomed.store(false, Ordering::Release);
        // Fresh chain root (a second rank-0 node; the old chain becomes
        // garbage no path reaches).
        let mut nodes = self.nodes.write();
        let id = self.graph.update(|g| g.add_node(NodeStatus::Active, &[]));
        debug_assert_eq!(id, nodes.len());
        let node = SubTxNode::new(id, NodeKind::Root);
        nodes.push(node.clone());
        (replay, node)
    }

    /// Reuses an already-serialized future during a replay restart: links
    /// its effects after `cur` and returns the new continuation node.
    pub(crate) fn relink_reused_future(
        &self,
        core: &Arc<FutureCore>,
        cur: NodeId,
    ) -> Arc<SubTxNode> {
        let final_node = core.final_node.lock().expect("serialized future");
        let mut nodes = self.nodes.write();
        let c = self.graph.update(|g| {
            g.set_status(cur, NodeStatus::ICommitted);
            // Re-home the future's subtree onto the new chain: its old
            // spawn point belongs to the aborted chain, whose segments
            // must not leak into the inclusion set. By replay determinism
            // the new chain's prefix is equivalent to the old one.
            g.set_preds(core.node, &[cur]);
            g.add_node(NodeStatus::Active, &[cur, final_node])
        });
        debug_assert_eq!(c, nodes.len());
        let node = SubTxNode::new(c, NodeKind::Continuation);
        nodes.push(node.clone());
        self.top_submissions.lock().push(core.clone());
        node
    }

    // ---------------- commit ----------------

    /// Commits the top-level transaction (called with the top thread's ctx
    /// so LAC can perform implicit evaluations).
    pub(crate) fn commit(self: &Arc<Self>, ctx: &mut TxCtx) -> Result<(), CommitFail> {
        let tm = ctx.tm.clone();
        tm.clock.advance(tm.cfg.costs.commit_cost);
        // 1. Settle futures per the effective ordering (the configured
        // semantics, or the adaptive WO→SO flip sampled at begin).
        match (self.strong, tm.cfg.semantics.atomicity) {
            (true, _) => self.settle_wait_all(&tm),
            (false, AtomicitySemantics::Local) => {
                self.settle_lac(ctx).map_err(|_| CommitFail::Internal)?
            }
            (false, AtomicitySemantics::Global) => {
                // Escaping futures are allowed to outlive us; sealing
                // happens below under the graph lock.
            }
        }
        // 2. Internal dooms force a restart.
        if self.is_doomed() || self.is_cancelled() || ctx.node.is_doomed() {
            return Err(CommitFail::Internal);
        }
        // 3. Close the final segment; seal against late submissions (GAC).
        ctx.node.freeze();
        let commit_node = ctx.node.id;
        self.graph.update(|g| {
            g.set_status(commit_node, NodeStatus::ICommitted);
            self.sealed.store(true, Ordering::Release);
        });
        // 4. Gather the transaction's effects: the nodes on a path from
        // the root to the commit node (the paper's inclusion rule).
        let gathered = {
            let nodes = self.nodes.read();
            let (_, g) = self.graph.snapshot();
            let mut included = g.ancestors(commit_node);
            included.push(commit_node);
            included.retain(|&n| g.status[n] == NodeStatus::ICommitted);
            if included.iter().any(|&n| nodes[n].is_doomed()) {
                return Err(CommitFail::Internal);
            }
            let overlay = Self::overlay_writes(&g, &nodes, &included);
            let mut winners: FxHashMap<BoxId, NodeId> = FxHashMap::default();
            let mut writes: Vec<(Arc<dyn BackendBox>, Value)> = Vec::with_capacity(overlay.len());
            for (id, (body, value, node)) in overlay {
                winners.insert(id, node);
                writes.push((body, value));
            }
            // Keep the observed version alongside each body: it is what
            // the commit-time serialization record (`CommitRead` events)
            // re-emits for offline checkers, and it must be captured here
            // — after publication, GC may prune the observed version.
            let mut reads: Vec<(Arc<dyn BackendBox>, u64)> = Vec::new();
            let mut seen: HashSet<BoxId> = HashSet::new();
            for &n in &included {
                for (id, entry) in nodes[n].reads.lock().iter() {
                    if let ReadOrigin::Global(v) = entry.origin {
                        if seen.insert(*id) {
                            reads.push((entry.body.clone(), v));
                        }
                    }
                }
            }
            Ok((writes, winners, reads))
        };
        let (writes, winners, reads) = gathered?;
        if self.is_doomed() {
            return Err(CommitFail::Internal);
        }
        // 5. Validate + publish through the STM substrate: the backend
        //    locks only the stripes covering this read/write footprint, so
        //    top-level transactions with disjoint footprints commit in
        //    parallel. Charge the bus for the published writes.
        let n_writes = writes.len() as u64;
        let version = if writes.is_empty() {
            self.snapshot_version()
        } else {
            let read_bodies: Vec<Arc<dyn BackendBox>> =
                reads.iter().map(|(body, _)| body.clone()).collect();
            match tm
                .stm
                .commit_attributed(self.snapshot_version(), &read_bodies, writes)
            {
                Ok(v) => v,
                Err(conflict_box) => {
                    tm.stats.top_aborts();
                    self.conflict_box.store(conflict_box.0, Ordering::Relaxed);
                    // The substrate already charged the conflict map; the
                    // event stream additionally ties the abort to this top.
                    tm.tracer
                        .record(EventKind::TopConflictAbort, self.id, conflict_box.0);
                    crate::inspect::on_conflict_abort(&tm, self);
                    return Err(CommitFail::CrossTop);
                }
            }
        };
        if n_writes > 0 {
            ctx.charge(0, n_writes * tm.cfg.costs.write_mem);
        }
        // 6. Publish commit info and resolve escaping futures.
        *self.committed.lock() = Some(CommitInfo { version, winners });
        let futures: Vec<Arc<FutureCore>> = self.futures.lock().clone();
        for fut in &futures {
            *fut.spawn_commit_version.lock() = Some(version);
            if fut.state() == FutState::Completed && fut.escape.lock().is_none() {
                self.resolve_escape(fut);
            }
            tm.clock.notify_all(&fut.event);
        }
        tm.stats.top_commits();
        if tm.tracer.full() {
            // Serialization record: one `CommitRead` per gathered read,
            // contiguous on this lane immediately before the `TopCommit`,
            // so offline checkers (`wtf-check`) can rebuild the committed
            // read-set from the trace alone.
            let mut rec: Vec<(u64, u64)> =
                reads.iter().map(|(body, v)| (body.id().0, *v)).collect();
            rec.sort_unstable();
            for (id, v) in rec {
                tm.tracer.record_full(EventKind::CommitRead, id, v);
            }
        }
        tm.tracer.record(EventKind::TopCommit, self.id, version);
        if tm.tracer.full() {
            tm.conflict_abort_streak.store(0, Ordering::Relaxed);
        }
        tm.tracer.maybe_sample_gauges();
        Ok(())
    }

    /// SO: "T's commit request has to be necessarily blocked until all the
    /// futures spawned by T have committed."
    fn settle_wait_all(&self, tm: &Arc<TmInner>) {
        let mut guard = 0u32;
        loop {
            guard += 1;
            assert!(guard < 1_000_000, "settle_wait_all spinning");
            let futures: Vec<Arc<FutureCore>> = self.futures.lock().clone();
            let before = futures.len();
            let all_settled = futures.iter().all(|f| {
                matches!(
                    f.state(),
                    FutState::Serialized | FutState::Failed | FutState::Cancelled
                )
            });
            if all_settled && self.futures.lock().len() == before {
                return;
            }
            if self.is_cancelled() || self.is_doomed() {
                return;
            }
            let top_change = self.change.clone();
            let me = self;
            let wait_start = tm.tracer.span_start();
            tm.clock.wait_until(&top_change, || {
                me.is_cancelled()
                    || me.is_doomed()
                    || me.futures.lock().iter().all(|f| {
                        matches!(
                            f.state(),
                            FutState::Serialized | FutState::Failed | FutState::Cancelled
                        )
                    })
            });
            tm.tracer
                .span_end(EventKind::EvalWaitSpan, wait_start, u64::MAX);
        }
    }

    /// LAC: implicitly evaluate every unserialized future before commit,
    /// in completion order ("no constraint is imposed on the order in
    /// which they are implicitly evaluated").
    fn settle_lac(self: &Arc<Self>, ctx: &mut TxCtx) -> Result<(), StmError> {
        let mut guard = 0u32;
        loop {
            guard += 1;
            assert!(guard < 1_000_000, "settle_lac spinning");
            if self.is_cancelled() || self.is_doomed() {
                return Ok(()); // commit will notice and restart
            }
            let pending: Vec<Arc<FutureCore>> = self
                .futures
                .lock()
                .iter()
                .filter(|f| matches!(f.state(), FutState::Running | FutState::Completed))
                .cloned()
                .collect();
            if pending.is_empty() {
                return Ok(());
            }
            // Prefer one that already completed (straggler avoidance);
            // otherwise wait for any change.
            let target = pending
                .iter()
                .find(|f| f.state() == FutState::Completed)
                .cloned();
            match target {
                Some(fut) => match ctx.evaluate_core(&fut, true) {
                    Ok(_) => {}
                    // An explicitly-aborted future has no effects to
                    // include; the implicit evaluation just settles it.
                    Err(StmError::UserAbort) => {}
                    Err(StmError::Conflict) => return Err(StmError::Conflict),
                },
                None => {
                    let me = self.clone();
                    let wait_start = ctx.tm.tracer.span_start();
                    ctx.tm.clock.wait_until(&self.change, move || {
                        me.is_cancelled()
                            || me.is_doomed()
                            || me
                                .futures
                                .lock()
                                .iter()
                                .any(|f| f.state() != FutState::Running)
                    });
                    ctx.tm
                        .tracer
                        .span_end(EventKind::EvalWaitSpan, wait_start, u64::MAX);
                }
            }
        }
    }

    /// Resolves an escaped future's external read-set against the
    /// spawner's committed state (§4.2 GAC).
    fn resolve_escape(&self, core: &Arc<FutureCore>) {
        let committed = self.committed.lock();
        let info = match committed.as_ref() {
            Some(i) => i,
            None => return, // spawner never committed; stays unresolved
        };
        let final_node = core.final_node.lock().expect("completed future");
        let nodes = self.nodes.read();
        let (_, g) = self.graph.snapshot();
        let members = Self::subtree_members(&g, core.node, final_node);
        let mut poisoned = false;
        let mut reads: Vec<(Arc<dyn BackendBox>, u64)> = Vec::new();
        for (body, origin) in Self::external_reads(&nodes, &members) {
            match origin {
                ReadOrigin::Global(v) => reads.push((body, v)),
                ReadOrigin::Ancestor(a) => {
                    // The observed ancestor value is revalidatable only if
                    // it is exactly what the spawner committed for the box.
                    if info.winners.get(&body.id()) == Some(&a) {
                        reads.push((body, info.version));
                    } else {
                        poisoned = true;
                    }
                }
            }
        }
        let writes: Vec<(Arc<dyn BackendBox>, Value)> = Self::overlay_writes(&g, &nodes, &members)
            .into_iter()
            .map(|(_, (body, value, _))| (body, value))
            .collect();
        *core.escape.lock() = Some(EscapeRecord {
            reads,
            writes,
            poisoned,
        });
    }
}

/// Reports one decided future-attempt fate to the contention manager.
/// The adaptive policy windows these to estimate the internal abort
/// rate, so call sites follow one contract: `aborted = true` whenever an
/// incarnation's speculative work is discarded (doomed subtree, doomed
/// read, failed backward validation forcing a re-execution), `false`
/// whenever an incarnation serializes (at submission, at evaluation,
/// inline after a re-execution, or by adoption). Parked (`Pending`)
/// completions report nothing — their fate is decided at evaluation.
pub(crate) fn note_future_attempt(tm: &TmInner, aborted: bool) {
    if let Some(flip) = tm
        .stm
        .cm()
        .note_future_attempt(aborted, wtf_cm::attempt_now())
    {
        tm.tracer.record(
            EventKind::AdaptiveFlip,
            flip.to_strong as u64,
            flip.rate_per_mille,
        );
    }
}

/// Worker-side execution of a future's body, with internal retry.
/// `submit_ts` is the submission-point timestamp (0 when tracing is off)
/// used to measure the queue-to-start delay.
pub(crate) fn run_future_body(
    tm: Arc<TmInner>,
    top: Arc<TopLevel>,
    core: Arc<FutureCore>,
    submit_ts: u64,
) {
    if tm.tracer.on() {
        let delay = tm.tracer.now().saturating_sub(submit_ts);
        tm.tracer.metrics.queue_delay.record(delay);
        tm.tracer.record(EventKind::FutureStart, core.id, delay);
    }
    let mut guard = 0u32;
    loop {
        guard += 1;
        assert!(guard < 100_000, "run_future_body retry spinning");
        if top.is_cancelled() {
            core.set_state(FutState::Cancelled);
            tm.clock.notify_all(&core.event);
            tm.clock.notify_all(&top.change);
            return;
        }
        // Retry lineage: every incarnation of the body is one attempt;
        // begin/abort pairs let the profiler charge the aborted ones to
        // wasted speculative work and tie them to the attempt that won.
        let attempt = (guard - 1) as u64;
        tm.tracer
            .record(EventKind::FutureAttemptBegin, core.id, attempt);
        let node_arc = top.node_arc(core.node);
        let mut ctx = TxCtx::new(tm.clone(), top.clone(), node_arc);
        ctx.set_owner(core.clone());
        match (core.body)(&mut ctx) {
            Ok(value) => {
                let final_node = ctx.node.id;
                ctx.node.freeze();
                tm.tracer
                    .record(EventKind::FutureCompleted, core.id, attempt);
                if top.strong {
                    // JTF serializes futures at their submission points *in
                    // spawn order*: a future's commit waits for every
                    // earlier-submitted future of the same top-level. This
                    // is the source of the paper's straggler effect (Fig. 3).
                    // (`top.strong` covers the adaptive WO→SO flip too.)
                    wait_for_earlier_futures(&tm, &top, &core);
                }
                match top.complete_future(&tm, &core, final_node, value) {
                    FutureCommitOutcome::Doomed => {
                        note_future_attempt(&tm, true);
                        tm.stats.internal_aborts();
                        tm.tracer
                            .record(EventKind::FutureAttemptAbort, core.id, attempt);
                        top.cancel_children(&tm, &core);
                        if top.is_cancelled() || core.state() == FutState::Cancelled {
                            core.set_state(FutState::Cancelled);
                            tm.clock.notify_all(&core.event);
                            tm.clock.notify_all(&top.change);
                            return;
                        }
                        top.reset_node(core.node, NodeKind::Future);
                        continue;
                    }
                    FutureCommitOutcome::SerializedAtSubmission => {
                        note_future_attempt(&tm, false);
                        return;
                    }
                    // Pending parks until evaluation and Escaped awaits
                    // adoption: neither fate is decided yet, so neither
                    // feeds the adaptive abort-rate window here.
                    _ => return,
                }
            }
            Err(StmError::Conflict) => {
                if crate::debug_enabled() {
                    eprintln!("[debug] future {} body conflict, retrying", core.id);
                }
                note_future_attempt(&tm, true);
                tm.stats.internal_aborts();
                tm.tracer
                    .record(EventKind::FutureAttemptAbort, core.id, attempt);
                top.cancel_children(&tm, &core);
                if top.is_cancelled() || core.state() == FutState::Cancelled {
                    core.set_state(FutState::Cancelled);
                    tm.clock.notify_all(&core.event);
                    tm.clock.notify_all(&top.change);
                    return;
                }
                top.reset_node(core.node, NodeKind::Future);
                continue;
            }
            Err(StmError::UserAbort) => {
                tm.tracer
                    .record(EventKind::FutureAttemptAbort, core.id, attempt);
                core.set_state(FutState::Failed);
                tm.clock.notify_all(&core.event);
                tm.clock.notify_all(&top.change);
                return;
            }
        }
    }
}

/// SO in-spawn-order commit: block until every future registered before
/// `core` under `top` has settled (or the top-level was abandoned).
fn wait_for_earlier_futures(tm: &Arc<TmInner>, top: &Arc<TopLevel>, core: &Arc<FutureCore>) {
    let top2 = top.clone();
    let core2 = core.clone();
    // In-spawn-order blocking is a join edge on whichever earlier future
    // settles last; the producer is resolved offline from the span's end
    // timestamp (b = u64::MAX marks it unattributed at record time).
    let wait_start = tm.tracer.span_start();
    tm.clock.wait_until(&top.change, move || {
        if top2.is_cancelled() || core2.state() == FutState::Cancelled {
            return true;
        }
        let futures = top2.futures.lock();
        for f in futures.iter() {
            if Arc::ptr_eq(f, &core2) {
                return true;
            }
            if matches!(f.state(), FutState::Running | FutState::Adopting) {
                return false;
            }
        }
        true
    });
    tm.tracer
        .span_end(EventKind::EvalWaitSpan, wait_start, u64::MAX);
}
