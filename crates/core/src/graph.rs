//! The per-top-level dependency graph **G** (§4.1 of the paper).
//!
//! G tracks the serialization constraints among the sub-transactions of a
//! single top-level transaction: future bodies, continuation segments and
//! evaluation segments. Nodes are added on `submit`/`evaluate`/`step`;
//! edges encode "serialized before".
//!
//! Readers need consistent ancestor sets without blocking the (rare)
//! writers. The paper uses a stamp-validated lock-free traversal; we get
//! the same effect with a safe-Rust strengthening: the graph body is an
//! immutable snapshot behind `RwLock<Arc<GraphInner>>`. Readers clone the
//! `Arc` (nanoseconds under a read lock) and traverse their private
//! snapshot; writers clone-on-write and bump a stamp. The stamp is still
//! exposed so callers can detect that their cached ancestor view went
//! stale — the paper's optimistic re-read, minus the torn-read hazard.

use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Index of a sub-transaction node within its top-level transaction.
pub type NodeId = usize;

/// Visibility status of a node's write-set, kept inside the snapshot so a
/// single `Arc` clone observes statuses and edges atomically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeStatus {
    /// Running; writes are private.
    Active,
    /// Internally committed: writes visible to descendant sub-transactions
    /// of the same top-level transaction (the paper's `iCommit`).
    ICommitted,
    /// A future that finished executing but could not serialize at
    /// submission; its writes stay invisible until it serializes upon
    /// evaluation (or is adopted by another top-level under GAC).
    CompletedPending,
    /// Aborted incarnation (being replaced).
    Aborted,
}

/// Immutable graph snapshot.
#[derive(Debug, Clone, Default)]
pub struct GraphInner {
    pub preds: Vec<Vec<NodeId>>,
    pub succs: Vec<Vec<NodeId>>,
    pub status: Vec<NodeStatus>,
    /// Longest-path-from-root rank: ancestors overlay their write-sets in
    /// ascending rank order, so higher rank = closer ancestor = wins.
    pub rank: Vec<u32>,
}

impl GraphInner {
    pub fn len(&self) -> usize {
        self.preds.len()
    }

    pub fn is_empty(&self) -> bool {
        self.preds.is_empty()
    }

    fn recompute_ranks(&mut self) {
        // Longest path over a DAG in topological order (Kahn).
        let n = self.len();
        let mut indeg: Vec<usize> = (0..n).map(|i| self.preds[i].len()).collect();
        let mut stack: Vec<NodeId> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut rank = vec![0u32; n];
        let mut seen = 0;
        while let Some(u) = stack.pop() {
            seen += 1;
            for &v in &self.succs[u] {
                rank[v] = rank[v].max(rank[u] + 1);
                indeg[v] -= 1;
                if indeg[v] == 0 {
                    stack.push(v);
                }
            }
        }
        debug_assert_eq!(seen, n, "G must stay acyclic");
        self.rank = rank;
    }

    /// All ancestors of `node` (reverse reachability, excluding `node`),
    /// in ascending rank order — the overlay order for building the
    /// ancestor write view.
    pub fn ancestors(&self, node: NodeId) -> Vec<NodeId> {
        let mut seen = vec![false; self.len()];
        let mut stack = vec![node];
        seen[node] = true;
        let mut out = Vec::new();
        while let Some(u) = stack.pop() {
            for &p in &self.preds[u] {
                if !seen[p] {
                    seen[p] = true;
                    out.push(p);
                    stack.push(p);
                }
            }
        }
        out.sort_by_key(|&n| (self.rank[n], n));
        out
    }

    /// All nodes reachable from `node` (excluding it): the set forward
    /// validation scans for readers that would be invalidated by
    /// serializing a future at its submission point.
    pub fn reachable_from(&self, node: NodeId) -> Vec<NodeId> {
        let mut seen = vec![false; self.len()];
        let mut stack = vec![node];
        seen[node] = true;
        let mut out = Vec::new();
        while let Some(u) = stack.pop() {
            for &s in &self.succs[u] {
                if !seen[s] {
                    seen[s] = true;
                    out.push(s);
                    stack.push(s);
                }
            }
        }
        out
    }

    /// The backward chain from `from` (exclusive) to `stop` (exclusive):
    /// the sub-transactions that executed concurrently with a future being
    /// serialized upon evaluation. Follows the maximum-rank predecessor at
    /// each step — the serialization chain (the paper's footnote: G has no
    /// backward bifurcations among serialized nodes).
    pub fn backward_chain(&self, from: NodeId, stop: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut cur = from;
        loop {
            let next = self.preds[cur]
                .iter()
                .copied()
                .max_by_key(|&p| (self.rank[p], p));
            match next {
                Some(p) if p != stop => {
                    out.push(p);
                    cur = p;
                }
                _ => break,
            }
        }
        out
    }
}

/// The shared, stamped graph.
pub struct Graph {
    inner: RwLock<Arc<GraphInner>>,
    // ordering: seqcst-rmw — the bump happens under the write lock after
    // the new graph is published; seqcst-load on the read side keeps the
    // stamp totally ordered against graph publication, which the
    // unlocked stamp/re-check protocol in `ctx.rs` relies on (an
    // acquire-load would admit a stale stamp paired with a newer graph).
    stamp: AtomicU64,
}

impl Graph {
    /// A graph with the root sub-transaction (node 0, Active).
    pub fn with_root() -> Graph {
        let mut g = GraphInner::default();
        g.preds.push(Vec::new());
        g.succs.push(Vec::new());
        g.status.push(NodeStatus::Active);
        g.rank.push(0);
        Graph {
            inner: RwLock::new(Arc::new(g)),
            stamp: AtomicU64::new(0),
        }
    }

    /// Current stamp; changes whenever the graph is mutated. `SeqCst`
    /// pairs with the read-side re-check protocol (see `ctx.rs`).
    pub fn stamp(&self) -> u64 {
        self.stamp.load(Ordering::SeqCst)
    }

    /// Cheap consistent snapshot: `(stamp, graph)` taken atomically.
    pub fn snapshot(&self) -> (u64, Arc<GraphInner>) {
        let guard = self.inner.read();
        let stamp = self.stamp.load(Ordering::SeqCst);
        (stamp, guard.clone())
    }

    /// Clone-mutate-publish under the write lock. Returns `f`'s output.
    /// The stamp is bumped *before* `f` runs against the published graph?
    /// No — the new graph and the stamp move together under the lock;
    /// readers that loaded the old stamp will re-check and observe the
    /// bump after we publish.
    pub fn update<R>(&self, f: impl FnOnce(&mut GraphInner) -> R) -> R {
        let mut guard = self.inner.write();
        let mut g: GraphInner = (**guard).clone();
        let out = f(&mut g);
        g.recompute_ranks();
        *guard = Arc::new(g);
        self.stamp.fetch_add(1, Ordering::SeqCst);
        out
    }
}

/// Mutation helpers used by the runtime.
impl GraphInner {
    pub fn add_node(&mut self, status: NodeStatus, preds: &[NodeId]) -> NodeId {
        let id = self.len();
        self.preds.push(preds.to_vec());
        self.succs.push(Vec::new());
        self.status.push(status);
        self.rank.push(0);
        for &p in preds {
            self.succs[p].push(id);
        }
        id
    }

    /// Replaces a node's predecessor set (replay restart re-homes reused
    /// futures onto the new chain).
    pub fn set_preds(&mut self, node: NodeId, preds: &[NodeId]) {
        let old = std::mem::take(&mut self.preds[node]);
        for p in old {
            self.succs[p].retain(|&s| s != node);
        }
        for &p in preds {
            self.add_edge(p, node);
        }
    }

    pub fn add_edge(&mut self, from: NodeId, to: NodeId) {
        if !self.succs[from].contains(&to) {
            self.succs[from].push(to);
            self.preds[to].push(from);
        }
    }

    pub fn set_status(&mut self, node: NodeId, status: NodeStatus) {
        self.status[node] = status;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Graph {
        // 0 -> {1 (future), 2 (continuation)}; 1,2 -> 3 (eval)
        let g = Graph::with_root();
        g.update(|gi| {
            let f = gi.add_node(NodeStatus::Active, &[0]);
            let c = gi.add_node(NodeStatus::Active, &[0]);
            let e = gi.add_node(NodeStatus::Active, &[f, c]);
            assert_eq!((f, c, e), (1, 2, 3));
        });
        g
    }

    #[test]
    fn ranks_longest_path() {
        let g = diamond();
        let (_, gi) = g.snapshot();
        assert_eq!(gi.rank, vec![0, 1, 1, 2]);
        // Serialize the future upon evaluation: edge 2 -> 1.
        g.update(|gi| gi.add_edge(2, 1));
        let (_, gi) = g.snapshot();
        assert_eq!(gi.rank, vec![0, 2, 1, 3]);
    }

    #[test]
    fn ancestors_order_by_rank() {
        let g = diamond();
        g.update(|gi| gi.add_edge(2, 1)); // future after continuation
        let (_, gi) = g.snapshot();
        assert_eq!(gi.ancestors(3), vec![0, 2, 1]);
        // Before the serialization edge, the eval node saw both branches
        // unordered; ties broken by id.
        let g2 = diamond();
        let (_, gi2) = g2.snapshot();
        assert_eq!(gi2.ancestors(3), vec![0, 1, 2]);
    }

    #[test]
    fn reachability() {
        let g = diamond();
        let (_, gi) = g.snapshot();
        assert_eq!(gi.reachable_from(0).len(), 3);
        let mut r = gi.reachable_from(1);
        r.sort_unstable();
        assert_eq!(r, vec![3]);
        assert!(gi.reachable_from(3).is_empty());
    }

    #[test]
    fn backward_chain_follows_max_rank() {
        let g = diamond();
        // Future 1 serialized upon evaluation: 2 -> 1; chain from eval
        // node 3 back to root must pass 1 then 2.
        g.update(|gi| gi.add_edge(2, 1));
        let (_, gi) = g.snapshot();
        assert_eq!(gi.backward_chain(3, 0), vec![1, 2]);
        // Chain from the eval node back to the continuation (exclusive).
        assert_eq!(gi.backward_chain(3, 2), vec![1]);
    }

    #[test]
    fn stamp_moves_on_update() {
        let g = Graph::with_root();
        let s0 = g.stamp();
        g.update(|gi| {
            gi.add_node(NodeStatus::Active, &[0]);
        });
        assert!(g.stamp() > s0);
    }

    #[test]
    fn snapshots_are_immutable() {
        let g = Graph::with_root();
        let (_, before) = g.snapshot();
        g.update(|gi| {
            gi.add_node(NodeStatus::Active, &[0]);
        });
        assert_eq!(before.len(), 1, "old snapshot untouched");
        let (_, after) = g.snapshot();
        assert_eq!(after.len(), 2);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    // Random spawn/serialize sequences keep G a DAG with consistent
    // ancestor/reachability relations.
    proptest! {
        #[test]
        fn dag_invariants(ops in proptest::collection::vec(0u8..3, 1..40)) {
            let g = Graph::with_root();
            let mut cur: NodeId = 0; // continuation cursor
            let mut pending: Vec<(NodeId, NodeId)> = Vec::new(); // (future, spawn point)
            for op in ops {
                match op {
                    // submit: future + continuation pair
                    0 => {
                        let (f, c) = g.update(|gi| {
                            gi.set_status(cur, NodeStatus::ICommitted);
                            let f = gi.add_node(NodeStatus::CompletedPending, &[cur]);
                            let c = gi.add_node(NodeStatus::Active, &[cur]);
                            (f, c)
                        });
                        pending.push((f, cur));
                        cur = c;
                    }
                    // serialize oldest pending future at submission
                    1 => {
                        if let Some((f, spawn)) = pending.pop() {
                            g.update(|gi| {
                                // future before everything after its spawn
                                let succs = gi.succs[spawn].clone();
                                for s in succs {
                                    if s != f {
                                        gi.add_edge(f, s);
                                    }
                                }
                                gi.set_status(f, NodeStatus::ICommitted);
                            });
                        }
                    }
                    // serialize at evaluation: future after current cursor
                    _ => {
                        if let Some((f, _)) = pending.pop() {
                            let e = g.update(|gi| {
                                gi.set_status(cur, NodeStatus::ICommitted);
                                gi.add_edge(cur, f);
                                gi.set_status(f, NodeStatus::ICommitted);
                                gi.add_node(NodeStatus::Active, &[cur, f])
                            });
                            cur = e;
                        }
                    }
                }
            }
            let (_, gi) = g.snapshot();
            // Ranks are a valid topological labeling: every edge ascends.
            for u in 0..gi.len() {
                for &v in &gi.succs[u] {
                    prop_assert!(gi.rank[v] > gi.rank[u], "edge {u}->{v} must ascend");
                }
            }
            // ancestors/reachable are converses.
            for n in 0..gi.len() {
                for &a in &gi.ancestors(n) {
                    prop_assert!(gi.reachable_from(a).contains(&n));
                }
            }
            // The cursor's ancestors are totally ordered by rank (the
            // serialization chain has no rank ties).
            let anc = gi.ancestors(cur);
            for w in anc.windows(2) {
                prop_assert!(gi.rank[w[0]] != gi.rank[w[1]] || w[0] == w[1] ||
                    // rank ties are allowed only between nodes that are
                    // mutually unreachable AND both invisible-pending
                    gi.status[w[0]] != NodeStatus::ICommitted
                    || gi.status[w[1]] != NodeStatus::ICommitted
                    || !(gi.reachable_from(w[0]).contains(&w[1])
                        || gi.reachable_from(w[1]).contains(&w[0])));
            }
        }

        /// set_preds fully detaches a node from its old predecessors.
        #[test]
        fn set_preds_detaches(extra in 1usize..6) {
            let g = Graph::with_root();
            let nodes: Vec<NodeId> = g.update(|gi| {
                (0..extra).map(|_| gi.add_node(NodeStatus::Active, &[0])).collect()
            });
            let target = nodes[0];
            g.update(|gi| gi.set_preds(target, &[]));
            let (_, gi) = g.snapshot();
            prop_assert!(gi.preds[target].is_empty());
            prop_assert!(!gi.succs[0].contains(&target));
            prop_assert_eq!(gi.rank[target], 0);
        }
    }
}
