//! # wtf-core — WTF-TM: transactional futures over a graph-based STM
//!
//! This crate is the paper's primary contribution, rebuilt in Rust:
//! a software transactional memory in which **futures execute as atomic
//! sub-transactions** ("transactional futures") with configurable
//! semantics along the paper's two axes:
//!
//! * **Ordering** — [`OrderingSemantics::Weak`] (WO, WTF-TM proper:
//!   a future serializes either at its submission point or at its
//!   evaluation point) vs [`OrderingSemantics::Strong`] (SO, the JTF
//!   baseline: always at submission, aborting conflicting continuations).
//! * **Continuation atomicity** for *escaping* futures —
//!   [`AtomicitySemantics::Local`] (LAC: the spawning top-level implicitly
//!   evaluates every stray future at commit) vs
//!   [`AtomicitySemantics::Global`] (GAC: a future may outlive its
//!   spawning transaction and be adopted by whichever transaction
//!   evaluates it).
//!
//! The runtime follows §4 of the paper: each top-level transaction owns a
//! dependency graph **G** over its sub-transactions; reads resolve through
//! the closest iCommitted ancestor, then the multi-versioned snapshot
//! (`wtf-mvstm`, the JVSTM analogue); futures serialize via **forward
//! validation** (at submission) or **backward validation** (at
//! evaluation), re-executing inline when neither order is consistent.
//!
//! ## Quickstart
//!
//! ```
//! use wtf_core::{FutureTm, Semantics};
//!
//! let tm = FutureTm::new(Semantics::WO_GAC);
//! let counter = tm.new_vbox(0i64);
//!
//! let total = tm
//!     .atomic(|ctx| {
//!         ctx.write(&counter, 10)?;
//!         // Run a sub-computation as a transactional future...
//!         let c = counter.clone();
//!         let f = ctx.submit(move |ctx| {
//!             let v = ctx.read(&c)?;
//!             Ok(v * 2)
//!         })?;
//!         // ...do other work in the continuation, then evaluate it.
//!         let doubled = ctx.evaluate(&f)?;
//!         Ok(doubled)
//!     })
//!     .unwrap();
//! assert_eq!(total, 20);
//! tm.shutdown();
//! ```

mod config;
mod ctx;
mod future;
mod graph;
pub mod inspect;
mod node;
mod stats;
mod toplevel;
#[cfg(feature = "watchdog")]
pub mod watchdog;

pub use config::{AtomicitySemantics, CostModel, OrderingSemantics, Semantics, TmConfig};
pub use ctx::TxCtx;
pub use future::{FutState, TxFuture};
pub use graph::NodeId;
pub use stats::{TmStats, TmStatsSnapshot};
pub use toplevel::TopLevel;
#[cfg(feature = "watchdog")]
pub use watchdog::{WatchdogConfig, WatchdogHandle};
pub use wtf_backend::{
    with_backend, BackendBox, BackendKind, BackendSnapshot, StmBackend, TBox as VBox,
};
pub use wtf_cm::{with_cm, CmKind, ContentionManager};
pub use wtf_mvstm::{Aborted, BoxId, Stm, StmError, TxResult, TxValue};

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use wtf_taskpool::TaskPool;
use wtf_trace::{EventKind, Tracer};
use wtf_vclock::{Clock, Resource};

/// Stderr debug prints (set `WTF_DEBUG=1`): doom/replay decisions.
/// Cached after the first check. Structured tracing lives in `wtf-trace`
/// and is controlled by `WTF_TRACE` instead.
pub(crate) fn debug_enabled() -> bool {
    static ON: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ON.get_or_init(|| std::env::var_os("WTF_DEBUG").is_some())
}

/// Instantiates the STM substrate for `kind`, reporting into `tracer` —
/// the backend-selection point behind `WTF_BACKEND` and
/// [`FutureTmBuilder::backend_kind`].
pub fn make_backend(kind: BackendKind, tracer: Arc<Tracer>) -> Arc<dyn StmBackend> {
    match kind {
        BackendKind::Mvstm => Arc::new(wtf_backend::MvstmBackend::with_tracer(tracer)),
        BackendKind::Tl2 => Arc::new(wtf_tl2::Tl2Stm::with_tracer(tracer)),
    }
}

pub(crate) struct TmInner {
    pub(crate) stm: Arc<dyn StmBackend>,
    pub(crate) clock: Clock,
    pool: Mutex<Option<Arc<TaskPool>>>,
    pub(crate) cfg: TmConfig,
    pub(crate) stats: TmStats,
    pub(crate) mem_bus: Option<Resource>,
    /// Observability hooks; shared with the STM and the task pool so one
    /// summary covers all layers. Disabled by default.
    pub(crate) tracer: Arc<Tracer>,
    // ordering: relaxed-rmw — monotonic id source; ids only need
    // uniqueness, nothing is published through the counter.
    top_counter: AtomicU64,
    // ordering: relaxed-rmw — monotonic id source; ids only need
    // uniqueness, nothing is published through the counter.
    future_counter: AtomicU64,
    /// Weak handles to in-flight top-levels (live-graph gauges, watchdog
    /// snapshots, auto-dumps). Dead entries are pruned opportunistically
    /// on registration.
    pub(crate) tops: Mutex<Vec<std::sync::Weak<TopLevel>>>,
    /// Consecutive cross-top conflict aborts since the last commit
    /// (abort-storm detection; see `inspect`).
    // ordering: relaxed-rmw bumps the streak, relaxed-store resets it —
    // a diagnostics heuristic; an off-by-one streak at worst delays or
    // duplicates one auto-dump. relaxed-guard: the threshold comparison
    // only rate-limits diagnostics output.
    pub(crate) conflict_abort_streak: AtomicU64,
    /// Remaining automatic graph dumps (rate limit; see `inspect`).
    // ordering: relaxed-rmw — the budget is claimed with a single-word
    // `fetch_update`; no data is published through it.
    pub(crate) dumps_remaining: AtomicU64,
    /// Cumulative watchdog stall reports, registered as the
    /// `watchdog_stalls` gauge (the telemetry incident detector
    /// differences it per epoch).
    pub(crate) watchdog_stalls: wtf_trace::Counter,
}

impl TmInner {
    pub(crate) fn pool(&self) -> Arc<TaskPool> {
        self.pool
            .lock()
            .as_ref()
            .expect("FutureTm already shut down")
            .clone()
    }

    pub(crate) fn next_top_id(&self) -> u64 {
        self.top_counter.fetch_add(1, Ordering::Relaxed)
    }

    pub(crate) fn next_future_id(&self) -> u64 {
        self.future_counter.fetch_add(1, Ordering::Relaxed)
    }

    /// Tracks `top` while it is in flight. The list holds `Weak`s so a
    /// finished top-level (whose `Arc` the caller drops) costs nothing
    /// beyond its slot until the next prune.
    pub(crate) fn register_top(&self, top: &Arc<TopLevel>) {
        let mut tops = self.tops.lock();
        if tops.len() >= 32 && tops.len().is_multiple_of(32) {
            tops.retain(|w| w.strong_count() > 0);
        }
        tops.push(Arc::downgrade(top));
    }

    /// Upgrades every still-live tracked top-level.
    pub(crate) fn live_tops(&self) -> Vec<Arc<TopLevel>> {
        self.tops
            .lock()
            .iter()
            .filter_map(|w| w.upgrade())
            .collect()
    }
}

/// Builder for [`FutureTm`].
pub struct FutureTmBuilder {
    cfg: TmConfig,
    clock: Option<Clock>,
    stm: Option<Arc<dyn StmBackend>>,
    backend_kind: Option<BackendKind>,
    cm: Option<CmKind>,
    workers: usize,
    tracer: Option<Arc<Tracer>>,
}

impl FutureTmBuilder {
    pub fn semantics(mut self, s: Semantics) -> Self {
        self.cfg.semantics = s;
        self
    }

    pub fn config(mut self, cfg: TmConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// The clock to execute under. Defaults to the calling thread's
    /// current clock, or a no-spin real clock outside any clock context.
    pub fn clock(mut self, clock: Clock) -> Self {
        self.clock = Some(clock);
        self
    }

    /// Share an existing STM instance (e.g. with plain `Stm::atomic`
    /// baseline transactions).
    pub fn stm(mut self, stm: Stm) -> Self {
        self.stm = Some(Arc::new(wtf_backend::MvstmBackend::new(stm)));
        self
    }

    /// Share an existing backend instance directly.
    pub fn backend(mut self, backend: Arc<dyn StmBackend>) -> Self {
        self.stm = Some(backend);
        self
    }

    /// Which STM substrate to instantiate ([`BackendKind::Mvstm`] — the
    /// JVSTM analogue — or [`BackendKind::Tl2`]). Defaults to the
    /// `WTF_BACKEND` environment variable, falling back to mvstm. Ignored
    /// when an instance was supplied via [`FutureTmBuilder::stm`] /
    /// [`FutureTmBuilder::backend`].
    pub fn backend_kind(mut self, kind: BackendKind) -> Self {
        self.backend_kind = Some(kind);
        self
    }

    /// Which contention-management policy every retry loop consults (see
    /// `wtf-cm`): the generic backend loop, mvstm's native `Stm::atomic`
    /// over a shared instance, and [`FutureTm::atomic`]'s top-level loop.
    /// Defaults to the `WTF_CM` environment variable / an active
    /// [`with_cm`] scope, falling back to `immediate`. Installed on the
    /// backend instance even when one was supplied via
    /// [`FutureTmBuilder::stm`] / [`FutureTmBuilder::backend`].
    pub fn cm(mut self, kind: CmKind) -> Self {
        self.cm = Some(kind);
        self
    }

    /// Worker threads available for future bodies. Size it to the maximum
    /// number of simultaneously *blocking* futures (the paper dedicates a
    /// thread per in-flight future).
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n;
        self
    }

    /// Report lifecycle events, latency histograms and abort attribution
    /// into `tracer` (see `wtf-trace`). The tracer is shared with the
    /// STM (unless one was supplied via [`FutureTmBuilder::stm`]) and the
    /// worker pool, so one summary covers every layer.
    pub fn tracer(mut self, tracer: Arc<Tracer>) -> Self {
        self.tracer = Some(tracer);
        self
    }

    pub fn build(self) -> FutureTm {
        let clock = self
            .clock
            .or_else(Clock::try_current)
            .unwrap_or_else(Clock::real_nospin);
        let must_enter = Clock::try_current().is_none();
        assert!(
            !(must_enter && clock.is_virtual()),
            "a FutureTm over a virtual clock must be built inside Clock::enter              (its pool workers would otherwise deadlock the scheduler)"
        );
        let tracer = self.tracer.unwrap_or_else(Tracer::disabled);
        let make = |clock: &Clock| {
            Arc::new(TaskPool::with_tracer(
                clock,
                self.workers,
                0,
                Arc::clone(&tracer),
            ))
        };
        let pool = if must_enter {
            // Pool workers must be spawned from a registered thread.
            clock.enter(|| make(&clock))
        } else {
            make(&clock)
        };
        let mem_bus = if self.cfg.model_memory_bus && clock.is_virtual() {
            Some(clock.new_resource())
        } else {
            None
        };
        let stm = self.stm.unwrap_or_else(|| {
            make_backend(
                self.backend_kind.unwrap_or_else(BackendKind::from_env),
                Arc::clone(&tracer),
            )
        });
        if let Some(kind) = self.cm {
            stm.set_cm(kind.build());
        }
        let tm = FutureTm {
            inner: Arc::new(TmInner {
                stm,
                clock,
                pool: Mutex::new(Some(pool)),
                cfg: self.cfg,
                stats: TmStats::default(),
                mem_bus,
                tracer,
                top_counter: AtomicU64::new(0),
                future_counter: AtomicU64::new(0),
                tops: Mutex::new(Vec::new()),
                conflict_abort_streak: AtomicU64::new(0),
                dumps_remaining: AtomicU64::new(inspect::dump_limit_from_env()),
                watchdog_stalls: wtf_trace::Counter::new(),
            }),
        };
        if tm.inner.tracer.on() {
            // Live TM gauges. `Weak`: the tracer lives inside `TmInner`.
            let w = Arc::downgrade(&tm.inner);
            tm.inner.tracer.gauges.register("tm_live_tops", move || {
                w.upgrade().map_or(0, |tm| tm.live_tops().len() as u64)
            });
            let w = Arc::downgrade(&tm.inner);
            tm.inner.tracer.gauges.register("tm_live_nodes", move || {
                w.upgrade().map_or(0, |tm| {
                    tm.live_tops().iter().map(|t| t.node_count() as u64).sum()
                })
            });
            // Cumulative TM counters for the telemetry hub's per-epoch
            // deltas (futures/adoption signals alongside the STM's
            // commit/conflict gauges).
            let w = Arc::downgrade(&tm.inner);
            tm.inner.tracer.gauges.register("tm_top_commits", move || {
                w.upgrade().map_or(0, |tm| tm.stats.snapshot().top_commits)
            });
            let w = Arc::downgrade(&tm.inner);
            tm.inner.tracer.gauges.register("tm_top_aborts", move || {
                w.upgrade().map_or(0, |tm| tm.stats.snapshot().top_aborts)
            });
            let w = Arc::downgrade(&tm.inner);
            tm.inner
                .tracer
                .gauges
                .register("tm_internal_aborts", move || {
                    w.upgrade()
                        .map_or(0, |tm| tm.stats.snapshot().internal_aborts)
                });
            let w = Arc::downgrade(&tm.inner);
            tm.inner
                .tracer
                .gauges
                .register("tm_futures_submitted", move || {
                    w.upgrade()
                        .map_or(0, |tm| tm.stats.snapshot().futures_submitted)
                });
            let c = tm.inner.watchdog_stalls.clone();
            tm.inner
                .tracer
                .gauges
                .register("watchdog_stalls", move || c.get());
            // Contention-manager counters, read through the backend each
            // sample so a later `set_cm` swap is reflected.
            let w = Arc::downgrade(&tm.inner);
            tm.inner.tracer.gauges.register("cm_waits", move || {
                w.upgrade().map_or(0, |tm| tm.stm.cm().stats().waits)
            });
            let w = Arc::downgrade(&tm.inner);
            tm.inner
                .tracer
                .gauges
                .register("cm_serialized_boxes", move || {
                    w.upgrade()
                        .map_or(0, |tm| tm.stm.cm().stats().serialized_boxes)
                });
            let w = Arc::downgrade(&tm.inner);
            tm.inner.tracer.gauges.register("adaptive_flips", move || {
                w.upgrade()
                    .map_or(0, |tm| tm.stm.cm().stats().adaptive_flips)
            });
        }
        tm
    }
}

/// A transactional memory with support for transactional futures.
///
/// Cheap to clone; all clones share the same STM, pool and statistics.
#[derive(Clone)]
pub struct FutureTm {
    inner: Arc<TmInner>,
}

impl FutureTm {
    pub fn builder() -> FutureTmBuilder {
        FutureTmBuilder {
            cfg: TmConfig::default(),
            clock: None,
            stm: None,
            backend_kind: None,
            cm: None,
            workers: 8,
            tracer: None,
        }
    }

    /// A TM with the given semantics, zero costs, and 8 workers — suitable
    /// for tests and applications. Figure harnesses use [`FutureTm::builder`].
    pub fn new(semantics: Semantics) -> FutureTm {
        Self::builder().semantics(semantics).build()
    }

    /// Creates a transactional box on this TM's STM.
    pub fn new_vbox<T: TxValue>(&self, value: T) -> VBox<T> {
        VBox::from_body(self.inner.stm.new_box(Arc::new(value)))
    }

    /// The underlying STM substrate.
    pub fn stm(&self) -> &Arc<dyn StmBackend> {
        &self.inner.stm
    }

    /// Which STM substrate this TM runs over.
    pub fn backend_kind(&self) -> BackendKind {
        self.inner.stm.kind()
    }

    /// The clock this TM executes under.
    pub fn clock(&self) -> &Clock {
        &self.inner.clock
    }

    /// The configured semantics.
    pub fn semantics(&self) -> Semantics {
        self.inner.cfg.semantics
    }

    /// Runtime counters (abort rates, serialization points, ...).
    pub fn stats(&self) -> TmStatsSnapshot {
        self.inner.stats.snapshot()
    }

    /// The tracer this TM reports into (disabled unless one was supplied
    /// via [`FutureTmBuilder::tracer`]).
    pub fn tracer(&self) -> &Arc<Tracer> {
        &self.inner.tracer
    }

    /// The contention manager consulted on every top-level abort.
    pub fn cm(&self) -> Arc<dyn ContentionManager> {
        self.inner.stm.cm()
    }

    /// Runs `body` as a top-level transaction, retrying on conflicts until
    /// it commits. `Err(Aborted)` only on explicit [`TxCtx::abort`].
    ///
    /// Calls must be made from a thread registered with this TM's clock
    /// (inside [`Clock::enter`] or a clock-spawned thread) when the clock
    /// is virtual.
    pub fn atomic<T>(&self, mut body: impl FnMut(&mut TxCtx) -> TxResult<T>) -> Result<T, Aborted> {
        // Replay restarts are bounded defensively; beyond the cap we fall
        // back to a full restart (fresh snapshot).
        const MAX_REPLAYS: u32 = 10_000;
        // One CM actor per logical top-level transaction: karma accrues
        // across this call's full restarts and retires on commit. Replay
        // (internal) restarts stay immediate — they recover intra-top
        // dooms, not cross-top contention.
        let cm = self.inner.stm.cm();
        let actor = cm.begin_txn();
        wtf_cm::pause_at_begin(&*cm, &self.inner.tracer, actor);
        let mut streak = 0u32;
        let cm_pause = |top: &Arc<TopLevel>, streak: u32, attempt_start: u64| {
            let conflict_box = match top.conflict_box.load(Ordering::Relaxed) {
                u64::MAX => None,
                b => Some(b),
            };
            wtf_cm::pause_after_abort(
                &*cm,
                &self.inner.tracer,
                actor,
                conflict_box,
                streak,
                attempt_start,
            );
        };
        let mut top: Option<Arc<TopLevel>> = None;
        let mut replay: Option<Vec<Arc<crate::future::FutureCore>>> = None;
        // Retry lineage: the id of the incarnation a full restart abandoned,
        // linked to its successor via a `TopRetry` event so the profiler can
        // charge the abandoned attempt's work to the retry that won.
        let mut prev_top: Option<u64> = None;
        let mut replays = 0u32;
        let mut guard = 0u32;
        loop {
            guard += 1;
            assert!(guard < 200_000, "atomic outer retry spinning");
            let attempt_start = wtf_cm::attempt_now();
            let (t, root) = match (&top, replay.take()) {
                (Some(t), Some(q)) => {
                    // Internal (replay) restart on the same incarnation.
                    let (harvested, root) = t.restart_top_chain(&self.inner);
                    let mut queue = q;
                    let fresh: Vec<_> = harvested
                        .into_iter()
                        .filter(|f| !queue.iter().any(|g| Arc::ptr_eq(f, g)))
                        .collect();
                    queue.extend(fresh);
                    let t = t.clone();
                    let mut ctx = TxCtx::new(self.inner.clone(), t.clone(), root.clone());
                    ctx.set_replay(queue);
                    match self.run_attempt(&t, ctx, &mut body) {
                        AttemptOutcome::Done(v) => {
                            cm.on_commit(actor);
                            return v;
                        }
                        AttemptOutcome::Internal => {
                            replays += 1;
                            if crate::debug_enabled() {
                                eprintln!("[debug] replay #{replays}");
                            }
                            if replays < MAX_REPLAYS {
                                replay = Some(Vec::new());
                                continue;
                            }
                            self.inner.stats.top_internal_restarts();
                            self.inner
                                .tracer
                                .record(EventKind::TopInternalRestart, t.id, 0);
                            t.cancel(&self.inner);
                            prev_top = Some(t.id);
                            top = None;
                            continue;
                        }
                        AttemptOutcome::Full => {
                            t.cancel(&self.inner);
                            streak += 1;
                            cm_pause(&t, streak, attempt_start);
                            prev_top = Some(t.id);
                            top = None;
                            continue;
                        }
                    }
                }
                _ => {
                    let t = TopLevel::begin(&self.inner);
                    if let Some(prev) = prev_top.take() {
                        self.inner.tracer.record(EventKind::TopRetry, t.id, prev);
                    }
                    let root = t.node_arc(0);
                    (t, root)
                }
            };
            let ctx = TxCtx::new(self.inner.clone(), t.clone(), root);
            match self.run_attempt(&t, ctx, &mut body) {
                AttemptOutcome::Done(v) => {
                    cm.on_commit(actor);
                    return v;
                }
                AttemptOutcome::Internal => {
                    top = Some(t);
                    replay = Some(Vec::new());
                    continue;
                }
                AttemptOutcome::Full => {
                    t.cancel(&self.inner);
                    streak += 1;
                    cm_pause(&t, streak, attempt_start);
                    prev_top = Some(t.id);
                    top = None;
                    continue;
                }
            }
        }
    }

    fn run_attempt<T>(
        &self,
        top: &Arc<TopLevel>,
        mut ctx: TxCtx,
        body: &mut impl FnMut(&mut TxCtx) -> TxResult<T>,
    ) -> AttemptOutcome<T> {
        use crate::toplevel::CommitFail;
        match body(&mut ctx) {
            Ok(value) => match top.commit(&mut ctx) {
                Ok(()) => AttemptOutcome::Done(Ok(value)),
                Err(CommitFail::Internal) => {
                    if crate::debug_enabled() {
                        eprintln!("[debug] attempt commit internal");
                    }
                    if top.is_cancelled() {
                        AttemptOutcome::Full
                    } else {
                        self.inner.stats.top_internal_restarts();
                        self.inner
                            .tracer
                            .record(EventKind::TopInternalRestart, top.id, 0);
                        AttemptOutcome::Internal
                    }
                }
                Err(CommitFail::CrossTop) => AttemptOutcome::Full,
            },
            Err(StmError::Conflict) => {
                if crate::debug_enabled() {
                    eprintln!(
                        "[debug] attempt body conflict: top_doomed={} cancelled={}",
                        top.is_doomed(),
                        top.is_cancelled()
                    );
                }
                if top.is_cancelled() {
                    AttemptOutcome::Full
                } else {
                    self.inner.stats.top_internal_restarts();
                    self.inner
                        .tracer
                        .record(EventKind::TopInternalRestart, top.id, 0);
                    AttemptOutcome::Internal
                }
            }
            Err(StmError::UserAbort) => {
                self.inner.tracer.record(EventKind::TopUserAbort, top.id, 0);
                top.cancel(&self.inner);
                AttemptOutcome::Done(Err(Aborted))
            }
        }
    }

    /// Like [`FutureTm::atomic`] but panics on explicit abort.
    pub fn atomic_infallible<T>(&self, body: impl FnMut(&mut TxCtx) -> TxResult<T>) -> T {
        // This IS the sanctioned panic-on-abort wrapper the lint points
        // users at (the rule itself is off in runtime crates).
        self.atomic(body).expect("transaction aborted explicitly")
    }

    /// Joins the worker pool. Call from a clock-registered thread before
    /// the enclosing `Clock::enter` returns. All clones of this TM must be
    /// dropped first... no: shutdown is cooperative — the last handle that
    /// calls it wins; later `atomic` calls that submit futures will panic.
    pub fn shutdown(&self) {
        if let Some(pool) = self.inner.pool.lock().take() {
            let pool =
                Arc::into_inner(pool).expect("shutdown while futures are still being submitted");
            if Clock::try_current().is_some() {
                pool.shutdown();
            } else {
                self.inner.clock.enter(|| pool.shutdown());
            }
        }
    }
}

/// Internal data structures re-exported for the repository's Criterion
/// micro-benchmarks (`wtf-bench`): not a stable API.
#[doc(hidden)]
pub mod internals {
    pub use crate::graph::{Graph, GraphInner, NodeStatus};
}

enum AttemptOutcome<T> {
    Done(Result<T, Aborted>),
    /// Internal doom: replay-restart the same incarnation.
    Internal,
    /// Cross-top conflict or cancellation: full restart, fresh snapshot.
    Full,
}

#[cfg(test)]
mod tests;
