//! Snapshot exporters for the per-top-level dependency graph **G**.
//!
//! The graph is the paper's core runtime artifact: every doom, cascade
//! and serialization decision is a structural fact about it. This module
//! renders a live [`TopLevel`]'s graph as Graphviz DOT (for eyes) and as
//! JSON (for tools), and auto-dumps snapshots at the two moments the
//! structure explains a failure:
//!
//! * **doom** — an uncontained sub-transaction doom cascades to a
//!   whole-top-level restart; and
//! * **abort-storm** — a run of consecutive cross-top conflict aborts
//!   with no intervening commit (livelock smell).
//!
//! Auto-dumps fire only at `WTF_TRACE>=2` (`Tracer::full`), write to
//! `WTF_SNAPSHOT_DIR` (default `results/snapshots`), and are
//! rate-limited by a per-TM budget (`WTF_DUMP_LIMIT`, default 8) so a
//! pathological run cannot fill the disk.
//!
//! DOT encoding: node fill encodes [`NodeStatus`], a red outline marks
//! doomed nodes, and `rank` (longest path from the root — the iCommit
//! overlay order) is printed in each label.

use crate::graph::{GraphInner, NodeStatus};
use crate::toplevel::TopLevel;
use crate::TmInner;
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use wtf_trace::Json;

/// Consecutive cross-top conflict aborts (without a commit) that count
/// as an abort storm. Overridable via `WTF_ABORT_STORM`.
pub const DEFAULT_ABORT_STORM: u64 = 20;

/// Default automatic-dump budget per TM (`WTF_DUMP_LIMIT`).
pub const DEFAULT_DUMP_LIMIT: u64 = 8;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

pub(crate) fn dump_limit_from_env() -> u64 {
    env_u64("WTF_DUMP_LIMIT", DEFAULT_DUMP_LIMIT)
}

/// Where snapshot dumps go: `WTF_SNAPSHOT_DIR`, else `results/snapshots`.
pub fn snapshot_dir() -> PathBuf {
    std::env::var_os("WTF_SNAPSHOT_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results").join("snapshots"))
}

fn status_name(s: NodeStatus) -> &'static str {
    match s {
        NodeStatus::Active => "active",
        NodeStatus::ICommitted => "icommitted",
        NodeStatus::CompletedPending => "completed_pending",
        NodeStatus::Aborted => "aborted",
    }
}

fn status_fill(s: NodeStatus) -> &'static str {
    match s {
        NodeStatus::Active => "lightblue",
        NodeStatus::ICommitted => "palegreen",
        NodeStatus::CompletedPending => "khaki",
        NodeStatus::Aborted => "lightgray",
    }
}

/// Per-node annotations that live outside the graph snapshot (the node
/// table knows kinds and doom flags; the graph knows edges and status).
struct NodeAnnotations {
    kinds: Vec<&'static str>,
    doomed: Vec<bool>,
}

impl TopLevel {
    fn annotations(&self) -> NodeAnnotations {
        let nodes = self.nodes.read();
        NodeAnnotations {
            kinds: nodes
                .iter()
                .map(|n| match n.kind {
                    crate::node::NodeKind::Root => "root",
                    crate::node::NodeKind::Future => "future",
                    crate::node::NodeKind::Continuation => "cont",
                    crate::node::NodeKind::Eval => "eval",
                })
                .collect(),
            doomed: nodes.iter().map(|n| n.is_doomed()).collect(),
        }
    }

    /// Graphviz DOT rendering of this top-level's dependency graph.
    pub fn graph_dot(&self) -> String {
        let (stamp, g) = self.graph.snapshot();
        let ann = self.annotations();
        graph_dot_impl(&g, &ann, self.id, stamp, self.is_doomed())
    }

    /// JSON rendering: node status/kind/rank/doom plus the edge list, in
    /// iCommit-overlay (rank, then id) order.
    pub fn graph_json(&self) -> Json {
        let (stamp, g) = self.graph.snapshot();
        let ann = self.annotations();
        let mut order: Vec<usize> = (0..g.len()).collect();
        order.sort_by_key(|&n| (g.rank[n], n));
        let nodes: Vec<Json> = order
            .iter()
            .map(|&n| {
                Json::obj(vec![
                    ("id", n.into()),
                    ("kind", (*ann.kinds.get(n).unwrap_or(&"?")).into()),
                    ("status", status_name(g.status[n]).into()),
                    ("rank", u64::from(g.rank[n]).into()),
                    ("doomed", ann.doomed.get(n).copied().unwrap_or(false).into()),
                ])
            })
            .collect();
        let edges: Vec<Json> = (0..g.len())
            .flat_map(|from| {
                g.succs[from]
                    .iter()
                    .map(move |&to| Json::arr(vec![from.into(), to.into()]))
            })
            .collect();
        Json::obj(vec![
            ("top", self.id.into()),
            ("stamp", stamp.into()),
            ("doomed", self.is_doomed().into()),
            (
                "icommit_order",
                Json::Arr(order.iter().map(|&n| n.into()).collect()),
            ),
            ("nodes", Json::Arr(nodes)),
            ("edges", Json::Arr(edges)),
        ])
    }
}

fn graph_dot_impl(
    g: &GraphInner,
    ann: &NodeAnnotations,
    top_id: u64,
    stamp: u64,
    top_doomed: bool,
) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(out, "digraph top{top_id} {{");
    let _ = writeln!(
        out,
        "  label=\"top {top_id} stamp {stamp}{}\";",
        if top_doomed { " DOOMED" } else { "" }
    );
    let _ = writeln!(out, "  rankdir=TB;");
    let _ = writeln!(out, "  node [shape=box style=filled];");
    for n in 0..g.len() {
        let doomed = ann.doomed.get(n).copied().unwrap_or(false);
        let outline = if doomed { " color=red penwidth=2" } else { "" };
        let _ = writeln!(
            out,
            "  n{n} [label=\"n{n} {} {}\\nrank {}{}\" fillcolor={}{}];",
            ann.kinds.get(n).unwrap_or(&"?"),
            status_name(g.status[n]),
            g.rank[n],
            if doomed { " doomed" } else { "" },
            status_fill(g.status[n]),
            outline,
        );
    }
    for from in 0..g.len() {
        for &to in &g.succs[from] {
            let _ = writeln!(out, "  n{from} -> n{to};");
        }
    }
    out.push_str("}\n");
    out
}

/// Claims one unit of the TM's dump budget. Returns false once spent.
fn claim_dump(tm: &TmInner) -> bool {
    tm.dumps_remaining
        .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
        .is_ok()
}

/// Dumps `top`'s graph as `{reason}_top{id}.dot` + `.json` in the
/// snapshot dir. Rate-limited by the TM's dump budget; IO errors are
/// reported to stderr but never propagate into the transaction path.
pub(crate) fn auto_dump(tm: &TmInner, top: &TopLevel, reason: &str) {
    if !claim_dump(tm) {
        return;
    }
    let dir = snapshot_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("[wtf-inspect] cannot create {}: {e}", dir.display());
        return;
    }
    let dot_path = dir.join(format!("{reason}_top{}.dot", top.id));
    let json_path = dir.join(format!("{reason}_top{}.json", top.id));
    if let Err(e) = std::fs::write(&dot_path, top.graph_dot()) {
        eprintln!("[wtf-inspect] cannot write {}: {e}", dot_path.display());
    }
    if let Err(e) = std::fs::write(&json_path, top.graph_json().to_string()) {
        eprintln!("[wtf-inspect] cannot write {}: {e}", json_path.display());
    }
}

/// Cross-top conflict-abort hook: bumps the storm streak and dumps the
/// aborting top's graph when the streak reaches the threshold. Only
/// active at `WTF_TRACE>=2` (one relaxed load otherwise).
pub(crate) fn on_conflict_abort(tm: &TmInner, top: &TopLevel) {
    if !tm.tracer.full() {
        return;
    }
    let streak = tm.conflict_abort_streak.fetch_add(1, Ordering::Relaxed) + 1;
    let threshold = env_u64("WTF_ABORT_STORM", DEFAULT_ABORT_STORM);
    if streak == threshold {
        auto_dump(tm, top, "abort_storm");
    }
}
