//! `TxCtx`: the handle through which transactional code reads, writes,
//! submits and evaluates futures.
//!
//! One `TxCtx` exists per executing sub-transaction thread; it is a cursor
//! over the top-level transaction's graph **G**: `submit`, `evaluate` and
//! `step` move it to freshly created nodes (the paper's checkpoints:
//! "when a submit or evaluate operation is executed by T, we implicitly
//! commit the current sub-transaction and begin a new sub-transaction").

use crate::future::{EscapeRecord, FutState, FutureCore, TxFuture};
use crate::graph::{NodeId, NodeStatus};
use crate::node::{NodeKind, ReadOrigin, SubTxNode};
use crate::toplevel::{run_future_body, TopLevel};
use crate::TmInner;
use std::marker::PhantomData;
use std::sync::Arc;
use wtf_backend::{BackendBox, TBox as VBox};
use wtf_mvstm::{BoxId, FxHashMap, StmError, TxResult, TxValue, Value};
use wtf_trace::EventKind;

/// Execution context of one sub-transaction thread.
pub struct TxCtx {
    pub(crate) tm: Arc<TmInner>,
    pub(crate) top: Arc<TopLevel>,
    pub(crate) node: Arc<SubTxNode>,
    /// The future whose body this context executes (None for the
    /// top-level thread); newly submitted futures register as children so
    /// a body retry can cancel them.
    owner: Option<Arc<FutureCore>>,
    /// Replay-restart reuse queue (top-level thread only): futures already
    /// serialized by the aborted chain incarnation, matched by submission
    /// order.
    replay: Vec<Arc<FutureCore>>,
    replay_idx: usize,
    /// True while re-running an adopted escaping future's body on this
    /// context: its nested submissions must not enter the replay queue
    /// (they are not part of the top-level closure's submission sequence).
    adopting: bool,
    /// Cached ancestor write view: overlay of iCommitted ancestors' frozen
    /// write-sets, keyed by box, with the winning ancestor recorded for
    /// read-origin bookkeeping. Invalidated when the graph stamp moves.
    view: FxHashMap<BoxId, (NodeId, Value)>,
    view_stamp: u64,
    view_valid: bool,
}

impl TxCtx {
    pub(crate) fn new(tm: Arc<TmInner>, top: Arc<TopLevel>, node: Arc<SubTxNode>) -> TxCtx {
        TxCtx {
            tm,
            top,
            node,
            owner: None,
            replay: Vec::new(),
            replay_idx: 0,
            adopting: false,
            view: FxHashMap::default(),
            view_stamp: 0,
            view_valid: false,
        }
    }

    pub(crate) fn set_replay(&mut self, queue: Vec<Arc<FutureCore>>) {
        self.replay = queue;
        self.replay_idx = 0;
    }

    pub(crate) fn set_owner(&mut self, owner: Arc<FutureCore>) {
        self.owner = Some(owner);
    }

    /// Charges CPU plus (optionally) serialized memory-bus cost.
    pub(crate) fn charge(&self, cpu: u64, mem: u64) {
        if cpu > 0 {
            self.tm.clock.advance(cpu);
        }
        if mem > 0 {
            if let Some(bus) = self.tm.mem_bus {
                self.tm.clock.acquire(bus, mem);
            } else {
                self.tm.clock.advance(mem);
            }
        }
    }

    /// Emulates `iters` iterations of CPU-bound computation (the synthetic
    /// workloads' `iter` knob). One unit per iteration.
    pub fn work(&self, iters: u64) {
        self.tm.clock.advance(iters);
    }

    /// Snapshot read through the backend. On the multi-versioned substrate
    /// this never fails; on a single-version backend (TL2) the box may
    /// have been overwritten since our snapshot, in which case the whole
    /// top-level incarnation is doomed: we cancel it (so the retry begins
    /// on a fresh snapshot under a fresh top id) and record the justified
    /// cross-top abort, exactly as a commit-time validation failure would.
    fn global_read(&self, body: &Arc<dyn BackendBox>) -> TxResult<(u64, Value)> {
        match body.read_at(self.top.snapshot_version()) {
            Ok(read) => Ok(read),
            Err(_) => {
                let id = body.id();
                self.tm.stats.top_aborts();
                self.top
                    .conflict_box
                    .store(id.0, std::sync::atomic::Ordering::Relaxed);
                self.tm.tracer.charge_conflict(id.0);
                self.tm
                    .tracer
                    .record(EventKind::TopConflictAbort, self.top.id, id.0);
                crate::inspect::on_conflict_abort(&self.tm, &self.top);
                self.top.cancel(&self.tm);
                Err(StmError::Conflict)
            }
        }
    }

    /// Errors out if this sub-transaction was doomed by a conflicting
    /// serialization or its top-level was cancelled.
    fn check_doom(&self) -> TxResult<()> {
        if self.node.is_doomed() || self.top.is_doomed() || self.top.is_cancelled() {
            Err(StmError::Conflict)
        } else {
            Ok(())
        }
    }

    fn refresh_view(&mut self) {
        // Lock order everywhere: nodes, then graph.
        let nodes = self.top.nodes.read();
        let (stamp, g) = self.top.graph.snapshot();
        if self.view_valid && stamp == self.view_stamp {
            return;
        }
        self.view.clear();
        for anc in g.ancestors(self.node.id) {
            if g.status[anc] == NodeStatus::ICommitted {
                if let Some(frozen) = nodes[anc].frozen_writes() {
                    for (id, (_, value)) in frozen.iter() {
                        // Ancestors are visited in ascending rank order, so
                        // closer ancestors overwrite farther ones.
                        self.view.insert(*id, (anc, value.clone()));
                    }
                }
            }
        }
        self.view_stamp = stamp;
        self.view_valid = true;
    }

    /// Transactional read (§4.1): own buffer, then the closest iCommitted
    /// ancestor's write, then the top-level's multi-versioned snapshot.
    /// The global fallback is a lock-free chain walk in `wtf-mvstm`; it is
    /// fenced against version GC by the top-level's live registered
    /// snapshot, which the registry's horizon can never exceed.
    pub fn read<T: TxValue>(&mut self, vbox: &VBox<T>) -> TxResult<T> {
        let costs = self.tm.cfg.costs;
        self.charge(costs.read_cpu, costs.read_mem);
        self.check_doom()?;
        let id = vbox.id();
        if let Some(v) = self.node.own_write(id) {
            return Ok(downcast(&v));
        }
        let body = vbox.body().clone();
        let mut guard = 0u32;
        loop {
            guard += 1;
            assert!(guard < 1_000_000, "read stamp-retry loop spinning");
            self.refresh_view();
            let stamp = self.view_stamp;
            let value = match self.view.get(&id) {
                Some((writer, v)) => {
                    let (writer, v) = (*writer, v.clone());
                    self.node
                        .record_read(id, body.clone(), ReadOrigin::Ancestor(writer));
                    v
                }
                None => {
                    let (ver, v) = self.global_read(&body)?;
                    self.node
                        .record_read(id, body.clone(), ReadOrigin::Global(ver));
                    v
                }
            };
            // Race protocol with concurrent forward validation: we record
            // the read *before* re-checking the stamp. If a future bumped
            // the stamp after our view was built, we redo the read against
            // the new graph; if it bumped after this check, its validation
            // scan (which locks our read-set afterwards) sees our entry.
            if self.top.graph.stamp() == stamp {
                self.check_doom()?;
                return Ok(downcast(&value));
            }
            self.view_valid = false;
        }
    }

    /// Transactional write: buffered privately until iCommit.
    pub fn write<T: TxValue>(&mut self, vbox: &VBox<T>, value: T) -> TxResult<()> {
        let costs = self.tm.cfg.costs;
        self.charge(costs.write_cpu, 0);
        self.check_doom()?;
        self.node
            .buffer_write(vbox.id(), vbox.body().clone(), Arc::new(value));
        Ok(())
    }

    /// Explicitly aborts the enclosing transaction (not retried).
    pub fn abort<T>(&mut self) -> TxResult<T> {
        Err(StmError::UserAbort)
    }

    /// Submits a transactional future: iCommits the current segment,
    /// activates `body` on a parallel worker, and returns a handle
    /// (§3: "submit takes a transaction T, activates a parallel thread in
    /// which T will be executed, and returns a future").
    pub fn submit<T, F>(&mut self, body: F) -> TxResult<TxFuture<T>>
    where
        T: TxValue,
        F: Fn(&mut TxCtx) -> TxResult<T> + Send + Sync + 'static,
    {
        let costs = self.tm.cfg.costs;
        self.charge(costs.submit_cost, 0);
        self.check_doom()?;
        let erased: crate::future::BodyFn =
            Arc::new(move |ctx: &mut TxCtx| body(ctx).map(|v| Arc::new(v) as Value));
        let core = self.submit_erased(erased)?;
        Ok(TxFuture {
            core,
            _marker: PhantomData,
        })
    }

    fn submit_erased(&mut self, body: crate::future::BodyFn) -> TxResult<Arc<FutureCore>> {
        // Replay restart: reuse the serialized future from the aborted
        // chain incarnation at this submission index (see
        // `TopLevel::restart_top_chain` for the determinism argument).
        if self.owner.is_none() && !self.adopting && self.replay_idx < self.replay.len() {
            let candidate = self.replay[self.replay_idx].clone();
            self.replay_idx += 1;
            if candidate.state() == FutState::Serialized {
                let cur = self.node.id;
                self.node.freeze();
                let cont = self.top.relink_reused_future(&candidate, cur);
                self.node = cont;
                self.view_valid = false;
                return Ok(candidate);
            }
        }
        let cur = self.node.id;
        self.node.freeze();
        let (fnode, cnode, cont_arc) = self.top.spawn_nodes(cur);
        let core = self
            .top
            .register_future(&self.tm, fnode, cnode, body, self.owner.as_ref());
        if self.owner.is_none() && !self.adopting {
            self.top.top_submissions.lock().push(core.clone());
        }
        self.tm.stats.futures_submitted();
        self.tm
            .tracer
            .record(EventKind::FutureSubmit, core.id, self.top.id);
        // Hand the body to a worker; stamp the submission point so the
        // worker can report the queue-to-start delay.
        let submit_ts = self.tm.tracer.span_start();
        let pool = self.tm.pool();
        let tm = self.tm.clone();
        let top = self.top.clone();
        let core2 = core.clone();
        pool.execute(move || run_future_body(tm, top, core2, submit_ts));
        // The cursor moves to the continuation node.
        self.node = cont_arc;
        self.view_valid = false;
        Ok(core)
    }

    /// Evaluates a future: blocks until its result is available under the
    /// configured semantics, serializing it upon evaluation if it could
    /// not serialize at submission (§4.1 commit logic).
    ///
    /// Repeated evaluations are idempotent (§3.2): the first successful
    /// serialization fixes the result.
    pub fn evaluate<T: TxValue>(&mut self, future: &TxFuture<T>) -> TxResult<T> {
        let costs = self.tm.cfg.costs;
        self.charge(costs.evaluate_cost, 0);
        self.check_doom()?;
        let v = self.evaluate_core(&future.core, false)?;
        Ok(downcast(&v))
    }

    /// Non-blocking variant (§3.2): returns `None` while the future's body
    /// is still executing. "Any attempt to evaluate a future that is still
    /// executing has no impact on its possible serialization orders."
    pub fn try_evaluate<T: TxValue>(&mut self, future: &TxFuture<T>) -> TxResult<Option<T>> {
        if future.core.state() == FutState::Running {
            return Ok(None);
        }
        self.evaluate(future).map(Some)
    }

    /// Evaluates whichever of `futures` settles first (out-of-order
    /// evaluation — WTF-TM's straggler-avoidance mode, §5.3's
    /// WTF-OutOfOrder variant). Returns the index and value. Blocks until
    /// at least one future's body finishes. Panics on an empty slice.
    pub fn evaluate_any<T: TxValue>(&mut self, futures: &[TxFuture<T>]) -> TxResult<(usize, T)> {
        assert!(!futures.is_empty(), "evaluate_any on an empty set");
        let mut guard = 0u32;
        loop {
            guard += 1;
            assert!(guard < 1_000_000, "evaluate_any spinning");
            self.check_doom()?;
            if let Some(i) = futures.iter().position(|f| f.core.state().is_settled()) {
                let v = self.evaluate(&futures[i])?;
                return Ok((i, v));
            }
            // Future completions notify the top-level's change event. The
            // wait blocks on the whole set, so the join edge is
            // unattributed (b = u64::MAX); the profiler resolves the
            // producer from whichever completion ends the span.
            let top = self.top.clone();
            let cores: Vec<_> = futures.iter().map(|f| f.core.clone()).collect();
            let wait_start = self.tm.tracer.span_start();
            self.tm.clock.wait_until(&self.top.change, move || {
                top.is_cancelled()
                    || top.is_doomed()
                    || cores.iter().any(|c| c.state().is_settled())
            });
            self.tm
                .tracer
                .span_end(EventKind::EvalWaitSpan, wait_start, u64::MAX);
        }
    }

    pub(crate) fn evaluate_core(
        &mut self,
        core: &Arc<FutureCore>,
        implicit: bool,
    ) -> TxResult<Value> {
        if core.top_id != self.top.id {
            return self.evaluate_escaping(core);
        }
        if implicit {
            self.tm.stats.implicit_evaluations();
        }
        // Fast path: already serialized (at submission, or by an earlier
        // evaluation) — idempotent result.
        match core.state() {
            FutState::Serialized | FutState::Adopted => {
                return Ok(core.result_value().expect("serialized future has result"));
            }
            FutState::Failed => return Err(StmError::UserAbort),
            FutState::Cancelled => return Err(StmError::Conflict),
            _ => {}
        }
        // Open the evaluation segment: iCommit the current node, begin
        // V_eval. Its dependence on the future is added upon serialization
        // (before that the future's subtree must stay invisible).
        let cur = self.node.id;
        self.node.freeze();
        let eval_arc = self.top.open_segment(cur, NodeKind::Eval);
        self.node = eval_arc;
        self.view_valid = false;
        // Wait for the body to settle. The wait is a join edge of the
        // causal DAG: the span's `b` names the future we blocked on so the
        // profiler can jump lanes along it.
        let top = self.top.clone();
        let core2 = core.clone();
        let wait_start = self.tm.tracer.span_start();
        self.tm.clock.wait_until(&core.event, move || {
            core2.state().is_settled() || top.is_cancelled()
        });
        self.tm
            .tracer
            .span_end(EventKind::EvalWaitSpan, wait_start, core.id);
        self.check_doom()?;
        loop {
            match core.state() {
                FutState::Serialized | FutState::Adopted => {
                    // Serialized at submission while we were waiting.
                    self.view_valid = false;
                    return Ok(core.result_value().expect("result"));
                }
                FutState::Failed => return Err(StmError::UserAbort),
                FutState::Cancelled => {
                    if crate::debug_enabled() {
                        eprintln!("[debug] evaluate hit Cancelled future {}", core.id);
                    }
                    return Err(StmError::Conflict);
                }
                FutState::Completed => {
                    // Claim the serialization so a concurrent same-top
                    // evaluator cannot also position the future (two
                    // serialization points would cycle G).
                    {
                        let mut st = core.state.lock();
                        if *st != FutState::Completed {
                            continue; // another evaluator won; re-examine
                        }
                        *st = FutState::Adopting;
                    }
                    match self.top.serialize_at_evaluation(core, cur, self.node.id) {
                        Ok(value) => {
                            crate::toplevel::note_future_attempt(&self.tm, false);
                            self.tm.stats.serialized_at_evaluation();
                            self.tm.tracer.record(
                                EventKind::FutureSerializedEvaluation,
                                core.id,
                                self.top.id,
                            );
                            self.view_valid = false;
                            return Ok(value);
                        }
                        Err(()) => {
                            // Backward validation failed: re-execute the
                            // future inline at the evaluation point.
                            crate::toplevel::note_future_attempt(&self.tm, true);
                            self.tm.stats.internal_aborts();
                            self.tm.stats.reexecutions();
                            self.tm.tracer.record(
                                EventKind::FutureReexecuted,
                                core.id,
                                self.top.id,
                            );
                            let out = self.reexecute_inline(core, cur);
                            if out.is_err() && core.state() == FutState::Adopting {
                                // Release the claim so another evaluator
                                // (or a replay) can settle the future.
                                core.set_state(FutState::Completed);
                                self.tm.clock.notify_all(&core.event);
                            }
                            return out;
                        }
                    }
                }
                FutState::Running | FutState::Adopting => {
                    let core2 = core.clone();
                    let top = self.top.clone();
                    let wait_start = self.tm.tracer.span_start();
                    self.tm.clock.wait_until(&core.event, move || {
                        core2.state().is_settled() || top.is_cancelled()
                    });
                    self.tm
                        .tracer
                        .span_end(EventKind::EvalWaitSpan, wait_start, core.id);
                    self.check_doom()?;
                }
            }
        }
    }

    /// Re-executes a future's body inline at its evaluation point: the
    /// future's node is re-incarnated as a direct successor of the
    /// evaluator's previous segment, so the re-execution observes exactly
    /// the evaluation-point state and serializes there trivially.
    fn reexecute_inline(&mut self, core: &Arc<FutureCore>, eval_pred: NodeId) -> TxResult<Value> {
        let mut guard = 0u32;
        loop {
            guard += 1;
            assert!(guard < 100_000, "reexecute_inline spinning");
            self.check_doom()?;
            // Inline attempts continue the future's retry lineage on the
            // evaluator's lane; the attempt index restarts per incarnation
            // site (the profiler keys waste on begin/abort pairs, not on
            // globally unique indices).
            let attempt = (guard - 1) as u64;
            self.tm
                .tracer
                .record(EventKind::FutureAttemptBegin, core.id, attempt);
            let fnode_arc = self.top.reincarnate_future_at(core, eval_pred);
            let mut fctx = TxCtx::new(self.tm.clone(), self.top.clone(), fnode_arc);
            fctx.set_owner(core.clone());
            match (core.body)(&mut fctx) {
                Ok(value) => {
                    let final_node = fctx.node.id;
                    fctx.node.freeze();
                    self.tm
                        .tracer
                        .record(EventKind::FutureCompleted, core.id, attempt);
                    self.top.finish_inline_serialization(
                        core,
                        final_node,
                        self.node.id,
                        value.clone(),
                    );
                    crate::toplevel::note_future_attempt(&self.tm, false);
                    self.tm.stats.serialized_at_evaluation();
                    self.tm.tracer.record(
                        EventKind::FutureSerializedEvaluation,
                        core.id,
                        self.top.id,
                    );
                    self.view_valid = false;
                    return Ok(value);
                }
                Err(StmError::Conflict) => {
                    crate::toplevel::note_future_attempt(&self.tm, true);
                    self.tm.stats.internal_aborts();
                    self.tm
                        .tracer
                        .record(EventKind::FutureAttemptAbort, core.id, attempt);
                    if self.top.is_cancelled() || self.top.is_doomed() {
                        return Err(StmError::Conflict);
                    }
                    continue;
                }
                Err(StmError::UserAbort) => {
                    core.set_state(FutState::Failed);
                    self.tm.clock.notify_all(&core.event);
                    return Err(StmError::UserAbort);
                }
            }
        }
    }

    /// Cross-top-level evaluation of an escaping future (§4.2).
    fn evaluate_escaping(&mut self, core: &Arc<FutureCore>) -> TxResult<Value> {
        loop {
            // Wait until the future and its spawning top-level have settled
            // enough to decide.
            let core2 = core.clone();
            self.tm.clock.wait_until(&core.event, move || {
                let st = core2.state();
                match st {
                    FutState::Running | FutState::Adopting => false,
                    // Completed: decidable once the spawner committed and
                    // resolved the escape record.
                    FutState::Completed => core2.escape.lock().is_some(),
                    FutState::Serialized => core2.spawn_commit_version.lock().is_some(),
                    FutState::Adopted | FutState::Failed | FutState::Cancelled => true,
                }
            });
            self.check_doom()?;
            match core.state() {
                FutState::Failed => return Err(StmError::UserAbort),
                FutState::Cancelled => return Err(StmError::Conflict),
                FutState::Adopted => {
                    return Ok(core.result_value().expect("adopted future has result"))
                }
                FutState::Serialized => {
                    // The future's effects committed with its spawning
                    // top-level; we may only observe them if our snapshot
                    // is at least as recent.
                    let version = core
                        .spawn_commit_version
                        .lock()
                        .expect("serialized escaping future has commit version");
                    if version > self.top.snapshot_version() {
                        return Err(StmError::Conflict);
                    }
                    return Ok(core.result_value().expect("result"));
                }
                FutState::Completed => {
                    // Try to claim the adoption.
                    {
                        let mut st = core.state.lock();
                        if *st != FutState::Completed {
                            continue; // someone else won; re-examine
                        }
                        *st = FutState::Adopting;
                    }
                    return self.adopt_escaping(core);
                }
                FutState::Running | FutState::Adopting => continue,
            }
        }
    }

    /// Validates an escaped future's read-set against this transaction's
    /// view and either adopts its effects or re-executes it inline.
    fn adopt_escaping(&mut self, core: &Arc<FutureCore>) -> TxResult<Value> {
        let record = core.escape.lock().take().expect("escape record present");
        let spawn_version = core
            .spawn_commit_version
            .lock()
            .expect("escaped future has spawner commit version");
        let valid = !record.poisoned
            && spawn_version <= self.top.snapshot_version()
            && self.validate_escape_reads(&record);
        if valid {
            // Adopt: the future's reads and writes become ours; its result
            // is externalized through us.
            for (body, version) in &record.reads {
                self.node
                    .record_read(body.id(), body.clone(), ReadOrigin::Global(*version));
            }
            for (body, value) in &record.writes {
                self.node
                    .buffer_write(body.id(), body.clone(), value.clone());
            }
            let value = core.result_value().expect("completed future has result");
            core.set_state(FutState::Adopted);
            crate::toplevel::note_future_attempt(&self.tm, false);
            self.tm.stats.adopted_escaping();
            self.tm
                .tracer
                .record(EventKind::FutureAdopted, core.id, self.top.id);
            self.tm.clock.notify_all(&core.event);
            Ok(value)
        } else {
            // The state the future observed is stale here: re-execute its
            // body inline within this transaction. The result of this
            // (first successful) serialization becomes the fixed result.
            crate::toplevel::note_future_attempt(&self.tm, true);
            self.tm.stats.internal_aborts();
            self.tm.stats.reexecutions();
            self.tm
                .tracer
                .record(EventKind::FutureReexecuted, core.id, self.top.id);
            let was_adopting = std::mem::replace(&mut self.adopting, true);
            let run = (core.body)(self);
            self.adopting = was_adopting;
            match run {
                Ok(value) => {
                    *core.result.lock() = Some(value.clone());
                    core.set_state(FutState::Adopted);
                    self.tm.stats.adopted_escaping();
                    self.tm
                        .tracer
                        .record(EventKind::FutureAdopted, core.id, self.top.id);
                    self.tm.clock.notify_all(&core.event);
                    Ok(value)
                }
                Err(e) => {
                    // Restore the claim so another evaluator can retry.
                    *core.escape.lock() = Some(record);
                    core.set_state(FutState::Completed);
                    self.tm.clock.notify_all(&core.event);
                    Err(e)
                }
            }
        }
    }

    fn validate_escape_reads(&mut self, record: &EscapeRecord) -> bool {
        for (body, version) in &record.reads {
            let id = body.id();
            // Any local shadow of the box invalidates the observation.
            if self.node.own_write(id).is_some() {
                return false;
            }
            self.refresh_view();
            if self.view.contains_key(&id) {
                return false;
            }
            // A failed snapshot read (single-version backend, box
            // overwritten) means the observation is certainly stale:
            // adoption fails and the future re-executes inline.
            match body.read_at(self.top.snapshot_version()) {
                Ok((cur, _)) if cur == *version => {}
                _ => return false,
            }
        }
        true
    }

    /// Runs `f` as a checkpointed continuation segment (§3.4: the
    /// boundaries of sub-transactions "serve as natural checkpoints to
    /// enable partial rollbacks"). If the segment is doomed by a
    /// conflicting future serialization (SO semantics) *and* it has not
    /// iCommitted or spawned anything, only the segment retries — not the
    /// whole top-level transaction.
    pub fn step<R>(&mut self, mut f: impl FnMut(&mut TxCtx) -> TxResult<R>) -> TxResult<R> {
        self.check_doom()?;
        // Open a fresh segment.
        let cur = self.node.id;
        self.node.freeze();
        let seg = self.top.open_segment(cur, NodeKind::Continuation);
        self.node = seg;
        self.view_valid = false;
        let mut guard = 0u32;
        loop {
            guard += 1;
            assert!(guard < 100_000, "step retry loop spinning");
            let node_id = self.node.id;
            let nodes_before = self.top.node_count();
            match f(self) {
                Ok(v) => {
                    // A doom may have landed between the segment's last
                    // operation and here; a doomed segment must not seal.
                    if self.node.is_doomed() || self.top.is_doomed() || self.top.is_cancelled() {
                        let local = !self.top.is_doomed()
                            && !self.top.is_cancelled()
                            && self.node.id == node_id
                            && self.top.node_count() == nodes_before;
                        if local {
                            self.tm.stats.segment_retries();
                            self.tm.tracer.record(
                                EventKind::SegmentRetried,
                                node_id as u64,
                                self.top.id,
                            );
                            let fresh = self.top.reset_node(node_id, NodeKind::Continuation);
                            self.node = fresh;
                            self.view_valid = false;
                            continue;
                        }
                        return Err(StmError::Conflict);
                    }
                    // Seal the segment so later dooms cannot target the
                    // closure we no longer hold.
                    let sealed_from = self.node.id;
                    self.node.freeze();
                    let next = self.top.open_segment(sealed_from, NodeKind::Continuation);
                    self.node = next;
                    self.view_valid = false;
                    return Ok(v);
                }
                Err(StmError::Conflict) => {
                    let local = !self.top.is_doomed()
                        && !self.top.is_cancelled()
                        && self.node.id == node_id
                        && self.top.node_count() == nodes_before
                        && self.node.is_doomed();
                    if local {
                        self.tm.stats.segment_retries();
                        self.tm.tracer.record(
                            EventKind::SegmentRetried,
                            node_id as u64,
                            self.top.id,
                        );
                        let fresh = self.top.reset_node(node_id, NodeKind::Continuation);
                        self.node = fresh;
                        self.view_valid = false;
                        continue;
                    }
                    return Err(StmError::Conflict);
                }
                Err(StmError::UserAbort) => return Err(StmError::UserAbort),
            }
        }
    }

    /// The enclosing top-level transaction's snapshot version.
    pub fn snapshot_version(&self) -> u64 {
        self.top.snapshot_version()
    }
}

fn downcast<T: TxValue>(v: &Value) -> T {
    v.downcast_ref::<T>()
        .expect("transactional value type invariant violated")
        .clone()
}
