//! Transactional futures: handles, state machine and escape records.

use crate::ctx::TxCtx;
use crate::graph::NodeId;
use parking_lot::Mutex;
use std::marker::PhantomData;
use std::sync::Arc;
use wtf_backend::BackendBox;
use wtf_mvstm::{TxResult, TxValue, Value};
use wtf_vclock::Event;

/// Lifecycle of a transactional future (§3.2, §4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FutState {
    /// Body executing (or queued).
    Running,
    /// Body finished; could not serialize at submission (WO), awaiting its
    /// evaluation serialization point — or, if its spawning top-level
    /// already committed (GAC), awaiting adoption.
    Completed,
    /// Serialized within its top-level transaction (at submission or
    /// evaluation). The result is fixed.
    Serialized,
    /// Claimed by an evaluating top-level transaction that is validating /
    /// re-executing it (GAC adoption in progress).
    Adopting,
    /// Adopted by another top-level transaction (GAC). Result fixed.
    Adopted,
    /// The body requested an explicit abort.
    Failed,
    /// The spawning top-level transaction was aborted/retried; this
    /// incarnation is dead.
    Cancelled,
}

impl FutState {
    /// States in which `evaluate` no longer blocks.
    pub fn is_settled(self) -> bool {
        !matches!(self, FutState::Running | FutState::Adopting)
    }
}

/// Read-set of an escaping future resolved to global versions at its
/// spawning top-level's commit, for adoption-time revalidation (§4.2 GAC).
pub struct EscapeRecord {
    /// `(box, version the future observed)` pairs.
    pub reads: Vec<(Arc<dyn BackendBox>, u64)>,
    /// The future's effective write-set (its subtree overlay), merged into
    /// the adopter on successful validation.
    pub writes: Vec<(Arc<dyn BackendBox>, Value)>,
    /// The future observed ancestor values that did not survive into the
    /// spawning transaction's committed write-set (they were shadowed by a
    /// deeper write, or the top-level was read-only): the observation can
    /// never be revalidated and adoption must re-execute.
    pub poisoned: bool,
}

/// Type-erased body, re-runnable for internal retries and evaluation-time
/// re-executions.
pub type BodyFn = Arc<dyn Fn(&mut TxCtx) -> TxResult<Value> + Send + Sync>;

/// Shared core of one transactional future.
pub struct FutureCore {
    /// Unique across the whole TM instance (diagnostics).
    pub id: u64,
    /// Identity of the spawning top-level transaction *incarnation*.
    pub top_id: u64,
    /// This future's node in the spawning top-level's graph G.
    pub node: NodeId,
    /// The continuation node created alongside (forward validation starts
    /// there).
    pub cont_node: NodeId,
    /// Last node of the body's execution (differs from `node` when the
    /// body spawned nested futures). Set when the body completes.
    pub final_node: Mutex<Option<NodeId>>,
    pub state: Mutex<FutState>,
    pub result: Mutex<Option<Value>>,
    /// Notified on every state transition.
    pub event: Event,
    pub body: BodyFn,
    /// Commit version of the spawning top-level, set when it commits. Used
    /// by cross-transaction evaluators to order themselves after the
    /// spawner.
    pub spawn_commit_version: Mutex<Option<u64>>,
    /// Set when the spawning top-level commits while this future is still
    /// unserialized (GAC): the future escaped.
    pub escape: Mutex<Option<EscapeRecord>>,
    /// Futures spawned by this future's body (for cascade cancellation
    /// when a body incarnation retries).
    pub children: Mutex<Vec<Arc<FutureCore>>>,
}

impl FutureCore {
    pub fn state(&self) -> FutState {
        *self.state.lock()
    }

    /// Transitions state and returns the previous value. Callers notify
    /// `event` afterwards (never while holding other locks).
    pub fn set_state(&self, s: FutState) -> FutState {
        std::mem::replace(&mut *self.state.lock(), s)
    }

    pub fn result_value(&self) -> Option<Value> {
        self.result.lock().clone()
    }
}

/// A handle to a transactional future returning `T`.
///
/// Clonable and storable inside a [`VBox`](wtf_mvstm::VBox) — that is how
/// futures *escape*: a transaction writes the handle to shared memory,
/// commits, and a different top-level transaction reads and evaluates it
/// (§3.3, Fig. 1c).
pub struct TxFuture<T> {
    pub(crate) core: Arc<FutureCore>,
    pub(crate) _marker: PhantomData<fn() -> T>,
}

impl<T> Clone for TxFuture<T> {
    fn clone(&self) -> Self {
        TxFuture {
            core: self.core.clone(),
            _marker: PhantomData,
        }
    }
}

impl<T: TxValue> TxFuture<T> {
    /// Current lifecycle state (non-blocking; for diagnostics and
    /// non-blocking polling).
    pub fn state(&self) -> FutState {
        self.core.state()
    }

    /// True once the future's body has finished executing (it may still be
    /// awaiting serialization).
    pub fn is_done_executing(&self) -> bool {
        self.core.state() != FutState::Running
    }
}

impl<T> std::fmt::Debug for TxFuture<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "TxFuture(id={}, state={:?})",
            self.core.id,
            self.core.state()
        )
    }
}
