//! Runtime counters: the metrics the paper's evaluation reports.

use std::sync::atomic::{AtomicU64, Ordering};

macro_rules! counters {
    ($($(#[$doc:meta])* $name:ident),+ $(,)?) => {
        /// Internal atomic counters (relaxed: statistics, not synchronization).
        #[derive(Default)]
        pub struct TmStats {
            // ordering: relaxed-rmw, relaxed-load — statistics counters.
            $( $(#[$doc])* pub(crate) $name: AtomicU64, )+
        }

        /// Point-in-time copy of [`TmStats`].
        #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
        pub struct TmStatsSnapshot {
            $( $(#[$doc])* pub $name: u64, )+
        }

        impl TmStats {
            pub(crate) fn snapshot(&self) -> TmStatsSnapshot {
                TmStatsSnapshot {
                    $( $name: self.$name.load(Ordering::Relaxed), )+
                }
            }

            $(
                pub(crate) fn $name(&self) {
                    self.$name.fetch_add(1, Ordering::Relaxed);
                }
            )+
        }

        impl TmStatsSnapshot {
            /// Difference between two snapshots (for measuring one run).
            pub fn delta_since(&self, earlier: &TmStatsSnapshot) -> TmStatsSnapshot {
                TmStatsSnapshot {
                    $( $name: self.$name - earlier.$name, )+
                }
            }

            /// `(name, value)` pairs in declaration order — generated
            /// alongside the fields, so exporters can't go stale.
            pub fn fields(&self) -> Vec<(&'static str, u64)> {
                vec![ $( (stringify!($name), self.$name), )+ ]
            }
        }
    };
}

counters! {
    /// Successful top-level commits.
    top_commits,
    /// Top-level aborts from commit-time read validation (conflicts with
    /// other top-level transactions).
    top_aborts,
    /// Whole-top-level restarts forced by an internal doom that could not
    /// be contained to a segment (cascading rollback).
    top_internal_restarts,
    /// Futures submitted.
    futures_submitted,
    /// Futures serialized at their submission point (forward validation
    /// succeeded).
    serialized_at_submission,
    /// Futures serialized at their evaluation point (backward validation
    /// succeeded).
    serialized_at_evaluation,
    /// Escaping futures adopted by an evaluating top-level (GAC).
    adopted_escaping,
    /// Implicit evaluations performed at commit under LAC.
    implicit_evaluations,
    /// Internal aborts: future-body retries, doomed continuation segments
    /// and evaluation-time re-executions.
    internal_aborts,
    /// Futures re-executed inline at their evaluation point after failing
    /// backward validation.
    reexecutions,
    /// Continuation segments retried locally after being doomed (partial
    /// rollback via checkpoints).
    segment_retries,
}

impl TmStatsSnapshot {
    /// Top-level abort rate: aborts / (commits + aborts). This is the
    /// "top-level abort rate" of Figs. 7b and 9.
    pub fn top_abort_rate(&self) -> f64 {
        rate(
            self.top_aborts + self.top_internal_restarts,
            self.top_commits,
        )
    }

    /// Internal abort rate: internal aborts over internal serialization
    /// successes (the "internal abort rate" of Figs. 7b and 8).
    pub fn internal_abort_rate(&self) -> f64 {
        let successes =
            self.serialized_at_submission + self.serialized_at_evaluation + self.adopted_escaping;
        rate(self.internal_aborts, successes)
    }
}

fn rate(bad: u64, good: u64) -> f64 {
    if bad + good == 0 {
        0.0
    } else {
        bad as f64 / (bad + good) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates() {
        let mut s = TmStatsSnapshot::default();
        assert_eq!(s.top_abort_rate(), 0.0);
        s.top_commits = 3;
        s.top_aborts = 1;
        assert!((s.top_abort_rate() - 0.25).abs() < 1e-12);
        s.serialized_at_submission = 8;
        s.internal_aborts = 2;
        assert!((s.internal_abort_rate() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn delta() {
        let stats = TmStats::default();
        stats.top_commits();
        let before = stats.snapshot();
        stats.top_commits();
        stats.internal_aborts();
        let after = stats.snapshot();
        let d = after.delta_since(&before);
        assert_eq!(d.top_commits, 1);
        assert_eq!(d.internal_aborts, 1);
        // fields() comes from the same macro list as the struct, so its
        // total must equal everything counted since `before`.
        assert_eq!(d.fields().iter().map(|(_, v)| v).sum::<u64>(), 2);
        let names: Vec<&str> = d.fields().iter().map(|(n, _)| *n).collect();
        assert!(names.contains(&"top_commits"));
        assert!(names.contains(&"segment_retries"));
    }
}
