//! Semantics tests for the transactional-futures runtime.
//!
//! Virtual-clock tests pin interleavings deterministically with
//! `ctx.work(...)` delays; real-clock tests stress the concurrent paths.

use crate::{FutureTm, Semantics, TmStatsSnapshot, TxFuture};
use std::sync::Arc;
use wtf_vclock::Clock;

/// Runs `f` with a fresh TM under a virtual clock; returns its output,
/// the final stats and the virtual makespan.
fn with_vtm<T>(
    semantics: Semantics,
    workers: usize,
    f: impl FnOnce(&FutureTm) -> T,
) -> (T, TmStatsSnapshot, u64) {
    let clock = Clock::virtual_time();
    let (out, stats) = clock.enter(|| {
        let tm = FutureTm::builder()
            .semantics(semantics)
            .workers(workers)
            .build();
        let out = f(&tm);
        let stats = tm.stats();
        tm.shutdown();
        (out, stats)
    });
    (out, stats, clock.makespan())
}

#[test]
fn plain_transactions_without_futures() {
    let (v, stats, _) = with_vtm(Semantics::WO_GAC, 2, |tm| {
        let x = tm.new_vbox(1i64);
        tm.atomic(|ctx| {
            let v = ctx.read(&x)?;
            ctx.write(&x, v + 41)?;
            ctx.read(&x)
        })
        .unwrap()
    });
    assert_eq!(v, 42);
    assert_eq!(stats.top_commits, 1);
    assert_eq!(stats.futures_submitted, 0);
}

#[test]
fn future_sees_spawner_writes() {
    let (v, stats, _) = with_vtm(Semantics::WO_GAC, 2, |tm| {
        let x = tm.new_vbox(0i64);
        let x2 = x.clone();
        tm.atomic(move |ctx| {
            ctx.write(&x2, 7)?;
            let x3 = x2.clone();
            let f = ctx.submit(move |c| c.read(&x3))?;
            ctx.evaluate(&f)
        })
        .unwrap()
    });
    assert_eq!(v, 7, "futures observe the spawning segment's writes");
    assert_eq!(stats.futures_submitted, 1);
    assert_eq!(stats.serialized_at_submission, 1);
}

#[test]
fn continuation_does_not_see_pending_future_writes() {
    // WO: the future writes z but the continuation reads before the future
    // serializes — it must see the old value, and the future serializes
    // upon evaluation (Fig. 2's "spared abort").
    let (out, stats, _) = with_vtm(Semantics::WO_GAC, 2, |tm| {
        let x = tm.new_vbox(0i64);
        let z = tm.new_vbox(0i64);
        let (x2, z2) = (x.clone(), z.clone());
        let v = tm
            .atomic(move |ctx| {
                let (x3, z3) = (x2.clone(), z2.clone());
                let f = ctx.submit(move |c| {
                    c.work(100); // complete after the continuation's read
                    c.read(&x3)?;
                    c.write(&z3, 1)?;
                    Ok(())
                })?;
                let seen = ctx.read(&z2)?; // reads z=0 before the future commits
                ctx.work(1_000); // let the future attempt serialization
                ctx.evaluate(&f)?;
                Ok(seen)
            })
            .unwrap();
        (v, z.read_latest())
    });
    assert_eq!(out.0, 0, "continuation read the pre-future value");
    assert_eq!(out.1, 1, "future's write committed");
    assert_eq!(
        stats.serialized_at_evaluation, 1,
        "WO: serialized upon evaluation"
    );
    assert_eq!(stats.internal_aborts, 0, "WO spares the continuation");
    assert_eq!(stats.top_commits, 1);
}

#[test]
fn so_dooms_conflicting_continuation_and_replays() {
    // Same program as above under SO: the future must serialize at
    // submission, dooming the continuation that read stale z. The replay
    // restart reuses the serialized future, and the re-read sees z=1.
    let (out, stats, _) = with_vtm(Semantics::SO, 2, |tm| {
        let x = tm.new_vbox(0i64);
        let z = tm.new_vbox(0i64);
        let (x2, z2) = (x.clone(), z.clone());
        tm.atomic(move |ctx| {
            let (x3, z3) = (x2.clone(), z2.clone());
            let f = ctx.submit(move |c| {
                c.work(100);
                c.read(&x3)?;
                c.write(&z3, 1)?;
                Ok(())
            })?;
            let seen = ctx.read(&z2)?;
            ctx.work(1_000);
            ctx.evaluate(&f)?;
            Ok(seen)
        })
        .unwrap()
    });
    assert_eq!(
        out, 1,
        "SO: the continuation re-ran and saw the future's write"
    );
    assert!(stats.internal_aborts >= 1, "the continuation was doomed");
    assert_eq!(stats.serialized_at_submission, 1);
    assert_eq!(stats.serialized_at_evaluation, 0);
    assert_eq!(stats.top_commits, 1);
    assert_eq!(stats.top_aborts, 0, "no cross-top conflict involved");
}

#[test]
fn so_step_contains_doom_to_segment() {
    // The conflicting read happens inside a `step` checkpoint and the doom
    // arrives while the segment is still active: only the segment retries.
    let (out, stats, _) = with_vtm(Semantics::SO, 2, |tm| {
        let z = tm.new_vbox(0i64);
        let z2 = z.clone();
        tm.atomic(move |ctx| {
            let z3 = z2.clone();
            let f = ctx.submit(move |c| {
                c.work(100);
                c.write(&z3, 1)?;
                Ok(())
            })?;
            let z4 = z2.clone();
            let seen = ctx.step(move |c| {
                let v = c.read(&z4)?;
                c.work(1_000); // stay inside the segment while the future commits
                Ok(v)
            })?;
            ctx.evaluate(&f)?;
            Ok(seen)
        })
        .unwrap()
    });
    assert_eq!(out, 1, "segment retry re-read the future's write");
    assert!(
        stats.segment_retries >= 1,
        "partial rollback, not a top restart"
    );
    assert_eq!(stats.top_internal_restarts, 0);
    assert_eq!(stats.top_commits, 1);
}

#[test]
fn fast_future_serializes_at_submission() {
    let (out, stats, _) = with_vtm(Semantics::WO_GAC, 2, |tm| {
        let x = tm.new_vbox(0i64);
        let x2 = x.clone();
        let r = tm
            .atomic(move |ctx| {
                let x3 = x2.clone();
                let f = ctx.submit(move |c| {
                    let v = c.read(&x3)?; // reads x=0 immediately
                    c.write(&x3, v + 1)?;
                    Ok(v)
                })?;
                ctx.work(500); // future completes, serializes at submission
                let v = ctx.read(&x2)?; // continuation sees the increment
                ctx.write(&x2, v + 10)?;
                ctx.evaluate(&f)
            })
            .unwrap();
        (r, x.read_latest())
    });
    assert_eq!(out.0, 0);
    assert_eq!(out.1, 11, "increment then +10");
    assert_eq!(stats.serialized_at_submission, 1);
    assert_eq!(stats.top_commits, 1);
}

#[test]
fn backward_validation_conflict_path() {
    // Force the pending-then-conflict path: the continuation reads the
    // future's write target first (parking the future at completion), and
    // also writes something the future read (failing backward validation).
    let (out, stats, _) = with_vtm(Semantics::WO_GAC, 2, |tm| {
        let a = tm.new_vbox(0i64); // future reads a
        let b = tm.new_vbox(0i64); // future writes b
        let (a2, b2) = (a.clone(), b.clone());
        let r = tm
            .atomic(move |ctx| {
                let (a3, b3) = (a2.clone(), b2.clone());
                let f = ctx.submit(move |c| {
                    let v = c.read(&a3)?; // reads a
                    c.work(100);
                    c.write(&b3, v + 1)?; // writes b
                    Ok(v)
                })?;
                ctx.read(&b2)?; // continuation reads b (blocks submission pt)
                ctx.write(&a2, 50)?; // and writes a (blocks evaluation pt)
                ctx.work(1_000);
                ctx.evaluate(&f)
            })
            .unwrap();
        (r, b.read_latest())
    });
    assert_eq!(
        stats.reexecutions, 1,
        "neither point fit: inline re-execution"
    );
    assert_eq!(out.0, 50, "re-execution saw the continuation's write to a");
    assert_eq!(out.1, 51);
    assert_eq!(stats.serialized_at_evaluation, 1);
    assert_eq!(stats.top_commits, 1);
}

#[test]
fn repeated_evaluation_is_idempotent() {
    let (vals, _, _) = with_vtm(Semantics::WO_GAC, 2, |tm| {
        let x = tm.new_vbox(5i64);
        let x2 = x.clone();
        tm.atomic(move |ctx| {
            let x3 = x2.clone();
            let f = ctx.submit(move |c| c.read(&x3))?;
            let v1 = ctx.evaluate(&f)?;
            ctx.write(&x2, 99)?; // must not affect the fixed result
            let v2 = ctx.evaluate(&f)?;
            Ok((v1, v2))
        })
        .unwrap()
    });
    assert_eq!(
        vals,
        (5, 5),
        "§3.2: repeated evaluations return the same result"
    );
}

#[test]
fn try_evaluate_is_nonblocking() {
    let (out, _, makespan) = with_vtm(Semantics::WO_GAC, 2, |tm| {
        let x = tm.new_vbox(1i64);
        let x2 = x.clone();
        tm.atomic(move |ctx| {
            let x3 = x2.clone();
            let f = ctx.submit(move |c| {
                c.work(10_000);
                c.read(&x3)
            })?;
            let early = ctx.try_evaluate(&f)?; // still running
            let late = ctx.evaluate(&f)?;
            Ok((early, late))
        })
        .unwrap()
    });
    assert_eq!(out, (None, 1));
    assert!(makespan >= 10_000);
}

#[test]
fn out_of_order_evaluation_avoids_stragglers_wo() {
    // Fig. 3: a slow future must not block evaluation of a fast one (WO).
    let (_, _, makespan) = with_vtm(Semantics::WO_GAC, 4, |tm| {
        let x = tm.new_vbox(0i64);
        let x2 = x.clone();
        tm.atomic(move |ctx| {
            let x3 = x2.clone();
            let slow = ctx.submit(move |c| {
                c.work(10_000);
                c.read(&x3)
            })?;
            let x4 = x2.clone();
            let fast = ctx.submit(move |c| {
                c.work(100);
                c.read(&x4)
            })?;
            let f = ctx.evaluate(&fast)?; // available at ~100
            assert_eq!(f, 0);
            ctx.evaluate(&slow)?;
            Ok(())
        })
        .unwrap();
    });
    // Total span is bounded by the slow future, not the sum.
    assert!(makespan < 12_000, "makespan {makespan}");
}

#[test]
fn so_commits_futures_in_spawn_order() {
    // Under SO the fast future's evaluation waits for the straggler
    // submitted before it (spawn-order commit).
    let run = |sem: Semantics| {
        let (t_fast_eval, _, _) = with_vtm(sem, 4, |tm| {
            let x = tm.new_vbox(0i64);
            let x2 = x.clone();
            tm.atomic(move |ctx| {
                let x3 = x2.clone();
                let slow = ctx.submit(move |c| {
                    c.work(10_000);
                    c.read(&x3)
                })?;
                let x4 = x2.clone();
                let fast = ctx.submit(move |c| {
                    c.work(100);
                    c.read(&x4)
                })?;
                ctx.evaluate(&fast)?;
                let now = Clock::current().now();
                ctx.evaluate(&slow)?;
                Ok(now)
            })
            .unwrap()
        });
        t_fast_eval
    };
    let so = run(Semantics::SO);
    let wo = run(Semantics::WO_GAC);
    assert!(
        so >= 10_000,
        "SO: fast future blocked behind the straggler (t={so})"
    );
    assert!(wo < 5_000, "WO: fast future evaluated immediately (t={wo})");
}

#[test]
fn nested_futures_fig1b() {
    // A future spawns a future and returns its handle; the inner future's
    // continuation spans two sub-transactions (w(x) by TF1, w(y) by T0).
    // It must observe both writes — via inline re-execution if its eager
    // run saw inconsistent state.
    let (v, stats, _) = with_vtm(Semantics::WO_GAC, 4, |tm| {
        let x = tm.new_vbox(0i64);
        let y = tm.new_vbox(0i64);
        let probe = tm.new_vbox(0i64);
        let (x2, y2, p2) = (x.clone(), y.clone(), probe.clone());
        tm.atomic(move |ctx| {
            let (x3, y3, p3) = (x2.clone(), y2.clone(), p2.clone());
            let f1 = ctx.submit(move |c| {
                let (x4, y4, p4) = (x3.clone(), y3.clone(), p3.clone());
                let f2 = c.submit(move |c2| {
                    let a = c2.read(&x4)?;
                    let b = c2.read(&y4)?;
                    c2.write(&p4, 1)?;
                    Ok(a + b)
                })?;
                c.write(&x3, 10)?;
                Ok(f2)
            })?;
            ctx.write(&y2, 20)?;
            // Reading `probe` (which TF2 writes) blocks TF2's serialization
            // at its submission point, forcing the evaluation point — where
            // its continuation's writes w(x), w(y) must be visible.
            ctx.read(&p2)?;
            ctx.work(1_000);
            let f2: TxFuture<i64> = ctx.evaluate(&f1)?;
            ctx.evaluate(&f2)
        })
        .unwrap()
    });
    assert_eq!(
        v, 30,
        "TF2 observed both continuation writes (w(x) by TF1, w(y) by T0)"
    );
    assert_eq!(stats.futures_submitted, 2);
    assert_eq!(stats.top_commits, 1);
}

#[test]
fn fig4_overlapping_continuations() {
    let (out, stats, _) = with_vtm(Semantics::WO_GAC, 4, |tm| {
        let x = tm.new_vbox(0i64);
        let y = tm.new_vbox(0i64);
        let z = tm.new_vbox(0i64);
        let (x2, y2, z2) = (x.clone(), y.clone(), z.clone());
        tm.atomic(move |ctx| {
            let (x3, y3) = (x2.clone(), y2.clone());
            let f1 = ctx.submit(move |c| {
                c.work(50);
                let a = c.read(&x3)?;
                let b = c.read(&y3)?;
                Ok((a, b))
            })?;
            ctx.write(&x2, 1)?;
            let (y4, z4) = (y2.clone(), z2.clone());
            let f2 = ctx.submit(move |c| {
                c.work(50);
                let a = c.read(&y4)?;
                let b = c.read(&z4)?;
                Ok((a, b))
            })?;
            ctx.write(&y2, 2)?;
            ctx.write(&z2, 3)?;
            let r1 = ctx.evaluate(&f1)?;
            let r2 = ctx.evaluate(&f2)?;
            Ok((r1, r2))
        })
        .unwrap()
    });
    // TF1 must see {x,y} both-or-neither of {1,2}; TF2 must see {y,z}
    // both-or-neither of {2,3}.
    let (r1, r2) = out;
    assert!(
        r1 == (0, 0) || r1 == (1, 2),
        "TF1 atomic w.r.t. its continuation: {r1:?}"
    );
    assert!(
        r2 == (0, 0) || r2 == (2, 3),
        "TF2 atomic w.r.t. its continuation: {r2:?}"
    );
    assert_eq!(stats.top_commits, 1);
}

#[test]
fn explicit_abort_in_future_propagates() {
    let (res, _, _) = with_vtm(Semantics::WO_GAC, 2, |tm| {
        let x = tm.new_vbox(0i64);
        let x2 = x.clone();
        let r = tm.atomic(move |ctx| {
            let x3 = x2.clone();
            let f = ctx.submit(move |c| {
                c.write(&x3, 1)?;
                c.abort::<i64>()
            })?;
            ctx.evaluate(&f)
        });
        (r, x.read_latest())
    });
    assert!(res.0.is_err(), "UserAbort propagates through evaluate");
    assert_eq!(res.1, 0, "no effects leak");
}

#[test]
fn lac_implicitly_evaluates_escaping_future_at_commit() {
    let (out, stats, makespan) = with_vtm(Semantics::WO_LAC, 2, |tm| {
        let x = tm.new_vbox(0i64);
        let x2 = x.clone();
        tm.atomic(move |ctx| {
            let x3 = x2.clone();
            let _f = ctx.submit(move |c| {
                c.work(5_000);
                c.write(&x3, 42)?;
                Ok(())
            })?;
            // Reading x blocks the future's submission-point serialization,
            // so LAC's commit must settle it by implicit evaluation.
            let seen = ctx.read(&x2)?;
            assert_eq!(seen, 0);
            Ok(()) // commit without evaluating: LAC blocks and settles it
        })
        .unwrap();
        x.read_latest()
    });
    assert_eq!(
        out, 42,
        "the implicit evaluation included the future's effects"
    );
    assert_eq!(stats.implicit_evaluations, 1);
    assert_eq!(stats.serialized_at_evaluation, 1);
    assert!(makespan >= 5_000, "commit blocked on the future");
}

#[test]
fn gac_commit_does_not_wait_and_future_is_adopted() {
    let clock = Clock::virtual_time();
    let (vals, stats) = clock.enter(|| {
        let tm = FutureTm::builder()
            .semantics(Semantics::WO_GAC)
            .workers(2)
            .build();
        let data = tm.new_vbox(5i64);
        let handle = tm.new_vbox::<Option<TxFuture<i64>>>(None);
        let (d2, h2) = (data.clone(), handle.clone());
        // T1 spawns the future and commits without evaluating it.
        tm.atomic(move |ctx| {
            ctx.write(&d2, 7)?;
            let d3 = d2.clone();
            let f = ctx.submit(move |c| {
                c.work(5_000);
                let v = c.read(&d3)?;
                Ok(v * 2)
            })?;
            ctx.write(&h2, Some(f))?;
            Ok(())
        })
        .unwrap();
        let t_commit = Clock::current().now();
        assert!(t_commit < 5_000, "GAC: T1 did not wait for the future");
        // T2 retrieves the handle and evaluates (adopts) the future.
        let h3 = handle.clone();
        let v = tm
            .atomic(move |ctx| {
                let f = ctx.read(&h3)?.expect("handle published");
                ctx.evaluate(&f)
            })
            .unwrap();
        let stats = tm.stats();
        tm.shutdown();
        ((t_commit, v), stats)
    });
    assert_eq!(
        vals.1, 14,
        "adopted future computed over T1's committed state"
    );
    assert_eq!(stats.adopted_escaping, 1);
    assert_eq!(stats.top_commits, 2);
}

#[test]
fn gac_adoption_revalidates_and_reexecutes_on_staleness() {
    let clock = Clock::virtual_time();
    let (v, stats) = clock.enter(|| {
        let tm = FutureTm::builder()
            .semantics(Semantics::WO_GAC)
            .workers(2)
            .build();
        let data = tm.new_vbox(5i64);
        let handle = tm.new_vbox::<Option<TxFuture<i64>>>(None);
        let probe = tm.new_vbox(0i64);
        let (d2, h2, p2) = (data.clone(), handle.clone(), probe.clone());
        tm.atomic(move |ctx| {
            let (d3, p3) = (d2.clone(), p2.clone());
            let f = ctx.submit(move |c| {
                let v = c.read(&d3)?;
                c.write(&p3, 1)?;
                Ok(v * 2)
            })?;
            ctx.write(&h2, Some(f))?;
            // Reading the probe blocks serialization at submission, so the
            // future escapes T1 unserialized.
            ctx.read(&p2)?;
            ctx.work(100); // let the future finish while T1 is active
            Ok(())
        })
        .unwrap();
        // A third transaction invalidates the future's read.
        let d4 = data.clone();
        tm.atomic(move |ctx| ctx.write(&d4, 100)).unwrap();
        // Now the adoption must re-execute against the fresh state.
        let h3 = handle.clone();
        let v = tm
            .atomic(move |ctx| {
                let f = ctx.read(&h3)?.expect("handle");
                ctx.evaluate(&f)
            })
            .unwrap();
        let stats = tm.stats();
        tm.shutdown();
        (v, stats)
    });
    assert_eq!(v, 200, "re-executed against the updated value");
    assert_eq!(stats.reexecutions, 1);
    assert_eq!(stats.adopted_escaping, 1);
}

#[test]
fn gac_unevaluated_escaping_future_never_commits_effects() {
    let (x_final, stats, _) = with_vtm(Semantics::WO_GAC, 2, |tm| {
        let x = tm.new_vbox(0i64);
        let x2 = x.clone();
        tm.atomic(move |ctx| {
            let x3 = x2.clone();
            let _f = ctx.submit(move |c| {
                c.write(&x3, 99)?;
                Ok(())
            })?;
            Ok(())
        })
        .unwrap();
        // Give the future time to complete (its effects must still not
        // materialize — it is only serialized upon an evaluation that
        // never happens).
        let y = tm.new_vbox(0i64);
        let y2 = y.clone();
        tm.atomic(move |ctx| {
            ctx.work(10_000);
            ctx.write(&y2, 1)
        })
        .unwrap();
        x.read_latest()
    });
    assert_eq!(x_final, 0);
    assert_eq!(stats.adopted_escaping, 0);
}

#[test]
fn deterministic_virtual_execution() {
    let run = || {
        with_vtm(Semantics::WO_GAC, 4, |tm| {
            let boxes: Vec<_> = (0..8).map(|i| tm.new_vbox(i as i64)).collect();
            let mut acc = 0i64;
            for round in 0..5 {
                let boxes2 = boxes.clone();
                acc += tm
                    .atomic(move |ctx| {
                        let mut futs = Vec::new();
                        for (i, b) in boxes2.iter().enumerate() {
                            let b2 = b.clone();
                            futs.push(ctx.submit(move |c| {
                                c.work(100 * (i as u64 + 1));
                                let v = c.read(&b2)?;
                                c.write(&b2, v + 1)?;
                                Ok(v)
                            })?);
                        }
                        let mut sum = 0i64;
                        for f in &futs {
                            sum += ctx.evaluate(f)?;
                        }
                        Ok(sum + round)
                    })
                    .unwrap();
            }
            acc
        })
    };
    let (a1, s1, m1) = run();
    let (a2, s2, m2) = run();
    assert_eq!(a1, a2);
    assert_eq!(s1, s2);
    assert_eq!(m1, m2);
}

#[test]
fn parallel_futures_give_virtual_speedup() {
    // Fixed total work split across k futures: virtual makespan shrinks.
    let span = |futures: u64| {
        let (_, _, makespan) = with_vtm(Semantics::WO_GAC, 8, |tm| {
            let x = tm.new_vbox(1i64);
            let x2 = x.clone();
            tm.atomic(move |ctx| {
                let mut futs = Vec::new();
                for _ in 0..futures {
                    let x3 = x2.clone();
                    futs.push(ctx.submit(move |c| {
                        c.work(8_000 / futures);
                        c.read(&x3)
                    })?);
                }
                for f in &futs {
                    ctx.evaluate(f)?;
                }
                Ok(())
            })
            .unwrap();
        });
        makespan
    };
    let serial = span(1);
    let parallel = span(8);
    assert!(
        parallel * 4 < serial,
        "8-way futures at least 4x faster in virtual time ({parallel} vs {serial})"
    );
}

#[test]
fn cross_top_conflicts_preserve_counter() {
    // Two virtual threads increment the same counter through futures;
    // the final count is exact.
    let clock = Clock::virtual_time();
    let total = clock.enter(|| {
        let tm = FutureTm::builder()
            .semantics(Semantics::WO_GAC)
            .workers(8)
            .build();
        let counter = tm.new_vbox(0i64);
        let c = Clock::current();
        let hs: Vec<_> = (0..2)
            .map(|t| {
                let tm = tm.clone();
                let counter = counter.clone();
                c.spawn(&format!("top{t}"), move || {
                    for _ in 0..10 {
                        let counter2 = counter.clone();
                        tm.atomic(move |ctx| {
                            let c2 = counter2.clone();
                            let f = ctx.submit(move |c| {
                                c.work(37);
                                let v = c.read(&c2)?;
                                Ok(v)
                            })?;
                            let v = ctx.evaluate(&f)?;
                            ctx.write(&counter2, v + 1)?;
                            Ok(())
                        })
                        .unwrap();
                    }
                })
            })
            .collect();
        for h in hs {
            h.join();
        }
        let v = counter.read_latest();
        tm.shutdown();
        v
    });
    assert_eq!(total, 20, "lost updates prevented across top-levels");
}

#[test]
fn bank_invariant_with_futures_real_clock() {
    // Real-thread stress: transfers split across futures; conservation holds.
    let clock = Clock::real_nospin();
    clock.enter(|| {
        let tm = FutureTm::builder()
            .semantics(Semantics::WO_GAC)
            .workers(16)
            .build();
        const N: usize = 16;
        let accounts: Arc<Vec<_>> = Arc::new((0..N).map(|_| tm.new_vbox(100i64)).collect());
        let c = Clock::current();
        let hs: Vec<_> = (0..4)
            .map(|t| {
                let tm = tm.clone();
                let accounts = accounts.clone();
                c.spawn(&format!("client{t}"), move || {
                    let mut seed = 0xdeadbeefu64 ^ ((t as u64) << 7);
                    let mut next = move || {
                        seed ^= seed << 13;
                        seed ^= seed >> 7;
                        seed ^= seed << 17;
                        seed
                    };
                    for _ in 0..50 {
                        let from = (next() % N as u64) as usize;
                        let to = (next() % N as u64) as usize;
                        if from == to {
                            continue;
                        }
                        let accounts2 = accounts.clone();
                        tm.atomic(move |ctx| {
                            let (a, b) = (accounts2[from].clone(), accounts2[to].clone());
                            let f = ctx.submit(move |c| {
                                let v = c.read(&a)?;
                                c.write(&a, v - 5)?;
                                Ok(())
                            })?;
                            let v = ctx.read(&accounts2[to])?;
                            ctx.write(&b, v + 5)?;
                            ctx.evaluate(&f)?;
                            Ok(())
                        })
                        .unwrap();
                    }
                })
            })
            .collect();
        for h in hs {
            h.join();
        }
        let total: i64 = accounts.iter().map(|a| a.read_latest()).sum();
        assert_eq!(total, 100 * N as i64);
        tm.shutdown();
    });
}

#[test]
fn many_futures_fanout() {
    let (sum, stats, _) = with_vtm(Semantics::WO_GAC, 32, |tm| {
        let boxes: Vec<_> = (0..32).map(|i| tm.new_vbox(i as i64)).collect();
        let boxes2 = boxes.clone();
        tm.atomic(move |ctx| {
            let futs: Vec<_> = boxes2
                .iter()
                .map(|b| {
                    let b2 = b.clone();
                    ctx.submit(move |c| c.read(&b2))
                })
                .collect::<Result<_, _>>()?;
            let mut sum = 0i64;
            for f in &futs {
                sum += ctx.evaluate(f)?;
            }
            Ok(sum)
        })
        .unwrap()
    });
    assert_eq!(sum, (0..32).sum::<i64>());
    assert_eq!(stats.futures_submitted, 32);
}

// ---------------- wtf-inspect: exporters + watchdog ----------------

/// Graph exporters: mid-flight DOT and JSON renderings of a top-level
/// with a submitted future reflect node kinds, statuses and edges.
#[test]
fn graph_exporters_render_live_top() {
    let ((dot, json), _, _) = with_vtm(Semantics::WO_GAC, 2, |tm| {
        tm.atomic(|ctx| {
            let f = ctx.submit(|_| Ok(7u64))?;
            let top = tm.inner.live_tops().pop().expect("one live top");
            let dot = top.graph_dot();
            let json = top.graph_json();
            ctx.evaluate(&f)?;
            Ok((dot, json))
        })
        .unwrap()
    });
    assert!(dot.starts_with("digraph top0"), "{dot}");
    // Submit creates the future node n1 and the continuation node n2,
    // both children of the iCommitted root.
    assert!(dot.contains("n1 future"), "{dot}");
    assert!(dot.contains("n2 cont"), "{dot}");
    assert!(dot.contains("n0 root icommitted"), "{dot}");
    assert!(dot.contains("n0 -> n1;"), "{dot}");
    assert!(dot.contains("n0 -> n2;"), "{dot}");
    let parsed = wtf_trace::Json::parse(&json.to_string()).unwrap();
    assert_eq!(parsed.get("top"), Some(&wtf_trace::Json::U64(0)));
    assert_eq!(parsed.get("nodes").unwrap().as_arr().unwrap().len(), 3);
    assert_eq!(parsed.get("edges").unwrap().as_arr().unwrap().len(), 2);
    // iCommit order: root (rank 0) before its children.
    let order = parsed.get("icommit_order").unwrap().as_arr().unwrap();
    assert_eq!(order[0], wtf_trace::Json::U64(0));
}

/// `auto_dump` writes `{reason}_top{id}.dot` + `.json` into the snapshot
/// dir and respects the per-TM dump budget.
#[test]
fn auto_dump_writes_snapshots_and_respects_budget() {
    use std::sync::atomic::Ordering;
    let dir = std::env::temp_dir().join(format!("wtf_inspect_dump_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::env::set_var("WTF_SNAPSHOT_DIR", &dir);
    let tm = FutureTm::new(Semantics::WO_GAC);
    let top = crate::TopLevel::begin(&tm.inner);
    crate::inspect::auto_dump(&tm.inner, &top, "doom");
    let dot = std::fs::read_to_string(dir.join("doom_top0.dot")).unwrap();
    assert!(dot.contains("digraph top0"));
    assert!(std::fs::metadata(dir.join("doom_top0.json")).is_ok());
    // Exhaust the budget: no further files appear.
    tm.inner.dumps_remaining.store(0, Ordering::Relaxed);
    crate::inspect::auto_dump(&tm.inner, &top, "storm");
    assert!(std::fs::metadata(dir.join("storm_top0.dot")).is_err());
    std::env::remove_var("WTF_SNAPSHOT_DIR");
    drop(top);
    tm.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Live TM gauges (in-flight tops, nodes) report through the tracer.
#[test]
fn tm_gauges_track_live_tops_and_nodes() {
    use wtf_trace::{TraceLevel, Tracer};
    let tracer = Tracer::new(TraceLevel::Lifecycle);
    let clock = Clock::virtual_time();
    let t2 = tracer.clone();
    clock.enter(move || {
        let tm = FutureTm::builder()
            .semantics(Semantics::WO_GAC)
            .workers(2)
            .tracer(t2.clone())
            .build();
        let gauge = |name: &str| {
            t2.gauges
                .read_all()
                .into_iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| v)
                .unwrap()
        };
        assert_eq!(gauge("tm_live_tops"), 0);
        tm.atomic(|ctx| {
            let f = ctx.submit(|_| Ok(1u64))?;
            assert_eq!(gauge("tm_live_tops"), 1);
            // Root + future node + continuation node.
            assert_eq!(gauge("tm_live_nodes"), 3);
            ctx.evaluate(&f)
        })
        .unwrap();
        assert_eq!(gauge("tm_live_tops"), 0, "finished top is dropped");
        tm.shutdown();
    });
}

/// Acceptance: a stalled top-level trips the watchdog within its window,
/// and the dumped DOT snapshot contains the straggler's future node.
#[cfg(feature = "watchdog")]
#[test]
fn watchdog_fires_on_stall_and_dumps_straggler() {
    use crate::watchdog::WatchdogConfig;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::time::{Duration, Instant};
    let dir = std::env::temp_dir().join(format!("wtf_watchdog_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let clock = Clock::real_nospin();
    let dir2 = dir.clone();
    clock.enter(move || {
        let tm = FutureTm::new(Semantics::WO_GAC);
        let wd = tm.start_watchdog(WatchdogConfig {
            poll: Duration::from_millis(5),
            window: Duration::from_millis(30),
            abort_straggler: false,
            snapshot_dir: Some(dir2.clone()),
        });
        let gate = Arc::new(AtomicBool::new(false));
        let out = tm
            .atomic(|ctx| {
                let g = gate.clone();
                let f = ctx.submit(move |_| {
                    while !g.load(Ordering::Acquire) {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    Ok(11u64)
                })?;
                // Straggle: hold the top open until the watchdog fires.
                let deadline = Instant::now() + Duration::from_secs(30);
                while wd.times_fired() == 0 {
                    assert!(Instant::now() < deadline, "watchdog never fired");
                    std::thread::sleep(Duration::from_millis(1));
                }
                gate.store(true, Ordering::Release);
                ctx.evaluate(&f)
            })
            .unwrap();
        assert_eq!(out, 11);
        wd.stop();
        tm.shutdown();
    });
    let dot = std::fs::read_to_string(dir.join("watchdog_top0.dot"))
        .expect("watchdog dumped the live graph");
    assert!(dot.contains("digraph top0"), "{dot}");
    assert!(dot.contains("n1 future"), "straggler node present: {dot}");
    let report = std::fs::read_to_string(dir.join("watchdog_report.json")).unwrap();
    let parsed = wtf_trace::Json::parse(&report).unwrap();
    assert_eq!(parsed.get("straggler"), Some(&wtf_trace::Json::U64(0)));
    assert!(!parsed
        .get("live_tops")
        .unwrap()
        .as_arr()
        .unwrap()
        .is_empty());
    let _ = std::fs::remove_dir_all(&dir);
}

/// The watchdog is quiet while commits make progress, and the
/// abort-straggler knob dooms (and thereby unwedges) a stalled top
/// under a real clock.
#[cfg(feature = "watchdog")]
#[test]
fn watchdog_quiet_under_progress_and_aborts_straggler() {
    use crate::watchdog::WatchdogConfig;
    use std::time::Duration;
    let dir = std::env::temp_dir().join(format!("wtf_watchdog_quiet_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let clock = Clock::real_nospin();
    let dir2 = dir.clone();
    clock.enter(move || {
        let tm = FutureTm::new(Semantics::WO_GAC);
        let b = tm.new_vbox(0u64);
        let wd = tm.start_watchdog(WatchdogConfig {
            poll: Duration::from_millis(5),
            window: Duration::from_millis(40),
            abort_straggler: true,
            snapshot_dir: Some(dir2.clone()),
        });
        // Steady commits: the watchdog must stay quiet.
        for _ in 0..20 {
            tm.atomic(|ctx| {
                let v = ctx.read(&b)?;
                ctx.write(&b, v + 1)
            })
            .unwrap();
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(wd.times_fired(), 0, "no stall under steady commits");
        // Now stall: a top-level that spins until it is doomed from
        // outside. The watchdog's abort_straggler unwedges it.
        let mut attempts = 0u32;
        tm.atomic(|ctx| {
            attempts += 1;
            if attempts == 1 {
                let top = tm.inner.live_tops().pop().unwrap();
                while !top.is_doomed() {
                    std::thread::sleep(Duration::from_millis(1));
                }
                // Doomed by the watchdog: force the restart path.
                return Err(crate::StmError::Conflict);
            }
            ctx.write(&b, 99)
        })
        .unwrap();
        assert!(wd.times_fired() >= 1);
        assert!(attempts >= 2, "straggler was aborted and retried");
        wd.stop();
        tm.shutdown();
    });
    let _ = std::fs::remove_dir_all(&dir);
}
