//! # wtf-taskpool — clock-aware task pool
//!
//! Transactional futures need somewhere to run. The paper's WTF-TM
//! activates "a parallel thread in which T will be executed" for every
//! `submit`; this crate provides that substrate as a fixed pool of worker
//! threads registered with a [`Clock`](wtf_vclock::Clock), so that future
//! bodies execute under virtual time in simulation mode and as plain OS
//! threads in real mode.
//!
//! Workers block on a queue event while idle; pushing a task wakes one up
//! at the submitter's (virtual) timestamp, which models the inter-thread
//! communication latency of future activation via an explicit
//! `dispatch_cost`.
//!
//! The pool is sized by the caller. The paper dedicates one thread per
//! in-flight future, and the figure harnesses do the same; a pool smaller
//! than the maximum number of simultaneously *blocking* tasks can deadlock
//! (and the virtual clock will say so loudly rather than hang).

use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use wtf_trace::{EventKind, Tracer};
use wtf_vclock::{Clock, Event, JoinHandle};

type Task = Box<dyn FnOnce() + Send + 'static>;

/// A queued task plus the causal metadata the profiler needs: the pool-wide
/// task id and the (virtual) enqueue timestamp, which together let
/// [`EventKind::TaskEnqueue`]/[`EventKind::TaskDequeue`] pairs reconstruct
/// queue-delay edges offline.
struct QueuedTask {
    id: u64,
    enqueued_at: u64,
    task: Task,
}

struct PoolInner {
    clock: Clock,
    queue: Mutex<VecDeque<QueuedTask>>,
    /// Notified when a task is pushed or shutdown begins.
    available: Event,
    // ordering: release-store begins shutdown; the worker loop's
    // acquire-load pairs with it so a worker that observes the flag also
    // observes everything enqueued before it. (Downgraded from SeqCst:
    // shutdown is one-way and never ordered against another atomic.)
    // relaxed-load only in `execute`'s misuse assertion. relaxed-guard:
    // that assertion is a best-effort guard against submitting to a pool
    // already shut down — a racing submit loses either way.
    shutdown: AtomicBool,
    /// Number of workers currently executing a task (diagnostics).
    // ordering: relaxed-rmw, relaxed-load — a diagnostics gauge.
    busy: AtomicUsize,
    /// Cumulative tasks finished across all workers, exposed as the
    /// `pool_tasks_executed` gauge (telemetry differences it per epoch).
    // ordering: relaxed-rmw, relaxed-load — a statistics counter.
    executed: AtomicU64,
    /// Monotonic task-id source for enqueue/dequeue causal pairs.
    // ordering: relaxed-rmw — ids only need uniqueness; the queue mutex
    // orders the enqueue itself.
    next_task: AtomicU64,
    /// Observability: workers emit busy/idle spans into this tracer.
    tracer: Arc<Tracer>,
}

/// A fixed-size pool of clock-registered worker threads.
pub struct TaskPool {
    inner: Arc<PoolInner>,
    workers: Vec<JoinHandle<()>>,
    /// Virtual cost charged to the submitter per dispatch, modeling the
    /// cost of waking a remote thread (cache-line transfer + futex).
    dispatch_cost: u64,
}

impl TaskPool {
    /// Creates a pool with `workers` worker threads under `clock`.
    ///
    /// Must be called from a thread registered with `clock` (i.e. inside
    /// [`Clock::enter`] or a clock-spawned thread).
    pub fn new(clock: &Clock, workers: usize) -> TaskPool {
        Self::with_dispatch_cost(clock, workers, 0)
    }

    /// Like [`TaskPool::new`], charging `dispatch_cost` clock units to every
    /// submitter.
    pub fn with_dispatch_cost(clock: &Clock, workers: usize, dispatch_cost: u64) -> TaskPool {
        Self::with_tracer(clock, workers, dispatch_cost, Tracer::disabled())
    }

    /// Full constructor: workers report busy/idle spans into `tracer`
    /// (one relaxed load per transition when tracing is off).
    pub fn with_tracer(
        clock: &Clock,
        workers: usize,
        dispatch_cost: u64,
        tracer: Arc<Tracer>,
    ) -> TaskPool {
        assert!(workers > 0, "a task pool needs at least one worker");
        let inner = Arc::new(PoolInner {
            clock: clock.clone(),
            queue: Mutex::new(VecDeque::new()),
            available: clock.new_event(),
            shutdown: AtomicBool::new(false),
            busy: AtomicUsize::new(0),
            executed: AtomicU64::new(0),
            next_task: AtomicU64::new(0),
            tracer,
        });
        if inner.tracer.on() {
            // Live pool gauges, sampled on demand by the registry. `Weak`
            // captures: the tracer outlives the pool in some harnesses.
            let w = Arc::downgrade(&inner);
            inner.tracer.gauges.register("pool_queue_depth", move || {
                w.upgrade().map_or(0, |p| p.queue.lock().len() as u64)
            });
            let w = Arc::downgrade(&inner);
            inner.tracer.gauges.register("pool_busy_workers", move || {
                w.upgrade()
                    .map_or(0, |p| p.busy.load(Ordering::Relaxed) as u64)
            });
            let w = Arc::downgrade(&inner);
            inner
                .tracer
                .gauges
                .register("pool_tasks_executed", move || {
                    w.upgrade()
                        .map_or(0, |p| p.executed.load(Ordering::Relaxed))
                });
        }
        let handles = (0..workers)
            .map(|i| {
                let inner = inner.clone();
                clock.spawn(&format!("pool-worker-{i}"), move || worker_loop(&inner, i))
            })
            .collect();
        TaskPool {
            inner,
            workers: handles,
            dispatch_cost,
        }
    }

    /// The clock this pool runs under.
    pub fn clock(&self) -> &Clock {
        &self.inner.clock
    }

    /// Enqueues `task` for execution on some worker. Fire-and-forget; use
    /// [`TaskPool::submit`] for a joinable handle.
    pub fn execute(&self, task: impl FnOnce() + Send + 'static) {
        assert!(
            !self.inner.shutdown.load(Ordering::Relaxed),
            "execute on a shut-down pool"
        );
        self.inner.clock.advance(self.dispatch_cost);
        let id = self.inner.next_task.fetch_add(1, Ordering::Relaxed);
        let entry = QueuedTask {
            id,
            enqueued_at: self.inner.tracer.now(),
            task: Box::new(task),
        };
        let depth = {
            let mut q = self.inner.queue.lock();
            q.push_back(entry);
            q.len() as u64
        };
        self.inner.tracer.record(EventKind::TaskEnqueue, id, depth);
        self.inner.clock.notify_all(&self.inner.available);
    }

    /// Enqueues `task` and returns a handle to wait for its result.
    pub fn submit<T: Send + 'static>(
        &self,
        task: impl FnOnce() -> T + Send + 'static,
    ) -> TaskHandle<T> {
        let slot = Arc::new(Mutex::new(None));
        let done = self.inner.clock.new_event();
        let clock = self.inner.clock.clone();
        let s2 = slot.clone();
        let d2 = done.clone();
        let c2 = clock.clone();
        self.execute(move || {
            let out = task();
            *s2.lock() = Some(out);
            c2.notify_all(&d2);
        });
        TaskHandle { slot, done, clock }
    }

    /// Number of workers currently executing tasks.
    pub fn busy_workers(&self) -> usize {
        self.inner.busy.load(Ordering::Relaxed)
    }

    /// Number of tasks queued but not yet picked up by a worker.
    pub fn queue_depth(&self) -> usize {
        self.inner.queue.lock().len()
    }

    /// Stops accepting tasks, drains the queue, and joins all workers.
    ///
    /// Must be called from a clock thread before the enclosing
    /// [`Clock::enter`] returns.
    pub fn shutdown(mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        self.inner.clock.notify_all(&self.inner.available);
        for h in self.workers.drain(..) {
            h.join();
        }
    }
}

impl Drop for TaskPool {
    fn drop(&mut self) {
        // `shutdown` drains `workers`; a nonempty list here means the pool
        // was dropped without an orderly shutdown. Under a virtual clock
        // the leaked workers would trip the scheduler's leak detection with
        // a confusing message, so fail fast with a clear one.
        if !self.workers.is_empty() && !std::thread::panicking() {
            panic!("TaskPool dropped without shutdown(); workers would leak");
        }
    }
}

/// Handle to a task submitted with [`TaskPool::submit`].
pub struct TaskHandle<T> {
    slot: Arc<Mutex<Option<T>>>,
    done: Event,
    clock: Clock,
}

impl<T> TaskHandle<T> {
    /// Blocks (in clock time) until the task completes and returns its result.
    pub fn join(self) -> T {
        let slot = self.slot.clone();
        self.clock.wait_until(&self.done, || slot.lock().is_some());
        self.slot.lock().take().expect("task result present")
    }

    /// Returns the result if the task already completed.
    pub fn try_join(&self) -> Option<T> {
        self.slot.lock().take()
    }

    /// True once the task has completed.
    pub fn is_finished(&self) -> bool {
        self.slot.lock().is_some()
    }
}

fn worker_loop(inner: &PoolInner, index: usize) {
    loop {
        let task = {
            let mut q = inner.queue.lock();
            q.pop_front()
        };
        match task {
            Some(QueuedTask {
                id,
                enqueued_at,
                task,
            }) => {
                inner.busy.fetch_add(1, Ordering::Relaxed);
                if inner.tracer.on() {
                    let delay = inner.tracer.now().saturating_sub(enqueued_at);
                    inner.tracer.record(EventKind::TaskDequeue, id, delay);
                }
                let start = inner.tracer.span_start();
                task();
                inner
                    .tracer
                    .span_end(EventKind::WorkerBusySpan, start, index as u64);
                inner.executed.fetch_add(1, Ordering::Relaxed);
                inner.busy.fetch_sub(1, Ordering::Relaxed);
            }
            None => {
                if inner.shutdown.load(Ordering::Acquire) {
                    return;
                }
                let inner2 = inner;
                let start = inner.tracer.span_start();
                inner.clock.wait_until(&inner.available, || {
                    inner2.shutdown.load(Ordering::Acquire) || !inner2.queue.lock().is_empty()
                });
                inner
                    .tracer
                    .span_end(EventKind::WorkerIdleSpan, start, index as u64);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_tasks_real() {
        let clock = Clock::real_nospin();
        let total = clock.enter(|| {
            let pool = TaskPool::new(&Clock::current(), 4);
            let handles: Vec<_> = (0..32u64).map(|i| pool.submit(move || i * 2)).collect();
            let sum: u64 = handles.into_iter().map(|h| h.join()).sum();
            pool.shutdown();
            sum
        });
        assert_eq!(total, (0..32u64).map(|i| i * 2).sum());
    }

    #[test]
    fn runs_tasks_virtual_and_parallel_in_vtime() {
        let clock = Clock::virtual_time();
        clock.enter(|| {
            let c = Clock::current();
            let pool = TaskPool::new(&c, 8);
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    pool.submit(|| {
                        Clock::current().advance(1_000);
                    })
                })
                .collect();
            for h in handles {
                h.join();
            }
            pool.shutdown();
        });
        // 8 tasks of 1000 units on 8 workers run fully parallel.
        assert_eq!(clock.makespan(), 1_000);
    }

    #[test]
    fn queueing_serializes_when_pool_small() {
        let clock = Clock::virtual_time();
        clock.enter(|| {
            let c = Clock::current();
            let pool = TaskPool::new(&c, 2);
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    pool.submit(|| {
                        Clock::current().advance(1_000);
                    })
                })
                .collect();
            for h in handles {
                h.join();
            }
            pool.shutdown();
        });
        // 8 x 1000 units over 2 workers = 4000 units of virtual makespan.
        assert_eq!(clock.makespan(), 4_000);
    }

    #[test]
    fn dispatch_cost_charged_to_submitter() {
        let clock = Clock::virtual_time();
        clock.enter(|| {
            let c = Clock::current();
            let pool = TaskPool::with_dispatch_cost(&c, 1, 250);
            let h = pool.submit(|| {});
            h.join();
            assert_eq!(c.now(), 250);
            pool.shutdown();
        });
    }

    #[test]
    fn nested_submission() {
        let clock = Clock::virtual_time();
        let out = clock.enter(|| {
            let c = Clock::current();
            let pool = Arc::new(TaskPool::new(&c, 4));
            let p2 = pool.clone();
            let h = pool.submit(move || {
                let inner = p2.submit(|| 21u64);
                inner.join() * 2
            });
            let v = h.join();
            Arc::into_inner(pool).unwrap().shutdown();
            v
        });
        assert_eq!(out, 42);
    }

    #[test]
    fn workers_emit_busy_spans_when_traced() {
        use wtf_trace::TraceLevel;
        let tracer = Tracer::new(TraceLevel::Lifecycle);
        let clock = Clock::virtual_time();
        let t2 = tracer.clone();
        clock.enter(move || {
            let c = Clock::current();
            let pool = TaskPool::with_tracer(&c, 2, 0, t2);
            let handles: Vec<_> = (0..4)
                .map(|_| pool.submit(|| Clock::current().advance(100)))
                .collect();
            for h in handles {
                h.join();
            }
            pool.shutdown();
        });
        let busy: Vec<_> = tracer
            .lanes()
            .into_iter()
            .flat_map(|(_, evs)| evs)
            .filter(|e| e.kind == EventKind::WorkerBusySpan)
            .collect();
        assert_eq!(busy.len(), 4, "one busy span per task");
        // Span durations are virtual-clock exact: each task advanced 100.
        assert!(busy.iter().all(|e| e.a == 100));
    }

    #[test]
    fn queue_depth_and_gauges() {
        use wtf_trace::TraceLevel;
        let tracer = Tracer::new(TraceLevel::Lifecycle);
        let clock = Clock::real_nospin();
        let t2 = tracer.clone();
        clock.enter(move || {
            let pool = TaskPool::with_tracer(&Clock::current(), 1, 0, t2.clone());
            let gate = Arc::new(AtomicBool::new(false));
            // Worker 0 blocks on the gate; two more tasks pile up behind it.
            let g2 = gate.clone();
            let h = pool.submit(move || {
                while !g2.load(Ordering::Acquire) {
                    std::hint::spin_loop();
                }
            });
            while pool.busy_workers() == 0 {
                std::hint::spin_loop();
            }
            pool.execute(|| {});
            pool.execute(|| {});
            assert_eq!(pool.queue_depth(), 2);
            let live = t2.gauges.read_all();
            assert!(
                live.contains(&("pool_queue_depth".to_string(), 2)),
                "{live:?}"
            );
            assert!(
                live.contains(&("pool_busy_workers".to_string(), 1)),
                "{live:?}"
            );
            gate.store(true, Ordering::Release);
            h.join();
            pool.shutdown();
        });
        // Pool gone: gauges degrade to 0 rather than dangle.
        assert_eq!(tracer.gauges.read_all()[0].1, 0);
    }

    #[test]
    fn try_join_nonblocking() {
        let clock = Clock::real_nospin();
        clock.enter(|| {
            let pool = TaskPool::new(&Clock::current(), 1);
            let gate = Arc::new(AtomicBool::new(false));
            let g2 = gate.clone();
            let h = pool.submit(move || {
                while !g2.load(Ordering::Acquire) {
                    std::hint::spin_loop();
                }
                5u32
            });
            assert!(!h.is_finished());
            gate.store(true, Ordering::Release);
            assert_eq!(h.join(), 5);
            pool.shutdown();
        });
    }
}
