//! Hand-rolled JSON: a value type with deterministic rendering plus a
//! small recursive-descent parser.
//!
//! The workspace builds fully offline (no `serde`), and the exporters
//! need **byte-deterministic** output so that two virtual-clock runs of
//! the same workload produce identical artifacts. Objects therefore
//! preserve insertion order (a `Vec` of pairs, not a hash map) and
//! numbers render through Rust's shortest-roundtrip `Display`, which is
//! itself deterministic.
//!
//! The parser exists so fig binaries can validate their own emissions
//! (`--check-json`) and tests can round-trip exported artifacts without
//! external tooling. It accepts exactly RFC 8259 JSON (no comments, no
//! trailing commas) and is not performance-sensitive.

use std::fmt;

/// A JSON document. Construct with the `From` impls and [`Json::obj`] /
/// [`Json::arr`]; render with `to_string()`; parse with [`Json::parse`].
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Unsigned integers (counters, timestamps) keep full u64 precision.
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Insertion-ordered object (rendering must be deterministic).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An object from `(key, value)` pairs, preserving order.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// An array from values.
    pub fn arr(items: Vec<Json>) -> Json {
        Json::Arr(items)
    }

    /// Looks up a key in an object (None for other variants).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements of an array (None for other variants).
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Unsigned value, exact (U64, or I64/F64 when losslessly in range).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(v) => Some(*v),
            Json::I64(v) => u64::try_from(*v).ok(),
            Json::F64(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= u64::MAX as f64 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// Numeric value as f64 (U64/I64/F64).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::U64(v) => Some(*v as f64),
            Json::I64(v) => Some(*v as f64),
            Json::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// String payload.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Parses a JSON document, requiring the whole input to be consumed.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing data after document"));
        }
        Ok(value)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::U64(v)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::U64(v as u64)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::I64(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::F64(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut buf = String::new();
        self.render(&mut buf);
        f.write_str(&buf)
    }
}

impl Json {
    fn render(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => out.push_str(&v.to_string()),
            Json::I64(v) => out.push_str(&v.to_string()),
            Json::F64(v) => {
                // JSON has no NaN/Infinity; map them to null like
                // browsers' JSON.stringify does.
                if v.is_finite() {
                    // Always keep a decimal point so the value re-parses
                    // as a float, and shortest-roundtrip for determinism.
                    let s = v.to_string();
                    out.push_str(&s);
                    if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => escape_into(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(out, k);
                    out.push(':');
                    v.render(out);
                }
                out.push('}');
            }
        }
    }
}

/// Parse failure: position (byte offset) and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    pub pos: usize,
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            pos: self.pos,
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: \uD800-\uDBFF must be
                            // followed by \uDC00-\uDFFF.
                            let c = if (0xd800..0xdc00).contains(&cp) {
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
                                char::from_u32(combined)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(cp).ok_or_else(|| self.err("invalid codepoint"))?
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    /// Reads 4 hex digits and leaves `pos` after them.
    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::I64(v));
            }
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_deterministically_and_round_trips() {
        let doc = Json::obj(vec![
            ("name", "fig3".into()),
            ("makespan", 105_000u64.into()),
            ("rate", 0.25f64.into()),
            ("neg", Json::I64(-3)),
            ("flags", Json::arr(vec![true.into(), Json::Null])),
            ("nested", Json::obj(vec![("k", "v \"quoted\"\n".into())])),
        ]);
        let s1 = doc.to_string();
        let s2 = doc.to_string();
        assert_eq!(s1, s2);
        let parsed = Json::parse(&s1).unwrap();
        assert_eq!(parsed, doc);
        assert_eq!(parsed.get("makespan"), Some(&Json::U64(105_000)));
    }

    #[test]
    fn f64_always_reparses_as_float() {
        let s = Json::F64(2.0).to_string();
        assert_eq!(s, "2.0");
        assert_eq!(Json::parse(&s).unwrap(), Json::F64(2.0));
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = Json::parse(r#""aéb😀c\td""#).unwrap();
        assert_eq!(v, Json::Str("aéb😀c\td".to_string()));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse(r#"{"a":}"#).is_err());
        assert!(Json::parse(r#""\ud800""#).is_err());
    }

    #[test]
    fn u64_precision_survives() {
        let big = u64::MAX - 1;
        let s = Json::U64(big).to_string();
        assert_eq!(Json::parse(&s).unwrap(), Json::U64(big));
    }
}
