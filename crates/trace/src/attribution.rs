//! Abort attribution: which boxes and stripes cause conflicts.
//!
//! `TmStats` can say *how many* aborts happened; it cannot say *where*.
//! The conflict map charges every abort to the `VBox` whose version
//! check failed (and to its commit-lock stripe), producing the per-run
//! "conflict hotspot" report in the JSON dump. The stripe counters are
//! a fixed array of relaxed atomics (free to bump); the per-box map is
//! behind a mutex, which is fine because attribution only runs on the
//! abort path — already the slow path.

use crate::json::Json;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Must match `wtf-mvstm`'s stripe count so stripe indices line up.
pub const STRIPES: usize = 64;

/// Aggregated conflict counters, keyed by box id and stripe.
pub struct ConflictMap {
    // ordering(stripes, s): relaxed-rmw, relaxed-load — statistics
    // counters; the export runs after workers quiesce.
    stripes: [AtomicU64; STRIPES],
    /// BTreeMap so iteration (and thus export) order is deterministic.
    boxes: Mutex<BTreeMap<u64, u64>>,
}

impl Default for ConflictMap {
    fn default() -> Self {
        Self::new()
    }
}

impl ConflictMap {
    pub fn new() -> ConflictMap {
        ConflictMap {
            stripes: std::array::from_fn(|_| AtomicU64::new(0)),
            boxes: Mutex::new(BTreeMap::new()),
        }
    }

    /// Charges one conflict to `box_id`. Called on abort paths only.
    pub fn charge(&self, box_id: u64) {
        self.stripes[(box_id as usize) & (STRIPES - 1)].fetch_add(1, Ordering::Relaxed);
        *self.boxes.lock().entry(box_id).or_insert(0) += 1;
    }

    /// Total conflicts charged.
    pub fn total(&self) -> u64 {
        self.boxes.lock().values().sum()
    }

    /// The `limit` hottest boxes as `(box_id, conflicts)`, sorted by
    /// count descending, box id ascending on ties (deterministic).
    pub fn hotspots(&self, limit: usize) -> Vec<(u64, u64)> {
        let mut all: Vec<(u64, u64)> = self.boxes.lock().iter().map(|(&k, &v)| (k, v)).collect();
        all.sort_by(|x, y| y.1.cmp(&x.1).then(x.0.cmp(&y.0)));
        all.truncate(limit);
        all
    }

    /// Per-stripe conflict counts (index = stripe).
    pub fn stripe_counts(&self) -> Vec<u64> {
        self.stripes
            .iter()
            .map(|s| s.load(Ordering::Relaxed))
            .collect()
    }

    /// JSON report: totals, hotspot list and the non-zero stripes.
    pub fn to_json(&self, hotspot_limit: usize) -> Json {
        let hotspots: Vec<Json> = self
            .hotspots(hotspot_limit)
            .into_iter()
            .map(|(id, n)| Json::obj(vec![("box", id.into()), ("conflicts", n.into())]))
            .collect();
        let stripes: Vec<Json> = self
            .stripe_counts()
            .into_iter()
            .enumerate()
            .filter(|(_, n)| *n > 0)
            .map(|(i, n)| Json::arr(vec![i.into(), n.into()]))
            .collect();
        Json::obj(vec![
            ("total", self.total().into()),
            ("hotspots", Json::Arr(hotspots)),
            ("stripes", Json::Arr(stripes)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hotspots_sorted_deterministically() {
        let m = ConflictMap::new();
        for _ in 0..3 {
            m.charge(7);
        }
        for _ in 0..3 {
            m.charge(2);
        }
        m.charge(100);
        assert_eq!(m.total(), 7);
        // Ties broken by ascending box id.
        assert_eq!(m.hotspots(10), vec![(2, 3), (7, 3), (100, 1)]);
        assert_eq!(m.hotspots(1), vec![(2, 3)]);
    }

    #[test]
    fn stripe_counters_fold_by_mask() {
        let m = ConflictMap::new();
        m.charge(1);
        m.charge(65); // 65 & 63 == 1 → same stripe
        let stripes = m.stripe_counts();
        assert_eq!(stripes[1], 2);
        assert_eq!(stripes.iter().sum::<u64>(), 2);
    }

    #[test]
    fn json_shape() {
        let m = ConflictMap::new();
        m.charge(3);
        let j = m.to_json(8);
        assert_eq!(j.get("total"), Some(&Json::U64(1)));
        let s = j.to_string();
        assert_eq!(Json::parse(&s).unwrap(), j);
    }
}
