//! Ring-of-epochs windowed primitives: the sliding-window substrate
//! `wtf-telemetry` aggregates over.
//!
//! Time is cut into fixed-length **epochs** (clock units per epoch is
//! the consumer's choice; virtual and real clocks both work). Each
//! closed epoch contributes one *frame* — a counter delta or a
//! [`HistogramSnapshot`] delta — and a window keeps the last `cap`
//! frames. Rolling queries fold the retained frames: sums for counters,
//! [`HistogramSnapshot::merge`] for histograms, so a rolling percentile
//! is exactly the percentile of a histogram built from the window's
//! samples (the property the proptest oracle below pins down).
//!
//! These types are deliberately plain (no atomics): the consumer closes
//! epochs under its own lock, on hook-driven ticks — a sampler thread
//! would perturb the virtual-clock schedule and break determinism.

use crate::hist::HistogramSnapshot;
use std::collections::VecDeque;

/// A windowed counter: per-epoch deltas, rolling sum over the last
/// `cap` epochs.
#[derive(Debug, Clone)]
pub struct WindowedCounter {
    cap: usize,
    frames: VecDeque<(u64, u64)>,
}

impl WindowedCounter {
    /// A window retaining the last `cap` epochs (`cap >= 1`).
    pub fn new(cap: usize) -> WindowedCounter {
        WindowedCounter {
            cap: cap.max(1),
            frames: VecDeque::new(),
        }
    }

    /// Closes `epoch` with this counter's delta for it. Epochs must be
    /// pushed in increasing order; the oldest frame falls out once more
    /// than `cap` are retained.
    pub fn push(&mut self, epoch: u64, delta: u64) {
        debug_assert!(self.frames.back().is_none_or(|&(e, _)| e < epoch));
        self.frames.push_back((epoch, delta));
        while self.frames.len() > self.cap {
            self.frames.pop_front();
        }
    }

    /// Sum of the retained (windowed) deltas.
    pub fn window_sum(&self) -> u64 {
        self.frames.iter().map(|&(_, v)| v).sum()
    }

    /// The most recently closed epoch's `(epoch, delta)`.
    pub fn last(&self) -> Option<(u64, u64)> {
        self.frames.back().copied()
    }

    /// Number of retained frames (≤ `cap`).
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }
}

/// A windowed log-bucketed histogram: per-epoch snapshot deltas, rolling
/// merge over the last `cap` epochs.
#[derive(Debug, Clone)]
pub struct WindowedHistogram {
    cap: usize,
    frames: VecDeque<(u64, HistogramSnapshot)>,
}

impl WindowedHistogram {
    pub fn new(cap: usize) -> WindowedHistogram {
        WindowedHistogram {
            cap: cap.max(1),
            frames: VecDeque::new(),
        }
    }

    /// Closes `epoch` with the histogram delta recorded during it.
    pub fn push(&mut self, epoch: u64, delta: HistogramSnapshot) {
        debug_assert!(self.frames.back().is_none_or(|(e, _)| *e < epoch));
        self.frames.push_back((epoch, delta));
        while self.frames.len() > self.cap {
            self.frames.pop_front();
        }
    }

    /// The merged histogram over the retained window: bucket arrays sum,
    /// so quantiles carry the same 2x bound as the underlying
    /// [`Histogram`](crate::Histogram).
    pub fn rolling(&self) -> HistogramSnapshot {
        let mut out = HistogramSnapshot::default();
        for (_, frame) in &self.frames {
            out.merge(frame);
        }
        out
    }

    /// The most recently closed epoch's delta.
    pub fn last(&self) -> Option<&(u64, HistogramSnapshot)> {
        self.frames.back()
    }

    pub fn len(&self) -> usize {
        self.frames.len()
    }

    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::Histogram;

    #[test]
    fn counter_window_slides() {
        let mut w = WindowedCounter::new(3);
        for (e, v) in [(0, 1), (1, 2), (2, 4), (3, 8)] {
            w.push(e, v);
        }
        assert_eq!(w.len(), 3, "epoch 0 fell out");
        assert_eq!(w.window_sum(), 2 + 4 + 8);
        assert_eq!(w.last(), Some((3, 8)));
    }

    #[test]
    fn histogram_window_merges_retained_frames() {
        let mut w = WindowedHistogram::new(2);
        for (e, vals) in [(0u64, vec![1u64, 2]), (1, vec![100]), (2, vec![7, 7])] {
            let h = Histogram::new();
            for v in vals {
                h.record(v);
            }
            w.push(e, h.snapshot());
        }
        // Window = epochs 1..=2; epoch 0's samples are gone.
        let rolling = w.rolling();
        let direct = Histogram::new();
        for v in [100u64, 7, 7] {
            direct.record(v);
        }
        assert_eq!(rolling, direct.snapshot());
        assert_eq!(rolling.count, 3);
        assert_eq!(rolling.min, 7);
        assert_eq!(rolling.max, 100);
    }

    #[test]
    fn empty_windows_are_zero() {
        let w = WindowedHistogram::new(4);
        assert!(w.is_empty());
        assert_eq!(w.rolling(), HistogramSnapshot::default());
        let c = WindowedCounter::new(4);
        assert!(c.is_empty());
        assert_eq!(c.window_sum(), 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::hist::Histogram;
    use proptest::prelude::*;

    proptest! {
        /// Oracle: a windowed histogram's rolling snapshot must equal —
        /// bucket array, count, sum, min, max, and therefore every
        /// percentile — a histogram built directly from the naive
        /// Vec-of-samples restricted to the window, at every slide
        /// position.
        #[test]
        fn rolling_matches_vec_of_samples_oracle(
            input in (
                proptest::collection::vec(
                    proptest::collection::vec(0u64..1_000_000, 0..12),
                    1..20,
                ),
                1usize..6,
                1u64..1001,
            )
        ) {
            let (epochs, cap, p_tenths) = input;
            let p = p_tenths as f64 / 10.0;
            let mut w = WindowedHistogram::new(cap);
            for (e, samples) in epochs.iter().enumerate() {
                let h = Histogram::new();
                for &v in samples {
                    h.record(v);
                }
                w.push(e as u64, h.snapshot());

                // Naive oracle: all samples of the last `cap` epochs.
                let lo = (e + 1).saturating_sub(cap);
                let direct = Histogram::new();
                let mut flat: Vec<u64> = Vec::new();
                for s in &epochs[lo..=e] {
                    for &v in s {
                        direct.record(v);
                        flat.push(v);
                    }
                }
                let rolling = w.rolling();
                prop_assert_eq!(&rolling, &direct.snapshot());

                // And the rolling percentile obeys the documented 2x
                // bound against the exact sorted window.
                if !flat.is_empty() {
                    flat.sort_unstable();
                    let n = flat.len() as u64;
                    let rank = (((p / 100.0) * n as f64).ceil() as u64).clamp(1, n);
                    let exact = flat[(rank - 1) as usize];
                    let est = rolling.percentile(p);
                    prop_assert!(est >= exact, "under-reported: {} < {}", est, exact);
                    if exact > 0 {
                        prop_assert!(
                            est <= exact.saturating_mul(2),
                            "over 2x bound: {} for {}",
                            est,
                            exact
                        );
                    } else {
                        prop_assert_eq!(est, 0);
                    }
                }
            }
        }
    }
}
