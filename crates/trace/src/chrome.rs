//! Chrome trace-event exporter (the JSON array format Perfetto loads).
//!
//! Span kinds become complete events (`"ph":"X"`, microsecond `ts` +
//! `dur`); everything else becomes an instant (`"ph":"i"`). We map the
//! runtime's clock units straight onto the format's microseconds — under
//! the virtual clock that makes one work unit render as 1 µs, which is
//! exactly the scale the figures reason in. All events share `pid` 1;
//! `tid` is the recording lane's index, so Perfetto shows one row per
//! worker/client thread.

use crate::event::{EventKind, TraceEvent};
use crate::json::Json;

/// Renders `(lane_index, events)` groups as a Chrome trace JSON array.
pub fn chrome_trace(lanes: &[(usize, Vec<TraceEvent>)]) -> Json {
    let mut out = Vec::new();
    for (tid, events) in lanes {
        for ev in events {
            let (a_name, b_name) = ev.kind.arg_names();
            let mut fields = vec![
                ("name", ev.kind.name().into()),
                ("ph", if ev.kind.is_span() { "X" } else { "i" }.into()),
                ("ts", ev.ts.into()),
            ];
            let args = if ev.kind.is_span() {
                // For spans `a` is the duration; surface only `b` as an arg.
                fields.push(("dur", ev.a.into()));
                vec![(b_name, Json::U64(ev.b))]
            } else {
                fields.push(("s", "t".into()));
                vec![(a_name, Json::U64(ev.a)), (b_name, Json::U64(ev.b))]
            };
            fields.push(("pid", 1u64.into()));
            fields.push(("tid", (*tid as u64).into()));
            fields.push(("args", Json::obj(args)));
            out.push(Json::obj(fields));
        }
    }
    Json::Arr(out)
}

/// Parses a Chrome trace JSON array (as produced by [`chrome_trace`])
/// back into `(lane_index, events)` groups, the inverse mapping used by
/// `wtf-check` to re-verify exported traces offline.
///
/// Records whose `name` is not a known [`EventKind`] are skipped (a
/// foreign trace may carry metadata records); records with a known name
/// but missing/mistyped fields are errors — silently dropping those
/// would let a truncated or corrupted trace pass vacuously.
pub fn parse_chrome_trace(json: &Json) -> Result<Vec<(usize, Vec<TraceEvent>)>, String> {
    let records = json
        .as_arr()
        .ok_or("chrome trace: top level is not an array")?;
    let mut lanes: Vec<(usize, Vec<TraceEvent>)> = Vec::new();
    for (i, rec) in records.iter().enumerate() {
        let name = match rec.get("name").and_then(Json::as_str) {
            Some(n) => n,
            None => return Err(format!("chrome trace: record {i} has no name")),
        };
        let kind = match EventKind::from_name(name) {
            Some(k) => k,
            None => continue,
        };
        let field = |key: &str| -> Result<u64, String> {
            rec.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("chrome trace: record {i} ({name}): bad field {key:?}"))
        };
        let arg = |key: &str| -> Result<u64, String> {
            rec.get("args")
                .and_then(|a| a.get(key))
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("chrome trace: record {i} ({name}): bad arg {key:?}"))
        };
        let ts = field("ts")?;
        let tid = field("tid")? as usize;
        let (a_name, b_name) = kind.arg_names();
        let (a, b) = if kind.is_span() {
            (field("dur")?, arg(b_name)?)
        } else {
            (arg(a_name)?, arg(b_name)?)
        };
        let ev = TraceEvent { ts, kind, a, b };
        match lanes.iter_mut().find(|(t, _)| *t == tid) {
            Some((_, evs)) => evs.push(ev),
            None => lanes.push((tid, vec![ev])),
        }
    }
    lanes.sort_by_key(|(t, _)| *t);
    Ok(lanes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    #[test]
    fn spans_and_instants_render() {
        let lanes = vec![(
            0usize,
            vec![
                TraceEvent {
                    ts: 5,
                    kind: EventKind::TopCommit,
                    a: 1,
                    b: 9,
                },
                TraceEvent {
                    ts: 10,
                    kind: EventKind::StmCommitSpan,
                    a: 4,
                    b: 9,
                },
            ],
        )];
        let j = chrome_trace(&lanes);
        let arr = j.as_arr().unwrap();
        assert_eq!(arr.len(), 2);
        assert_eq!(arr[0].get("ph"), Some(&Json::Str("i".into())));
        assert_eq!(arr[1].get("ph"), Some(&Json::Str("X".into())));
        assert_eq!(arr[1].get("dur"), Some(&Json::U64(4)));
        // Whole export round-trips through the parser.
        let s = j.to_string();
        assert_eq!(Json::parse(&s).unwrap(), j);
    }

    #[test]
    fn export_import_round_trip() {
        let lanes = vec![
            (
                0usize,
                vec![
                    TraceEvent {
                        ts: 1,
                        kind: EventKind::TopBegin,
                        a: 7,
                        b: 0,
                    },
                    TraceEvent {
                        ts: 5,
                        kind: EventKind::CommitRead,
                        a: 3,
                        b: 0,
                    },
                    TraceEvent {
                        ts: 5,
                        kind: EventKind::TopCommit,
                        a: 7,
                        b: 1,
                    },
                ],
            ),
            (
                2usize,
                vec![TraceEvent {
                    ts: 9,
                    kind: EventKind::StmCommitSpan,
                    a: 4,
                    b: 2,
                }],
            ),
        ];
        let exported = chrome_trace(&lanes);
        let back = parse_chrome_trace(&exported).unwrap();
        assert_eq!(back, lanes);
        // Unknown record names are skipped, not errors.
        let mut arr = exported.as_arr().unwrap().to_vec();
        arr.push(Json::obj(vec![
            ("name", "metadata".into()),
            ("ph", "M".into()),
        ]));
        assert_eq!(parse_chrome_trace(&Json::Arr(arr)).unwrap(), lanes);
        // A known name with a missing field is an error.
        let bad = Json::Arr(vec![Json::obj(vec![("name", "top_commit".into())])]);
        assert!(parse_chrome_trace(&bad).is_err());
    }
}
