//! Chrome trace-event exporter (the JSON array format Perfetto loads).
//!
//! Span kinds become complete events (`"ph":"X"`, microsecond `ts` +
//! `dur`); everything else becomes an instant (`"ph":"i"`). We map the
//! runtime's clock units straight onto the format's microseconds — under
//! the virtual clock that makes one work unit render as 1 µs, which is
//! exactly the scale the figures reason in. All events share `pid` 1;
//! `tid` is the recording lane's index, so Perfetto shows one row per
//! worker/client thread.

use crate::event::TraceEvent;
use crate::json::Json;

/// Renders `(lane_index, events)` groups as a Chrome trace JSON array.
pub fn chrome_trace(lanes: &[(usize, Vec<TraceEvent>)]) -> Json {
    let mut out = Vec::new();
    for (tid, events) in lanes {
        for ev in events {
            let (a_name, b_name) = ev.kind.arg_names();
            let mut fields = vec![
                ("name", ev.kind.name().into()),
                ("ph", if ev.kind.is_span() { "X" } else { "i" }.into()),
                ("ts", ev.ts.into()),
            ];
            let args = if ev.kind.is_span() {
                // For spans `a` is the duration; surface only `b` as an arg.
                fields.push(("dur", ev.a.into()));
                vec![(b_name, Json::U64(ev.b))]
            } else {
                fields.push(("s", "t".into()));
                vec![(a_name, Json::U64(ev.a)), (b_name, Json::U64(ev.b))]
            };
            fields.push(("pid", 1u64.into()));
            fields.push(("tid", (*tid as u64).into()));
            fields.push(("args", Json::obj(args)));
            out.push(Json::obj(fields));
        }
    }
    Json::Arr(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    #[test]
    fn spans_and_instants_render() {
        let lanes = vec![(
            0usize,
            vec![
                TraceEvent {
                    ts: 5,
                    kind: EventKind::TopCommit,
                    a: 1,
                    b: 9,
                },
                TraceEvent {
                    ts: 10,
                    kind: EventKind::StmCommitSpan,
                    a: 4,
                    b: 9,
                },
            ],
        )];
        let j = chrome_trace(&lanes);
        let arr = j.as_arr().unwrap();
        assert_eq!(arr.len(), 2);
        assert_eq!(arr[0].get("ph"), Some(&Json::Str("i".into())));
        assert_eq!(arr[1].get("ph"), Some(&Json::Str("X".into())));
        assert_eq!(arr[1].get("dur"), Some(&Json::U64(4)));
        // Whole export round-trips through the parser.
        let s = j.to_string();
        assert_eq!(Json::parse(&s).unwrap(), j);
    }
}
