//! Log-bucketed atomic latency histograms (HDR-style, dependency-free).
//!
//! Durations in this runtime span seven orders of magnitude (a no-wait
//! publish is 0 units; a straggler future blocks for millions), so fixed
//! buckets are useless and exact reservoirs are too expensive for a hot
//! path. We bucket by magnitude instead: value `v` lands in bucket
//! `⌈log2(v+1)⌉` (bucket 0 holds exactly 0, bucket `i ≥ 1` holds
//! `[2^(i-1), 2^i)`), giving a worst-case quantile error of 2x — plenty
//! for the "where did the time go" questions the evaluation asks — with
//! recording cost of one `leading_zeros` and one relaxed `fetch_add`.
//!
//! All counters are relaxed atomics: histograms are statistics, not
//! synchronization, exactly like `TmStats`/`StmStats`.

use crate::json::Json;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: 0 plus one per power of two up to 2^63.
pub const BUCKETS: usize = 65;

/// Shared atomic histogram; record from any thread, snapshot any time.
pub struct Histogram {
    // ordering: relaxed-rmw, relaxed-load — statistics (module docs).
    buckets: [AtomicU64; BUCKETS],
    // ordering: relaxed-rmw, relaxed-load — statistics. relaxed-guard:
    // the snapshot's emptiness check only normalizes the reported min.
    count: AtomicU64,
    // ordering: relaxed-rmw, relaxed-load — statistics.
    sum: AtomicU64,
    /// Tracked as `u64::MAX` while empty; snapshots normalize to 0.
    // ordering: relaxed-rmw, relaxed-load — statistics.
    min: AtomicU64,
    // ordering: relaxed-rmw, relaxed-load — statistics.
    max: AtomicU64,
}

/// Bucket index of `v`: 0 for 0, else position of the highest set bit + 1.
#[inline]
pub fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `i` (used for quantile estimates and
/// the Prometheus `le` bounds in `wtf-telemetry`).
pub fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    pub fn new() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation. Lock-free; relaxed ordering throughout.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Folds a snapshot into this histogram: bucket arrays and count/sum
    /// add, min/max extend. This is how `wtf-telemetry` collapses
    /// per-epoch window deltas back into a mergeable aggregate.
    pub fn merge(&self, other: &HistogramSnapshot) {
        if other.count == 0 {
            return;
        }
        for (i, &n) in other.buckets.iter().enumerate() {
            if n > 0 {
                self.buckets[i].fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(other.count, Ordering::Relaxed);
        self.sum.fetch_add(other.sum, Ordering::Relaxed);
        self.min.fetch_min(other.min, Ordering::Relaxed);
        self.max.fetch_max(other.max, Ordering::Relaxed);
    }

    /// Point-in-time copy of all counters.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// Immutable copy of a [`Histogram`], with quantile/summary accessors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub buckets: [u64; BUCKETS],
    pub count: u64,
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket containing the `q`-quantile (`0 < q <= 1`).
    /// Within-a-factor-of-2 by construction; exact for the max bucket
    /// thanks to the tracked true maximum.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// [`HistogramSnapshot::quantile`] with the conventional percentile
    /// spelling: `percentile(99.0)` == `quantile(0.99)`. Values outside
    /// `[0, 100]` are clamped.
    pub fn percentile(&self, p: f64) -> u64 {
        self.quantile((p / 100.0).clamp(0.0, 1.0))
    }

    /// Pointwise difference (for measuring one run out of a shared
    /// histogram). Saturating so a reset-free reader can never underflow.
    pub fn delta_since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].saturating_sub(earlier.buckets[i])),
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            // min/max are not subtractive; keep the later snapshot's.
            min: self.min,
            max: self.max,
        }
    }

    /// Folds `other` into `self`: bucket arrays and count/sum add, min
    /// and max extend. The snapshot-level counterpart of
    /// [`Histogram::merge`], used to collapse per-epoch window deltas
    /// into one rolling histogram.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if other.count == 0 {
            return;
        }
        self.min = if self.count == 0 {
            other.min
        } else {
            self.min.min(other.min)
        };
        self.max = self.max.max(other.max);
        for (i, &n) in other.buckets.iter().enumerate() {
            self.buckets[i] += n;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Compact JSON: summary stats plus the non-empty buckets as
    /// `[bucket_upper_bound, count]` pairs (deterministic order).
    pub fn to_json(&self) -> Json {
        let buckets: Vec<Json> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| Json::arr(vec![bucket_upper(i).into(), n.into()]))
            .collect();
        Json::obj(vec![
            ("count", self.count.into()),
            ("sum", self.sum.into()),
            ("min", self.min.into()),
            ("max", self.max.into()),
            ("mean", self.mean().into()),
            ("p50", self.quantile(0.50).into()),
            ("p90", self.quantile(0.90).into()),
            ("p99", self.quantile(0.99).into()),
            ("buckets", Json::Arr(buckets)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_by_magnitude() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 64);
    }

    #[test]
    fn quantiles_within_2x() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.max, 1000);
        let p50 = s.quantile(0.5);
        assert!((500..=1000).contains(&p50), "p50 estimate {p50}");
        assert_eq!(s.quantile(1.0), 1000);
        assert!(s.mean() > 499.0 && s.mean() < 502.0);
    }

    #[test]
    fn zero_only_histogram() {
        let h = Histogram::new();
        h.record(0);
        h.record(0);
        let s = h.snapshot();
        assert_eq!(s.quantile(0.99), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn percentile_mirrors_quantile() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.percentile(50.0), s.quantile(0.5));
        assert_eq!(s.percentile(100.0), 1000);
        assert_eq!(s.percentile(250.0), 1000, "clamped above 100");
        assert_eq!(s.percentile(-3.0), s.quantile(0.0), "clamped below 0");
    }

    #[test]
    fn min_tracked_and_normalized() {
        let h = Histogram::new();
        assert_eq!(h.snapshot().min, 0, "empty histogram reports min 0");
        h.record(9);
        h.record(3);
        h.record(100);
        let s = h.snapshot();
        assert_eq!(s.min, 3);
        assert_eq!(s.max, 100);
    }

    #[test]
    fn merge_sums_buckets_and_extends_bounds() {
        let a = Histogram::new();
        a.record(5);
        a.record(9);
        let b = Histogram::new();
        b.record(2);
        b.record(1000);
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.count, 4);
        assert_eq!(merged.sum, 1016);
        assert_eq!(merged.min, 2);
        assert_eq!(merged.max, 1000);
        // Bucket arrays are the element-wise sum: rebuild directly.
        let direct = Histogram::new();
        for v in [5, 9, 2, 1000] {
            direct.record(v);
        }
        assert_eq!(merged, direct.snapshot());
        // Merging an empty snapshot is the identity.
        let before = merged.clone();
        merged.merge(&HistogramSnapshot::default());
        assert_eq!(merged, before);
        // The atomic-side merge agrees with the snapshot-side one.
        a.merge(&b.snapshot());
        assert_eq!(a.snapshot(), merged);
    }

    #[test]
    fn merge_into_empty_takes_other_min() {
        let mut empty = HistogramSnapshot::default();
        let h = Histogram::new();
        h.record(7);
        empty.merge(&h.snapshot());
        assert_eq!(empty.min, 7, "empty min=0 must not poison the merge");
    }

    #[test]
    fn delta_and_json() {
        let h = Histogram::new();
        h.record(5);
        let before = h.snapshot();
        h.record(100);
        h.record(7);
        let d = h.snapshot().delta_since(&before);
        assert_eq!(d.count, 2);
        assert_eq!(d.sum, 107);
        let j = d.to_json();
        assert_eq!(j.get("count"), Some(&Json::U64(2)));
        // Round-trips through the parser.
        let s = j.to_string();
        assert_eq!(Json::parse(&s).unwrap(), j);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Values concentrated on bucket boundaries (powers of two and their
    /// neighbours) plus small and broad-range fills, so the oracle
    /// exercises the `[2^(i-1), 2^i)` edges, not just bucket interiors.
    fn value_strategy() -> impl Strategy<Value = u64> {
        prop_oneof![
            0u64..16,
            (0u32..64).prop_map(|s| 1u64 << s),
            (0u32..64).prop_map(|s| (1u64 << s) - 1),
            (0u32..63).prop_map(|s| (1u64 << s) + 1),
            0u64..1_000_000,
        ]
    }

    proptest! {
        /// Oracle: against the exact sorted sample, the histogram's
        /// percentile estimate must (a) never under-report, (b) stay
        /// within the documented 2x bound, and (c) equal the upper bound
        /// of the exact value's bucket, capped by the true max.
        #[test]
        fn percentile_matches_sorted_oracle(
            input in (proptest::collection::vec(value_strategy(), 1..200), 1u64..1001)
        ) {
            let (values, p_tenths) = input;
            let p = p_tenths as f64 / 10.0; // 0.1% ..= 100.0%
            let h = Histogram::new();
            for &v in &values {
                h.record(v);
            }
            let s = h.snapshot();
            let estimate = s.percentile(p);

            let mut sorted = values.clone();
            sorted.sort_unstable();
            let n = sorted.len() as u64;
            let rank = (((p / 100.0) * n as f64).ceil() as u64).clamp(1, n);
            let exact = sorted[(rank - 1) as usize];

            prop_assert!(estimate >= exact, "under-reported: est {estimate} < exact {exact}");
            if exact == 0 {
                prop_assert_eq!(estimate, 0);
            } else {
                prop_assert!(
                    estimate <= exact.saturating_mul(2),
                    "over 2x bound: est {} for exact {}",
                    estimate,
                    exact
                );
            }
            let max = *sorted.last().unwrap();
            prop_assert_eq!(estimate, bucket_upper(bucket_of(exact)).min(max));
        }
    }
}
