//! # wtf-trace — observability for the WTF-TM runtime
//!
//! The paper's evaluation is a story about *where time and aborts go*:
//! top-level vs. internal aborts, serialization at submission vs.
//! evaluation, straggler futures holding up in-order commits. Coarse
//! end-of-run counters cannot tell those stories, so this crate adds
//! three instruments, all dependency-free and all gated behind a single
//! relaxed atomic load per hook:
//!
//! * **Event rings** ([`ring::Lane`]) — per-thread, lock-free,
//!   append-only buffers of [`TraceEvent`]s timestamped with
//!   [`wtf_vclock::Clock`]. Under the virtual clock a run is a
//!   deterministic function of its seeds, so the exported trace is
//!   *byte-identical* across runs — traces can be diffed in CI.
//! * **Histograms** ([`hist::Histogram`]) — log-bucketed atomic
//!   latency histograms for commit, validation, publish-wait and future
//!   queue-to-start delay.
//! * **Abort attribution** ([`attribution::ConflictMap`]) — every
//!   conflict abort is charged to the `VBox` (and commit stripe) whose
//!   version check failed, yielding a per-run hotspot report.
//!
//! Exporters: [`Tracer::chrome_trace_json`] renders the rings in Chrome
//! trace-event format (loadable in Perfetto / `chrome://tracing`), and
//! [`TraceSummary::to_json`] produces the machine-readable metrics dump
//! the fig binaries write into `results/*.json`.
//!
//! ## Levels
//!
//! | level | env | records |
//! |-------|-----|---------|
//! | `Off` | (unset) | nothing — one relaxed load per hook |
//! | `Lifecycle` | `WTF_TRACE=1` | lifecycle events, histograms, attribution |
//! | `Full` | `WTF_TRACE=2` | the above plus per-read/install STM events |

pub mod attribution;
pub mod chrome;
pub mod event;
pub mod gauge;
pub mod hist;
pub mod json;
pub mod ring;
pub mod window;

pub use attribution::ConflictMap;
pub use event::{EventKind, TraceEvent};
pub use gauge::{Counter, GaugeRegistry, GaugeSeriesSnapshot};
pub use hist::{Histogram, HistogramSnapshot};
pub use json::Json;
pub use ring::Lane;
pub use window::{WindowedCounter, WindowedHistogram};

use parking_lot::Mutex;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, OnceLock};
use wtf_vclock::Clock;

/// How much the tracer records. Stored as a `u8` so hooks can gate on a
/// single relaxed load.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum TraceLevel {
    /// Record nothing (the default).
    Off = 0,
    /// Transaction/future lifecycle events, histograms, attribution.
    Lifecycle = 1,
    /// Lifecycle plus per-operation STM events (read/install).
    Full = 2,
}

impl TraceLevel {
    /// Parses the `WTF_TRACE` convention: `1`/`lifecycle` → Lifecycle,
    /// `2`/`full` → Full, anything else → Off.
    pub fn from_env_str(s: &str) -> TraceLevel {
        match s.trim() {
            "1" | "lifecycle" => TraceLevel::Lifecycle,
            "2" | "full" => TraceLevel::Full,
            _ => TraceLevel::Off,
        }
    }

    /// Level from the `WTF_TRACE` environment variable (unset → Off).
    pub fn from_env() -> TraceLevel {
        std::env::var("WTF_TRACE")
            .map(|v| TraceLevel::from_env_str(&v))
            .unwrap_or(TraceLevel::Off)
    }

    fn from_u8(v: u8) -> TraceLevel {
        match v {
            1 => TraceLevel::Lifecycle,
            2 => TraceLevel::Full,
            _ => TraceLevel::Off,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            TraceLevel::Off => "off",
            TraceLevel::Lifecycle => "lifecycle",
            TraceLevel::Full => "full",
        }
    }
}

/// The latency histograms every run maintains (when tracing is on).
#[derive(Default)]
pub struct Metrics {
    /// Whole `commit_raw` duration (lock → validate → install → publish).
    pub commit_latency: Histogram,
    /// Stripe-lock acquisition + read-set validation duration.
    pub validation_latency: Histogram,
    /// Time spent waiting for the in-order publication ticket.
    pub publish_wait: Histogram,
    /// Future submit → worker pickup delay.
    pub queue_delay: Histogram,
}

// ordering: relaxed-rmw — a pure id dispenser for the lane cache keys.
static NEXT_TRACER_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Cache of `(tracer_id, lane)` so the hot path skips the registry
    /// mutex. Bounded: evicting an entry only means the thread registers
    /// a fresh lane if it ever records for that tracer again.
    static LANE_CACHE: RefCell<Vec<(u64, Arc<Lane>)>> = const { RefCell::new(Vec::new()) };
}

const LANE_CACHE_LIMIT: usize = 8;

/// Wall-clock fallback when no [`Clock`] is entered on this thread.
fn wall_ns() -> u64 {
    static EPOCH: OnceLock<std::time::Instant> = OnceLock::new();
    let epoch = *EPOCH.get_or_init(std::time::Instant::now);
    std::time::Instant::now().duration_since(epoch).as_nanos() as u64
}

/// The per-run tracing facade. One `Tracer` is shared (via `Arc`) by the
/// STM, the core TM, the task pool and the harness; every hook goes
/// through it. A disabled tracer costs one relaxed atomic load per hook
/// and allocates no lanes.
pub struct Tracer {
    id: u64,
    // ordering: relaxed-store / relaxed-load — the recording level is a
    // configuration knob; hooks that race a level change may record or
    // skip one event, which perturbs nothing.
    level: AtomicU8,
    lane_capacity: usize,
    lanes: Mutex<Vec<Arc<Lane>>>,
    /// Latency histograms (public: recorded by the hooks, read by dumps).
    pub metrics: Metrics,
    /// Conflict attribution (public: charged by abort paths).
    pub conflicts: ConflictMap,
    /// Live gauge registry (public: runtimes register providers at
    /// construction, hooks trigger periodic samples).
    pub gauges: GaugeRegistry,
    /// Whether a telemetry tick hook is installed — a single relaxed
    /// load keeps the disabled path flat.
    // ordering: relaxed-store / relaxed-load — the hook itself lives in
    // a `OnceLock`, which does the publication; this flag is only the
    // cheap fast-path filter. relaxed-guard: a hook racing arming can
    // miss at most the ticks before the OnceLock write is visible.
    tick_armed: std::sync::atomic::AtomicBool,
    /// The telemetry tick hook: called with the current timestamp from
    /// [`Tracer::maybe_sample_gauges`] (i.e. from the runtime's
    /// top-level begin/commit hooks) so an attached aggregator can
    /// close epochs without any thread of its own.
    tick_hook: OnceLock<Box<dyn Fn(u64) + Send + Sync>>,
}

impl Tracer {
    /// A tracer recording at `level`, with the default lane capacity.
    pub fn new(level: TraceLevel) -> Arc<Tracer> {
        Tracer::with_capacity(level, ring::DEFAULT_LANE_CAPACITY)
    }

    /// A permanently-off tracer: what every runtime gets by default.
    pub fn disabled() -> Arc<Tracer> {
        Tracer::new(TraceLevel::Off)
    }

    /// Level from the `WTF_TRACE` environment variable (`1`/`2`).
    pub fn from_env() -> Arc<Tracer> {
        Tracer::new(TraceLevel::from_env())
    }

    pub fn with_capacity(level: TraceLevel, lane_capacity: usize) -> Arc<Tracer> {
        let gauges = GaugeRegistry::new();
        // Periodic gauge sampling is opt-in: `WTF_GAUGE_PERIOD=<units>`
        // sets the minimum clock distance between hook-driven samples
        // (0 = every hook). An unparseable value stays disabled rather
        // than accidentally enabling per-hook sampling.
        if let Some(p) = std::env::var("WTF_GAUGE_PERIOD")
            .ok()
            .and_then(|p| p.trim().parse().ok())
        {
            gauges.set_period(p);
        }
        Arc::new(Tracer {
            id: NEXT_TRACER_ID.fetch_add(1, Ordering::Relaxed),
            level: AtomicU8::new(level as u8),
            lane_capacity,
            lanes: Mutex::new(Vec::new()),
            metrics: Metrics::default(),
            conflicts: ConflictMap::new(),
            gauges,
            tick_armed: std::sync::atomic::AtomicBool::new(false),
            tick_hook: OnceLock::new(),
        })
    }

    pub fn level(&self) -> TraceLevel {
        TraceLevel::from_u8(self.level.load(Ordering::Relaxed))
    }

    pub fn set_level(&self, level: TraceLevel) {
        self.level.store(level as u8, Ordering::Relaxed);
    }

    /// The single hot-path gate: is any recording enabled?
    #[inline]
    pub fn on(&self) -> bool {
        self.level.load(Ordering::Relaxed) != 0
    }

    /// Is per-operation (`Full`) recording enabled?
    #[inline]
    pub fn full(&self) -> bool {
        self.level.load(Ordering::Relaxed) >= 2
    }

    /// Current timestamp: the entered [`Clock`] if any (virtual units or
    /// wall ns), else a process-relative wall clock.
    pub fn now(&self) -> u64 {
        match Clock::try_current() {
            Some(clock) => clock.now(),
            None => wall_ns(),
        }
    }

    /// Timestamp for an upcoming span, or 0 when tracing is off (so
    /// callers can skip the clock read entirely).
    #[inline]
    pub fn span_start(&self) -> u64 {
        if self.on() {
            self.now()
        } else {
            0
        }
    }

    /// Records an instant event at the current time. No-op when off.
    #[inline]
    pub fn record(&self, kind: EventKind, a: u64, b: u64) {
        if !self.on() {
            return;
        }
        self.record_at(self.now(), kind, a, b);
    }

    /// Records a `Full`-level instant event (per-read/install volume).
    #[inline]
    pub fn record_full(&self, kind: EventKind, a: u64, b: u64) {
        if !self.full() {
            return;
        }
        self.record_at(self.now(), kind, a, b);
    }

    /// Closes a span opened with [`Tracer::span_start`], recording its
    /// duration, and returns that duration (for histogram feeding).
    /// No-op returning 0 when off.
    #[inline]
    pub fn span_end(&self, kind: EventKind, start: u64, b: u64) -> u64 {
        if !self.on() {
            return 0;
        }
        let dur = self.now().saturating_sub(start);
        self.record_at(start, kind, dur, b);
        dur
    }

    /// Records a pre-timestamped event (span closers, replayed streams).
    pub fn record_at(&self, ts: u64, kind: EventKind, a: u64, b: u64) {
        if !self.on() {
            return;
        }
        self.lane().push(TraceEvent { ts, kind, a, b });
    }

    /// Unconditionally samples every registered gauge into the series
    /// (and the event stream) at the current time. No-op when off.
    pub fn sample_gauges(&self) {
        if !self.on() {
            return;
        }
        let ts = self.now();
        if let Some(idx) = self.gauges.record_sample(ts) {
            self.record_at(
                ts,
                EventKind::GaugeSample,
                idx as u64,
                self.gauges.len() as u64,
            );
        }
    }

    /// Rate-limited gauge sampling for hot-path hooks: records only when
    /// tracing is on *and* periodic sampling is enabled, and drives any
    /// installed telemetry tick hook. Costs one relaxed load when off
    /// and three when nothing is armed.
    #[inline]
    pub fn maybe_sample_gauges(&self) {
        if !self.on() {
            return;
        }
        let periodic = self.gauges.periodic_enabled();
        let ticking = self.tick_armed.load(Ordering::Relaxed);
        if !periodic && !ticking {
            return;
        }
        let ts = self.now();
        if periodic {
            if let Some(idx) = self.gauges.maybe_record(ts) {
                self.record_at(
                    ts,
                    EventKind::GaugeSample,
                    idx as u64,
                    self.gauges.len() as u64,
                );
            }
        }
        if ticking {
            if let Some(hook) = self.tick_hook.get() {
                hook(ts);
            }
        }
    }

    /// Installs the telemetry tick hook. One hook per tracer: returns
    /// false (and installs nothing) if one is already set.
    pub fn set_tick_hook(&self, hook: impl Fn(u64) + Send + Sync + 'static) -> bool {
        if self.tick_hook.set(Box::new(hook)).is_err() {
            return false;
        }
        self.tick_armed.store(true, Ordering::Relaxed);
        true
    }

    /// Whether a telemetry tick hook is installed.
    pub fn tick_hook_installed(&self) -> bool {
        self.tick_armed.load(Ordering::Relaxed)
    }

    /// Charges a conflict abort to `box_id`. No-op when off.
    #[inline]
    pub fn charge_conflict(&self, box_id: u64) {
        if !self.on() {
            return;
        }
        self.conflicts.charge(box_id);
    }

    /// This thread's lane for this tracer, registering one on first use.
    fn lane(&self) -> Arc<Lane> {
        LANE_CACHE.with(|cache| {
            let mut cache = cache.borrow_mut();
            if let Some((_, lane)) = cache.iter().find(|(id, _)| *id == self.id) {
                return Arc::clone(lane);
            }
            let lane = {
                let mut lanes = self.lanes.lock();
                let lane = Arc::new(Lane::new(lanes.len(), self.lane_capacity));
                lanes.push(Arc::clone(&lane));
                lane
            };
            if cache.len() >= LANE_CACHE_LIMIT {
                cache.remove(0);
            }
            cache.push((self.id, Arc::clone(&lane)));
            lane
        })
    }

    /// Harvests all lanes as `(lane_index, events)`, ordered by index.
    /// Meant to run after recording threads have quiesced; a concurrent
    /// writer's tail events may be missed but never torn.
    pub fn lanes(&self) -> Vec<(usize, Vec<TraceEvent>)> {
        let lanes = self.lanes.lock();
        let mut out: Vec<(usize, Vec<TraceEvent>)> =
            lanes.iter().map(|l| (l.index(), l.events())).collect();
        out.sort_by_key(|(i, _)| *i);
        out
    }

    /// Total events currently published across all lanes.
    pub fn events_recorded(&self) -> u64 {
        self.lanes.lock().iter().map(|l| l.len() as u64).sum()
    }

    /// Total events dropped because a lane filled up.
    pub fn events_dropped(&self) -> u64 {
        self.lanes.lock().iter().map(|l| l.dropped()).sum()
    }

    /// The full event-ring export in Chrome trace-event JSON (open in
    /// Perfetto or `chrome://tracing`).
    pub fn chrome_trace_json(&self) -> String {
        chrome::chrome_trace(&self.lanes()).to_string()
    }

    /// Point-in-time metrics summary for the machine-readable dump.
    pub fn summary(&self) -> TraceSummary {
        TraceSummary {
            level: self.level(),
            events_recorded: self.events_recorded(),
            events_dropped: self.events_dropped(),
            commit_latency: self.metrics.commit_latency.snapshot(),
            validation_latency: self.metrics.validation_latency.snapshot(),
            publish_wait: self.metrics.publish_wait.snapshot(),
            queue_delay: self.metrics.queue_delay.snapshot(),
            conflict_total: self.conflicts.total(),
            hotspots: self.conflicts.hotspots(HOTSPOT_LIMIT),
            stripe_conflicts: self.conflicts.stripe_counts(),
            gauges: self.gauges.series(),
        }
    }
}

/// How many hotspot boxes the summary keeps.
pub const HOTSPOT_LIMIT: usize = 16;

/// Immutable summary of one run's tracing output: histogram snapshots
/// plus the conflict hotspot report. Cheap to clone, JSON-exportable.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSummary {
    pub level: TraceLevel,
    pub events_recorded: u64,
    pub events_dropped: u64,
    pub commit_latency: HistogramSnapshot,
    pub validation_latency: HistogramSnapshot,
    pub publish_wait: HistogramSnapshot,
    pub queue_delay: HistogramSnapshot,
    pub conflict_total: u64,
    pub hotspots: Vec<(u64, u64)>,
    pub stripe_conflicts: Vec<u64>,
    pub gauges: GaugeSeriesSnapshot,
}

impl Default for TraceSummary {
    fn default() -> Self {
        TraceSummary {
            level: TraceLevel::Off,
            events_recorded: 0,
            events_dropped: 0,
            commit_latency: HistogramSnapshot::default(),
            validation_latency: HistogramSnapshot::default(),
            publish_wait: HistogramSnapshot::default(),
            queue_delay: HistogramSnapshot::default(),
            conflict_total: 0,
            hotspots: Vec::new(),
            stripe_conflicts: Vec::new(),
            gauges: GaugeSeriesSnapshot::default(),
        }
    }
}

impl TraceSummary {
    pub fn enabled(&self) -> bool {
        self.level != TraceLevel::Off
    }

    /// Deterministic JSON rendering (key order fixed, hotspots sorted).
    pub fn to_json(&self) -> Json {
        let hotspots: Vec<Json> = self
            .hotspots
            .iter()
            .map(|&(id, n)| Json::obj(vec![("box", id.into()), ("conflicts", n.into())]))
            .collect();
        let stripes: Vec<Json> = self
            .stripe_conflicts
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| Json::arr(vec![i.into(), n.into()]))
            .collect();
        Json::obj(vec![
            ("level", self.level.name().into()),
            ("events_recorded", self.events_recorded.into()),
            ("events_dropped", self.events_dropped.into()),
            ("commit_latency", self.commit_latency.to_json()),
            ("validation_latency", self.validation_latency.to_json()),
            ("publish_wait", self.publish_wait.to_json()),
            ("queue_delay", self.queue_delay.to_json()),
            (
                "conflicts",
                Json::obj(vec![
                    ("total", self.conflict_total.into()),
                    ("hotspots", Json::Arr(hotspots)),
                    ("stripes", Json::Arr(stripes)),
                ]),
            ),
            ("gauges", self.gauges.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        t.record(EventKind::TopCommit, 1, 2);
        t.record_full(EventKind::StmRead, 1, 2);
        t.charge_conflict(9);
        assert_eq!(t.span_start(), 0);
        assert_eq!(t.span_end(EventKind::StmCommitSpan, 0, 0), 0);
        assert_eq!(t.events_recorded(), 0);
        assert!(t.lanes().is_empty(), "no lanes allocated while off");
        assert_eq!(t.summary().conflict_total, 0);
    }

    #[test]
    fn lifecycle_gates_full_events() {
        let t = Tracer::new(TraceLevel::Lifecycle);
        t.record(EventKind::TopBegin, 1, 0);
        t.record_full(EventKind::StmRead, 5, 7);
        assert_eq!(t.events_recorded(), 1);
        let lanes = t.lanes();
        assert_eq!(lanes.len(), 1);
        assert_eq!(lanes[0].1[0].kind, EventKind::TopBegin);
    }

    #[test]
    fn per_thread_lanes_and_chrome_export() {
        let t = Tracer::new(TraceLevel::Full);
        t.record(EventKind::TopBegin, 1, 0);
        let t2 = Arc::clone(&t);
        std::thread::spawn(move || {
            t2.record(EventKind::TopCommit, 1, 3);
        })
        .join()
        .unwrap();
        assert_eq!(t.lanes().len(), 2, "one lane per recording thread");
        let trace = t.chrome_trace_json();
        let parsed = Json::parse(&trace).expect("chrome trace parses");
        assert_eq!(parsed.as_arr().unwrap().len(), 2);
    }

    #[test]
    fn summary_json_round_trips() {
        let t = Tracer::new(TraceLevel::Lifecycle);
        t.metrics.commit_latency.record(12);
        t.charge_conflict(4);
        t.charge_conflict(4);
        t.record(EventKind::TopConflictAbort, 1, 4);
        let s = t.summary();
        assert_eq!(s.conflict_total, 2);
        assert_eq!(s.hotspots, vec![(4, 2)]);
        let j = s.to_json();
        let text = j.to_string();
        assert_eq!(Json::parse(&text).unwrap(), j);
    }

    #[test]
    fn level_env_parsing() {
        assert_eq!(TraceLevel::from_env_str("1"), TraceLevel::Lifecycle);
        assert_eq!(TraceLevel::from_env_str("full"), TraceLevel::Full);
        assert_eq!(TraceLevel::from_env_str("0"), TraceLevel::Off);
        assert_eq!(TraceLevel::from_env_str("nope"), TraceLevel::Off);
    }

    #[test]
    fn virtual_clock_timestamps() {
        let clock = Clock::virtual_time();
        let t = Tracer::new(TraceLevel::Lifecycle);
        clock.enter({
            let t = Arc::clone(&t);
            move || {
                let c = Clock::current();
                t.record(EventKind::TopBegin, 1, 0);
                c.advance(25);
                t.record(EventKind::TopCommit, 1, 9);
            }
        });
        let lanes = t.lanes();
        assert_eq!(lanes.len(), 1);
        assert_eq!(lanes[0].1[0].ts, 0);
        assert_eq!(lanes[0].1[1].ts, 25);
    }
}
