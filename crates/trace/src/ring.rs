//! Per-thread event lanes: single-writer append-only buffers.
//!
//! Each recording thread owns exactly one [`Lane`]. Appends are plain
//! stores into pre-allocated slots followed by a release bump of `len`,
//! so the hot path takes no locks and touches no shared cache lines
//! except its own tail. Harvesting (`events()`) acquires `len` and reads
//! the published prefix — safe concurrently with the writer, though the
//! exporters only run after workers have quiesced.
//!
//! Lanes are *bounded*: a full lane counts drops instead of reallocating
//! (reallocation would stall the hot path and break the "tracing does
//! not perturb the run" contract). Lane 0 is handed out to the first
//! thread that records, lane 1 to the second, and so on; under the
//! cooperative virtual clock thread admission order is deterministic, so
//! lane assignment — and therefore the exported byte stream — is too.

use crate::event::{EventKind, TraceEvent};
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Default per-lane capacity (events). 1 MiB of events per thread.
pub const DEFAULT_LANE_CAPACITY: usize = 1 << 15;

/// One thread's event buffer. Single writer, many readers.
pub struct Lane {
    /// Dense lane index within its tracer (Chrome export `tid`).
    index: usize,
    slots: Box<[UnsafeCell<TraceEvent>]>,
    /// Number of initialized slots. Written with `Release` by the owner
    /// thread only; read with `Acquire` by harvesters.
    // ordering: release-store publishes the just-written slot to
    // acquire-load harvesters; relaxed-load only by the owning writer
    // re-reading its own tail. relaxed-guard: the writer's capacity
    // check reads a counter only it ever advances.
    len: AtomicUsize,
    /// Events discarded because the lane was full.
    // ordering: relaxed-rmw, relaxed-load — a statistics counter.
    dropped: AtomicU64,
}

// SAFETY: readers only access slots below the acquired `len`, and those
// slots are never rewritten after publication (single-writer append-only
// discipline documented on `push`).
unsafe impl Sync for Lane {}
// SAFETY: `TraceEvent` is plain `Copy` data; ownership of the lane moves
// freely between threads as long as `push` stays single-threaded, which
// the per-thread lane handout guarantees.
unsafe impl Send for Lane {}

impl Lane {
    pub fn new(index: usize, capacity: usize) -> Lane {
        let zero = TraceEvent {
            ts: 0,
            kind: EventKind::TopBegin,
            a: 0,
            b: 0,
        };
        Lane {
            index,
            slots: (0..capacity).map(|_| UnsafeCell::new(zero)).collect(),
            len: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    pub fn index(&self) -> usize {
        self.index
    }

    /// Appends one event. Must only be called from the owning thread.
    #[inline]
    pub fn push(&self, ev: TraceEvent) {
        let len = self.len.load(Ordering::Relaxed);
        if len == self.slots.len() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        // SAFETY: single-writer invariant — only the owning thread calls
        // `push`, and slot `len` is not yet published to readers.
        unsafe { *self.slots[len].get() = ev };
        self.len.store(len + 1, Ordering::Release);
    }

    /// Copies out the published prefix.
    pub fn events(&self) -> Vec<TraceEvent> {
        let len = self.len.load(Ordering::Acquire);
        // SAFETY: slots below the acquired `len` are fully initialized
        // and immutable from here on.
        (0..len).map(|i| unsafe { *self.slots[i].get() }).collect()
    }

    pub fn len(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_and_harvest() {
        let lane = Lane::new(0, 4);
        for i in 0..6u64 {
            lane.push(TraceEvent {
                ts: i,
                kind: EventKind::TopCommit,
                a: i,
                b: 0,
            });
        }
        assert_eq!(lane.len(), 4);
        assert_eq!(lane.dropped(), 2);
        let evs = lane.events();
        assert_eq!(evs.len(), 4);
        assert_eq!(evs[3].ts, 3);
    }

    #[test]
    fn concurrent_harvest_sees_prefix() {
        let lane = Arc::new(Lane::new(0, 1024));
        let writer = {
            let lane = Arc::clone(&lane);
            std::thread::spawn(move || {
                for i in 0..1024u64 {
                    lane.push(TraceEvent {
                        ts: i,
                        kind: EventKind::StmInstall,
                        a: i,
                        b: i * 2,
                    });
                }
            })
        };
        // Harvest concurrently: every observed prefix must be coherent.
        for _ in 0..100 {
            let evs = lane.events();
            for (i, ev) in evs.iter().enumerate() {
                assert_eq!(ev.ts, i as u64);
                assert_eq!(ev.b, ev.a * 2);
            }
        }
        writer.join().unwrap();
        assert_eq!(lane.len(), 1024);
        assert_eq!(lane.dropped(), 0);
    }
}
