//! Live gauge/counter registry: the "what is the runtime doing *right
//! now*" half of the observability story.
//!
//! Events and histograms (PR 2) answer post-hoc questions; gauges answer
//! live ones — how deep are the version chains, how far behind is the GC
//! horizon, how many futures are queued, how many top-levels are in
//! flight. A gauge is either a shared [`Counter`] the runtime bumps
//! directly (one relaxed atomic op, lock-free) or a *pull* closure
//! sampled on demand (so a gauge can walk a registry or sum queue
//! depths without the hot path paying for it).
//!
//! Sampling is **hook-driven, never thread-driven**: a background
//! sampler thread would perturb the virtual-clock schedule and break
//! byte-determinism, so the runtime calls
//! [`Tracer::maybe_sample_gauges`](crate::Tracer::maybe_sample_gauges)
//! from existing hooks (top-level begin/commit) and the registry
//! rate-limits itself with a CAS on the next-due timestamp. With
//! periodic sampling unset (the default) only explicit
//! [`Tracer::sample_gauges`](crate::Tracer::sample_gauges) calls record
//! — e.g. the harness takes one end-of-run sample — keeping baselines
//! small and untraced runs at a single relaxed load per hook. Once
//! enabled via [`GaugeRegistry::set_period`], a period of 0 means
//! "sample on every hook" and `u64::MAX` means "sample at most once".

use crate::json::Json;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// A registered push-style gauge: the owner stores samples into it with
/// plain atomic ops; the registry reads it when sampling.
// ordering: relaxed-store, relaxed-rmw, relaxed-load — a gauge cell;
// samplers tolerate arbitrary staleness.
#[derive(Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    pub fn new() -> Counter {
        Counter::default()
    }

    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, v: u64) {
        self.0.fetch_add(v, Ordering::Relaxed);
    }

    /// Saturating decrement (a pruner can observe more frees than the
    /// installs it saw; never wrap to u64::MAX).
    #[inline]
    pub fn sub(&self, v: u64) {
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |cur| {
                Some(cur.saturating_sub(v))
            });
    }

    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A pull-style gauge callback. Captures `Weak` handles into the
/// runtime (the tracer is owned *by* the runtime, so `Arc` captures
/// would cycle); returns the current value, or a stale 0 once the owner
/// is gone.
pub type GaugeFn = Box<dyn Fn() -> u64 + Send + Sync>;

enum GaugeSource {
    Counter(Counter),
    Pull(GaugeFn),
}

struct GaugeEntry {
    name: String,
    source: GaugeSource,
}

impl GaugeEntry {
    fn read(&self) -> u64 {
        match &self.source {
            GaugeSource::Counter(c) => c.get(),
            GaugeSource::Pull(f) => f(),
        }
    }
}

/// The per-tracer gauge registry: named live gauges plus the timestamped
/// series periodic sampling accumulates into.
///
/// Registration takes a mutex (it happens a handful of times at runtime
/// construction); reading a [`Counter`] gauge from the hot path is a
/// single relaxed atomic op and touches no lock.
pub struct GaugeRegistry {
    entries: Mutex<Vec<GaugeEntry>>,
    samples: Mutex<Vec<(u64, Vec<u64>)>>,
    /// Whether hook-driven periodic sampling is enabled at all. Off by
    /// default; [`GaugeRegistry::set_period`] turns it on. Kept separate
    /// from `period` so that a period of 0 can mean "sample on every
    /// hook" instead of being overloaded as the disabled sentinel.
    // ordering: relaxed-store / relaxed-load — a configuration flag.
    // relaxed-guard: sampling a hook late or early around a toggle is
    // harmless; the samples mutex orders the actual recording.
    periodic: AtomicBool,
    /// Minimum clock distance between periodic samples. 0 means every
    /// hook samples; `u64::MAX` means the first due hook samples once
    /// and the saturated next-due point never arrives again.
    // ordering: relaxed-store / relaxed-load — configuration, read once
    // per hook. relaxed-guard: a stale period only shifts the sampling
    // rate for the hooks that race the reconfiguration.
    period: AtomicU64,
    /// Next timestamp at which `maybe_record` fires. Claimed by CAS so
    /// exactly one caller records per due window.
    // ordering: relaxed-load probe plus relaxed-cas claim — the CAS
    // only elects a sampler; the sample row itself is published by the
    // `samples` mutex. relaxed-guard: losing the claim race just skips
    // one redundant sample.
    next_due: AtomicU64,
}

impl Default for GaugeRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl GaugeRegistry {
    pub fn new() -> GaugeRegistry {
        GaugeRegistry {
            entries: Mutex::new(Vec::new()),
            samples: Mutex::new(Vec::new()),
            periodic: AtomicBool::new(false),
            period: AtomicU64::new(0),
            next_due: AtomicU64::new(0),
        }
    }

    /// Registers a push-style counter gauge and returns its handle.
    pub fn counter(&self, name: &str) -> Counter {
        let c = Counter::new();
        self.entries.lock().push(GaugeEntry {
            name: name.to_string(),
            source: GaugeSource::Counter(c.clone()),
        });
        c
    }

    /// Registers a pull-style gauge sampled on demand.
    pub fn register(&self, name: &str, f: impl Fn() -> u64 + Send + Sync + 'static) {
        self.entries.lock().push(GaugeEntry {
            name: name.to_string(),
            source: GaugeSource::Pull(Box::new(f)),
        });
    }

    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.lock().is_empty()
    }

    /// Enables periodic sampling with the given interval. A period of 0
    /// samples on **every** hook (no rate limit); `u64::MAX` samples at
    /// most once (the saturated next-due point is unreachable).
    pub fn set_period(&self, period: u64) {
        self.period.store(period, Ordering::Relaxed);
        self.periodic.store(true, Ordering::Relaxed);
    }

    /// Turns hook-driven periodic sampling back off (the default).
    pub fn disable_periodic(&self) {
        self.periodic.store(false, Ordering::Relaxed);
    }

    /// Whether [`GaugeRegistry::maybe_record`] can ever fire.
    #[inline]
    pub fn periodic_enabled(&self) -> bool {
        self.periodic.load(Ordering::Relaxed)
    }

    pub fn period(&self) -> u64 {
        self.period.load(Ordering::Relaxed)
    }

    /// Reads every gauge now, without recording. Registration order.
    pub fn read_all(&self) -> Vec<(String, u64)> {
        self.entries
            .lock()
            .iter()
            .map(|e| (e.name.clone(), e.read()))
            .collect()
    }

    /// Unconditionally samples every gauge into the series at `ts`,
    /// returning the sample index (`None` when no gauges are
    /// registered — an empty row would carry no information).
    pub fn record_sample(&self, ts: u64) -> Option<usize> {
        let entries = self.entries.lock();
        if entries.is_empty() {
            return None;
        }
        let values: Vec<u64> = entries.iter().map(|e| e.read()).collect();
        drop(entries);
        let mut samples = self.samples.lock();
        samples.push((ts, values));
        Some(samples.len() - 1)
    }

    /// Rate-limited sampling: records iff periodic sampling is enabled
    /// and at least one period elapsed since the last recorded sample.
    /// The CAS claim means concurrent callers at the same due point
    /// record once; with period 0 every caller records (no claim).
    pub fn maybe_record(&self, ts: u64) -> Option<usize> {
        if !self.periodic.load(Ordering::Relaxed) {
            return None;
        }
        let period = self.period.load(Ordering::Relaxed);
        if period == 0 {
            // Sample-every-hook mode: no due window to claim.
            return self.record_sample(ts);
        }
        let due = self.next_due.load(Ordering::Relaxed);
        if ts < due {
            return None;
        }
        if self
            .next_due
            .compare_exchange(
                due,
                ts.saturating_add(period),
                Ordering::Relaxed,
                Ordering::Relaxed,
            )
            .is_err()
        {
            return None; // someone else claimed this window
        }
        self.record_sample(ts)
    }

    /// Point-in-time copy of the recorded series.
    pub fn series(&self) -> GaugeSeriesSnapshot {
        GaugeSeriesSnapshot {
            names: self.entries.lock().iter().map(|e| e.name.clone()).collect(),
            samples: self.samples.lock().clone(),
        }
    }
}

/// Immutable copy of a gauge series: gauge names (registration order)
/// plus `(timestamp, values)` rows, one value per name.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct GaugeSeriesSnapshot {
    pub names: Vec<String>,
    pub samples: Vec<(u64, Vec<u64>)>,
}

impl GaugeSeriesSnapshot {
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The last recorded value of gauge `name`, if any.
    pub fn last(&self, name: &str) -> Option<u64> {
        let idx = self.names.iter().position(|n| n == name)?;
        self.samples.last().and_then(|(_, vs)| vs.get(idx).copied())
    }

    /// Deterministic JSON: `{"names": [...], "samples": [[ts, v0, v1,
    /// ...], ...]}` — each sample row is the timestamp followed by one
    /// value per name.
    pub fn to_json(&self) -> Json {
        let names: Vec<Json> = self.names.iter().map(|n| Json::Str(n.clone())).collect();
        let samples: Vec<Json> = self
            .samples
            .iter()
            .map(|(ts, vs)| {
                let mut row = Vec::with_capacity(vs.len() + 1);
                row.push(Json::U64(*ts));
                row.extend(vs.iter().map(|&v| Json::U64(v)));
                Json::Arr(row)
            })
            .collect();
        Json::obj(vec![
            ("names", Json::Arr(names)),
            ("samples", Json::Arr(samples)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_pull_gauges_sample_in_registration_order() {
        let reg = GaugeRegistry::new();
        let c = reg.counter("queue_depth");
        let shared = Arc::new(AtomicU64::new(7));
        let weak = Arc::downgrade(&shared);
        reg.register("chain_len", move || {
            weak.upgrade()
                .map(|v| v.load(Ordering::Relaxed))
                .unwrap_or(0)
        });
        c.add(3);
        c.sub(1);
        assert_eq!(
            reg.read_all(),
            vec![("queue_depth".to_string(), 2), ("chain_len".to_string(), 7)]
        );
        reg.record_sample(100);
        shared.store(9, Ordering::Relaxed);
        reg.record_sample(250);
        let s = reg.series();
        assert_eq!(s.names, vec!["queue_depth", "chain_len"]);
        assert_eq!(s.samples, vec![(100, vec![2, 7]), (250, vec![2, 9])]);
        assert_eq!(s.last("chain_len"), Some(9));
        // Owner dropped: the pull gauge degrades to 0 instead of dangling.
        drop(shared);
        assert_eq!(reg.read_all()[1].1, 0);
    }

    #[test]
    fn counter_sub_saturates() {
        let c = Counter::new();
        c.add(2);
        c.sub(10);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn periodic_sampling_rate_limits() {
        let reg = GaugeRegistry::new();
        reg.counter("g");
        assert_eq!(
            reg.maybe_record(10),
            None,
            "periodic sampling off by default"
        );
        reg.set_period(100);
        assert!(reg.maybe_record(10).is_some(), "first due point records");
        assert_eq!(reg.maybe_record(50), None, "inside the period window");
        assert_eq!(reg.maybe_record(109), None);
        assert!(reg.maybe_record(110).is_some());
        assert_eq!(reg.series().samples.len(), 2);
        reg.disable_periodic();
        assert_eq!(reg.maybe_record(1000), None, "disabled again");
    }

    #[test]
    fn period_zero_samples_every_hook() {
        let reg = GaugeRegistry::new();
        reg.counter("g");
        reg.set_period(0);
        assert!(reg.periodic_enabled());
        for ts in [5, 5, 6, 7] {
            assert!(reg.maybe_record(ts).is_some(), "period 0 never rate-limits");
        }
        assert_eq!(reg.series().samples.len(), 4);
    }

    #[test]
    fn period_max_samples_at_most_once() {
        let reg = GaugeRegistry::new();
        reg.counter("g");
        reg.set_period(u64::MAX);
        assert!(reg.maybe_record(3).is_some(), "the first due hook records");
        // next_due saturated to u64::MAX: no reachable timestamp is due.
        assert_eq!(reg.maybe_record(u64::MAX - 1), None);
        assert_eq!(reg.series().samples.len(), 1);
    }

    #[test]
    fn empty_registry_records_nothing() {
        let reg = GaugeRegistry::new();
        reg.set_period(1);
        assert_eq!(reg.record_sample(5), None);
        assert!(reg.series().is_empty());
    }

    #[test]
    fn series_json_round_trips() {
        let reg = GaugeRegistry::new();
        let c = reg.counter("a");
        reg.counter("b");
        c.set(4);
        reg.record_sample(17);
        let j = reg.series().to_json();
        assert_eq!(j.to_string(), r#"{"names":["a","b"],"samples":[[17,4,0]]}"#);
        assert_eq!(Json::parse(&j.to_string()).unwrap(), j);
    }
}
