//! The event schema: compact fixed-size records of transaction/future
//! lifecycle, STM storage activity and runtime spans.
//!
//! Every event is 4 machine words: a timestamp (from the executing
//! thread's [`wtf_vclock::Clock`], so virtual-clock runs produce
//! bit-deterministic streams), a kind tag and two kind-specific `u64`
//! payloads. Span kinds store their *start* timestamp in `ts` and their
//! duration in `a`, which maps 1:1 onto Chrome trace-event "X" records.

/// What happened. Payload meaning is per-kind (see [`EventKind::arg_names`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum EventKind {
    /// A top-level transaction began. a=top_id, b=snapshot_version.
    TopBegin,
    /// A top-level transaction committed. a=top_id, b=commit_version.
    TopCommit,
    /// Commit-time validation failed against another top-level.
    /// a=top_id, b=conflicting box id.
    TopConflictAbort,
    /// Whole-top-level replay restart forced by an internal doom.
    /// a=top_id, b=0.
    TopInternalRestart,
    /// The program aborted explicitly. a=top_id, b=0.
    TopUserAbort,
    /// A transactional future was submitted. a=future_id, b=top_id.
    FutureSubmit,
    /// A worker began executing a future's body. a=future_id,
    /// b=queue-to-start delay (clock units).
    FutureStart,
    /// Forward validation succeeded: serialized at the submission point.
    /// a=future_id, b=top_id.
    FutureSerializedSubmission,
    /// Backward validation succeeded: serialized at the evaluation point.
    /// a=future_id, b=top_id.
    FutureSerializedEvaluation,
    /// An escaping future was adopted by an evaluating top-level (GAC).
    /// a=future_id, b=adopting top_id.
    FutureAdopted,
    /// A future re-executed inline after failing backward validation (or
    /// escape revalidation). a=future_id, b=top_id.
    FutureReexecuted,
    /// A future incarnation was cancelled with its top-level.
    /// a=future_id, b=top_id.
    FutureCancelled,
    /// A sub-transaction was doomed by a conflicting serialization.
    /// a=node_id, b=conflicting box id (or u64::MAX if unattributed).
    SegmentDoomed,
    /// A doomed continuation segment retried locally from its checkpoint.
    /// a=node_id, b=top_id.
    SegmentRetried,
    /// Snapshot read from the multi-versioned store (Full detail only).
    /// a=box_id, b=observed version.
    StmRead,
    /// A committed value was installed into a version chain (Full detail
    /// only). a=box_id, b=version.
    StmInstall,
    /// Commit-time GC pruned old versions. a=box_id, b=versions freed.
    StmPrune,
    /// Span: a whole `commit_raw` (lock, validate, install, publish, GC).
    /// a=duration, b=commit version.
    StmCommitSpan,
    /// Span: stripe acquisition + read-set validation. a=duration,
    /// b=number of boxes validated.
    StmValidationSpan,
    /// Span: wait for the in-order publication ticket. a=duration,
    /// b=commit version.
    PublishWaitSpan,
    /// Span: a pool worker executing one task. a=duration, b=worker index.
    WorkerBusySpan,
    /// Span: a pool worker blocked waiting for work. a=duration,
    /// b=worker index.
    WorkerIdleSpan,
    /// A periodic or on-demand gauge sample was recorded. a=sample
    /// index in the gauge series, b=number of gauges sampled.
    GaugeSample,
    /// The stall watchdog detected a no-commit-progress window.
    /// a=straggler top_id (or u64::MAX if none live), b=window length.
    WatchdogStall,
    /// One entry of a committed transaction's read set, re-emitted on the
    /// committer's lane immediately before its commit event so offline
    /// checkers can reconstruct the serialization record (Full detail
    /// only). a=box_id, b=observed version (0 = initial value).
    CommitRead,
    /// A baseline (future-free) mvstm transaction committed (Full detail
    /// only; top-levels use [`EventKind::TopCommit`] instead).
    /// a=commit_version, b=snapshot_version.
    TxnCommit,
    /// The telemetry hub closed a sliding-window epoch. a=epoch index,
    /// b=epochs currently retained in the window.
    TelemetryEpoch,
    /// The incident detector opened an incident. a=incident kind code,
    /// b=onset epoch index.
    IncidentOnset,
    /// A previously open incident recovered. a=incident kind code,
    /// b=recovery epoch index.
    IncidentEnd,
    /// A future body incarnation started executing. a=future_id,
    /// b=attempt index (0-based; bumps on every internal retry).
    FutureAttemptBegin,
    /// A future body incarnation aborted (doomed read or forward-
    /// validation loss) and will retry. a=future_id, b=attempt index.
    FutureAttemptAbort,
    /// A future body incarnation finished executing (before settlement).
    /// a=future_id, b=attempt index that succeeded.
    FutureCompleted,
    /// Span: an evaluation blocked waiting for a future to complete
    /// (the join edge of the causal DAG). a=duration, b=future_id.
    EvalWaitSpan,
    /// Retry lineage: a fresh top-level incarnation replaces a cancelled
    /// one after a full restart. a=new top_id, b=previous top_id.
    TopRetry,
    /// A task was pushed onto the pool queue (causal pair with
    /// [`EventKind::TaskDequeue`]). a=task_id, b=queue depth after push.
    TaskEnqueue,
    /// A worker popped a task off the pool queue. a=task_id,
    /// b=enqueue-to-dequeue delay (clock units).
    TaskDequeue,
    /// A backend-level commit attempt failed read validation (emitted by
    /// both mvstm and tl2 so retry lineage profiles identically).
    /// a=conflicting box id, b=snapshot version of the failed attempt.
    TxnAttemptAbort,
    /// The contention manager made an aborted transaction wait before
    /// retrying. a=actor token, b=wait (clock units).
    CmWait,
    /// The hotspot contention manager flagged a box for serialized
    /// admission. a=box_id, b=gate deadline (clock units).
    CmBoxFlagged,
    /// The adaptive policy flipped future serialization. a=direction
    /// (1 = WO→SO, 0 = back to WO), b=window abort rate in per-mille.
    AdaptiveFlip,
}

/// All kinds, in discriminant order (export tables, tests).
pub const ALL_KINDS: [EventKind; 40] = [
    EventKind::TopBegin,
    EventKind::TopCommit,
    EventKind::TopConflictAbort,
    EventKind::TopInternalRestart,
    EventKind::TopUserAbort,
    EventKind::FutureSubmit,
    EventKind::FutureStart,
    EventKind::FutureSerializedSubmission,
    EventKind::FutureSerializedEvaluation,
    EventKind::FutureAdopted,
    EventKind::FutureReexecuted,
    EventKind::FutureCancelled,
    EventKind::SegmentDoomed,
    EventKind::SegmentRetried,
    EventKind::StmRead,
    EventKind::StmInstall,
    EventKind::StmPrune,
    EventKind::StmCommitSpan,
    EventKind::StmValidationSpan,
    EventKind::PublishWaitSpan,
    EventKind::WorkerBusySpan,
    EventKind::WorkerIdleSpan,
    EventKind::GaugeSample,
    EventKind::WatchdogStall,
    EventKind::CommitRead,
    EventKind::TxnCommit,
    EventKind::TelemetryEpoch,
    EventKind::IncidentOnset,
    EventKind::IncidentEnd,
    EventKind::FutureAttemptBegin,
    EventKind::FutureAttemptAbort,
    EventKind::FutureCompleted,
    EventKind::EvalWaitSpan,
    EventKind::TopRetry,
    EventKind::TaskEnqueue,
    EventKind::TaskDequeue,
    EventKind::TxnAttemptAbort,
    EventKind::CmWait,
    EventKind::CmBoxFlagged,
    EventKind::AdaptiveFlip,
];

impl EventKind {
    /// Stable name used by the exporters.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::TopBegin => "top_begin",
            EventKind::TopCommit => "top_commit",
            EventKind::TopConflictAbort => "top_conflict_abort",
            EventKind::TopInternalRestart => "top_internal_restart",
            EventKind::TopUserAbort => "top_user_abort",
            EventKind::FutureSubmit => "future_submit",
            EventKind::FutureStart => "future_start",
            EventKind::FutureSerializedSubmission => "future_serialized_at_submission",
            EventKind::FutureSerializedEvaluation => "future_serialized_at_evaluation",
            EventKind::FutureAdopted => "future_adopted",
            EventKind::FutureReexecuted => "future_reexecuted",
            EventKind::FutureCancelled => "future_cancelled",
            EventKind::SegmentDoomed => "segment_doomed",
            EventKind::SegmentRetried => "segment_retried",
            EventKind::StmRead => "stm_read",
            EventKind::StmInstall => "stm_install",
            EventKind::StmPrune => "stm_prune",
            EventKind::StmCommitSpan => "stm_commit",
            EventKind::StmValidationSpan => "stm_validation",
            EventKind::PublishWaitSpan => "publish_wait",
            EventKind::WorkerBusySpan => "worker_busy",
            EventKind::WorkerIdleSpan => "worker_idle",
            EventKind::GaugeSample => "gauge_sample",
            EventKind::WatchdogStall => "watchdog_stall",
            EventKind::CommitRead => "commit_read",
            EventKind::TxnCommit => "txn_commit",
            EventKind::TelemetryEpoch => "telemetry_epoch",
            EventKind::IncidentOnset => "incident_onset",
            EventKind::IncidentEnd => "incident_end",
            EventKind::FutureAttemptBegin => "future_attempt_begin",
            EventKind::FutureAttemptAbort => "future_attempt_abort",
            EventKind::FutureCompleted => "future_completed",
            EventKind::EvalWaitSpan => "eval_wait",
            EventKind::TopRetry => "top_retry",
            EventKind::TaskEnqueue => "task_enqueue",
            EventKind::TaskDequeue => "task_dequeue",
            EventKind::TxnAttemptAbort => "txn_attempt_abort",
            EventKind::CmWait => "cm_wait",
            EventKind::CmBoxFlagged => "cm_box_flagged",
            EventKind::AdaptiveFlip => "adaptive_flip",
        }
    }

    /// Inverse of [`EventKind::name`], for trace importers (`wtf-check`
    /// re-reads exported Chrome traces through this).
    pub fn from_name(name: &str) -> Option<EventKind> {
        ALL_KINDS.iter().copied().find(|k| k.name() == name)
    }

    /// Span kinds carry (start, duration); the rest are instants.
    pub fn is_span(self) -> bool {
        matches!(
            self,
            EventKind::StmCommitSpan
                | EventKind::StmValidationSpan
                | EventKind::PublishWaitSpan
                | EventKind::WorkerBusySpan
                | EventKind::WorkerIdleSpan
                | EventKind::EvalWaitSpan
        )
    }

    /// Names of the `a`/`b` payloads for the exporters.
    pub fn arg_names(self) -> (&'static str, &'static str) {
        match self {
            EventKind::TopBegin => ("top", "snapshot"),
            EventKind::TopCommit => ("top", "version"),
            EventKind::TopConflictAbort => ("top", "conflict_box"),
            EventKind::TopInternalRestart | EventKind::TopUserAbort => ("top", "_"),
            EventKind::FutureSubmit => ("future", "top"),
            EventKind::FutureStart => ("future", "queue_delay"),
            EventKind::FutureSerializedSubmission
            | EventKind::FutureSerializedEvaluation
            | EventKind::FutureAdopted
            | EventKind::FutureReexecuted
            | EventKind::FutureCancelled => ("future", "top"),
            EventKind::SegmentDoomed => ("node", "conflict_box"),
            EventKind::SegmentRetried => ("node", "top"),
            EventKind::StmRead | EventKind::StmInstall => ("box", "version"),
            EventKind::StmPrune => ("box", "pruned"),
            EventKind::StmCommitSpan | EventKind::PublishWaitSpan => ("dur", "version"),
            EventKind::StmValidationSpan => ("dur", "reads"),
            EventKind::WorkerBusySpan | EventKind::WorkerIdleSpan => ("dur", "worker"),
            EventKind::GaugeSample => ("sample", "gauges"),
            EventKind::WatchdogStall => ("top", "window"),
            EventKind::CommitRead => ("box", "version"),
            EventKind::TxnCommit => ("version", "snapshot"),
            EventKind::TelemetryEpoch => ("epoch", "retained"),
            EventKind::IncidentOnset | EventKind::IncidentEnd => ("incident_kind", "epoch"),
            EventKind::FutureAttemptBegin
            | EventKind::FutureAttemptAbort
            | EventKind::FutureCompleted => ("future", "attempt"),
            EventKind::EvalWaitSpan => ("dur", "future"),
            EventKind::TopRetry => ("top", "prev_top"),
            EventKind::TaskEnqueue => ("task", "depth"),
            EventKind::TaskDequeue => ("task", "delay"),
            EventKind::TxnAttemptAbort => ("conflict_box", "snapshot"),
            EventKind::CmWait => ("actor", "wait"),
            EventKind::CmBoxFlagged => ("box", "gate_deadline"),
            EventKind::AdaptiveFlip => ("direction", "rate_per_mille"),
        }
    }
}

/// One recorded event. `Copy` and small: rings store these inline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Clock units at recording time (span kinds: at span *start*).
    pub ts: u64,
    pub kind: EventKind,
    pub a: u64,
    pub b: u64,
}
