//! Litmus test for the SPSC trace-lane ring — the dynamic counterpart
//! of `wtf-audit`'s static checks, named after the inventory entry
//! (`results/audit_inventory.json`) whose protocol it drives. Runs
//! under Miri and TSan in CI; the iteration count scales down under
//! Miri.

use std::sync::Arc;
use wtf_trace::{EventKind, Lane, TraceEvent};

const EVENTS: u64 = if cfg!(miri) { 200 } else { 50_000 };

/// MP shape over `len`: the owner's plain slot write followed by the
/// release `len` bump must pair with the harvester's acquire load, so
/// every concurrently harvested prefix is fully initialized and in
/// order — never a torn or reordered slot.
#[test]
fn len_release_store_publishes_slots_to_acquire_harvest() {
    let lane = Arc::new(Lane::new(0, EVENTS as usize));
    let writer = {
        let lane = Arc::clone(&lane);
        std::thread::spawn(move || {
            for i in 0..EVENTS {
                lane.push(TraceEvent {
                    ts: i,
                    kind: EventKind::StmInstall,
                    a: i,
                    b: i.wrapping_mul(3),
                });
            }
        })
    };
    let harvester = {
        let lane = Arc::clone(&lane);
        std::thread::spawn(move || loop {
            let evs = lane.events();
            for (i, ev) in evs.iter().enumerate() {
                assert_eq!(ev.ts, i as u64, "published prefix is in order");
                assert_eq!(ev.b, ev.a.wrapping_mul(3), "slots are never torn");
            }
            if evs.len() as u64 == EVENTS {
                break;
            }
        })
    };
    writer.join().unwrap();
    harvester.join().unwrap();
    assert_eq!(lane.len() as u64, EVENTS);
    assert_eq!(lane.dropped(), 0);
}
