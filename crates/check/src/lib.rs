//! # wtf-check — independent correctness tooling for the WTF-TM stack
//!
//! Three pillars, all independent of the runtime's own bookkeeping:
//!
//! * **[`checker`]** — an offline history checker. It consumes a
//!   `wtf-trace` event stream (live tracer lanes or an exported Chrome
//!   trace), reconstructs the committed read/write history, rebuilds the
//!   paper's polygraph/FSG from the trace alone, and demands an acyclic
//!   serialization witness for every run — plus a concrete justification
//!   (a newer install) for every cross-top conflict abort. Because the
//!   graph is rebuilt from trace data only, a bug in the runtime's
//!   validation cannot hide itself: the checker would see the
//!   non-serializable history the bug admitted.
//! * **[`explore`]** — deterministic schedule explorers. A bounded
//!   interleaving explorer steps several `mvstm` transactions through
//!   every permutation of their read/write/commit steps, and a virtual-
//!   clock delay explorer perturbs the `wtf-core` futures path across a
//!   grid of injected delays; every schedule's trace goes through the
//!   checker.
//! * **[`lint`]** — a TM-misuse source lint (`wtf-lint`) for the
//!   workspace's own Rust code: raw STM APIs outside the runtime crates,
//!   retained snapshots, transactional state escaping to plain threads,
//!   and unchecked `atomic(..)` results in non-test code.
//!
//! Binaries: `wtf-check` (verify exported traces, e.g. `results/*.json`)
//! and `wtf-lint` (scan source trees). The workload harness runs the
//! checker automatically at the end of every traced run when `WTF_CHECK=1`
//! (see `wtf-workloads`).

pub mod checker;
pub mod explore;
pub mod lint;

pub use checker::{CheckError, CheckReport, HistoryChecker};
pub use explore::{explore_core_delays, explore_mvstm, ExploreReport, StepOp};
pub use lint::{lint_source, lint_tree, Finding};
