//! `wtf-lint`: a small, dependency-free source lint for TM misuse in the
//! workspace's own Rust code.
//!
//! With no proc-macro parser available offline, this is a hand-rolled
//! scanner: comments and string/char literals are masked out first (so
//! needles never match inside them), `#[cfg(test)]` / `#[test]` regions
//! are tracked with a brace stack, and call shapes are tracked with a
//! paren stack. That is deliberately shallow — the lint aims at the
//! handful of misuse patterns that have bitten TM users, not at general
//! static analysis:
//!
//! * **`raw-api`** — using `wtf_mvstm::raw` (snapshots, versioned reads,
//!   raw commits) outside the runtime crates. The raw layer skips the
//!   retry loop and the serialization records; application code must go
//!   through `Stm::atomic` / `FutureTm::atomic`.
//! * **`snapshot-retained`** — storing a `Snapshot` in a struct field or
//!   static. A live snapshot pins the GC horizon: version chains grow
//!   without bound while it exists (the paper's runtime only holds
//!   snapshots for the duration of one transaction attempt).
//! * **`thread-escape`** — moving transactional state (`TxCtx`, `ctx`,
//!   `.submit(...)`) into `thread::spawn`. Futures must be spawned via
//!   `ctx.submit` so the runtime can serialize them; a plain OS thread
//!   escapes the transaction's tracking entirely.
//! * **`unchecked-atomic`** — `.unwrap()` / `.expect(` directly on an
//!   `atomic(...)` or `commit(...)` result in non-test code. `atomic`
//!   returns `Err(Aborted)` on explicit abort and `commit` reports
//!   conflicts; production code must handle them.
//!
//! Suppress a finding with `// wtf-lint: allow(rule)` on the same or the
//! preceding line. Files under `tests/`, `benches/` or `examples/` are
//! test code; `crates/mvstm`, `crates/core` and `crates/check` are the
//! runtime (the `raw-api`, `snapshot-retained` and `unchecked-atomic`
//! rules do not apply — the runtime crates' concurrency discipline is
//! `wtf-audit`'s jurisdiction, which checks the atomics themselves
//! rather than how their results are consumed).

use std::fmt;
use std::path::Path;

/// One lint hit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Path as given to the linter.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule slug: `raw-api`, `snapshot-retained`, `thread-escape`,
    /// `unchecked-atomic`.
    pub rule: &'static str,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Per-file classification, derived from the path by [`lint_tree`].
#[derive(Debug, Clone, Copy, Default)]
pub struct FileCtx {
    /// Test code: the `unchecked-atomic` rule (and test-region-sensitive
    /// parts of the others) are off for the whole file.
    pub test_file: bool,
    /// Runtime crate: `raw-api` and `snapshot-retained` do not apply.
    pub runtime_crate: bool,
}

/// Lints one source string as non-test, non-runtime application code.
pub fn lint_source(file: &str, src: &str) -> Vec<Finding> {
    lint_source_with(file, src, FileCtx::default())
}

/// Lints one source string with explicit file classification.
pub fn lint_source_with(file: &str, src: &str, ctx: FileCtx) -> Vec<Finding> {
    let allows = collect_allows(src);
    let masked = mask_comments_and_strings(src);
    let line_starts = line_starts(&masked);
    let test_lines = test_line_mask(&masked, &line_starts);
    let line_of = |off: usize| match line_starts.binary_search(&off) {
        Ok(i) => i + 1,
        Err(i) => i,
    };
    let is_test = |line: usize| ctx.test_file || test_lines.get(line - 1).copied().unwrap_or(false);
    let allowed = |line: usize, rule: &str| {
        allows
            .iter()
            .any(|(l, r)| (*l == line || *l + 1 == line) && r == rule)
    };
    let mut out = Vec::new();
    let mut push = |off: usize, rule: &'static str, message: String, skip_in_tests: bool| {
        let line = line_of(off);
        if skip_in_tests && is_test(line) {
            return;
        }
        if allowed(line, rule) {
            return;
        }
        out.push(Finding {
            file: file.to_string(),
            line,
            rule,
            message,
        });
    };

    if !ctx.runtime_crate {
        // raw-api: the low-level layer bypasses retry + serialization
        // records; only the runtime crates may touch it.
        const RAW_NEEDLES: [&str; 5] = [
            "wtf_mvstm::raw::",
            "raw::acquire_snapshot",
            "raw::commit_raw",
            "raw::commit_attributed",
            "raw::read_at",
        ];
        for needle in RAW_NEEDLES {
            for off in find_all(&masked, needle) {
                push(
                    off,
                    "raw-api",
                    format!("`{needle}` used outside the runtime crates; use `atomic` instead"),
                    true,
                );
            }
        }
        // snapshot-retained: `: Snapshot` in type position pins the GC
        // horizon for as long as the holder lives.
        for off in find_all(&masked, "Snapshot") {
            let before = masked[..off].trim_end();
            let line = line_of(off);
            let line_text = line_text(&masked, &line_starts, line);
            if before.ends_with(':') && !line_text.trim_start().starts_with("use ") {
                push(
                    off,
                    "snapshot-retained",
                    "storing a `Snapshot` pins the GC horizon; hold snapshots only for \
                     the duration of one transaction attempt"
                        .to_string(),
                    true,
                );
            }
        }
    }

    // thread-escape: transactional state moved into a plain OS thread.
    for off in find_all(&masked, "thread::spawn") {
        if let Some(args) = call_args(&masked, off + "thread::spawn".len()) {
            if has_word(args, "ctx") || has_word(args, "TxCtx") || args.contains(".submit(") {
                push(
                    off,
                    "thread-escape",
                    "transactional context moved into `thread::spawn`; spawn futures \
                     with `ctx.submit` so the runtime serializes them"
                        .to_string(),
                    true,
                );
            }
        }
    }

    // unchecked-atomic: `.unwrap()`/`.expect(` on atomic/commit results.
    // Off in runtime crates: wtf-audit owns their concurrency discipline
    // (the runtime deliberately unwraps in documented teaching examples,
    // and its own atomics are contract-checked at the source).
    if !ctx.runtime_crate {
        for (off, name) in calls(&masked) {
            if name != "atomic" && name != "commit" {
                continue;
            }
            let rest = masked[off..].trim_start();
            if rest.starts_with(".unwrap()") || rest.starts_with(".expect(") {
                push(
                    off,
                    "unchecked-atomic",
                    format!(
                        "`{name}(..)` result unwrapped in non-test code; handle the \
                         abort/conflict case explicitly (or use `atomic_infallible`)"
                    ),
                    true,
                );
            }
        }
    }

    out.sort_by_key(|f| f.line);
    out
}

/// Recursively lints every `.rs` file under `root`, classifying files by
/// path (skips `target/`, `.git/`, and `fixtures/` directories).
pub fn lint_tree(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    collect_rs_files(root, &mut files)?;
    files.sort();
    let mut out = Vec::new();
    for path in files {
        let rel = path.to_string_lossy().to_string();
        // Seeded-misuse fixtures are linted as plain application code
        // (CI asserts `wtf-lint crates/check/fixtures` fails).
        let fixture = rel.split('/').any(|c| c == "fixtures");
        let ctx = FileCtx {
            test_file: !fixture
                && rel
                    .split('/')
                    .any(|c| c == "tests" || c == "benches" || c == "examples"),
            runtime_crate: !fixture
                && [
                    "crates/mvstm",
                    "crates/core",
                    "crates/check",
                    // The substrate layer wraps the raw mvstm/tl2 APIs
                    // behind the StmBackend trait; it is the runtime.
                    "crates/backend",
                    "crates/tl2",
                ]
                .iter()
                .any(|r| rel.contains(r)),
        };
        // Read errors carry the offending path (a bare io::Error from a
        // deep walk is undebuggable); non-UTF8 bytes are linted lossily
        // rather than aborting the whole tree.
        let src = match std::fs::read(&path) {
            Ok(bytes) => String::from_utf8_lossy(&bytes).into_owned(),
            Err(e) => {
                return Err(std::io::Error::new(
                    e.kind(),
                    format!("{}: {e}", path.display()),
                ))
            }
        };
        out.extend(lint_source_with(&rel, &src, ctx));
    }
    Ok(out)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<std::path::PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == ".git" || name == "fixtures" {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

// ---- scanner plumbing ----

/// `(line, rule)` pairs from `// wtf-lint: allow(rule)` directives; each
/// suppresses its own and the following line.
fn collect_allows(src: &str) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for (i, line) in src.lines().enumerate() {
        let mut rest = line;
        while let Some(p) = rest.find("wtf-lint: allow(") {
            let tail = &rest[p + "wtf-lint: allow(".len()..];
            if let Some(end) = tail.find(')') {
                out.push((i + 1, tail[..end].trim().to_string()));
                rest = &tail[end..];
            } else {
                break;
            }
        }
    }
    out
}

/// Replaces the contents of comments and string/char literals with spaces
/// (newlines kept), so offsets and line numbers survive.
fn mask_comments_and_strings(src: &str) -> String {
    let b: Vec<char> = src.chars().collect();
    let mut out: Vec<char> = b.clone();
    let n = b.len();
    let mut i = 0;
    let blank = |out: &mut Vec<char>, from: usize, to: usize| {
        for c in out.iter_mut().take(to).skip(from) {
            if *c != '\n' {
                *c = ' ';
            }
        }
    };
    while i < n {
        match b[i] {
            '/' if i + 1 < n && b[i + 1] == '/' => {
                let start = i;
                while i < n && b[i] != '\n' {
                    i += 1;
                }
                blank(&mut out, start, i);
            }
            '/' if i + 1 < n && b[i + 1] == '*' => {
                let start = i;
                let mut depth = 1;
                i += 2;
                while i < n && depth > 0 {
                    if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                blank(&mut out, start, i);
            }
            '"' => {
                let start = i;
                i += 1;
                while i < n {
                    if b[i] == '\\' {
                        i += 2;
                    } else if b[i] == '"' {
                        i += 1;
                        break;
                    } else {
                        i += 1;
                    }
                }
                blank(&mut out, start + 1, i.saturating_sub(1).min(n));
            }
            'r' if i + 1 < n && (b[i + 1] == '"' || b[i + 1] == '#') => {
                // raw string r"..." / r#"..."# (only when it starts a
                // token: previous char must not be identifier-ish)
                if i > 0 && (b[i - 1].is_alphanumeric() || b[i - 1] == '_') {
                    i += 1;
                    continue;
                }
                let start = i;
                let mut j = i + 1;
                let mut hashes = 0;
                while j < n && b[j] == '#' {
                    hashes += 1;
                    j += 1;
                }
                if j >= n || b[j] != '"' {
                    i += 1;
                    continue;
                }
                j += 1;
                'raw: while j < n {
                    if b[j] == '"' {
                        let mut k = 0;
                        while k < hashes && j + 1 + k < n && b[j + 1 + k] == '#' {
                            k += 1;
                        }
                        if k == hashes {
                            j += 1 + hashes;
                            break 'raw;
                        }
                    }
                    j += 1;
                }
                blank(&mut out, start + 1, j.saturating_sub(1));
                i = j;
            }
            '\'' => {
                // char literal vs lifetime: a literal closes within a few
                // chars; a lifetime never closes with `'`.
                if i + 2 < n && b[i + 1] == '\\' {
                    let mut j = i + 2;
                    while j < n && b[j] != '\'' && j - i < 12 {
                        j += 1;
                    }
                    if j < n && b[j] == '\'' {
                        blank(&mut out, i + 1, j);
                        i = j + 1;
                        continue;
                    }
                } else if i + 2 < n && b[i + 2] == '\'' {
                    blank(&mut out, i + 1, i + 2);
                    i += 3;
                    continue;
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
    out.into_iter().collect()
}

fn line_starts(s: &str) -> Vec<usize> {
    let mut starts = vec![0usize];
    for (i, c) in s.char_indices() {
        if c == '\n' {
            starts.push(i + 1);
        }
    }
    starts
}

fn line_text<'a>(s: &'a str, starts: &[usize], line: usize) -> &'a str {
    let begin = starts[line - 1];
    let end = starts.get(line).copied().unwrap_or(s.len());
    s[begin..end].trim_end_matches('\n')
}

/// Marks every line inside a `#[cfg(test)]` / `#[test]` item as test code
/// (brace-matched; `mod tests;`-style declarations end at the `;`).
fn test_line_mask(masked: &str, starts: &[usize]) -> Vec<bool> {
    let mut mask = vec![false; starts.len()];
    let bytes = masked.as_bytes();
    let mut mark = |from: usize, to: usize| {
        let first = match starts.binary_search(&from) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        let last = match starts.binary_search(&to) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        for m in mask.iter_mut().take(last + 1).skip(first) {
            *m = true;
        }
    };
    for attr in ["#[cfg(test)]", "#[test]"] {
        for off in find_all(masked, attr) {
            let mut i = off + attr.len();
            let mut depth = 0usize;
            let mut seen_brace = false;
            while i < bytes.len() {
                match bytes[i] {
                    b'{' => {
                        depth += 1;
                        seen_brace = true;
                    }
                    b'}' => {
                        depth = depth.saturating_sub(1);
                        if seen_brace && depth == 0 {
                            break;
                        }
                    }
                    b';' if !seen_brace => break,
                    _ => {}
                }
                i += 1;
            }
            mark(off, i.min(bytes.len().saturating_sub(1)));
        }
    }
    mask
}

fn find_all(haystack: &str, needle: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(p) = haystack[from..].find(needle) {
        out.push(from + p);
        from += p + needle.len();
    }
    out
}

fn has_word(haystack: &str, word: &str) -> bool {
    let mut from = 0;
    while let Some(p) = haystack[from..].find(word) {
        let at = from + p;
        let before_ok = at == 0
            || !haystack[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = at + word.len();
        let after_ok = !haystack[after..]
            .chars()
            .next()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        from = after;
    }
    false
}

/// The parenthesized argument text starting at the first `(` at/after
/// `from` (paren-matched), if any.
fn call_args(masked: &str, from: usize) -> Option<&str> {
    let bytes = masked.as_bytes();
    let open = (from..masked.len()).find(|&i| bytes[i] == b'(')?;
    if masked[from..open].trim() != "" {
        return None;
    }
    let mut depth = 0usize;
    for i in open..bytes.len() {
        match bytes[i] {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&masked[open + 1..i]);
                }
            }
            _ => {}
        }
    }
    None
}

/// Every call site in `masked`, as `(offset_after_closing_paren, callee)`.
fn calls(masked: &str) -> Vec<(usize, String)> {
    let bytes = masked.as_bytes();
    let mut stack: Vec<Option<(usize, usize)>> = Vec::new(); // ident span per open paren
    let mut out = Vec::new();
    for i in 0..bytes.len() {
        match bytes[i] {
            b'(' => {
                let mut j = i;
                while j > 0 && (bytes[j - 1].is_ascii_alphanumeric() || bytes[j - 1] == b'_') {
                    j -= 1;
                }
                stack.push(if j < i { Some((j, i)) } else { None });
            }
            b')' => {
                if let Some(Some((a, b))) = stack.pop() {
                    out.push((i + 1, masked[a..b].to_string()));
                }
            }
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masking_spares_offsets() {
        let src = "let a = \"raw::read_at\"; // raw::commit_raw\nlet b = 1;\n";
        let masked = mask_comments_and_strings(src);
        assert_eq!(masked.len(), src.len());
        assert!(!masked.contains("read_at"));
        assert!(!masked.contains("commit_raw"));
        assert!(masked.contains("let b = 1;"));
    }

    #[test]
    fn raw_api_flagged_outside_runtime() {
        let src = "fn f(stm: &Stm) { let s = raw::acquire_snapshot(stm); }\n";
        let findings = lint_source("app.rs", src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "raw-api");
        let runtime = lint_source_with(
            "crates/core/src/x.rs",
            src,
            FileCtx {
                test_file: false,
                runtime_crate: true,
            },
        );
        assert!(runtime.is_empty());
    }

    #[test]
    fn snapshot_field_flagged() {
        let src = "struct Cache {\n    snap: Snapshot,\n}\n";
        let findings = lint_source("app.rs", src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "snapshot-retained");
        assert_eq!(findings[0].line, 2);
        // `use` imports are not retention
        assert!(lint_source("app.rs", "use wtf_mvstm::raw::Snapshot;\n")
            .iter()
            .all(|f| f.rule != "snapshot-retained"));
    }

    #[test]
    fn thread_escape_flagged() {
        let src = "fn f(ctx: &mut TxCtx) { std::thread::spawn(move || { ctx.read(&b) }); }\n";
        let findings = lint_source("app.rs", src);
        assert!(findings.iter().any(|f| f.rule == "thread-escape"));
        let clean = "fn f() { std::thread::spawn(move || { work() }); }\n";
        assert!(lint_source("app.rs", clean).is_empty());
    }

    #[test]
    fn unchecked_atomic_flagged_outside_tests() {
        let src = "fn f(stm: &Stm) { stm.atomic(|tx| tx.read(&b)).unwrap(); }\n";
        let findings = lint_source("app.rs", src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "unchecked-atomic");
        let test_src = "#[cfg(test)]\nmod t {\n    fn f(stm: &Stm) { stm.atomic(|tx| tx.read(&b)).unwrap(); }\n}\n";
        assert!(lint_source("app.rs", test_src).is_empty());
    }

    #[test]
    fn unchecked_atomic_defers_to_audit_in_runtime_crates() {
        let src = "fn f(stm: &Stm) { stm.atomic(|tx| tx.read(&b)).unwrap(); }\n";
        let runtime = lint_source_with(
            "crates/mvstm/src/x.rs",
            src,
            FileCtx {
                test_file: false,
                runtime_crate: true,
            },
        );
        assert!(
            runtime.is_empty(),
            "runtime crates are wtf-audit's jurisdiction: {runtime:?}"
        );
    }

    #[test]
    fn lint_tree_survives_non_utf8_files() {
        let dir = std::env::temp_dir().join(format!("wtf_lint_nonutf8_{}", std::process::id()));
        let sub = dir.join("src");
        std::fs::create_dir_all(&sub).unwrap();
        // Invalid UTF-8 in a comment: common when editors write latin-1.
        std::fs::write(sub.join("bad.rs"), b"fn f() {} // caf\xe9\n").unwrap();
        std::fs::write(
            sub.join("good.rs"),
            "fn f(stm: &Stm) { stm.atomic(|tx| tx.read(&b)).unwrap(); }\n",
        )
        .unwrap();
        let findings = lint_tree(&dir).expect("non-UTF8 files lint lossily, not fatally");
        assert!(
            findings
                .iter()
                .any(|f| f.rule == "unchecked-atomic" && f.file.ends_with("good.rs")),
            "the rest of the tree still lints: {findings:?}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn allow_directive_suppresses() {
        let src =
            "// wtf-lint: allow(unchecked-atomic)\nfn f(stm: &Stm) { stm.atomic(|tx| tx.read(&b)).unwrap(); }\n";
        assert!(lint_source("app.rs", src).is_empty());
    }

    #[test]
    fn seeded_misuse_fixture_trips_every_rule() {
        let fixture = include_str!("../fixtures/misuse.rs");
        let findings = lint_source("fixtures/misuse.rs", fixture);
        for rule in [
            "raw-api",
            "snapshot-retained",
            "thread-escape",
            "unchecked-atomic",
        ] {
            assert!(
                findings.iter().any(|f| f.rule == rule),
                "fixture should trip {rule}: {findings:?}"
            );
        }
    }
}
