//! Deterministic-schedule explorers: drive the real runtime through a
//! bounded space of interleavings and run every resulting trace through
//! the [`HistoryChecker`](crate::HistoryChecker).
//!
//! Two explorer families, matching the two layers of the stack:
//!
//! * [`explore_mvstm`] / [`explore_backend`] — step-level interleaving of
//!   plain STM transactions. Each thread's program is a fixed sequence of
//!   [`StepOp`]s; the explorer enumerates *every* multiset permutation of
//!   the programs' steps and executes each one against a fresh substrate.
//!   `explore_mvstm` drives mvstm's native stepwise [`Stm::begin_txn`]
//!   API; `explore_backend` drives any [`BackendKind`] through the
//!   backend-generic [`BackendTxn`], where *reads* can also conflict
//!   (single-version backends fail a read of a box overwritten since the
//!   snapshot) — a failed read is a final abort of that thread, exactly
//!   like a failed commit. Everything runs on one OS thread — a commit is
//!   a single schedule step, which both makes schedules exactly
//!   reproducible and keeps each transaction's serialization record
//!   contiguous on one trace lane.
//! * [`explore_core_delays`] / [`explore_core_delays_on`] — the
//!   `wtf-core` futures path cannot be single-stepped from outside
//!   (worker threads run future bodies), so it is perturbed instead:
//!   under the deterministic virtual clock, a fixed two-client
//!   submit/evaluate scenario is replayed across a grid of injected
//!   [`Clock::advance`] delays. Distinct delay vectors yield distinct
//!   (but each fully deterministic) schedules through the
//!   commit/doom/adoption machinery. [`explore_core_delays_cm`] adds
//!   the contention manager as a further dimension: waiting policies
//!   inject their own clock advances, shifting every cell of the grid.

use crate::checker::{CheckError, CheckReport, HistoryChecker};
use wtf_backend::{BackendKind, BackendTxn, TBox};
use wtf_core::{make_backend, CmKind, FutureTm, Semantics, TmConfig};
use wtf_mvstm::{Stm, Txn, VBox};
use wtf_trace::{TraceLevel, Tracer};
use wtf_vclock::Clock;

/// One step of an explored transaction. Box indices refer to the
/// explorer's box array (`0..boxes`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOp {
    /// Transactional read of box `i`.
    Read(usize),
    /// Transactional write of `value` to box `i`.
    Write(usize, u64),
    /// Attempt to commit; a conflict is a final abort (steps after it are
    /// skipped).
    Commit,
}

/// Aggregate outcome of an exploration. Returned only when *every*
/// schedule's trace passed the checker.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExploreReport {
    /// Distinct schedules executed and verified.
    pub schedules: usize,
    /// Transaction commits across all schedules.
    pub commits: usize,
    /// Final conflict aborts across all schedules.
    pub aborts: usize,
    /// Trace events the checker consumed across all schedules.
    pub events: usize,
    /// Bipath choices across the schedules' acyclic §3.4 witnesses. The
    /// checker *requires* a witness for every schedule (verification
    /// fails otherwise); this counts the non-forced choices it made.
    pub witness_edges: usize,
}

/// Enumerates every interleaving of the threads' step sequences (multiset
/// permutations) and yields each as a sequence of thread indices.
fn for_each_schedule(lens: &[usize], mut visit: impl FnMut(&[usize])) {
    let total: usize = lens.iter().sum();
    let mut taken = vec![0usize; lens.len()];
    let mut cur: Vec<usize> = Vec::with_capacity(total);
    fn rec(
        lens: &[usize],
        taken: &mut [usize],
        cur: &mut Vec<usize>,
        total: usize,
        visit: &mut impl FnMut(&[usize]),
    ) {
        if cur.len() == total {
            visit(cur);
            return;
        }
        for t in 0..lens.len() {
            if taken[t] < lens[t] {
                taken[t] += 1;
                cur.push(t);
                rec(lens, taken, cur, total, visit);
                cur.pop();
                taken[t] -= 1;
            }
        }
    }
    rec(lens, &mut taken, &mut cur, total, &mut visit);
}

/// Number of schedules [`explore_mvstm`] will execute for the given
/// programs (multinomial coefficient) — use to budget CI configurations.
pub fn schedule_count(programs: &[Vec<StepOp>]) -> usize {
    let total: usize = programs.iter().map(Vec::len).sum();
    let mut count = 1usize;
    let mut placed = 0usize;
    for p in programs {
        for k in 1..=p.len() {
            placed += 1;
            count = count * placed / k; // binomial(placed, k) stays integral
        }
    }
    debug_assert!(placed == total);
    count
}

/// Runs every interleaving of `programs` over `boxes` fresh boxes
/// (initial value 0) and checker-verifies each schedule's trace.
///
/// Fails with the offending schedule prefixed to the checker's error if
/// any interleaving produces a non-serializable history or an
/// unjustified abort.
pub fn explore_mvstm(programs: &[Vec<StepOp>], boxes: usize) -> Result<ExploreReport, CheckError> {
    let lens: Vec<usize> = programs.iter().map(Vec::len).collect();
    let mut report = ExploreReport::default();
    let mut failure: Option<CheckError> = None;
    for_each_schedule(&lens, |schedule| {
        if failure.is_some() {
            return;
        }
        match run_one_schedule(programs, boxes, schedule) {
            Ok((check, commits, aborts)) => {
                report.schedules += 1;
                report.commits += commits;
                report.aborts += aborts;
                report.events += check.events;
                report.witness_edges += check.witness_edges;
            }
            Err(e) => {
                failure = Some(CheckError(format!(
                    "schedule {:?} (thread index per step): {}",
                    schedule, e.0
                )));
            }
        }
    });
    match failure {
        Some(e) => Err(e),
        None => Ok(report),
    }
}

fn run_one_schedule(
    programs: &[Vec<StepOp>],
    boxes: usize,
    schedule: &[usize],
) -> Result<(CheckReport, usize, usize), CheckError> {
    let tracer = Tracer::with_capacity(TraceLevel::Full, 1 << 12);
    let stm = Stm::with_tracer(tracer.clone());
    let vars: Vec<VBox<u64>> = (0..boxes).map(|_| VBox::new(&stm, 0u64)).collect();
    let mut txns: Vec<Option<Txn<'_>>> = programs.iter().map(|_| None).collect();
    let mut dead = vec![false; programs.len()];
    let mut cursor = vec![0usize; programs.len()];
    let (mut commits, mut aborts) = (0usize, 0usize);
    for &t in schedule {
        let op = programs[t][cursor[t]];
        cursor[t] += 1;
        if dead[t] {
            continue; // aborted transactions skip their remaining steps
        }
        match op {
            StepOp::Read(b) => {
                let tx = txns[t].get_or_insert_with(|| stm.begin_txn());
                tx.read(&vars[b]).expect("snapshot reads cannot fail");
            }
            StepOp::Write(b, v) => {
                let tx = txns[t].get_or_insert_with(|| stm.begin_txn());
                tx.write(&vars[b], v).expect("buffered writes cannot fail");
            }
            StepOp::Commit => {
                // An op-less Commit still begins (and trivially commits) a
                // read-only transaction, for symmetry with real programs.
                let tx = match txns[t].take() {
                    Some(tx) => tx,
                    None => stm.begin_txn(),
                };
                match tx.commit() {
                    Ok(()) => commits += 1,
                    Err(_) => {
                        aborts += 1;
                        dead[t] = true;
                    }
                }
            }
        }
    }
    drop(txns); // release leftover snapshots before harvesting lanes
    let check = HistoryChecker::from_tracer(&tracer).verify()?;
    Ok((check, commits, aborts))
}

/// Backend-generic sibling of [`explore_mvstm`]: runs every interleaving
/// of `programs` through [`BackendTxn`] on the given substrate and
/// checker-verifies each schedule's trace.
///
/// On a single-version backend (TL2) a [`StepOp::Read`] itself can
/// conflict — the box was overwritten since the transaction's snapshot —
/// which finally aborts that thread (counted in
/// [`ExploreReport::aborts`], remaining steps skipped), so unlike mvstm a
/// thread can die before reaching its `Commit`. Each thread still ends in
/// exactly one terminal event per schedule: `commits + aborts` equals
/// `threads × schedules` whenever every program ends in a `Commit`.
pub fn explore_backend(
    kind: BackendKind,
    programs: &[Vec<StepOp>],
    boxes: usize,
) -> Result<ExploreReport, CheckError> {
    let lens: Vec<usize> = programs.iter().map(Vec::len).collect();
    let mut report = ExploreReport::default();
    let mut failure: Option<CheckError> = None;
    for_each_schedule(&lens, |schedule| {
        if failure.is_some() {
            return;
        }
        match run_one_backend_schedule(kind, programs, boxes, schedule) {
            Ok((check, commits, aborts)) => {
                report.schedules += 1;
                report.commits += commits;
                report.aborts += aborts;
                report.events += check.events;
                report.witness_edges += check.witness_edges;
            }
            Err(e) => {
                failure = Some(CheckError(format!(
                    "{} schedule {:?} (thread index per step): {}",
                    kind.name(),
                    schedule,
                    e.0
                )));
            }
        }
    });
    match failure {
        Some(e) => Err(e),
        None => Ok(report),
    }
}

fn run_one_backend_schedule(
    kind: BackendKind,
    programs: &[Vec<StepOp>],
    boxes: usize,
    schedule: &[usize],
) -> Result<(CheckReport, usize, usize), CheckError> {
    let tracer = Tracer::with_capacity(TraceLevel::Full, 1 << 12);
    let backend = make_backend(kind, tracer.clone());
    let backend = &*backend;
    let vars: Vec<TBox<u64>> = (0..boxes).map(|_| TBox::new_on(backend, 0u64)).collect();
    let mut txns: Vec<Option<BackendTxn<'_>>> = programs.iter().map(|_| None).collect();
    let mut dead = vec![false; programs.len()];
    let mut cursor = vec![0usize; programs.len()];
    let (mut commits, mut aborts) = (0usize, 0usize);
    for &t in schedule {
        let op = programs[t][cursor[t]];
        cursor[t] += 1;
        if dead[t] {
            continue; // aborted transactions skip their remaining steps
        }
        match op {
            StepOp::Read(b) => {
                let tx = txns[t].get_or_insert_with(|| BackendTxn::begin(backend));
                if tx.read(&vars[b]).is_err() {
                    // Single-version backends: the box moved past this
                    // transaction's snapshot — a final abort, like a
                    // failed commit-time validation.
                    aborts += 1;
                    dead[t] = true;
                    txns[t] = None;
                }
            }
            StepOp::Write(b, v) => {
                let tx = txns[t].get_or_insert_with(|| BackendTxn::begin(backend));
                tx.write(&vars[b], v).expect("buffered writes cannot fail");
            }
            StepOp::Commit => {
                let tx = match txns[t].take() {
                    Some(tx) => tx,
                    None => BackendTxn::begin(backend),
                };
                match tx.commit() {
                    Ok(()) => commits += 1,
                    Err(_) => {
                        aborts += 1;
                        dead[t] = true;
                    }
                }
            }
        }
    }
    drop(txns); // release leftover snapshots before harvesting lanes
    let check = HistoryChecker::from_tracer(&tracer).verify()?;
    Ok((check, commits, aborts))
}

/// Delay-grid exploration of the `wtf-core` futures path.
///
/// Under a fresh deterministic virtual clock per delay vector, two
/// clients contend on two boxes: each runs a top-level that submits a
/// future writing one box, does a conflicting read/increment of the other
/// box in the continuation, then evaluates the future. Injected delays
/// (one per client, before its atomic, plus one inside each continuation)
/// shift the clients' commit/validation points against each other, so the
/// grid sweeps racy orderings — including doomed runs that restart —
/// through the real commit, doom and (under GAC) adoption machinery.
///
/// Every run's `Full` trace is checker-verified. `grid` supplies the
/// candidate delay values; the explorer executes `grid.len()^4` runs.
pub fn explore_core_delays(
    semantics: Semantics,
    grid: &[u64],
) -> Result<ExploreReport, CheckError> {
    explore_core_delays_on(BackendKind::from_env(), semantics, grid)
}

/// [`explore_core_delays`] pinned to a specific STM substrate, for
/// side-by-side sweeps of the futures path over mvstm and TL2 regardless
/// of `WTF_BACKEND`. Runs under the default [`CmKind::Immediate`]
/// contention manager.
pub fn explore_core_delays_on(
    kind: BackendKind,
    semantics: Semantics,
    grid: &[u64],
) -> Result<ExploreReport, CheckError> {
    explore_core_delays_cm(kind, semantics, CmKind::Immediate, grid)
}

/// The full sweep: [`explore_core_delays_on`] with the contention
/// manager as an explicit dimension.
///
/// Waiting policies (`backoff`, `karma`) insert `Clock::advance` calls
/// of their own on abort and at admission, which *shifts* the schedule
/// grid rather than merely slowing it down: a CM wait can move a
/// client's validation point past the other's commit, turning a doomed
/// ordering into a clean one or vice versa. Each (delay vector, CM)
/// cell is still fully deterministic, and every cell's trace must both
/// pass the checker — which demands an acyclic §3.4 serialization
/// witness — and commit both clients (the CM may reorder, never
/// starve, this bounded scenario).
pub fn explore_core_delays_cm(
    kind: BackendKind,
    semantics: Semantics,
    cm: CmKind,
    grid: &[u64],
) -> Result<ExploreReport, CheckError> {
    let mut report = ExploreReport::default();
    for &d0 in grid {
        for &d1 in grid {
            for &d2 in grid {
                for &d3 in grid {
                    let delays = [d0, d1, d2, d3];
                    let check = run_core_scenario(kind, semantics, cm, delays).map_err(|e| {
                        CheckError(format!(
                            "{}/{} delays {delays:?}: {}",
                            kind.name(),
                            cm.name(),
                            e.0
                        ))
                    })?;
                    report.schedules += 1;
                    report.commits += check.committed_tops;
                    report.events += check.events;
                    report.witness_edges += check.witness_edges;
                }
            }
        }
    }
    Ok(report)
}

fn run_core_scenario(
    kind: BackendKind,
    semantics: Semantics,
    cm: CmKind,
    delays: [u64; 4],
) -> Result<CheckReport, CheckError> {
    let clock = Clock::virtual_time();
    let tracer = Tracer::with_capacity(TraceLevel::Full, 1 << 14);
    clock.enter(|| {
        let tm = FutureTm::builder()
            .config(TmConfig::new(semantics))
            .workers(2)
            .backend_kind(kind)
            .cm(cm)
            .tracer(tracer.clone())
            .build();
        let a = tm.new_vbox(0u64);
        let b = tm.new_vbox(0u64);
        let c = Clock::current();
        let mut clients = Vec::new();
        for (i, pre) in [(0usize, delays[0]), (1usize, delays[1])] {
            let tm = tm.clone();
            let (mine, theirs) = if i == 0 {
                (a.clone(), b.clone())
            } else {
                (b.clone(), a.clone())
            };
            let inner = delays[2 + i];
            clients.push(c.spawn("client", move || {
                Clock::current().advance(pre);
                tm.atomic_infallible(|ctx| {
                    let mine = mine.clone();
                    let fut = ctx.submit(move |fc| {
                        let v = fc.read(&mine)?;
                        fc.write(&mine, v + 1)
                    })?;
                    Clock::current().advance(inner);
                    // Conflicting access: both clients bump the *other*
                    // box too, so commit order matters and late
                    // validators get doomed and restarted.
                    let v = ctx.read(&theirs)?;
                    ctx.write(&theirs, v + 10)?;
                    ctx.evaluate(&fut)
                });
            }));
        }
        for h in clients {
            h.join();
        }
        tm.shutdown();
    });
    HistoryChecker::from_tracer(&tracer).verify()
}
