//! `wtf-check` — offline verification of exported traces and benchmark
//! results.
//!
//! ```text
//! wtf-check trace.json ...        # explicit files
//! wtf-check --all results/        # every *.json in a directory
//! ```
//!
//! Two input shapes are understood:
//!
//! * a Chrome trace JSON *array* (as exported by `Tracer::chrome_trace_json`
//!   or the fig3 straggler binary): the full serializability checker runs
//!   on the reconstructed event lanes;
//! * a benchmark result *object* (the fig binaries' `results/*.json`):
//!   every `dropped_events` / `events_dropped` counter anywhere in the
//!   document must be zero — a truncated trace invalidates whatever was
//!   concluded from it, so it fails loudly here.
//!
//! Exit status is non-zero if any file fails (or no file was checked).

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use wtf_check::HistoryChecker;
use wtf_trace::Json;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut files: Vec<PathBuf> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--all" => {
                i += 1;
                let dir = match args.get(i) {
                    Some(d) => Path::new(d),
                    None => {
                        eprintln!("wtf-check: --all needs a directory");
                        return ExitCode::FAILURE;
                    }
                };
                match list_json(dir) {
                    Ok(mut found) => files.append(&mut found),
                    Err(e) => {
                        eprintln!("wtf-check: {}: {e}", dir.display());
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--help" | "-h" => {
                eprintln!("usage: wtf-check [--all <dir>] [file.json ...]");
                return ExitCode::SUCCESS;
            }
            f => files.push(PathBuf::from(f)),
        }
        i += 1;
    }
    if files.is_empty() {
        eprintln!("wtf-check: no input files (try --all results/)");
        return ExitCode::FAILURE;
    }
    let mut failed = false;
    for file in &files {
        match check_file(file) {
            Ok(msg) => println!("{}: {msg}", file.display()),
            Err(e) => {
                failed = true;
                eprintln!("{}: FAILED: {e}", file.display());
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        println!("wtf-check: {} file(s) ok", files.len());
        ExitCode::SUCCESS
    }
}

fn list_json(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    out.sort();
    Ok(out)
}

fn check_file(path: &Path) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let json = Json::parse(&text).map_err(|e| format!("invalid JSON: {e}"))?;
    match &json {
        Json::Arr(_) => {
            let report = HistoryChecker::from_chrome_json(&json)
                .map_err(|e| e.to_string())?
                .verify()
                .map_err(|e| e.to_string())?;
            Ok(report.summary())
        }
        Json::Obj(_) => {
            let mut counters = 0usize;
            check_no_drops(&json, &mut counters)?;
            Ok(format!(
                "summary only (no event stream): {counters} drop counter(s), all zero"
            ))
        }
        _ => Err("neither a Chrome trace array nor a result object".to_string()),
    }
}

/// Walks a result document for drop counters; any non-zero one is fatal.
fn check_no_drops(json: &Json, counters: &mut usize) -> Result<(), String> {
    match json {
        Json::Obj(fields) => {
            for (k, v) in fields {
                if k == "dropped_events" || k == "events_dropped" {
                    *counters += 1;
                    if v.as_u64() != Some(0) {
                        return Err(format!(
                            "`{k}` is {v} — the trace behind this result was truncated"
                        ));
                    }
                } else {
                    check_no_drops(v, counters)?;
                }
            }
            Ok(())
        }
        Json::Arr(items) => {
            for item in items {
                check_no_drops(item, counters)?;
            }
            Ok(())
        }
        _ => Ok(()),
    }
}
