//! `wtf-lint` — TM-misuse lint over Rust source trees.
//!
//! ```text
//! wtf-lint crates/ src/          # lint these trees (default: .)
//! ```
//!
//! Rules and suppression syntax are documented in `wtf_check::lint`.
//! Exit status is non-zero when any finding survives.

use std::path::Path;
use std::process::ExitCode;
use wtf_check::lint_tree;

fn main() -> ExitCode {
    let mut roots: Vec<String> = std::env::args().skip(1).collect();
    if roots.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: wtf-lint [path ...]   (default: current directory)");
        return ExitCode::SUCCESS;
    }
    if roots.is_empty() {
        roots.push(".".to_string());
    }
    let mut findings = Vec::new();
    for root in &roots {
        match lint_tree(Path::new(root)) {
            Ok(mut f) => findings.append(&mut f),
            Err(e) => {
                eprintln!("wtf-lint: {root}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    for f in &findings {
        println!("{f}");
    }
    if findings.is_empty() {
        println!("wtf-lint: clean");
        ExitCode::SUCCESS
    } else {
        eprintln!("wtf-lint: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}
