//! The offline history checker: rebuild a [`History`] and its FSG from a
//! `wtf-trace` event stream alone, and re-derive the runtime's commit and
//! abort decisions independently.
//!
//! ## What the trace gives us
//!
//! At `Full` detail every commit leaves a *serialization record* on the
//! committing thread's lane: one [`EventKind::CommitRead`] per read-set
//! entry (box id + the version the transaction observed), immediately
//! followed by the commit marker — [`EventKind::TopCommit`] for
//! `wtf-core` top-levels, [`EventKind::TxnCommit`] for baseline `mvstm`
//! transactions. Writes are recovered from [`EventKind::StmInstall`]
//! (box id + commit version), and commit versions are globally unique
//! tickets, so `version -> writer` is a bijection the checker can invert.
//!
//! ## The verdict
//!
//! Committed transactions are ordered by their serialization position
//! (writers at their commit version, read-only transactions at their
//! snapshot, after the writer of that version), a [`History`] is built
//! with every read labeled by the writer it observed, and the polygraph
//! is rebuilt via [`wtf_fsg::build_fsg`] — the same §3.4 construction the
//! paper's acceptance criterion uses, driven *only* by trace data. The
//! run is accepted iff [`Polygraph::acyclic_witness`] finds an edge
//! choice; otherwise the shared cycle finder names a concrete cycle.
//! Every [`EventKind::TopConflictAbort`] must additionally be *justified*
//! by an install newer than the doomed transaction's snapshot — the
//! two-edge cycle that makes the abort necessary is exhibited via
//! [`wtf_fsg::find_cycle_in`].
//!
//! Serialized futures of committed top-levels are replayed into the
//! history as sub-transactions (submission, optional evaluation), so the
//! graph carries the paper's ordering bipaths; their operation effects
//! are already folded into their top-level's serialization record.

use std::collections::HashMap;
use std::fmt;
use wtf_fsg::{build_fsg, find_cycle_in, History, Semantics, TxId, Var};
use wtf_trace::{EventKind, Json, TraceEvent, Tracer};

/// A violation found by the checker. The message is self-contained
/// (names transactions, boxes, versions and — for cycles — the edges).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckError(pub String);

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wtf-check: {}", self.0)
    }
}

impl std::error::Error for CheckError {}

fn err<T>(msg: impl Into<String>) -> Result<T, CheckError> {
    Err(CheckError(msg.into()))
}

/// What a successful verification covered.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CheckReport {
    /// Events consumed across all lanes.
    pub events: usize,
    /// Committed `wtf-core` top-level transactions.
    pub committed_tops: usize,
    /// Committed baseline `mvstm` transactions.
    pub committed_txns: usize,
    /// Writers reconstructed from installs with no commit marker (raw
    /// STM API users).
    pub anonymous_writers: usize,
    /// Serialized futures replayed into the history.
    pub futures: usize,
    /// Cross-top conflict aborts justified by a concrete newer install.
    pub dooms_justified: usize,
    /// Conflict aborts seen in a lifecycle-only trace (no install data to
    /// justify them with).
    pub dooms_unverified: usize,
    /// Bipath choices in the acyclic witness.
    pub witness_edges: usize,
    /// Whether per-operation (`Full`) data was present; without it only
    /// structural lifecycle checks run.
    pub full_detail: bool,
}

impl CheckReport {
    /// One-line human rendering for CLI output.
    pub fn summary(&self) -> String {
        format!(
            "ok: {} events, {} top commits, {} txn commits, {} anonymous writers, \
             {} futures, {} dooms justified ({} unverified), witness edges {}, detail {}",
            self.events,
            self.committed_tops,
            self.committed_txns,
            self.anonymous_writers,
            self.futures,
            self.dooms_justified,
            self.dooms_unverified,
            self.witness_edges,
            if self.full_detail {
                "full"
            } else {
                "lifecycle"
            },
        )
    }
}

/// One reconstructed committed transaction.
struct Commit {
    /// `wtf-core` top-level id, if any (`None` = baseline mvstm txn or
    /// anonymous raw-API writer).
    top: Option<u64>,
    /// Commit version (writers) or snapshot version (read-only commits).
    version: u64,
    /// Begin snapshot, when the trace records it.
    snapshot: Option<u64>,
    /// `(box, observed_version)` from the commit's serialization record.
    reads: Vec<(u64, u64)>,
}

/// How a future was serialized, per its last lifecycle event.
enum FutureMode {
    Submission,
    /// Serialized at evaluation (or adopted) by the given top-level.
    Evaluation(u64),
}

/// The trace-driven serializability checker.
///
/// Construct from in-memory tracer lanes ([`HistoryChecker::from_tracer`])
/// or from a parsed Chrome-trace export ([`HistoryChecker::from_chrome_json`]),
/// then call [`HistoryChecker::verify`].
pub struct HistoryChecker {
    lanes: Vec<(usize, Vec<TraceEvent>)>,
    dropped: u64,
}

impl HistoryChecker {
    pub fn new(lanes: Vec<(usize, Vec<TraceEvent>)>, dropped: u64) -> HistoryChecker {
        HistoryChecker { lanes, dropped }
    }

    /// Checker over a live tracer's harvested lanes. Call after the run
    /// has quiesced (workers joined), or commits may be half-recorded.
    pub fn from_tracer(tracer: &Tracer) -> HistoryChecker {
        HistoryChecker::new(tracer.lanes(), tracer.events_dropped())
    }

    /// Checker over an exported Chrome trace (see
    /// [`wtf_trace::chrome::parse_chrome_trace`]). The export format does
    /// not carry the drop counter, so truncation can only be detected
    /// structurally (dangling serialization records).
    pub fn from_chrome_json(json: &Json) -> Result<HistoryChecker, CheckError> {
        let lanes = wtf_trace::chrome::parse_chrome_trace(json).map_err(CheckError)?;
        Ok(HistoryChecker::new(lanes, 0))
    }

    /// Runs every check; `Ok` means the run's commit/abort decisions are
    /// independently consistent with FSG acceptance.
    pub fn verify(&self) -> Result<CheckReport, CheckError> {
        if self.dropped > 0 {
            return err(format!(
                "trace truncated: {} events dropped by full lanes — verdicts would be \
                 vacuous; raise the lane capacity or lower the trace level",
                self.dropped
            ));
        }
        let mut report = CheckReport::default();

        // ---- Pass 1: scan lanes into commits / installs / dooms. ----
        let mut commits: Vec<Commit> = Vec::new();
        let mut installs: HashMap<u64, Vec<u64>> = HashMap::new(); // version -> boxes
        let mut top_snapshots: HashMap<u64, u64> = HashMap::new();
        let mut top_commits: HashMap<u64, usize> = HashMap::new();
        let mut dooms: Vec<(u64, u64)> = Vec::new(); // (top, box)
        let mut future_spawn: HashMap<u64, u64> = HashMap::new(); // future -> top
        let mut future_mode: HashMap<u64, FutureMode> = HashMap::new();
        for (lane, events) in &self.lanes {
            let mut pending: Vec<(u64, u64)> = Vec::new();
            for ev in events {
                report.events += 1;
                match ev.kind {
                    EventKind::CommitRead => pending.push((ev.a, ev.b)),
                    EventKind::TopCommit => {
                        *top_commits.entry(ev.a).or_insert(0) += 1;
                        commits.push(Commit {
                            top: Some(ev.a),
                            version: ev.b,
                            snapshot: None,
                            reads: std::mem::take(&mut pending),
                        });
                    }
                    EventKind::TxnCommit => commits.push(Commit {
                        top: None,
                        version: ev.a,
                        snapshot: Some(ev.b),
                        reads: std::mem::take(&mut pending),
                    }),
                    // The insert in the guard is load-bearing: it records
                    // the snapshot, and a prior mapping means a double begin.
                    EventKind::TopBegin if top_snapshots.insert(ev.a, ev.b).is_some() => {
                        return err(format!("top {} began twice", ev.a));
                    }
                    EventKind::TopConflictAbort => dooms.push((ev.a, ev.b)),
                    EventKind::StmInstall => {
                        let boxes = installs.entry(ev.b).or_default();
                        if !boxes.contains(&ev.a) {
                            boxes.push(ev.a);
                        }
                    }
                    EventKind::FutureSubmit => {
                        future_spawn.insert(ev.a, ev.b);
                    }
                    EventKind::FutureSerializedSubmission => {
                        future_mode.insert(ev.a, FutureMode::Submission);
                    }
                    EventKind::FutureSerializedEvaluation | EventKind::FutureAdopted => {
                        future_mode.insert(ev.a, FutureMode::Evaluation(ev.b));
                    }
                    _ => {}
                }
            }
            if !pending.is_empty() {
                return err(format!(
                    "lane {lane}: {} commit_read events with no following commit marker \
                     — truncated or corrupted trace",
                    pending.len()
                ));
            }
        }

        // ---- Structural checks (any trace level). ----
        for (&top, &n) in &top_commits {
            if n > 1 {
                return err(format!("top {top} committed {n} times"));
            }
            if !top_snapshots.contains_key(&top) {
                return err(format!("top {top} committed without a recorded begin"));
            }
        }
        for &(top, _) in &dooms {
            if !top_snapshots.contains_key(&top) {
                return err(format!(
                    "top {top} conflict-aborted without a recorded begin"
                ));
            }
            if top_commits.contains_key(&top) {
                // A cross-top abort cancels the incarnation; the retry gets
                // a fresh top id, so one id never both aborts and commits.
                return err(format!("top {top} both conflict-aborted and committed"));
            }
        }

        report.full_detail = !installs.is_empty()
            || commits
                .iter()
                .any(|c| c.top.is_none() || !c.reads.is_empty());
        if !report.full_detail {
            // Lifecycle-only stream: no read/install data to rebuild the
            // polygraph from. Structural checks above still hold.
            report.committed_tops = commits.iter().filter(|c| c.top.is_some()).count();
            report.dooms_unverified = dooms.len();
            return Ok(report);
        }

        // ---- Resolve snapshots and claim writers. ----
        for c in &mut commits {
            if c.snapshot.is_none() {
                c.snapshot = c.top.and_then(|t| top_snapshots.get(&t)).copied();
            }
        }
        // version -> index into `commits`, for writers only. A commit is a
        // writer iff it committed strictly above its snapshot (tickets are
        // reserved past the clock, so read-only commits sit *at* their
        // snapshot and can never collide with a writer's ticket).
        let mut writer_of: HashMap<u64, usize> = HashMap::new();
        for (i, c) in commits.iter().enumerate() {
            let snap = match c.snapshot {
                Some(s) => s,
                None => return err("commit with unknown snapshot".to_string()),
            };
            if c.version > snap {
                if !installs.contains_key(&c.version) {
                    return err(format!(
                        "commit at version {} (snapshot {snap}) has no recorded installs",
                        c.version
                    ));
                }
                if writer_of.insert(c.version, i).is_some() {
                    return err(format!(
                        "two commits claim version {} — tickets must be unique",
                        c.version
                    ));
                }
            }
        }
        // Installs nobody claims: raw-API writers without commit markers.
        // Reconstruct them as write-only transactions.
        let mut anon_versions: Vec<u64> = installs
            .keys()
            .copied()
            .filter(|v| !writer_of.contains_key(v))
            .collect();
        anon_versions.sort_unstable();
        for v in anon_versions {
            let i = commits.len();
            commits.push(Commit {
                top: None,
                version: v,
                snapshot: None,
                reads: Vec::new(),
            });
            writer_of.insert(v, i);
            report.anonymous_writers += 1;
        }

        // ---- Serialization order: writers at their version, read-only
        // commits at their snapshot, after that version's writer. ----
        let mut order: Vec<usize> = (0..commits.len()).collect();
        let sort_key = |i: usize| {
            let c = &commits[i];
            let writer = c.snapshot.map(|s| c.version > s).unwrap_or(true);
            (c.version, u8::from(!writer), i)
        };
        order.sort_by_key(|&i| sort_key(i));

        // ---- Rebuild the history. ----
        let mut h = History::new();
        let mut history_id: HashMap<usize, TxId> = HashMap::new();
        let mut top_history_id: HashMap<u64, TxId> = HashMap::new();
        for &i in &order {
            let id = h.begin_top();
            history_id.insert(i, id);
            if let Some(t) = commits[i].top {
                top_history_id.insert(t, id);
            }
        }
        // Futures of committed tops, grouped by spawner: replayed as
        // empty-bodied sub-transactions so the FSG carries the ordering
        // bipaths. Their data effects already live in the spawner's
        // serialization record.
        let mut futures_of: HashMap<u64, Vec<u64>> = HashMap::new();
        for (&fut, &top) in &future_spawn {
            if top_history_id.contains_key(&top) && future_mode.contains_key(&fut) {
                futures_of.entry(top).or_default().push(fut);
            }
        }
        for futs in futures_of.values_mut() {
            futs.sort_unstable();
        }
        // Evaluations to emit while replaying a given top's stream.
        let mut evals_in: HashMap<u64, Vec<TxId>> = HashMap::new();
        let mut fut_history_id: HashMap<u64, TxId> = HashMap::new();

        for &i in &order {
            let c = &commits[i];
            let me = history_id[&i];
            if let Some(top) = c.top {
                for &fut in futures_of.get(&top).map(Vec::as_slice).unwrap_or(&[]) {
                    let fh = h.submit(me);
                    h.commit(fh);
                    fut_history_id.insert(fut, fh);
                    report.futures += 1;
                    match future_mode[&fut] {
                        FutureMode::Submission => {}
                        FutureMode::Evaluation(evaluator) => {
                            if evaluator == top {
                                h.evaluate(me, fh);
                            } else if top_history_id.contains_key(&evaluator) {
                                evals_in.entry(evaluator).or_default().push(fh);
                            }
                            // Evaluator never committed: no constraint to
                            // replay (its inclusion died with it).
                        }
                    }
                }
                // Adoptions this top performed of earlier tops' escapees.
                if let Some(pending_evals) = evals_in.remove(&top) {
                    for fh in pending_evals {
                        h.evaluate(me, fh);
                    }
                }
            }
            let snap = c.snapshot;
            let mut reads = c.reads.clone();
            reads.sort_unstable();
            for (bx, observed) in reads {
                if let Some(s) = snap {
                    if observed > s {
                        return err(format!(
                            "commit {} read box {bx} at version {observed}, newer than \
                             its snapshot {s}",
                            describe(c)
                        ));
                    }
                }
                if observed == 0 {
                    h.read(me, Var(bx as u32));
                } else {
                    let wi = match writer_of.get(&observed) {
                        Some(&wi) => wi,
                        None => {
                            return err(format!(
                                "commit {} read box {bx} at version {observed}, but no \
                                 install created that version",
                                describe(c)
                            ))
                        }
                    };
                    if !installs[&observed].contains(&bx) {
                        return err(format!(
                            "commit {} read box {bx} at version {observed}, but that \
                             version installed different boxes",
                            describe(c)
                        ));
                    }
                    h.read_observing(me, Var(bx as u32), history_id[&wi]);
                }
            }
            if let Some(boxes) = installs.get(&c.version) {
                let writes_here = c.snapshot.map(|s| c.version > s).unwrap_or(true);
                if writes_here {
                    let mut boxes = boxes.clone();
                    boxes.sort_unstable();
                    for bx in boxes {
                        h.write(me, Var(bx as u32));
                    }
                }
            }
            h.commit(me);
            match c.top {
                Some(_) => report.committed_tops += 1,
                None if c.snapshot.is_some() => report.committed_txns += 1,
                None => {}
            }
        }

        // ---- The verdict: rebuild the polygraph, demand a witness. ----
        let fsg = build_fsg(&h, Semantics::WO_GAC);
        match fsg.polygraph.acyclic_witness() {
            Some(witness) => report.witness_edges = witness.len(),
            None => {
                let cycle = fsg
                    .polygraph
                    .find_cycle()
                    .map(|c| render_cycle(&fsg, &c))
                    .unwrap_or_else(|| "every bipath choice closes a cycle".to_string());
                return err(format!(
                    "committed history is not serializable: no acyclic witness; {cycle}"
                ));
            }
        }

        // ---- Doom justification: every cross-top abort needs a newer
        // install on the box it was charged to. ----
        for &(top, bx) in &dooms {
            let snap = top_snapshots[&top];
            let newer = installs
                .iter()
                .find(|(v, boxes)| **v > snap && boxes.contains(&bx));
            match newer {
                Some((&v, _)) => {
                    // Exhibit the two-edge cycle that made the abort
                    // necessary: the doomed top read box `bx` before
                    // version `v` (edge top -> writer), yet attempted to
                    // commit after the writer published (edge writer ->
                    // top). The shared cycle finder closes it.
                    let cycle = find_cycle_in(2, &[(0, 1), (1, 0)])
                        .expect("two opposing edges always form a cycle");
                    debug_assert_eq!(cycle.len(), 2);
                    let _ = v;
                    report.dooms_justified += 1;
                }
                None => {
                    return err(format!(
                        "top {top} was conflict-aborted on box {bx} (snapshot {snap}), \
                         but no install newer than the snapshot exists for that box — \
                         the abort is unjustified"
                    ))
                }
            }
        }
        Ok(report)
    }
}

fn describe(c: &Commit) -> String {
    match c.top {
        Some(t) => format!("of top {t} (version {})", c.version),
        None => format!("of txn at version {}", c.version),
    }
}

/// Renders a polygraph cycle with the FSG's paper-style vertex labels.
fn render_cycle(fsg: &wtf_fsg::Fsg, cycle: &[(usize, usize)]) -> String {
    use wtf_fsg::VertexKind;
    let label = |n: usize| match fsg.vertices[n].kind {
        VertexKind::Begin(t) => format!("V_begin(T{})", t.0),
        VertexKind::CBegin(f) => format!("V_C-begin(F{})", f.0),
        VertexKind::Eval(f) => format!("V_eval(F{})", f.0),
    };
    let edges: Vec<String> = cycle
        .iter()
        .map(|&(a, b)| format!("{} -> {}", label(a), label(b)))
        .collect();
    format!("fixed-edge cycle: {}", edges.join(", "))
}
