//! Adversarial and end-to-end tests for the offline history checker:
//! hand-crafted non-serializable traces must be rejected with a concrete
//! cycle, hand-crafted valid traces accepted, and live traces from the
//! real runtime (mvstm and wtf-core) must verify.

use wtf_check::HistoryChecker;
use wtf_trace::{EventKind, TraceEvent, TraceLevel, Tracer};

fn ev(kind: EventKind, a: u64, b: u64) -> TraceEvent {
    TraceEvent { ts: 0, kind, a, b }
}

fn verify(lanes: Vec<Vec<TraceEvent>>) -> Result<wtf_check::CheckReport, wtf_check::CheckError> {
    let lanes = lanes.into_iter().enumerate().collect();
    HistoryChecker::new(lanes, 0).verify()
}

/// Classic write skew: both transactions read both boxes at the initial
/// version and each writes a different box. No serial order explains both
/// reads, so a checker that accepts this is broken.
#[test]
fn rejects_write_skew() {
    let t1 = vec![
        ev(EventKind::StmInstall, 0, 1),
        ev(EventKind::CommitRead, 0, 0),
        ev(EventKind::CommitRead, 1, 0),
        ev(EventKind::TxnCommit, 1, 0),
    ];
    let t2 = vec![
        ev(EventKind::StmInstall, 1, 2),
        ev(EventKind::CommitRead, 0, 0),
        ev(EventKind::CommitRead, 1, 0),
        ev(EventKind::TxnCommit, 2, 0),
    ];
    let err = verify(vec![t1, t2]).unwrap_err();
    assert!(
        err.0.contains("not serializable"),
        "write skew must be rejected with a cycle, got: {err}"
    );
    assert!(err.0.contains("cycle"), "error should name a cycle: {err}");
}

/// Lost update: both transactions read box 0 at version 0, both write it.
/// The second committer's read was stale — the runtime must have aborted
/// it, so a trace where both committed is non-serializable.
#[test]
fn rejects_lost_update() {
    let t1 = vec![
        ev(EventKind::StmInstall, 0, 1),
        ev(EventKind::CommitRead, 0, 0),
        ev(EventKind::TxnCommit, 1, 0),
    ];
    let t2 = vec![
        ev(EventKind::StmInstall, 0, 2),
        ev(EventKind::CommitRead, 0, 0),
        ev(EventKind::TxnCommit, 2, 0),
    ];
    let err = verify(vec![t1, t2]).unwrap_err();
    assert!(err.0.contains("not serializable"), "lost update: {err}");
}

/// The same schedule done right — the second transaction began after the
/// first committed and observed its write — is serializable.
#[test]
fn accepts_serial_update_chain() {
    let t1 = vec![
        ev(EventKind::StmInstall, 0, 1),
        ev(EventKind::CommitRead, 0, 0),
        ev(EventKind::TxnCommit, 1, 0),
    ];
    let t2 = vec![
        ev(EventKind::StmInstall, 0, 2),
        ev(EventKind::CommitRead, 0, 1),
        ev(EventKind::TxnCommit, 2, 1),
    ];
    let report = verify(vec![t1, t2]).unwrap();
    assert_eq!(report.committed_txns, 2);
    assert!(report.full_detail);
}

/// Read-only transactions serialize at their snapshot: one that saw
/// version 1 while version 2 existed is fine (multi-versioning), as long
/// as its snapshot says so.
#[test]
fn accepts_read_only_at_old_snapshot() {
    let writers = vec![
        ev(EventKind::StmInstall, 0, 1),
        ev(EventKind::TxnCommit, 1, 0),
        ev(EventKind::StmInstall, 0, 2),
        ev(EventKind::CommitRead, 0, 1),
        ev(EventKind::TxnCommit, 2, 1),
    ];
    let reader = vec![
        ev(EventKind::CommitRead, 0, 1),
        ev(EventKind::TxnCommit, 1, 1), // read-only: version == snapshot
    ];
    let report = verify(vec![writers, reader]).unwrap();
    assert_eq!(report.committed_txns, 3);
}

/// A read claiming to observe a version newer than the snapshot is a
/// protocol violation even if the history happens to serialize.
#[test]
fn rejects_read_above_snapshot() {
    let t1 = vec![
        ev(EventKind::StmInstall, 0, 1),
        ev(EventKind::TxnCommit, 1, 0),
    ];
    let t2 = vec![
        ev(EventKind::CommitRead, 0, 1),
        ev(EventKind::TxnCommit, 0, 0), // read-only at snapshot 0, read v1
    ];
    let err = verify(vec![t1, t2]).unwrap_err();
    assert!(err.0.contains("newer than"), "{err}");
}

/// A read of a version no install ever created means the trace (or the
/// runtime) is lying about history.
#[test]
fn rejects_phantom_version_read() {
    let t = vec![
        ev(EventKind::StmInstall, 0, 1),
        ev(EventKind::CommitRead, 0, 7),
        ev(EventKind::TxnCommit, 7, 7),
    ];
    let err = verify(vec![t]).unwrap_err();
    assert!(err.0.contains("no install"), "{err}");
}

/// Cross-top conflict aborts must be justified by an install newer than
/// the doomed top's snapshot.
#[test]
fn doom_justification() {
    // Justified: box 3 was written at version 1 > snapshot 0.
    let justified = vec![
        ev(EventKind::StmInstall, 3, 1),
        ev(EventKind::TopBegin, 5, 0),
        ev(EventKind::TopConflictAbort, 5, 3),
    ];
    let report = verify(vec![justified]).unwrap();
    assert_eq!(report.dooms_justified, 1);
    assert_eq!(report.anonymous_writers, 1);

    // Unjustified: the abort blames box 4, which nobody ever wrote.
    let unjustified = vec![
        ev(EventKind::StmInstall, 3, 1),
        ev(EventKind::TopBegin, 5, 0),
        ev(EventKind::TopConflictAbort, 5, 4),
    ];
    let err = verify(vec![unjustified]).unwrap_err();
    assert!(err.0.contains("unjustified"), "{err}");
}

/// Structural lies: double commits, commits without begins, aborted tops
/// that also commit.
#[test]
fn rejects_structural_violations() {
    let double = vec![
        ev(EventKind::TopBegin, 1, 0),
        ev(EventKind::TopCommit, 1, 0),
        ev(EventKind::TopCommit, 1, 0),
    ];
    assert!(verify(vec![double]).unwrap_err().0.contains("committed 2"));

    let orphan = vec![ev(EventKind::TopCommit, 1, 0)];
    assert!(verify(vec![orphan])
        .unwrap_err()
        .0
        .contains("without a recorded begin"));

    let zombie = vec![
        ev(EventKind::TopBegin, 1, 0),
        ev(EventKind::TopConflictAbort, 1, 2),
        ev(EventKind::TopCommit, 1, 0),
    ];
    assert!(verify(vec![zombie])
        .unwrap_err()
        .0
        .contains("both conflict-aborted and committed"));
}

/// Truncation fails loudly: a non-zero drop counter or a serialization
/// record with no commit marker.
#[test]
fn rejects_truncated_traces() {
    let err = HistoryChecker::new(Vec::new(), 3).verify().unwrap_err();
    assert!(err.0.contains("truncated"), "{err}");

    let dangling = vec![ev(EventKind::CommitRead, 0, 0)];
    let err = verify(vec![dangling]).unwrap_err();
    assert!(err.0.contains("no following commit marker"), "{err}");
}

/// A lifecycle-only trace (no installs or serialization records) still
/// gets the structural checks, and reports itself as such.
#[test]
fn lifecycle_trace_checks_structure_only() {
    let t = vec![
        ev(EventKind::TopBegin, 1, 0),
        ev(EventKind::TopCommit, 1, 0),
        ev(EventKind::TopBegin, 2, 0),
        ev(EventKind::TopConflictAbort, 2, 9),
    ];
    let report = verify(vec![t]).unwrap();
    assert!(!report.full_detail);
    assert_eq!(report.committed_tops, 1);
    assert_eq!(report.dooms_unverified, 1);
}

/// Live mvstm traffic (threads hammering `Stm::atomic`) always verifies.
#[test]
fn live_mvstm_trace_verifies() {
    use wtf_mvstm::{Stm, VBox};
    let tracer = Tracer::with_capacity(TraceLevel::Full, 1 << 14);
    let stm = Stm::with_tracer(tracer.clone());
    let boxes: Vec<VBox<u64>> = (0..4).map(|_| VBox::new(&stm, 0u64)).collect();
    let threads: Vec<_> = (0..4)
        .map(|t| {
            let stm = stm.clone();
            let boxes = boxes.clone();
            std::thread::spawn(move || {
                for i in 0..50 {
                    let a = boxes[(t + i) % 4].clone();
                    let b = boxes[(t + i + 1) % 4].clone();
                    stm.atomic_infallible(|tx| {
                        let v = tx.read(&a)?;
                        tx.write(&b, v + 1)
                    });
                }
            })
        })
        .collect();
    for th in threads {
        th.join().unwrap();
    }
    let report = HistoryChecker::from_tracer(&tracer).verify().unwrap();
    assert_eq!(report.committed_txns, 200);
    assert!(report.full_detail);
}

/// Live wtf-core traffic — futures, continuations, dooms and restarts —
/// always verifies, under both WO_GAC and SO.
#[test]
fn live_core_trace_verifies() {
    use wtf_core::{FutureTm, Semantics};
    for sem in [Semantics::WO_GAC, Semantics::SO] {
        let tracer = Tracer::with_capacity(TraceLevel::Full, 1 << 15);
        let tm = FutureTm::builder()
            .semantics(sem)
            .workers(3)
            .tracer(tracer.clone())
            .build();
        let a = tm.new_vbox(0u64);
        let b = tm.new_vbox(0u64);
        let threads: Vec<_> = (0..3)
            .map(|t| {
                let tm = tm.clone();
                let (mine, theirs) = if t % 2 == 0 {
                    (a.clone(), b.clone())
                } else {
                    (b.clone(), a.clone())
                };
                std::thread::spawn(move || {
                    for _ in 0..20 {
                        let m = mine.clone();
                        tm.atomic_infallible(|ctx| {
                            let m = m.clone();
                            let fut = ctx.submit(move |fc| {
                                let v = fc.read(&m)?;
                                fc.write(&m, v + 1)
                            })?;
                            let v = ctx.read(&theirs)?;
                            ctx.write(&theirs, v + 1)?;
                            ctx.evaluate(&fut)
                        });
                    }
                })
            })
            .collect();
        for th in threads {
            th.join().unwrap();
        }
        tm.shutdown();
        let report = HistoryChecker::from_tracer(&tracer).verify().unwrap();
        assert_eq!(report.committed_tops, 60, "{sem:?}");
        assert!(report.full_detail);
    }
}

/// The checker's verdict survives a Chrome-trace export/import round trip
/// (the `wtf-check` CLI path).
#[test]
fn chrome_export_round_trip_verifies() {
    use wtf_mvstm::{Stm, VBox};
    let tracer = Tracer::with_capacity(TraceLevel::Full, 1 << 12);
    let stm = Stm::with_tracer(tracer.clone());
    let b = VBox::new(&stm, 0u64);
    for _ in 0..10 {
        stm.atomic_infallible(|tx| {
            let v = tx.read(&b)?;
            tx.write(&b, v + 1)
        });
    }
    let json = wtf_trace::Json::parse(&tracer.chrome_trace_json()).unwrap();
    let report = HistoryChecker::from_chrome_json(&json)
        .unwrap()
        .verify()
        .unwrap();
    assert_eq!(report.committed_txns, 10);

    let live = HistoryChecker::from_tracer(&tracer).verify().unwrap();
    assert_eq!(report.committed_txns, live.committed_txns);
}
