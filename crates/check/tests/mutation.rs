//! Mutation test: flip the runtime's read-set validation off (via the
//! `test-hooks` feature) and prove the independent checker catches the
//! resulting non-serializable histories. This is the evidence that the
//! checker is not merely replaying the runtime's own bookkeeping — a
//! validation bug the runtime cannot see is exactly what it must flag.
//!
//! Lives in its own integration binary: the hook is process-global, and
//! sharing a test process would poison unrelated tests.

use wtf_check::explore::{explore_mvstm, StepOp};
use StepOp::{Commit, Read, Write};

#[test]
fn checker_catches_disabled_validation() {
    let write_skew = vec![
        vec![Read(0), Read(1), Write(0, 1), Commit],
        vec![Read(0), Read(1), Write(1, 1), Commit],
    ];

    // Baseline: with validation on, every schedule verifies.
    let report = explore_mvstm(&write_skew, 2).expect("intact runtime must verify");
    assert_eq!(report.schedules, 70);

    // Mutant: skip validation — interleaved schedules now commit both
    // sides of the skew, and the checker must reject the history.
    wtf_mvstm::test_hooks::set_skip_validation(true);
    let err = explore_mvstm(&write_skew, 2).expect_err("checker must catch the mutant");
    wtf_mvstm::test_hooks::set_skip_validation(false);
    assert!(
        err.0.contains("not serializable"),
        "expected a serializability violation, got: {err}"
    );

    // Back to normal: the world is consistent again.
    explore_mvstm(&write_skew, 2).expect("hook reset restores verification");
}
