//! Bounded schedule exploration: every interleaving of small conflicting
//! transaction programs — and every delay vector through the futures
//! path — must produce a checker-clean history.

use wtf_check::explore::{
    explore_backend, explore_core_delays, explore_core_delays_cm, explore_core_delays_on,
    explore_mvstm, schedule_count, StepOp,
};
use wtf_core::{BackendKind, CmKind, Semantics};
use StepOp::{Commit, Read, Write};

/// Two conflicting read-modify-write transactions on one box: all 20
/// interleavings; whichever validates second aborts, and every schedule's
/// history verifies.
#[test]
fn explores_two_thread_rmw_conflict() {
    let programs = vec![
        vec![Read(0), Write(0, 1), Commit],
        vec![Read(0), Write(0, 2), Commit],
    ];
    assert_eq!(schedule_count(&programs), 20);
    let report = explore_mvstm(&programs, 1).unwrap();
    assert_eq!(report.schedules, 20);
    assert_eq!(report.commits + report.aborts, 40);
    // Fully serial schedules (one txn strictly before the other) commit
    // both; truly interleaved ones abort the later validator.
    assert!(report.aborts > 0, "{report:?}");
    assert!(report.commits > report.aborts, "{report:?}");
}

/// The write-skew shape: disjoint write sets, crossed read sets. The
/// runtime's read-set validation must abort one of the two in every
/// interleaved schedule, and the checker must agree with every outcome.
#[test]
fn explores_write_skew_shape() {
    let programs = vec![
        vec![Read(0), Read(1), Write(0, 1), Commit],
        vec![Read(0), Read(1), Write(1, 1), Commit],
    ];
    assert_eq!(schedule_count(&programs), 70);
    let report = explore_mvstm(&programs, 2).unwrap();
    assert_eq!(report.schedules, 70);
    assert!(report.aborts > 0);
}

/// Three threads: two writers and a read-only observer across two boxes.
/// Read-only transactions must commit in every schedule (multi-version
/// snapshots), and all histories verify.
#[test]
fn explores_three_thread_mix() {
    let programs = vec![
        vec![Read(0), Write(1, 1), Commit],
        vec![Read(1), Write(0, 1), Commit],
        vec![Read(0), Read(1), Commit],
    ];
    assert_eq!(schedule_count(&programs), 1680);
    let report = explore_mvstm(&programs, 2).unwrap();
    assert_eq!(report.schedules, 1680);
    // The read-only observer never aborts: at most one abort per schedule.
    assert!(report.commits >= 2 * report.schedules, "{report:?}");
}

/// The backend-generic explorer over mvstm must reproduce the native
/// stepwise explorer's outcomes exactly: same schedules, same
/// commit/abort split on every program (multi-version reads never fail,
/// so the only difference is which API drives the steps).
#[test]
fn backend_explorer_matches_native_mvstm() {
    let programs = vec![
        vec![Read(0), Write(0, 1), Commit],
        vec![Read(0), Write(0, 2), Commit],
    ];
    let native = explore_mvstm(&programs, 1).unwrap();
    let generic = explore_backend(BackendKind::Mvstm, &programs, 1).unwrap();
    assert_eq!(generic.schedules, native.schedules);
    assert_eq!(generic.commits, native.commits);
    assert_eq!(generic.aborts, native.aborts);
}

/// TL2 sweep of the two-thread RMW conflict. Under a single-version
/// backend a thread can also die at a *read* (the box moved past its
/// snapshot), but every thread still ends in exactly one terminal event,
/// serial schedules still commit both, and every history verifies.
#[test]
fn tl2_explores_two_thread_rmw_conflict() {
    let programs = vec![
        vec![Read(0), Write(0, 1), Commit],
        vec![Read(0), Write(0, 2), Commit],
    ];
    let report = explore_backend(BackendKind::Tl2, &programs, 1).unwrap();
    assert_eq!(report.schedules, 20);
    assert_eq!(report.commits + report.aborts, 40);
    assert!(report.aborts > 0, "{report:?}");
    assert!(report.commits > report.aborts, "{report:?}");
}

/// TL2 write skew: crossed read sets with disjoint writes must still
/// abort one transaction in every interleaved schedule.
#[test]
fn tl2_explores_write_skew_shape() {
    let programs = vec![
        vec![Read(0), Read(1), Write(0, 1), Commit],
        vec![Read(0), Read(1), Write(1, 1), Commit],
    ];
    let report = explore_backend(BackendKind::Tl2, &programs, 2).unwrap();
    assert_eq!(report.schedules, 70);
    assert_eq!(report.commits + report.aborts, 140);
    assert!(report.aborts > 0);
}

/// TL2 three-thread mix. Unlike mvstm there is no multi-version
/// guarantee for the read-only observer — it may abort when a writer
/// overwrites a box it read under an older snapshot — so only the
/// terminal-event invariant and checker cleanliness are asserted.
#[test]
fn tl2_explores_three_thread_mix() {
    let programs = vec![
        vec![Read(0), Write(1, 1), Commit],
        vec![Read(1), Write(0, 1), Commit],
        vec![Read(0), Read(1), Commit],
    ];
    let report = explore_backend(BackendKind::Tl2, &programs, 2).unwrap();
    assert_eq!(report.schedules, 1680);
    assert_eq!(report.commits + report.aborts, 3 * 1680);
    // Serial schedules commit all three; most interleavings keep ≥2.
    assert!(report.commits > report.aborts, "{report:?}");
}

/// Delay-grid exploration of the core futures path under the virtual
/// clock: both the paper's most permissive (WO_GAC) and strictest (SO)
/// semantics stay checker-clean across racy commit orderings.
#[test]
fn explores_core_delay_grid() {
    for sem in [Semantics::WO_GAC, Semantics::SO] {
        let report = explore_core_delays(sem, &[0, 2_500]).unwrap();
        assert_eq!(report.schedules, 16, "{sem:?}");
        // Both clients commit in every run (doomed tops are replayed).
        assert_eq!(report.commits, 32, "{sem:?}");
    }
}

/// The same delay grid pinned to TL2: failed snapshot reads turn into
/// full restarts, but every run still commits both clients and stays
/// checker-clean.
#[test]
fn tl2_explores_core_delay_grid() {
    for sem in [Semantics::WO_GAC, Semantics::SO] {
        let report = explore_core_delays_on(BackendKind::Tl2, sem, &[0, 2_500]).unwrap();
        assert_eq!(report.schedules, 16, "{sem:?}");
        assert_eq!(report.commits, 32, "{sem:?}");
    }
}

/// The contention manager as a third explorer dimension: the delay grid
/// swept under `immediate`, `backoff` and `karma` on both substrates.
/// Waiting policies inject their own clock advances, shifting every
/// cell's schedule — yet every cell must commit both clients (the CM
/// may reorder, never starve) and pass the checker, which demands an
/// acyclic §3.4 serialization witness for each run.
#[test]
fn explores_core_delay_grid_across_cms() {
    for backend in [BackendKind::Mvstm, BackendKind::Tl2] {
        for cm in [CmKind::Immediate, CmKind::Backoff, CmKind::Karma] {
            let report =
                explore_core_delays_cm(backend, Semantics::WO_GAC, cm, &[0, 2_500]).unwrap();
            assert_eq!(report.schedules, 16, "{backend:?}/{cm:?}");
            assert_eq!(report.commits, 32, "{backend:?}/{cm:?}");
        }
    }
}

/// CM-shifted schedules stay deterministic: the same (backend, cm,
/// grid) cell swept twice yields the identical aggregate report,
/// witness choices included.
#[test]
fn cm_explorer_sweeps_are_reproducible() {
    for cm in [CmKind::Backoff, CmKind::Karma] {
        let a = explore_core_delays_cm(BackendKind::Mvstm, Semantics::SO, cm, &[0, 800]).unwrap();
        let b = explore_core_delays_cm(BackendKind::Mvstm, Semantics::SO, cm, &[0, 800]).unwrap();
        assert_eq!(a, b, "{cm:?}");
    }
}

/// Wider CI configuration (runs in the scheduled deep-verify job):
/// `cargo test -p wtf-check --release -- --ignored`.
#[test]
#[ignore = "CI deep-verify: thousands of schedules"]
fn explores_deep_configurations() {
    // Three fully conflicting RMW writers on one box: 1680 schedules.
    let programs = vec![
        vec![Read(0), Write(0, 1), Commit],
        vec![Read(0), Write(0, 2), Commit],
        vec![Read(0), Write(0, 3), Commit],
    ];
    let report = explore_mvstm(&programs, 1).unwrap();
    assert_eq!(report.schedules, 1680);

    // Write skew plus an observer: 11!/(4!4!3!) = 11550 schedules.
    let programs = vec![
        vec![Read(0), Read(1), Write(0, 1), Commit],
        vec![Read(0), Read(1), Write(1, 1), Commit],
        vec![Read(0), Read(1), Commit],
    ];
    assert_eq!(schedule_count(&programs), 11_550);
    let report = explore_mvstm(&programs, 2).unwrap();
    assert_eq!(report.schedules, 11_550);

    // Finer delay grid through the futures path.
    for sem in [Semantics::WO_GAC, Semantics::WO_LAC, Semantics::SO] {
        let report = explore_core_delays(sem, &[0, 800, 2_500]).unwrap();
        assert_eq!(report.schedules, 81, "{sem:?}");
    }
}

/// Wider TL2 CI configuration (scheduled deep-verify job): the full
/// schedule spaces above swept through the single-version stepwise path,
/// plus the finer delay grid pinned to TL2.
#[test]
#[ignore = "CI deep-verify: thousands of schedules"]
fn tl2_explores_deep_configurations() {
    let programs = vec![
        vec![Read(0), Write(0, 1), Commit],
        vec![Read(0), Write(0, 2), Commit],
        vec![Read(0), Write(0, 3), Commit],
    ];
    let report = explore_backend(BackendKind::Tl2, &programs, 1).unwrap();
    assert_eq!(report.schedules, 1680);
    assert_eq!(report.commits + report.aborts, 3 * 1680);

    let programs = vec![
        vec![Read(0), Read(1), Write(0, 1), Commit],
        vec![Read(0), Read(1), Write(1, 1), Commit],
        vec![Read(0), Read(1), Commit],
    ];
    let report = explore_backend(BackendKind::Tl2, &programs, 2).unwrap();
    assert_eq!(report.schedules, 11_550);

    for sem in [Semantics::WO_GAC, Semantics::WO_LAC, Semantics::SO] {
        let report = explore_core_delays_on(BackendKind::Tl2, sem, &[0, 800, 2_500]).unwrap();
        assert_eq!(report.schedules, 81, "{sem:?}");
    }
}

/// Deep CM sweep (scheduled deep-verify job): the finer delay grid
/// crossed with every waiting policy on both substrates.
#[test]
#[ignore = "CI deep-verify: thousands of schedules"]
fn cm_explores_deep_configurations() {
    for backend in [BackendKind::Mvstm, BackendKind::Tl2] {
        for cm in [CmKind::Immediate, CmKind::Backoff, CmKind::Karma] {
            for sem in [Semantics::WO_GAC, Semantics::SO] {
                let report = explore_core_delays_cm(backend, sem, cm, &[0, 800, 2_500]).unwrap();
                assert_eq!(report.schedules, 81, "{backend:?}/{cm:?}/{sem:?}");
                assert_eq!(report.commits, 162, "{backend:?}/{cm:?}/{sem:?}");
            }
        }
    }
}
