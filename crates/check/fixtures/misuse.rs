//! Seeded TM-misuse fixture for `wtf-lint`. NOT compiled — this file
//! exists so CI (and `lint::tests`) can assert the linter fails on every
//! rule it claims to detect. `lint_tree` skips `fixtures/` directories,
//! so these findings never count against the real workspace.

use wtf_mvstm::raw::Snapshot;
use wtf_mvstm::{raw, Stm, VBox};

/// raw-api: the low-level layer outside the runtime crates.
fn sneaky_read(stm: &Stm, b: &VBox<u64>) -> u64 {
    let snap = raw::acquire_snapshot(stm);
    let body = raw::body_of(b);
    let (_, v) = raw::read_at(&body, snap.version());
    *v.downcast_ref::<u64>().unwrap()
}

/// snapshot-retained: pins the GC horizon for the cache's lifetime.
struct SnapshotCache {
    snap: Snapshot,
}

/// thread-escape: transactional context moved into a plain OS thread.
fn escape(ctx: &mut wtf_core::TxCtx, b: VBox<u64>) {
    std::thread::spawn(move || {
        let _ = ctx.read(&b);
    });
}

/// unchecked-atomic: aborts/conflicts swallowed by unwrap.
fn transfer(stm: &Stm, a: &VBox<i64>, b: &VBox<i64>) {
    stm.atomic(|tx| {
        let x = tx.read(a)?;
        tx.write(a, x - 1)?;
        let y = tx.read(b)?;
        tx.write(b, y + 1)
    })
    .unwrap();
}
