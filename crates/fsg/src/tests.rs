//! Acceptance-matrix tests: the paper's example histories against the
//! four semantics.

use crate::paper;
use crate::{build_fsg, Semantics, VertexKind};

fn accepts(h: &crate::History, sem: Semantics) -> bool {
    build_fsg(h, sem).acceptable()
}

#[test]
fn fig1a_submission_run_accepted_by_both_orderings() {
    let (h, _, _) = paper::fig1a_serialized_at_submission();
    assert!(accepts(&h, Semantics::SO), "SO accepts submission order");
    assert!(
        accepts(&h, Semantics::WO_GAC),
        "WO accepts submission order"
    );
    assert!(accepts(&h, Semantics::WO_LAC));
}

#[test]
fn fig1a_evaluation_run_rejected_by_so_accepted_by_wo() {
    let (h, _, _) = paper::fig1a_serialized_at_evaluation();
    assert!(
        !accepts(&h, Semantics::SO),
        "SO forbids serialization upon evaluation"
    );
    assert!(accepts(&h, Semantics::WO_GAC));
    assert!(accepts(&h, Semantics::WO_LAC));
}

#[test]
fn fig1a_torn_run_rejected_by_all() {
    let (h, _, _) = paper::fig1a_torn();
    assert!(!accepts(&h, Semantics::SO));
    assert!(!accepts(&h, Semantics::WO_GAC));
    assert!(!accepts(&h, Semantics::WO_LAC));
}

#[test]
fn fig2_continuation_aborts_with_so_but_not_wo() {
    // The paper's Figure 2 caption verbatim: "This continuation aborts
    // with SO, but not with WO."
    let (h, _, _) = paper::fig2();
    assert!(!accepts(&h, Semantics::SO));
    assert!(accepts(&h, Semantics::WO_GAC));
    assert!(accepts(&h, Semantics::WO_LAC));
}

#[test]
fn fig1b_escaping_within_top_level() {
    let (h, _, _, _) = paper::fig1b_consistent();
    assert!(accepts(&h, Semantics::WO_GAC));
    assert!(accepts(&h, Semantics::WO_LAC));
    let (torn, _, _, _) = paper::fig1b_torn();
    assert!(
        !accepts(&torn, Semantics::WO_GAC),
        "TF2 must observe both continuation writes or none"
    );
    assert!(!accepts(&torn, Semantics::WO_LAC));
}

#[test]
fn fig1c_escaping_across_top_levels_needs_wo_gac() {
    let (h, _, _, _) = paper::fig1c();
    assert!(
        accepts(&h, Semantics::WO_GAC),
        "GAC admits cross-transaction continuations"
    );
    assert!(
        !accepts(&h, Semantics::SO),
        "SO would require the continuation to see w(y)"
    );
}

#[test]
fn fig4_beyond_parallel_nesting() {
    let (h, _, _, _) = paper::fig4_consistent();
    assert!(accepts(&h, Semantics::WO_GAC));
    let (t1, _, _, _) = paper::fig4_torn_tf1();
    assert!(!accepts(&t1, Semantics::WO_GAC), "TF1 torn continuation");
    assert!(!accepts(&t1, Semantics::SO));
    let (t2, _, _, _) = paper::fig4_torn_tf2();
    assert!(
        !accepts(&t2, Semantics::WO_GAC),
        "TF2 serialized between w(y) and w(z)"
    );
    assert!(!accepts(&t2, Semantics::SO));
}

#[test]
fn cross_top_level_write_skew_rejected() {
    let h = paper::cross_top_nonserializable();
    assert!(!accepts(&h, Semantics::SO));
    assert!(!accepts(&h, Semantics::WO_GAC));
    assert!(!accepts(&h, Semantics::WO_LAC));
}

#[test]
fn plain_serial_tops_accepted() {
    let mut h = crate::History::new();
    let t1 = h.begin_top();
    h.read(t1, paper::X);
    h.write(t1, paper::X);
    h.commit(t1);
    let t2 = h.begin_top();
    h.read_observing(t2, paper::X, t1);
    h.write(t2, paper::Y);
    h.commit(t2);
    assert!(accepts(&h, Semantics::SO));
    assert!(accepts(&h, Semantics::WO_GAC));
}

#[test]
fn vertex_structure_of_fig1a_matches_fig5a() {
    // Fig. 5a: V_begin(T) = {w(x), submit}, V_C-begin(TF) = {r,w},
    // V_eval = {eval, r, w(y), commit}, V_begin(TF) = {r, w, commit}.
    let (h, t, f) = paper::fig1a_serialized_at_submission();
    let fsg = build_fsg(&h, Semantics::WO_GAC);
    let t_vertices: Vec<_> = fsg.vertices.iter().filter(|v| v.issuer == t).collect();
    assert_eq!(t_vertices.len(), 3, "T splits into begin/C-begin/eval");
    assert!(matches!(t_vertices[0].kind, VertexKind::Begin(_)));
    assert_eq!(t_vertices[0].ops.len(), 2); // w(x), submit
    assert!(matches!(t_vertices[1].kind, VertexKind::CBegin(g) if g == f));
    assert_eq!(t_vertices[1].ops.len(), 2); // r(x), w(x)
    assert!(matches!(t_vertices[2].kind, VertexKind::Eval(g) if g == f));
    assert_eq!(t_vertices[2].ops.len(), 4); // eval, r, w(y), commit
    let f_vertices: Vec<_> = fsg.vertices.iter().filter(|v| v.issuer == f).collect();
    assert_eq!(f_vertices.len(), 1);
    assert_eq!(f_vertices[0].ops.len(), 3); // r, w, commit
}

#[test]
fn so_adds_end_to_cbegin_edge() {
    let (h, _, f) = paper::fig1a_serialized_at_submission();
    let so = build_fsg(&h, Semantics::SO);
    let end = so.v_end(f).unwrap();
    let cbegin = so.v_cbegin(f).unwrap();
    assert!(
        so.polygraph.edges.contains(&(end, cbegin)),
        "SO pins the future before its continuation"
    );
}

#[test]
fn wo_adds_bipath_per_evaluated_future() {
    let (h, _, f) = paper::fig1a_serialized_at_submission();
    let wo = build_fsg(&h, Semantics::WO_GAC);
    let end = wo.v_end(f).unwrap();
    let cbegin = wo.v_cbegin(f).unwrap();
    let begin = wo.v_begin(f).unwrap();
    // Among the polygraph's bipaths (the semantics one plus any conflict
    // triangles) exactly one is the future's serialization choice:
    // (V_C-end -> V_begin(F)) or (V_end(F) -> V_C-begin(F)).
    let semantic: Vec<_> = wo
        .polygraph
        .bipaths
        .iter()
        .filter(|((_, b1), (a2, b2))| *b1 == begin && (*a2, *b2) == (end, cbegin))
        .collect();
    assert_eq!(semantic.len(), 1);
    // The SO graph must not carry that bipath (it uses the fixed edge).
    let so = build_fsg(&h, Semantics::SO);
    assert!(!so
        .polygraph
        .bipaths
        .iter()
        .any(|((_, b1), (a2, b2))| *b1 == begin && (*a2, *b2) == (end, cbegin)));
}

#[test]
fn unevaluated_committed_future_must_serialize_at_submission() {
    // A future that commits but is never evaluated has no evaluation
    // serialization point: under WO it behaves like SO.
    let mut h = crate::History::new();
    let t = h.begin_top();
    let f = h.submit(t);
    h.read(f, paper::X);
    h.write(f, paper::Z);
    h.commit(f);
    h.read(t, paper::Z); // misses the future's write: invalid at submission
    h.commit(t);
    // Under GAC the unevaluated future is its own scope and the top-level
    // read that missed its write is a plain cross-unit conflict the
    // submission-point edge contradicts.
    assert!(!accepts(&h, Semantics::WO_GAC));
    // LAC inserts an implicit evaluation before T's commit, giving the
    // future an evaluation serialization point: accepted.
    assert!(accepts(&h, Semantics::WO_LAC));
    assert!(!accepts(&h, Semantics::SO));
}

#[test]
fn lac_implicit_evaluation_insertion() {
    let mut h = crate::History::new();
    let t = h.begin_top();
    let f = h.submit(t);
    h.write(f, paper::X);
    h.commit(f);
    h.commit(t);
    let extended = h.with_implicit_lac_evaluations();
    let evals: Vec<_> = extended
        .events
        .iter()
        .filter(|e| matches!(e.op, crate::Op::Evaluate(_, true)))
        .collect();
    assert_eq!(evals.len(), 1, "one implicit evaluation inserted");
    assert_eq!(evals[0].issuer, t);
    // Inserted immediately before T's commit.
    let pos_eval = extended
        .events
        .iter()
        .position(|e| matches!(e.op, crate::Op::Evaluate(_, true)))
        .unwrap();
    let pos_commit = extended
        .events
        .iter()
        .position(|e| e.issuer == t && e.op == crate::Op::Commit)
        .unwrap();
    assert_eq!(pos_eval + 1, pos_commit);
}

#[test]
fn dot_export_renders() {
    let (h, _, _) = paper::fig2();
    let fsg = build_fsg(&h, Semantics::WO_GAC);
    let dot = fsg.to_dot();
    assert!(dot.starts_with("digraph fsg {"));
    assert!(dot.contains("V_begin"));
    assert!(dot.contains("style=dashed"));
}

#[test]
fn escapes_classification() {
    let (h, _, f, _) = paper::fig1c();
    assert!(h.escapes(f), "fig1c's future escapes its top-level");
    let (h2, _, f2) = paper::fig1a_serialized_at_submission();
    assert!(!h2.escapes(f2));
    // Fig 1b: TF2 is evaluated by T0, which IS its home top-level (via the
    // spawning chain through TF1): not escaping in the top-level sense.
    let (h3, _, _, tf2) = paper::fig1b_consistent();
    assert!(!h3.escapes(tf2));
}

mod proptests {
    use super::*;
    use crate::{History, Var};
    use proptest::prelude::*;

    // Random histories of serially-executed top-level transactions (each
    // observes the previous committed writer) must always be accepted.
    proptest! {
        #[test]
        fn serial_histories_always_accepted(ops in proptest::collection::vec((0u32..4, 0u32..3), 1..30)) {
            let mut h = History::new();
            let mut last_writer: [Option<crate::TxId>; 4] = [None; 4];
            for chunk in ops.chunks(3) {
                let t = h.begin_top();
                for &(var, kind) in chunk {
                    let v = Var(var);
                    match kind {
                        0 => match last_writer[var as usize] {
                            Some(w) => h.read_observing(t, v, w),
                            None => h.read(t, v),
                        },
                        _ => {
                            h.write(t, v);
                            last_writer[var as usize] = Some(t);
                        }
                    }
                }
                h.commit(t);
            }
            prop_assert!(accepts(&h, Semantics::SO));
            prop_assert!(accepts(&h, Semantics::WO_GAC));
            prop_assert!(accepts(&h, Semantics::WO_LAC));
        }

        /// SO acceptance implies WO acceptance (WO is strictly more
        /// permissive: its bipath includes the SO edge as one branch) for
        /// non-escaping single-top histories.
        #[test]
        fn so_accept_implies_wo_accept(seed in 0u64..500) {
            let h = random_single_top_history(seed);
            if accepts(&h, Semantics::SO) {
                prop_assert!(accepts(&h, Semantics::WO_GAC));
                prop_assert!(accepts(&h, Semantics::WO_LAC));
            }
        }
    }

    /// Generates a single-top-level history with a couple of futures and
    /// randomized observations (not necessarily consistent ones).
    fn random_single_top_history(seed: u64) -> History {
        let mut s = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let mut h = History::new();
        let t = h.begin_top();
        let mut subs = vec![t];
        let mut writers: Vec<crate::TxId> = Vec::new();
        let nops = 4 + (next() % 8) as usize;
        let mut futures = Vec::new();
        for _ in 0..nops {
            let issuer = subs[(next() % subs.len() as u64) as usize];
            match next() % 4 {
                0 => {
                    let f = h.submit(issuer);
                    subs.push(f);
                    futures.push(f);
                }
                1 => {
                    let var = Var((next() % 3) as u32);
                    h.write(issuer, var);
                    writers.push(issuer);
                }
                _ => {
                    let var = Var((next() % 3) as u32);
                    if !writers.is_empty() && next() % 2 == 0 {
                        let w = writers[(next() % writers.len() as u64) as usize];
                        if w != issuer {
                            h.read_observing(issuer, var, w);
                        } else {
                            h.read(issuer, var);
                        }
                    } else {
                        h.read(issuer, var);
                    }
                }
            }
        }
        for &f in &futures {
            h.commit(f);
        }
        for &f in &futures {
            h.evaluate(t, f);
        }
        h.commit(t);
        h
    }
}
