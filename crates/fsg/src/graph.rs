//! Polygraphs and acyclicity (Papadimitriou 1979).
//!
//! A polygraph is a directed graph plus a set of *bipaths*: pairs of edges
//! of which exactly one must hold. A polygraph with `n` bipaths compactly
//! encodes `2^n` directed graphs; it is **acyclic** iff at least one of
//! those graphs is a DAG.

/// Finds a concrete cycle in the directed graph over `nodes` vertices
/// with the given `edges`, as a closed edge list (each edge's head is
/// the next edge's tail, and the last edge closes back to the first),
/// or `None` if the edges form a DAG. Self-loops count as one-edge
/// cycles.
///
/// This is the single cycle finder shared by [`Polygraph::find_cycle`]
/// (the doom explainer behind the DOT exporters) and `wtf-check`'s
/// trace-driven history checker.
pub fn find_cycle_in(nodes: usize, edges: &[(usize, usize)]) -> Option<Vec<(usize, usize)>> {
    let mut adj = vec![Vec::new(); nodes];
    for &(a, b) in edges {
        if a == b {
            return Some(vec![(a, a)]);
        }
        adj[a].push(b);
    }
    // 0 = unvisited, 1 = on the current DFS path, 2 = done.
    let mut color = vec![0u8; nodes];
    let mut path = Vec::new();
    for start in 0..nodes {
        if color[start] == 0 {
            if let Some(c) = dfs_cycle(start, &adj, &mut color, &mut path) {
                return Some(c);
            }
        }
    }
    None
}

fn dfs_cycle(
    n: usize,
    adj: &[Vec<usize>],
    color: &mut [u8],
    path: &mut Vec<usize>,
) -> Option<Vec<(usize, usize)>> {
    color[n] = 1;
    path.push(n);
    for &m in &adj[n] {
        if color[m] == 1 {
            // Back edge: the cycle is the path suffix from m, closed by
            // the edge (n, m).
            let pos = path.iter().position(|&x| x == m).expect("m is on path");
            let mut cyc: Vec<(usize, usize)> =
                path[pos..].windows(2).map(|w| (w[0], w[1])).collect();
            cyc.push((n, m));
            return Some(cyc);
        }
        if color[m] == 0 {
            if let Some(c) = dfs_cycle(m, adj, color, path) {
                return Some(c);
            }
        }
    }
    path.pop();
    color[n] = 2;
    None
}

/// A directed graph with bipath (either/or edge) constraints.
#[derive(Debug, Clone, Default)]
pub struct Polygraph {
    nodes: usize,
    /// Fixed edges `(from, to)`.
    pub edges: Vec<(usize, usize)>,
    /// Bipaths: `((a1, b1), (a2, b2))` — at least one of the two edges
    /// must be included.
    pub bipaths: Vec<((usize, usize), (usize, usize))>,
}

impl Polygraph {
    pub fn new(nodes: usize) -> Polygraph {
        Polygraph {
            nodes,
            edges: Vec::new(),
            bipaths: Vec::new(),
        }
    }

    pub fn node_count(&self) -> usize {
        self.nodes
    }

    /// Adds a fixed edge. Self-loops are rejected eagerly (they can arise
    /// from degenerate constructions and always make the graph cyclic).
    pub fn add_edge(&mut self, from: usize, to: usize) {
        assert!(from < self.nodes && to < self.nodes);
        self.edges.push((from, to));
    }

    pub fn add_bipath(&mut self, first: (usize, usize), second: (usize, usize)) {
        assert!(first.0 < self.nodes && first.1 < self.nodes);
        assert!(second.0 < self.nodes && second.1 < self.nodes);
        self.bipaths.push((first, second));
    }

    /// Kahn's-algorithm acyclicity check on `base ∪ extra`.
    fn is_dag(&self, extra: &[(usize, usize)]) -> bool {
        let mut indeg = vec![0usize; self.nodes];
        let mut adj = vec![Vec::new(); self.nodes];
        for &(a, b) in self.edges.iter().chain(extra.iter()) {
            if a == b {
                return false;
            }
            adj[a].push(b);
            indeg[b] += 1;
        }
        let mut stack: Vec<usize> = (0..self.nodes).filter(|&n| indeg[n] == 0).collect();
        let mut seen = 0;
        while let Some(n) = stack.pop() {
            seen += 1;
            for &m in &adj[n] {
                indeg[m] -= 1;
                if indeg[m] == 0 {
                    stack.push(m);
                }
            }
        }
        seen == self.nodes
    }

    /// True iff some choice of one edge per bipath yields a DAG.
    ///
    /// Backtracking search over bipath choices. Histories in this
    /// repository carry at most a few dozen futures, far below the point
    /// where the exponential worst case (inherent: deciding polygraph
    /// acyclicity is NP-complete) would bite.
    pub fn acyclic(&self) -> bool {
        if !self.is_dag(&[]) {
            // The fixed edges alone are cyclic; no choice can help.
            return false;
        }
        let mut chosen = Vec::with_capacity(self.bipaths.len());
        self.solve(0, &mut chosen)
    }

    fn solve(&self, i: usize, chosen: &mut Vec<(usize, usize)>) -> bool {
        if i == self.bipaths.len() {
            return self.is_dag(chosen);
        }
        let (first, second) = self.bipaths[i];
        for edge in [first, second] {
            chosen.push(edge);
            // Prune: if the partial assignment is already cyclic, no
            // extension can be acyclic.
            if self.is_dag(chosen) && self.solve(i + 1, chosen) {
                chosen.pop();
                return true;
            }
            chosen.pop();
        }
        false
    }

    /// Returns a concrete cycle among the **fixed** edges, as a closed
    /// edge list, or `None` if the fixed edges form a DAG. Delegates to
    /// [`find_cycle_in`], the cycle finder shared with `wtf-check`.
    ///
    /// This is the doom explainer: when [`Polygraph::acyclic_witness`]
    /// returns `None` because the fixed edges alone are cyclic, this
    /// names the offending edges.
    pub fn find_cycle(&self) -> Option<Vec<(usize, usize)>> {
        find_cycle_in(self.nodes, &self.edges)
    }

    /// Like [`Polygraph::acyclic`] but also returns the witnessing edge
    /// choice (one entry per bipath), if any.
    pub fn acyclic_witness(&self) -> Option<Vec<(usize, usize)>> {
        if !self.is_dag(&[]) {
            return None;
        }
        let mut chosen = Vec::with_capacity(self.bipaths.len());
        if self.solve(0, &mut chosen) {
            // Re-run to actually capture the assignment.
            let mut out = Vec::new();
            if self.solve_capture(0, &mut out) {
                return Some(out);
            }
        }
        None
    }

    fn solve_capture(&self, i: usize, chosen: &mut Vec<(usize, usize)>) -> bool {
        if i == self.bipaths.len() {
            return self.is_dag(chosen);
        }
        let (first, second) = self.bipaths[i];
        for edge in [first, second] {
            chosen.push(edge);
            if self.is_dag(chosen) && self.solve_capture(i + 1, chosen) {
                return true;
            }
            chosen.pop();
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph_acyclic() {
        assert!(Polygraph::new(0).acyclic());
        assert!(Polygraph::new(5).acyclic());
    }

    #[test]
    fn simple_cycle_rejected() {
        let mut g = Polygraph::new(2);
        g.add_edge(0, 1);
        g.add_edge(1, 0);
        assert!(!g.acyclic());
    }

    #[test]
    fn bipath_allows_escape() {
        // 0 -> 1 fixed; bipath: (1 -> 0) or (0 -> 2). Choosing the second
        // edge keeps the graph acyclic.
        let mut g = Polygraph::new(3);
        g.add_edge(0, 1);
        g.add_bipath((1, 0), (0, 2));
        assert!(g.acyclic());
        let w = g.acyclic_witness().unwrap();
        assert_eq!(w, vec![(0, 2)]);
    }

    #[test]
    fn bipath_with_no_escape() {
        // 0 -> 1 -> 2 fixed; bipath (1,0) or (2,0): both close a cycle.
        let mut g = Polygraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_bipath((1, 0), (2, 0));
        assert!(!g.acyclic());
        assert!(g.acyclic_witness().is_none());
    }

    #[test]
    fn interacting_bipaths() {
        // Two bipaths whose first choices conflict with each other but
        // whose mixed assignment works.
        let mut g = Polygraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(2, 3);
        g.add_bipath((1, 2), (3, 0)); // choose 1->2 or 3->0
        g.add_bipath((3, 0), (1, 2)); // same pair, swapped preference
        assert!(g.acyclic());
    }

    #[test]
    fn self_loop_edge_rejected() {
        let mut g = Polygraph::new(2);
        g.add_edge(1, 1);
        assert!(!g.acyclic());
    }

    #[test]
    fn brute_force_agreement_small_random() {
        // Cross-check the backtracking solver against exhaustive
        // enumeration on random small polygraphs.
        let mut seed = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..200 {
            let n = 4 + (next() % 3) as usize;
            let mut g = Polygraph::new(n);
            for _ in 0..(next() % 6) {
                g.add_edge((next() % n as u64) as usize, (next() % n as u64) as usize);
            }
            let nb = (next() % 4) as usize;
            for _ in 0..nb {
                g.add_bipath(
                    ((next() % n as u64) as usize, (next() % n as u64) as usize),
                    ((next() % n as u64) as usize, (next() % n as u64) as usize),
                );
            }
            // Exhaustive check.
            let mut any = false;
            for mask in 0..(1u32 << g.bipaths.len()) {
                let extra: Vec<_> = g
                    .bipaths
                    .iter()
                    .enumerate()
                    .map(|(i, &(a, b))| if mask & (1 << i) != 0 { a } else { b })
                    .collect();
                if g.is_dag(&extra) {
                    any = true;
                    break;
                }
            }
            assert_eq!(g.acyclic(), any);
        }
    }
}
