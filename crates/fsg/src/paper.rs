//! The paper's example executions (Figures 1a–1d, 2 and 4), encoded as
//! [`History`] values with explicit read observations.
//!
//! Each constructor returns `(history, ids...)` so tests can interrogate
//! specific vertices. Where the paper's figure admits several concrete
//! runs (a figure depicts ops, not observations), we provide one
//! constructor per interesting run.

use crate::history::{History, TxId, Var};

pub const X: Var = Var(0);
pub const Y: Var = Var(1);
pub const Z: Var = Var(2);
pub const K: Var = Var(3);

/// Fig. 1a, run where `TF` serialized **at submission**: the continuation
/// observed the future's increment of `x`.
///
/// `T: w(x); submit TF; [TF: r(x)=T, w(x)]; C: r(x)=TF, w(x); eval TF;
/// r(x)=C, w(y); commit`
pub fn fig1a_serialized_at_submission() -> (History, TxId, TxId) {
    let mut h = History::new();
    let t = h.begin_top();
    h.write(t, X);
    let f = h.submit(t);
    h.read_observing(f, X, t);
    h.write(f, X);
    h.commit(f);
    h.read_observing(t, X, f); // continuation saw the future's write
    h.write(t, X);
    h.evaluate(t, f);
    h.read_observing(t, X, t); // continuation's own write is the newest
    h.write(t, Y);
    h.commit(t);
    (h, t, f)
}

/// Fig. 1a, run where `TF` serialized **upon evaluation**: the future
/// observed the continuation's increment.
pub fn fig1a_serialized_at_evaluation() -> (History, TxId, TxId) {
    let mut h = History::new();
    let t = h.begin_top();
    h.write(t, X);
    let f = h.submit(t);
    h.read_observing(t, X, t); // continuation reads its own top's write
    h.write(t, X);
    h.read_observing(f, X, t); // future saw the continuation's write
    h.commit(f);
    h.evaluate(t, f);
    h.read_observing(t, X, f);
    h.write(t, Y);
    h.commit(t);
    (h, t, f)
}

/// Fig. 1a, an **invalid** run: the future and the continuation each
/// missed the other's write to `x` (neither serialization order explains
/// both reads).
pub fn fig1a_torn() -> (History, TxId, TxId) {
    let mut h = History::new();
    let t = h.begin_top();
    h.write(t, X);
    let f = h.submit(t);
    h.read_observing(f, X, t); // future missed the continuation
    h.write(f, X);
    h.commit(f);
    h.read_observing(t, X, t); // continuation missed the future
    h.write(t, X);
    h.evaluate(t, f);
    h.write(t, Y);
    h.commit(t);
    (h, t, f)
}

/// Fig. 2: the continuation misses the future's write — aborts with SO,
/// commits with WO (serialization upon evaluation).
///
/// `TF: r(x)=init, w(z); C: r(z)=init, w(y); eval; commit`
pub fn fig2() -> (History, TxId, TxId) {
    let mut h = History::new();
    let t = h.begin_top();
    let f = h.submit(t);
    h.read(f, X);
    h.write(f, Z);
    h.commit(f);
    h.read(t, Z); // misses TF's write to z
    h.write(t, Y);
    h.evaluate(t, f);
    h.commit(t);
    (h, t, f)
}

/// Fig. 1b: escaping future evaluated within the same top-level
/// transaction. `TF2` (spawned by `TF1`) must observe the writes of its
/// cross-sub-transaction continuation — `w(x)` by `TF1` and `w(y)` by
/// `T0` — atomically. This is the consistent run (sees both).
pub fn fig1b_consistent() -> (History, TxId, TxId, TxId) {
    let mut h = History::new();
    let t0 = h.begin_top();
    let f1 = h.submit(t0);
    let f2 = h.submit(f1); // TF1 submits TF2, then writes x
    h.write(f1, X);
    h.commit(f1);
    h.write(t0, Y);
    h.read_observing(f2, X, f1);
    h.read_observing(f2, Y, t0);
    h.commit(f2);
    h.evaluate(t0, f2);
    h.commit(t0);
    (h, t0, f1, f2)
}

/// Fig. 1b, torn run: `TF2` saw `TF1`'s `w(x)` but missed `T0`'s `w(y)` —
/// its continuation was not atomic. Must be rejected.
pub fn fig1b_torn() -> (History, TxId, TxId, TxId) {
    let mut h = History::new();
    let t0 = h.begin_top();
    let f1 = h.submit(t0);
    let f2 = h.submit(f1);
    h.write(f1, X);
    h.commit(f1);
    h.write(t0, Y);
    h.read_observing(f2, X, f1);
    h.read(f2, Y); // missed w(y): torn continuation
    h.commit(f2);
    h.evaluate(t0, f2);
    h.commit(t0);
    (h, t0, f1, f2)
}

/// Fig. 1c: escaping future across top-level transactions (GAC pattern).
///
/// `T1: r(x)=init, w(z), submit TF; C: w(x:=f), r(y)=init, commit T1;
/// TF: r(z)=T1, w(y), commit; T2: r(x)=T1, eval TF, w(z), commit.`
///
/// `TF` misses `T2`'s `w(z)` (it ran before it) and `T1`'s continuation
/// misses `TF`'s `w(y)`, so `TF` can only serialize upon its evaluation
/// inside `T2` — legal under WO+GAC only.
pub fn fig1c() -> (History, TxId, TxId, TxId) {
    let mut h = History::new();
    let t1 = h.begin_top();
    h.read(t1, X);
    h.write(t1, Z);
    let f = h.submit(t1);
    h.read_observing(f, Z, t1);
    h.write(t1, X); // publish the future's reference
    h.read(t1, Y); // misses TF's w(y)
    h.commit(t1);
    h.write(f, Y);
    h.commit(f);
    let t2 = h.begin_top();
    h.read_observing(t2, X, t1); // picks up the reference
    h.evaluate(t2, f);
    h.write(t2, Z);
    h.commit(t2);
    (h, t1, f, t2)
}

/// Fig. 4: a computation beyond fork-join parallel nesting — two futures
/// with partially overlapping continuations. Consistent run: `TF1`
/// observed neither `w(x)` nor `w(y)` (serializes at submission), `TF2`
/// observed both `w(y)` and `w(z)` (serializes upon evaluation).
pub fn fig4_consistent() -> (History, TxId, TxId, TxId) {
    let mut h = History::new();
    let t0 = h.begin_top();
    let f1 = h.submit(t0);
    h.write(t0, X);
    let f2 = h.submit(t0);
    h.write(t0, Y);
    h.read(f1, X);
    h.read(f1, Y);
    h.commit(f1);
    h.write(t0, Z);
    h.read_observing(f2, Y, t0);
    h.read_observing(f2, Z, t0);
    h.commit(f2);
    h.evaluate(t0, f1);
    h.evaluate(t0, f2);
    h.commit(t0);
    (h, t0, f1, f2)
}

/// Fig. 4, torn run for `TF1`: it observed `w(x)` but missed `w(y)`,
/// breaking the atomicity of its continuation. Must be rejected under
/// every semantics.
pub fn fig4_torn_tf1() -> (History, TxId, TxId, TxId) {
    let mut h = History::new();
    let t0 = h.begin_top();
    let f1 = h.submit(t0);
    h.write(t0, X);
    let f2 = h.submit(t0);
    h.write(t0, Y);
    h.read_observing(f1, X, t0);
    h.read(f1, Y); // torn: saw x but not y
    h.commit(f1);
    h.write(t0, Z);
    h.read_observing(f2, Y, t0);
    h.read_observing(f2, Z, t0);
    h.commit(f2);
    h.evaluate(t0, f1);
    h.evaluate(t0, f2);
    h.commit(t0);
    (h, t0, f1, f2)
}

/// Fig. 4, torn run for `TF2`: it observed `w(y)` but missed `w(z)` —
/// i.e. it serialized *between* the two writes of its continuation.
pub fn fig4_torn_tf2() -> (History, TxId, TxId, TxId) {
    let mut h = History::new();
    let t0 = h.begin_top();
    let f1 = h.submit(t0);
    h.write(t0, X);
    let f2 = h.submit(t0);
    h.write(t0, Y);
    h.read(f1, X);
    h.read(f1, Y);
    h.commit(f1);
    h.write(t0, Z);
    h.read_observing(f2, Y, t0);
    h.read(f2, Z); // torn: saw y but not z
    h.commit(f2);
    h.evaluate(t0, f1);
    h.evaluate(t0, f2);
    h.commit(t0);
    (h, t0, f1, f2)
}

/// A classic non-serializable two-top-level interleaving (no futures):
/// each transaction reads the initial value of the variable the other
/// writes. Must be rejected regardless of futures semantics.
pub fn cross_top_nonserializable() -> History {
    let mut h = History::new();
    let t1 = h.begin_top();
    let t2 = h.begin_top();
    h.read(t1, X);
    h.read(t2, Y);
    h.write(t1, Y);
    h.write(t2, X);
    h.commit(t1);
    h.commit(t2);
    h
}
