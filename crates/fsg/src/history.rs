//! Histories: interleaved operation sequences of transactions and futures.

/// Identifier of a (sub-)transaction: a top-level transaction or a
/// transactional future. One shared namespace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TxId(pub u32);

/// A shared variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub u32);

/// One operation in a history.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Read of a variable, recording which (sub-)transaction's write was
    /// observed (`None` = the initial / snapshot value predating every
    /// writer in this history).
    Read(Var, Option<TxId>),
    Write(Var),
    /// Submission of a transactional future.
    Submit(TxId),
    /// Evaluation of a transactional future. `implicit` marks evaluations
    /// inserted by LAC semantics rather than by the program.
    Evaluate(TxId, bool),
    Commit,
    Abort,
}

/// One event: an operation issued by a (sub-)transaction, positioned in
/// the global real-time order by its index in [`History::events`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    pub issuer: TxId,
    pub op: Op,
}

/// An interleaved execution history over transactions and futures.
///
/// Build one with the fluent recorder API; the order of recorder calls is
/// the real-time order of the history. Continuation operations are issued
/// by the *enclosing* (sub-)transaction (the one that called
/// [`History::submit`]); future bodies are issued by the future's own id.
#[derive(Debug, Clone, Default)]
pub struct History {
    pub events: Vec<Event>,
    next_tx: u32,
    tops: Vec<TxId>,
    futures: Vec<(TxId, TxId)>, // (future, spawner)
}

impl History {
    pub fn new() -> History {
        History::default()
    }

    /// Begins a new top-level transaction.
    pub fn begin_top(&mut self) -> TxId {
        let id = TxId(self.next_tx);
        self.next_tx += 1;
        self.tops.push(id);
        id
    }

    /// Records `issuer` submitting a new transactional future and returns
    /// the future's id.
    pub fn submit(&mut self, issuer: TxId) -> TxId {
        let fut = TxId(self.next_tx);
        self.next_tx += 1;
        self.futures.push((fut, issuer));
        self.events.push(Event {
            issuer,
            op: Op::Submit(fut),
        });
        fut
    }

    /// Records a read that observed the initial (pre-history) value.
    pub fn read(&mut self, issuer: TxId, var: Var) {
        self.events.push(Event {
            issuer,
            op: Op::Read(var, None),
        });
    }

    /// Records a read that observed `writer`'s write to `var`.
    pub fn read_observing(&mut self, issuer: TxId, var: Var, writer: TxId) {
        self.events.push(Event {
            issuer,
            op: Op::Read(var, Some(writer)),
        });
    }

    pub fn write(&mut self, issuer: TxId, var: Var) {
        self.events.push(Event {
            issuer,
            op: Op::Write(var),
        });
    }

    pub fn evaluate(&mut self, issuer: TxId, future: TxId) {
        self.events.push(Event {
            issuer,
            op: Op::Evaluate(future, false),
        });
    }

    pub fn commit(&mut self, issuer: TxId) {
        self.events.push(Event {
            issuer,
            op: Op::Commit,
        });
    }

    pub fn abort(&mut self, issuer: TxId) {
        self.events.push(Event {
            issuer,
            op: Op::Abort,
        });
    }

    /// All top-level transaction ids, in creation order.
    pub fn tops(&self) -> &[TxId] {
        &self.tops
    }

    /// All `(future, spawner)` pairs, in submission order.
    pub fn futures(&self) -> &[(TxId, TxId)] {
        &self.futures
    }

    /// The spawner of `future`, if `future` is a future.
    pub fn spawner_of(&self, future: TxId) -> Option<TxId> {
        self.futures
            .iter()
            .find(|(f, _)| *f == future)
            .map(|(_, s)| *s)
    }

    /// The top-level transaction a (sub-)transaction belongs to by the
    /// *spawning* chain (a future's "home" top-level).
    pub fn top_of(&self, tx: TxId) -> TxId {
        let mut cur = tx;
        while let Some(spawner) = self.spawner_of(cur) {
            cur = spawner;
        }
        cur
    }

    /// The id of the (sub-)transaction that evaluates `future` first
    /// (explicitly), if any.
    pub fn evaluator_of(&self, future: TxId) -> Option<TxId> {
        self.events.iter().find_map(|e| match e.op {
            Op::Evaluate(f, _) if f == future => Some(e.issuer),
            _ => None,
        })
    }

    /// True when `future` escapes: it is never (explicitly) evaluated by a
    /// (sub-)transaction belonging to its spawning top-level transaction.
    pub fn escapes(&self, future: TxId) -> bool {
        let home = self.top_of(future);
        match self.evaluator_of(future) {
            Some(evaluator) => self.top_of(evaluator) != home,
            None => true,
        }
    }

    /// Returns a copy with LAC's implicit evaluations inserted: for each
    /// top-level transaction `T` and each escaping future (transitively)
    /// spawned under `T`, an implicit `Evaluate` is inserted immediately
    /// before `T`'s commit event.
    pub fn with_implicit_lac_evaluations(&self) -> History {
        let mut out = self.clone();
        for &top in &self.tops {
            // Futures homed under `top` that no sub-transaction of `top`
            // evaluates before (or without) top's commit.
            let strays: Vec<TxId> = self
                .futures
                .iter()
                .map(|(f, _)| *f)
                .filter(|&f| self.top_of(f) == top)
                .filter(|&f| {
                    self.evaluator_of(f)
                        .map(|e| self.top_of(e) != top)
                        .unwrap_or(true)
                })
                .collect();
            if strays.is_empty() {
                continue;
            }
            let commit_pos = out
                .events
                .iter()
                .position(|e| e.issuer == top && e.op == Op::Commit);
            if let Some(pos) = commit_pos {
                for (k, f) in strays.iter().enumerate() {
                    out.events.insert(
                        pos + k,
                        Event {
                            issuer: top,
                            op: Op::Evaluate(*f, true),
                        },
                    );
                }
            }
        }
        out
    }
}
