//! FSG construction (§3.4 of the paper).

use crate::graph::Polygraph;
use crate::history::{History, Op, TxId, Var};
use crate::{AtomicitySemantics, OrderingSemantics, Semantics};
use std::collections::HashMap;

/// Index into [`Fsg::vertices`].
pub type VertexId = usize;

/// The role a vertex plays (§3.4's vertex taxonomy).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VertexKind {
    /// `V_begin(T)`: T's operations from its begin to the first
    /// submit/evaluate/commit/abort.
    Begin(TxId),
    /// `V_C-begin(F)`: the spawner's operations right after `submit(F)`.
    CBegin(TxId),
    /// `V_eval(F)`: operations starting with (and including) `evaluate(F)`.
    Eval(TxId),
}

/// One FSG vertex: a sub-transaction's operation segment.
#[derive(Debug, Clone)]
pub struct Vertex {
    pub id: VertexId,
    /// The (sub-)transaction executing these operations (continuations are
    /// executed by the spawner).
    pub issuer: TxId,
    pub kind: VertexKind,
    /// Indices into the (possibly LAC-extended) history's event list.
    pub ops: Vec<usize>,
}

/// A constructed Future Serialization Graph.
pub struct Fsg {
    /// The history the graph was built from, after LAC's implicit
    /// evaluations were inserted (if applicable).
    pub history: History,
    pub semantics: Semantics,
    pub vertices: Vec<Vertex>,
    pub polygraph: Polygraph,
}

impl Fsg {
    /// The acceptance criterion: the history is admissible under the
    /// chosen semantics iff the polygraph is acyclic.
    pub fn acceptable(&self) -> bool {
        self.polygraph.acyclic()
    }

    /// First vertex of `tx` (its `V_begin`).
    pub fn v_begin(&self, tx: TxId) -> Option<VertexId> {
        self.vertices
            .iter()
            .find(|v| v.issuer == tx && matches!(v.kind, VertexKind::Begin(_)))
            .map(|v| v.id)
    }

    /// Vertex holding `tx`'s commit operation (its `V_end`).
    pub fn v_end(&self, tx: TxId) -> Option<VertexId> {
        self.vertices
            .iter()
            .find(|v| {
                v.issuer == tx
                    && v.ops
                        .iter()
                        .any(|&i| self.history.events[i].op == Op::Commit)
            })
            .map(|v| v.id)
    }

    /// `V_C-begin(future)`.
    pub fn v_cbegin(&self, future: TxId) -> Option<VertexId> {
        self.vertices
            .iter()
            .find(|v| v.kind == VertexKind::CBegin(future))
            .map(|v| v.id)
    }

    /// First `V_eval(future)` across all threads.
    pub fn v_eval(&self, future: TxId) -> Option<VertexId> {
        self.vertices
            .iter()
            .filter(|v| v.kind == VertexKind::Eval(future))
            .min_by_key(|v| v.ops.first().copied().unwrap_or(usize::MAX))
            .map(|v| v.id)
    }

    /// GraphViz DOT rendering (fixed edges solid, bipaths dashed).
    pub fn to_dot(&self) -> String {
        use std::fmt::Write;
        let mut s = String::from("digraph fsg {\n  rankdir=LR;\n");
        for v in &self.vertices {
            let label = match v.kind {
                VertexKind::Begin(t) => format!("V_begin(T{})", t.0),
                VertexKind::CBegin(f) => format!("V_C-begin(F{})", f.0),
                VertexKind::Eval(f) => format!("V_eval(F{})", f.0),
            };
            writeln!(s, "  n{} [label=\"{}\"];", v.id, label).unwrap();
        }
        for &(a, b) in &self.polygraph.edges {
            writeln!(s, "  n{a} -> n{b};").unwrap();
        }
        for &((a1, b1), (a2, b2)) in &self.polygraph.bipaths {
            writeln!(s, "  n{a1} -> n{b1} [style=dashed, color=blue];").unwrap();
            writeln!(s, "  n{a2} -> n{b2} [style=dashed, color=red];").unwrap();
        }
        s.push_str("}\n");
        s
    }
}

/// Builds the FSG of `history` under `semantics`.
pub fn build_fsg(history: &History, semantics: Semantics) -> Fsg {
    let h = if semantics.ordering == OrderingSemantics::Weak
        && semantics.atomicity == AtomicitySemantics::Local
    {
        history.with_implicit_lac_evaluations()
    } else {
        history.clone()
    };

    // ---- 1. Segment every issuer's op stream into vertices. ----
    let mut issuers: Vec<TxId> = h.tops().to_vec();
    issuers.extend(h.futures().iter().map(|(f, _)| *f));

    let mut vertices: Vec<Vertex> = Vec::new();
    // Per-issuer ordered vertex ids (program order chains).
    let mut streams: HashMap<TxId, Vec<VertexId>> = HashMap::new();

    for &issuer in &issuers {
        let ops: Vec<usize> = h
            .events
            .iter()
            .enumerate()
            .filter(|(_, e)| e.issuer == issuer)
            .map(|(i, _)| i)
            .collect();
        let mut segs: Vec<(VertexKind, Vec<usize>)> = Vec::new();
        let mut cur_kind = VertexKind::Begin(issuer);
        let mut cur_ops: Vec<usize> = Vec::new();
        for &idx in &ops {
            match h.events[idx].op {
                Op::Evaluate(f, _) => {
                    // Evaluate opens a new vertex that includes it.
                    segs.push((cur_kind, std::mem::take(&mut cur_ops)));
                    cur_kind = VertexKind::Eval(f);
                    cur_ops.push(idx);
                }
                Op::Submit(f) => {
                    cur_ops.push(idx);
                    segs.push((cur_kind, std::mem::take(&mut cur_ops)));
                    cur_kind = VertexKind::CBegin(f);
                }
                Op::Commit | Op::Abort => {
                    cur_ops.push(idx);
                    segs.push((cur_kind, std::mem::take(&mut cur_ops)));
                    cur_kind = VertexKind::Begin(issuer); // dropped if empty
                }
                Op::Read(..) | Op::Write(..) => cur_ops.push(idx),
            }
        }
        // Keep the trailing segment when nonempty or when it is a
        // structural endpoint (a C-begin/eval vertex another edge targets).
        if !cur_ops.is_empty() || !matches!(cur_kind, VertexKind::Begin(_)) || segs.is_empty() {
            segs.push((cur_kind, cur_ops));
        }
        let mut chain = Vec::new();
        for (kind, ops) in segs {
            let id = vertices.len();
            vertices.push(Vertex {
                id,
                issuer,
                kind,
                ops,
            });
            chain.push(id);
        }
        streams.insert(issuer, chain);
    }

    let mut pg = Polygraph::new(vertices.len());

    // ---- 2. Program-order edges within each thread. ----
    for chain in streams.values() {
        for w in chain.windows(2) {
            pg.add_edge(w[0], w[1]);
        }
    }

    // Helper lookups over the freshly built vertex set.
    let find_end = |tx: TxId| -> Option<VertexId> {
        vertices
            .iter()
            .find(|v| v.issuer == tx && v.ops.iter().any(|&i| h.events[i].op == Op::Commit))
            .map(|v| v.id)
    };
    let find_cbegin = |f: TxId| -> Option<VertexId> {
        vertices
            .iter()
            .find(|v| v.kind == VertexKind::CBegin(f))
            .map(|v| v.id)
    };
    let find_begin =
        |tx: TxId| -> Option<VertexId> { streams.get(&tx).and_then(|c| c.first().copied()) };
    let eval_vertices = |f: TxId| -> Vec<VertexId> {
        let mut v: Vec<VertexId> = vertices
            .iter()
            .filter(|v| v.kind == VertexKind::Eval(f))
            .map(|v| v.id)
            .collect();
        v.sort_by_key(|&id| vertices[id].ops.first().copied().unwrap_or(usize::MAX));
        v
    };
    let find_spawn = |f: TxId| -> Option<VertexId> {
        vertices
            .iter()
            .find(|v| v.ops.iter().any(|&i| h.events[i].op == Op::Submit(f)))
            .map(|v| v.id)
    };

    // ---- 3. Structural edges: spawn and end->eval. ----
    for &(f, _) in h.futures() {
        if let (Some(spawn), Some(begin)) = (find_spawn(f), find_begin(f)) {
            pg.add_edge(spawn, begin);
        }
        if let Some(end) = find_end(f) {
            for ev in eval_vertices(f) {
                pg.add_edge(end, ev);
            }
        }
    }

    // ---- 4. Ordering-semantics edges / bipaths. ----
    for &(f, _) in h.futures() {
        let (end, cbegin) = match (find_end(f), find_cbegin(f)) {
            (Some(e), Some(c)) => (e, c),
            // A future with no commit (still active / aborted) imposes no
            // serialization constraint yet.
            _ => continue,
        };
        match semantics.ordering {
            OrderingSemantics::Strong => pg.add_edge(end, cbegin),
            OrderingSemantics::Weak => {
                let evals = eval_vertices(f);
                match evals.first() {
                    Some(&ev) => {
                        // V_C-end(F): the vertex immediately preceding the
                        // first eval vertex in the evaluating thread.
                        let evaluator = vertices[ev].issuer;
                        let chain = &streams[&evaluator];
                        let pos = chain.iter().position(|&v| v == ev).unwrap();
                        let cend = if pos > 0 { chain[pos - 1] } else { ev };
                        let begin = find_begin(f).unwrap();
                        pg.add_bipath((cend, begin), (end, cbegin));
                    }
                    // Never evaluated: serialization upon evaluation is
                    // impossible, so the future must order at submission.
                    None => pg.add_edge(end, cbegin),
                }
            }
        }
    }

    // ---- 5. Conflict edges. ----
    add_conflict_edges(&h, semantics, &vertices, &streams, &mut pg);

    Fsg {
        history: h,
        semantics,
        vertices,
        polygraph: pg,
    }
}

/// Scope of a (sub-)transaction for the paper's two conflict rules: same
/// top-level transactions get vertex-to-vertex edges; different top-levels
/// get all-to-all edges (atomicity of whole top-level transactions).
///
/// Escaping futures under WO+GAC are not statically included in any single
/// top-level (that is decided by which bipath edge holds), so they form
/// their own scope — a conservative but safe interpretation.
fn scope_of(h: &History, sem: Semantics, tx: TxId) -> TxId {
    if h.spawner_of(tx).is_none() {
        return tx; // top-level
    }
    let escaping = h.escapes(tx);
    if escaping
        && sem.ordering == OrderingSemantics::Weak
        && sem.atomicity == AtomicitySemantics::Global
    {
        tx
    } else {
        h.top_of(tx)
    }
}
/// Is `tx` an independently-scoped escaping future (WO+GAC)?
fn is_escaping_unit(h: &History, sem: Semantics, tx: TxId) -> bool {
    h.spawner_of(tx).is_some() && scope_of(h, sem, tx) == tx
}

/// Conflict-edge construction.
///
/// Follows the paper's two atomicity rules, refined with Papadimitriou's
/// view-serializability treatment of reads (every history records which
/// writer each read observed):
///
/// * **Vertex level** — used when both operations belong to the same
///   top-level scope, or when either belongs to an escaping future under
///   WO+GAC (such a future is not statically included in any single
///   top-level transaction; its position is fixed by its bipath):
///   - reads-from (`r` observed `t`): fixed edge `w_t -> r`;
///   - interfering writer `w` when `r` observed same-scope `t`: bipath
///     `(w -> w_t, r -> w)` — `w` either precedes the observed version or
///     follows the read;
///   - `r` observed the initial value or an earlier top-level's version:
///     fixed edge `r -> w` for every same-unit interferer `w`.
/// * **Scope level** — operations in two *different committed top-level*
///   scopes order their entire scopes (atomicity between top-level
///   transactions): edges from every vertex of one scope to every vertex
///   of the other, directed by observation for reads and by top-level
///   commit order (the multi-version version order) for write-write pairs.
fn add_conflict_edges(
    h: &History,
    sem: Semantics,
    vertices: &[Vertex],
    _streams: &HashMap<TxId, Vec<VertexId>>,
    pg: &mut Polygraph,
) {
    let mut vertex_of_event: HashMap<usize, VertexId> = HashMap::new();
    for v in vertices {
        for &i in &v.ops {
            vertex_of_event.insert(i, v.id);
        }
    }
    let mut commit_idx: HashMap<TxId, usize> = HashMap::new();
    for (i, e) in h.events.iter().enumerate() {
        if e.op == Op::Commit {
            commit_idx.insert(e.issuer, i);
        }
    }
    let mut scope_vertices: HashMap<TxId, Vec<VertexId>> = HashMap::new();
    for v in vertices {
        scope_vertices
            .entry(scope_of(h, sem, v.issuer))
            .or_default()
            .push(v.id);
    }
    let mut scope_pairs_done: std::collections::HashSet<(TxId, TxId)> =
        std::collections::HashSet::new();

    struct ReadAcc {
        issuer: TxId,
        vertex: VertexId,
        observed: Option<TxId>,
        event_idx: usize,
    }
    struct WriteAcc {
        tx: TxId,
        /// Every write event by `tx` on this var: (event index, vertex).
        events: Vec<(usize, VertexId)>,
    }
    struct VarAccesses {
        reads: Vec<ReadAcc>,
        writes: Vec<WriteAcc>,
    }
    let mut per_var: HashMap<Var, VarAccesses> = HashMap::new();
    for (i, e) in h.events.iter().enumerate() {
        match e.op {
            Op::Read(var, observed) => {
                per_var
                    .entry(var)
                    .or_insert_with(|| VarAccesses {
                        reads: Vec::new(),
                        writes: Vec::new(),
                    })
                    .reads
                    .push(ReadAcc {
                        issuer: e.issuer,
                        vertex: vertex_of_event[&i],
                        observed,
                        event_idx: i,
                    });
            }
            Op::Write(var) => {
                let acc = per_var.entry(var).or_insert_with(|| VarAccesses {
                    reads: Vec::new(),
                    writes: Vec::new(),
                });
                let vtx = vertex_of_event[&i];
                match acc.writes.iter_mut().find(|w| w.tx == e.issuer) {
                    Some(entry) => entry.events.push((i, vtx)),
                    None => acc.writes.push(WriteAcc {
                        tx: e.issuer,
                        events: vec![(i, vtx)],
                    }),
                }
            }
            _ => {}
        }
    }

    let scope = |tx: TxId| scope_of(h, sem, tx);
    let committed = |s: TxId| commit_idx.contains_key(&s);
    // Vertex-level relations apply within one scope and around WO+GAC
    // escaping futures.
    let vertex_level = |a: TxId, b: TxId| {
        scope(a) == scope(b) || is_escaping_unit(h, sem, a) || is_escaping_unit(h, sem, b)
    };

    let add_scope_pair =
        |from: TxId,
         to: TxId,
         pg: &mut Polygraph,
         seen: &mut std::collections::HashSet<(TxId, TxId)>| {
            if from == to || !seen.insert((from, to)) {
                return;
            }
            for &a in &scope_vertices[&from] {
                for &b in &scope_vertices[&to] {
                    if a != b {
                        pg.add_edge(a, b);
                    }
                }
            }
        };
    let add_vertex_edge = |from: VertexId, to: VertexId, pg: &mut Polygraph| {
        if from != to {
            pg.add_edge(from, to);
        }
    };

    for acc in per_var.values() {
        for r in &acc.reads {
            let r_scope = scope(r.issuer);
            // The concrete write event an observation of `t` saw: t's last
            // write on this var preceding the read.
            let observed_event = |t: TxId| {
                acc.writes.iter().find(|w| w.tx == t).map(|w| {
                    w.events
                        .iter()
                        .rev()
                        .find(|&&(i, _)| i < r.event_idx)
                        .copied()
                        .unwrap_or(w.events[w.events.len() - 1])
                })
            };
            // ---- reads-from edge ----
            if let Some(t) = r.observed {
                if vertex_level(r.issuer, t) {
                    if let Some((_, tl)) = observed_event(t) {
                        add_vertex_edge(tl, r.vertex, pg);
                    }
                } else if committed(scope(t)) && committed(r_scope) {
                    add_scope_pair(scope(t), r_scope, pg, &mut scope_pairs_done);
                }
            }
            // ---- interfering writes (per write event) ----
            for w in &acc.writes {
                let w_tx = w.tx;
                if w_tx == r.issuer {
                    continue; // own writes: program order
                }
                for &(w_idx, w_vtx) in &w.events {
                    match r.observed {
                        Some(t) if w_tx == t => {
                            // Another write by the observed transaction.
                            let (obs_idx, _) = observed_event(t).unwrap();
                            if w_idx <= obs_idx {
                                continue; // at/before the observed write
                            }
                            // A later write by `t` that the read missed:
                            // the read precedes it. (Cross-scope this case
                            // cannot arise in a multi-versioned TM — only a
                            // committed top's final value is visible — so
                            // vertex-level treatment is always applicable.)
                            add_vertex_edge(r.vertex, w_vtx, pg);
                        }
                        Some(t) if vertex_level(r.issuer, w_tx) => {
                            if vertex_level(r.issuer, t) && vertex_level(w_tx, t) {
                                // Papadimitriou triangle: the interfering
                                // write precedes the observed version or
                                // follows the read.
                                if let Some((_, obs_v)) = observed_event(t) {
                                    if w_vtx != obs_v && r.vertex != w_vtx {
                                        pg.add_bipath((w_vtx, obs_v), (r.vertex, w_vtx));
                                    }
                                }
                            } else {
                                // r observed an earlier top-level's version
                                // (or a version outside this unit): the
                                // same-unit writer follows the read.
                                add_vertex_edge(r.vertex, w_vtx, pg);
                            }
                        }
                        Some(t) => {
                            // Cross-scope interferer.
                            let w_scope = scope(w_tx);
                            if !(committed(w_scope) && committed(r_scope)) {
                                continue;
                            }
                            if !vertex_level(r.issuer, t) && committed(scope(t)) {
                                // w precedes the observed top's version or
                                // follows r's whole scope.
                                if commit_idx[&w_scope] < commit_idx[&scope(t)] {
                                    add_scope_pair(w_scope, scope(t), pg, &mut scope_pairs_done);
                                } else {
                                    add_scope_pair(r_scope, w_scope, pg, &mut scope_pairs_done);
                                }
                            } else if commit_idx[&w_scope] < commit_idx[&r_scope] {
                                add_scope_pair(w_scope, r_scope, pg, &mut scope_pairs_done);
                            } else {
                                add_scope_pair(r_scope, w_scope, pg, &mut scope_pairs_done);
                            }
                        }
                        None => {
                            // Initial-value read precedes every write.
                            if vertex_level(r.issuer, w_tx) {
                                add_vertex_edge(r.vertex, w_vtx, pg);
                            } else {
                                let w_scope = scope(w_tx);
                                if committed(w_scope) && committed(r_scope) {
                                    add_scope_pair(r_scope, w_scope, pg, &mut scope_pairs_done);
                                }
                            }
                        }
                    }
                }
            }
        }
        // ---- write/write conflicts across committed scopes ----
        for (i, w1) in acc.writes.iter().enumerate() {
            for w2 in acc.writes.iter().skip(i + 1) {
                let (t1, t2) = (w1.tx, w2.tx);
                if vertex_level(t1, t2) {
                    // Same unit: write order is determined by the reads and
                    // the semantics bipaths (view serializability imposes
                    // no direct ww constraint).
                    continue;
                }
                let (s1, s2) = (scope(t1), scope(t2));
                if !(committed(s1) && committed(s2)) {
                    continue;
                }
                if commit_idx[&s1] < commit_idx[&s2] {
                    add_scope_pair(s1, s2, pg, &mut scope_pairs_done);
                } else {
                    add_scope_pair(s2, s1, pg, &mut scope_pairs_done);
                }
            }
        }
    }
}
