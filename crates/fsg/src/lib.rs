//! # wtf-fsg — the Future Serialization Graph formalism
//!
//! Executable encoding of §3.4 of the paper: given a *history* of
//! transactions, transactional futures and their operations, build the
//! **Future Serialization Graph (FSG)** — a polygraph in the sense of
//! Papadimitriou's view-serializability construction — and decide whether
//! the history is acceptable under a chosen semantics:
//!
//! * **SO** (strongly ordered): every future carries a fixed edge
//!   `V_end(F) -> V_C-begin(F)`, forcing serialization at submission.
//! * **WO** (weakly ordered): every evaluated future carries a **bipath**
//!   `(V_C-end(F) -> V_begin(F), V_end(F) -> V_C-begin(F))` — either the
//!   whole continuation precedes the future (serialization upon
//!   evaluation) or the future precedes its continuation (serialization
//!   upon submission).
//! * **LAC** (locally atomic continuations): escaping futures are
//!   implicitly evaluated right before their spawning top-level's commit.
//! * **GAC** (globally atomic continuations): escaping futures may be
//!   evaluated by other top-level transactions; their continuation spans
//!   transaction boundaries.
//!
//! A history is accepted iff the polygraph is *acyclic*: some choice of
//! one edge per bipath yields a DAG ([`Fsg::acceptable`]).
//!
//! The crate is used three ways in this repository: (1) unit tests encode
//! the paper's example executions (Figs. 1a–1d, 2, 4) and check the
//! acceptance matrix the paper claims; (2) `wtf-core` can trace its real
//! executions into [`History`] values, and integration tests assert that
//! every history the runtime commits is FSG-acceptable (soundness); (3)
//! the `fsg_ops` Criterion bench measures construction/solve costs.
//!
//! ## Conflict-direction convention
//!
//! The paper directs conflict edges "depending on whether op is ordered
//! before or after op′" in the history's partial order. For read/write
//! conflicts we use the *observation* order, which is what a
//! multi-versioned TM actually defines: if read `r` observed writer `W`'s
//! value, then `W` precedes `r`; if it observed an older value, `r`
//! precedes `W`. Write/write conflicts are directed by real-time order.
//! Histories therefore record, for every read, which (sub-)transaction's
//! write it observed ([`History::read_observing`]).

mod build;
mod dot;
mod graph;
mod history;
pub mod paper;

pub use build::{build_fsg, Fsg, Vertex, VertexId, VertexKind};
pub use graph::{find_cycle_in, Polygraph};
pub use history::{History, Op, TxId, Var};

/// Ordering semantics of transactional futures (§3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrderingSemantics {
    /// Weakly ordered: a future serializes either at submission or at its
    /// (first) evaluation.
    Weak,
    /// Strongly ordered: a future always serializes at submission, before
    /// its continuation.
    Strong,
}

/// Continuation-atomicity semantics for escaping futures (§3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AtomicitySemantics {
    /// Locally atomic continuations: a top-level transaction implicitly
    /// evaluates all its (transitively) spawned unevaluated futures at
    /// commit, bounding every continuation to its top-level transaction.
    Local,
    /// Globally atomic continuations: a continuation may span top-level
    /// transactions; escaping futures serialize wherever they are
    /// eventually evaluated.
    Global,
}

/// A full semantics point in the paper's two-dimensional space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Semantics {
    pub ordering: OrderingSemantics,
    pub atomicity: AtomicitySemantics,
}

impl Semantics {
    /// WO + GAC: the most permissive semantics (WTF-TM's native mode).
    pub const WO_GAC: Semantics = Semantics {
        ordering: OrderingSemantics::Weak,
        atomicity: AtomicitySemantics::Global,
    };
    /// WO + LAC.
    pub const WO_LAC: Semantics = Semantics {
        ordering: OrderingSemantics::Weak,
        atomicity: AtomicitySemantics::Local,
    };
    /// SO (atomicity dimension is irrelevant under strong ordering; the
    /// paper notes the distinction collapses).
    pub const SO: Semantics = Semantics {
        ordering: OrderingSemantics::Strong,
        atomicity: AtomicitySemantics::Local,
    };
}

#[cfg(test)]
mod tests;
