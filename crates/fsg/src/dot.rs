//! Witness-aware DOT exporters for [`Polygraph`]s and [`Fsg`]s.
//!
//! [`Fsg::to_dot`] already renders the raw polygraph structure (fixed
//! edges solid, bipath alternatives dashed). The exporters here add the
//! *verdict*: when the polygraph is acyclic, the witnessing edge choice
//! (one edge per bipath, from [`Polygraph::acyclic_witness`]) is drawn
//! **solid red**, so the picture shows the serialization order that
//! makes the history acceptable; when it is doomed, a concrete cycle
//! through the fixed edges ([`Polygraph::find_cycle`]) is drawn red
//! instead, showing *why* no choice can help.
//!
//! `wtf-core`'s inspect machinery dumps these next to the runtime graph
//! snapshots, so an abort-storm investigation can see both the dynamic
//! dependency graph and the formal FSG verdict for the same execution.

use crate::build::Fsg;
use crate::graph::Polygraph;
use crate::VertexKind;
use std::fmt::Write;

impl Polygraph {
    /// DOT rendering with verdict highlighting (nodes labeled `v{i}`).
    ///
    /// * `witness: Some(edges)` — the chosen bipath edges (normally
    ///   [`Polygraph::acyclic_witness`]) are drawn **solid red**; the
    ///   rejected alternatives stay dashed gray.
    /// * `witness: None` — if the fixed edges are cyclic, the
    ///   [`Polygraph::find_cycle`] edges are drawn red and the graph is
    ///   labeled `DOOMED`; otherwise no highlighting.
    pub fn to_dot(&self, witness: Option<&[(usize, usize)]>) -> String {
        self.to_dot_labeled(witness, |n| format!("v{n}"))
    }

    /// [`Polygraph::to_dot`] with caller-supplied node labels.
    pub fn to_dot_labeled<F>(&self, witness: Option<&[(usize, usize)]>, label: F) -> String
    where
        F: Fn(usize) -> String,
    {
        let cycle = if witness.is_none() {
            self.find_cycle()
        } else {
            None
        };
        let verdict = match (&witness, &cycle) {
            (Some(_), _) => " — acyclic, witness in red",
            (None, Some(_)) => " — DOOMED, cycle in red",
            (None, None) => "",
        };
        let highlighted = |e: (usize, usize)| -> bool {
            witness.is_some_and(|w| w.contains(&e))
                || cycle.as_deref().is_some_and(|c| c.contains(&e))
        };
        let mut s = String::from("digraph polygraph {\n  rankdir=LR;\n");
        let _ = writeln!(s, "  label=\"polygraph{verdict}\";");
        for n in 0..self.node_count() {
            let _ = writeln!(s, "  n{n} [label=\"{}\"];", label(n));
        }
        for &(a, b) in &self.edges {
            if highlighted((a, b)) {
                let _ = writeln!(s, "  n{a} -> n{b} [color=red penwidth=2];");
            } else {
                let _ = writeln!(s, "  n{a} -> n{b};");
            }
        }
        for (i, &(first, second)) in self.bipaths.iter().enumerate() {
            for (a, b) in [first, second] {
                if highlighted((a, b)) {
                    let _ = writeln!(
                        s,
                        "  n{a} -> n{b} [style=solid color=red penwidth=2 label=\"b{i}\"];"
                    );
                } else {
                    let _ = writeln!(
                        s,
                        "  n{a} -> n{b} [style=dashed color=gray label=\"b{i}\"];"
                    );
                }
            }
        }
        s.push_str("}\n");
        s
    }
}

impl Fsg {
    /// Verdict-annotated DOT: paper-style vertex labels plus the acyclic
    /// witness (or, for doomed graphs, a fixed-edge cycle) in red. This
    /// is what gets dumped next to runtime graph snapshots.
    pub fn to_dot_with_verdict(&self) -> String {
        let witness = self.polygraph.acyclic_witness();
        self.polygraph
            .to_dot_labeled(witness.as_deref(), |n| match self.vertices[n].kind {
                VertexKind::Begin(t) => format!("V_begin(T{})", t.0),
                VertexKind::CBegin(f) => format!("V_C-begin(F{})", f.0),
                VertexKind::Eval(f) => format!("V_eval(F{})", f.0),
            })
    }
}

#[cfg(test)]
mod tests {
    use crate::{build_fsg, paper, Polygraph, Semantics};

    /// Finds the DOT line rendering edge `a -> b`, if any.
    fn edge_line(dot: &str, a: usize, b: usize) -> Option<&str> {
        let needle = format!("n{a} -> n{b}");
        dot.lines().find(|l| l.contains(&needle))
    }

    #[test]
    fn witness_edges_rendered_red() {
        // 0 -> 1 fixed; bipath (1,0) | (0,2). The only witness is (0,2).
        let mut g = Polygraph::new(3);
        g.add_edge(0, 1);
        g.add_bipath((1, 0), (0, 2));
        let w = g.acyclic_witness().unwrap();
        let dot = g.to_dot(Some(&w));
        for &(a, b) in &w {
            let line = edge_line(&dot, a, b).expect("witness edge rendered");
            assert!(line.contains("red"), "witness edge {a}->{b} red: {line}");
            assert!(line.contains("solid"), "witness edge solid: {line}");
        }
        // The rejected alternative stays dashed gray.
        let rejected = edge_line(&dot, 1, 0).unwrap();
        assert!(rejected.contains("dashed") && rejected.contains("gray"));
        assert!(dot.contains("witness in red"));
    }

    #[test]
    fn doomed_cycle_rendered_red_and_closed() {
        let mut g = Polygraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 0);
        let cyc = g.find_cycle().unwrap();
        // Closed: each edge's head is the next edge's tail, wrapping.
        assert!(!cyc.is_empty());
        for (i, &(_, head)) in cyc.iter().enumerate() {
            let (next_tail, _) = cyc[(i + 1) % cyc.len()];
            assert_eq!(head, next_tail, "cycle is edge-connected");
        }
        let dot = g.to_dot(None);
        for &(a, b) in &cyc {
            let line = edge_line(&dot, a, b).expect("cycle edge rendered");
            assert!(line.contains("red"), "cycle edge {a}->{b} red: {line}");
        }
        assert!(dot.contains("DOOMED"));
    }

    #[test]
    fn find_cycle_none_on_dag_and_self_loop() {
        let mut g = Polygraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        assert!(g.find_cycle().is_none());
        g.add_edge(2, 2);
        assert_eq!(g.find_cycle(), Some(vec![(2, 2)]));
    }

    #[test]
    fn fsg_witness_dot_contains_every_witness_edge() {
        // Fig. 1a serialized at evaluation: WO-acceptable only via the
        // evaluation-side bipath choice, so the witness is non-trivial.
        let (h, _, _) = paper::fig1a_serialized_at_evaluation();
        let fsg = build_fsg(&h, Semantics::WO_GAC);
        let w = fsg
            .polygraph
            .acyclic_witness()
            .expect("WO accepts fig1a-eval");
        assert!(!w.is_empty());
        let dot = fsg.to_dot_with_verdict();
        for &(a, b) in &w {
            let line = edge_line(&dot, a, b).expect("witness edge in DOT");
            assert!(line.contains("red"), "witness edge {a}->{b} red: {line}");
        }
        assert!(dot.contains("V_begin(T"), "paper-style labels present");
    }

    #[test]
    fn fsg_doomed_dot_flags_torn_history() {
        // Fig. 1a torn: rejected under every semantics. When the doom
        // comes from the fixed edges alone, the DOT names the cycle.
        let (h, _, _) = paper::fig1a_torn();
        let fsg = build_fsg(&h, Semantics::WO_GAC);
        assert!(fsg.polygraph.acyclic_witness().is_none());
        let dot = fsg.to_dot_with_verdict();
        if let Some(cyc) = fsg.polygraph.find_cycle() {
            assert!(dot.contains("DOOMED"));
            for &(a, b) in &cyc {
                let line = edge_line(&dot, a, b).expect("cycle edge in DOT");
                assert!(line.contains("red"));
            }
        } else {
            // Doom came from the bipaths (every choice closes a cycle):
            // no fixed-edge cycle to name, and no false witness either.
            assert!(!dot.contains("witness in red"));
        }
    }
}
