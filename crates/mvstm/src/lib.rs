//! # wtf-mvstm — multi-versioned software transactional memory
//!
//! A from-scratch Rust analogue of **JVSTM** (Cachopo & Rito-Silva,
//! "Versioned boxes as the basis for memory transactions"), the substrate
//! the paper builds WTF-TM on. The design mirrors JVSTM's essentials:
//!
//! * **Versioned boxes** ([`VBox<T>`]): every transactional location keeps
//!   a chain of `(version, value)` pairs, newest first — an immutable
//!   cons list behind an atomic head pointer, so snapshot reads are
//!   lock-free and installing a committed value is O(1).
//! * **Global version clock**: committing writers reserve a version with
//!   one atomic fetch-add and publish their write-set at that version.
//! * **Snapshot reads**: a transaction reads the newest version no newer
//!   than its begin snapshot, so *every* read observes a consistent memory
//!   snapshot — this gives opacity without per-read validation, and lets
//!   **read-only transactions commit without any validation** (JVSTM's
//!   signature property).
//! * **Commit-time validation** for update transactions under **striped
//!   commit locks**: boxes hash onto 64 cache-line-padded lock stripes
//!   ([`raw::STRIPES`]); a committer locks only the stripes covering its
//!   read- and write-set (in ascending order — deadlock-free), validates
//!   that every read is still current, installs, and publishes. Commits
//!   with disjoint stripe footprints run fully in parallel; there is no
//!   global commit mutex.
//! * **Version GC** driven by a sharded, lock-free active-transaction
//!   registry (JVSTM's `ActiveTransactionsRecord`): version chains are
//!   pruned down to the oldest snapshot still in use.
//!
//! The commit-path concurrency protocol (stripe masks, the
//! ticket/publish clock pair, and the reclamation argument for pruned
//! versions) is documented in `DESIGN.md` § "Commit-path concurrency"
//! and in the module docs of `stripe`, `vbox` and `registry`.
//!
//! The crate exposes two levels:
//!
//! * the user-level [`Stm::atomic`] / [`Txn`] API — this *is* the plain
//!   "JVSTM" baseline of the paper's evaluation (top-level transactions,
//!   no intra-transaction parallelism), and
//! * the [`raw`] module — snapshots, versioned reads and raw multi-box
//!   commits — used by `wtf-core` to layer transactional futures on top,
//!   exactly as WTF-TM layers on JVSTM ("we abstract the mechanisms used
//!   to regulate concurrency among top-level transactions").
//!
//! ## Example
//!
//! ```
//! use wtf_mvstm::{Stm, VBox};
//!
//! let stm = Stm::new();
//! let acc_a = VBox::new(&stm, 100i64);
//! let acc_b = VBox::new(&stm, 0i64);
//!
//! stm.atomic(|tx| {
//!     let a = tx.read(&acc_a)?;
//!     tx.write(&acc_a, a - 30)?;
//!     let b = tx.read(&acc_b)?;
//!     tx.write(&acc_b, b + 30)?;
//!     Ok(())
//! })
//! .unwrap();
//!
//! assert_eq!(stm.atomic(|tx| tx.read(&acc_b)).unwrap(), 30);
//! ```

mod hash;
mod registry;
mod stats;
mod stripe;
mod txn;
mod value;
mod vbox;

pub mod raw;

pub use hash::{FxHashMap, FxHashSet};
pub use stats::{StmStats, StmStatsSnapshot};
pub use txn::{Aborted, StmError, TxResult, Txn};
pub use value::{downcast_value, BoxId, TxValue, Value};
pub use vbox::VBox;

use registry::ActiveRegistry;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use stripe::StripeTable;
use wtf_trace::Tracer;

pub(crate) struct StmInner {
    /// Published version clock: committed state has versions `0..=clock`,
    /// and all of them are fully installed. Only ever advanced by 1, in
    /// ticket order, by `raw::commit_raw`.
    // ordering: seqcst-store publication joins the registry's single
    // total order with the slot stores and the horizon scan (see
    // `registry` module docs), whose republish loop also reads it
    // seqcst-load; acquire-load everywhere else pairs with the
    // publishing store so a snapshot implies a fully installed prefix.
    pub(crate) clock: AtomicU64,
    /// Version ticket dispenser: `fetch_add` here is the single global
    /// atomic on the commit path. A ticket may be ahead of `clock` while
    /// its commit is still installing.
    // ordering: acqrel-rmw — the ticket fetch_add orders each reserved
    // ticket after the validation that justified it and before the
    // installs published under it.
    pub(crate) next_version: AtomicU64,
    /// Striped commit locks; shared with every `BoxBody` for safe chain
    /// walks (see `stripe`).
    pub(crate) stripes: Arc<StripeTable>,
    pub(crate) registry: ActiveRegistry,
    pub(crate) stats: StmStats,
    // ordering: relaxed-rmw — a pure id dispenser; uniqueness is all
    // that matters, nothing is published through it.
    pub(crate) next_box: AtomicU64,
    /// When false, version chains grow without bound (ablation knob).
    // ordering: relaxed-store / relaxed-load — a configuration flag read
    // once per commit. relaxed-guard: skipping or running GC on a stale
    // value is always safe (pruning is governed by the registry horizon,
    // not this flag).
    pub(crate) gc_enabled: AtomicBool,
    /// Total versions ever installed by commits (gauge bookkeeping; the
    /// live retained count is `versions_installed - versions_pruned`).
    // ordering: relaxed-rmw, relaxed-load — a gauge, not
    // synchronization.
    pub(crate) versions_installed: AtomicU64,
    /// Observability hooks (`wtf-trace`). Always present — a disabled
    /// tracer costs one relaxed load per hook — so the hot paths carry
    /// no `Option` branch.
    pub(crate) tracer: Arc<Tracer>,
    /// Contention manager consulted by [`Stm::atomic`]'s retry loop (and,
    /// through the `MvstmBackend` adapter, by `wtf_backend::atomic` and
    /// the `wtf-core` top-level loop — one shared policy instance per
    /// STM). Swappable so `FutureTm::builder().cm(..)` can install a
    /// policy after construction.
    // lock-order: cm-slot — read at the top of the retry loop, before
    // any stripe or registry lock is taken; writes happen only from
    // setup code holding nothing.
    pub(crate) cm: parking_lot::RwLock<Arc<dyn wtf_cm::ContentionManager>>,
}

/// A software transactional memory instance.
///
/// Cheap to clone (all clones share state). All [`VBox`]es are tied to the
/// `Stm` they were created in.
#[derive(Clone)]
pub struct Stm {
    pub(crate) inner: Arc<StmInner>,
}

impl Default for Stm {
    fn default() -> Self {
        Self::new()
    }
}

impl Stm {
    pub fn new() -> Stm {
        Stm::with_tracer(Tracer::disabled())
    }

    /// An `Stm` whose commit path reports into `tracer`: commit/validation
    /// latency histograms, publish-wait spans, per-box abort attribution
    /// and (at `Full` level) per-install events.
    pub fn with_tracer(tracer: Arc<Tracer>) -> Stm {
        let stm = Stm {
            inner: Arc::new(StmInner {
                clock: AtomicU64::new(0),
                next_version: AtomicU64::new(0),
                stripes: Arc::new(StripeTable::new()),
                registry: ActiveRegistry::new(),
                stats: StmStats::new(),
                next_box: AtomicU64::new(0),
                gc_enabled: AtomicBool::new(true),
                versions_installed: AtomicU64::new(0),
                tracer,
                cm: parking_lot::RwLock::new(wtf_cm::CmKind::from_env().build()),
            }),
        };
        if stm.inner.tracer.on() {
            stm.register_gauges();
        }
        stm
    }

    /// Registers the STM's live gauges with the tracer's registry. `Weak`
    /// captures: the tracer is owned by `StmInner`, so `Arc` captures
    /// would cycle and leak.
    fn register_gauges(&self) {
        let gauges = &self.inner.tracer.gauges;
        let w = Arc::downgrade(&self.inner);
        gauges.register("stm_clock", move || {
            w.upgrade().map_or(0, |s| s.clock.load(Ordering::Acquire))
        });
        let w = Arc::downgrade(&self.inner);
        gauges.register("stm_retained_versions", move || {
            w.upgrade().map_or(0, |s| {
                s.versions_installed
                    .load(Ordering::Relaxed)
                    .saturating_sub(s.stats.versions_pruned.load(Ordering::Relaxed))
            })
        });
        let w = Arc::downgrade(&self.inner);
        gauges.register("stm_gc_horizon_lag", move || {
            w.upgrade().map_or(0, |s| {
                let clock = s.clock.load(Ordering::Acquire);
                clock.saturating_sub(s.registry.min_active_excluding(u64::MAX, clock))
            })
        });
        let w = Arc::downgrade(&self.inner);
        gauges.register("stm_active_snapshots", move || {
            w.upgrade()
                .map_or(0, |s| s.registry.active_snapshots() as u64)
        });
        let w = Arc::downgrade(&self.inner);
        gauges.register("stm_registry_occupancy", move || {
            w.upgrade().map_or(0, |s| s.registry.occupancy() as u64)
        });
        // Cumulative commit/conflict counters: the telemetry hub
        // differences these per epoch for rolling throughput/abort-rate.
        let w = Arc::downgrade(&self.inner);
        gauges.register("stm_commits", move || {
            w.upgrade().map_or(0, |s| {
                s.stats.commits.load(Ordering::Relaxed)
                    + s.stats.read_only_commits.load(Ordering::Relaxed)
            })
        });
        let w = Arc::downgrade(&self.inner);
        gauges.register("stm_conflicts", move || {
            w.upgrade()
                .map_or(0, |s| s.stats.aborts.load(Ordering::Relaxed))
        });
    }

    /// Committed versions still retained in version chains (installed
    /// minus pruned; saturating because prunes can free initial versions
    /// that predate the counter).
    pub fn retained_versions(&self) -> u64 {
        self.inner
            .versions_installed
            .load(Ordering::Relaxed)
            .saturating_sub(self.inner.stats.versions_pruned.load(Ordering::Relaxed))
    }

    /// How far the oldest active snapshot trails the version clock (0
    /// when no transaction is active): the GC horizon lag that bounds
    /// how much garbage version chains must retain.
    pub fn gc_horizon_lag(&self) -> u64 {
        let clock = self.clock();
        clock.saturating_sub(self.inner.registry.min_active_excluding(u64::MAX, clock))
    }

    /// The tracer this instance reports into (disabled by default).
    pub fn tracer(&self) -> &Arc<Tracer> {
        &self.inner.tracer
    }

    /// The contention manager [`Stm::atomic`] consults on every conflict
    /// abort. Defaults from `WTF_CM` / `wtf_cm::with_cm` at construction.
    pub fn cm(&self) -> Arc<dyn wtf_cm::ContentionManager> {
        self.inner.cm.read().clone()
    }

    /// Installs a contention manager (selection plumbing for
    /// `FutureTm::builder().cm(..)`). Swapping mid-run is safe — in-flight
    /// retry loops finish on the policy they started with.
    pub fn set_cm(&self, cm: Arc<dyn wtf_cm::ContentionManager>) {
        *self.inner.cm.write() = cm;
    }

    /// Current value of the published version clock.
    pub fn clock(&self) -> u64 {
        self.inner.clock.load(Ordering::Acquire)
    }

    /// Enables/disables old-version garbage collection (ablation knob,
    /// benchmarked in `wtf-bench`'s `vbox_ops`).
    pub fn set_gc_enabled(&self, enabled: bool) {
        self.inner.gc_enabled.store(enabled, Ordering::Relaxed);
    }

    /// Counters: commits, aborts, read-only commits, version prunings.
    pub fn stats(&self) -> StmStatsSnapshot {
        self.inner.stats.snapshot()
    }

    /// Runs `f` as an atomic transaction, retrying on conflict until it
    /// commits. Returns `Err(Aborted)` only when `f` requests an explicit
    /// abort via [`Txn::abort`]. Every conflict abort consults the
    /// [contention manager](Stm::cm) — with the conflicting box's id when
    /// commit validation names one — and applies its wait before the
    /// retry.
    pub fn atomic<T>(&self, mut f: impl FnMut(&mut Txn) -> TxResult<T>) -> Result<T, Aborted> {
        let cm = self.cm();
        let actor = cm.begin_txn();
        wtf_cm::pause_at_begin(&*cm, &self.inner.tracer, actor);
        let mut streak = 0u32;
        loop {
            let attempt_start = wtf_cm::attempt_now();
            let mut tx = Txn::begin(self);
            let conflict_box = match f(&mut tx) {
                Ok(value) => match tx.commit_attributed() {
                    Ok(()) => {
                        cm.on_commit(actor);
                        return Ok(value);
                    }
                    Err(box_id) => Some(box_id.0),
                },
                Err(StmError::Conflict) => None,
                Err(StmError::UserAbort) => return Err(Aborted),
            };
            self.inner.stats.aborts.fetch_add(1, Ordering::Relaxed);
            streak += 1;
            wtf_cm::pause_after_abort(
                &*cm,
                &self.inner.tracer,
                actor,
                conflict_box,
                streak,
                attempt_start,
            );
        }
    }

    /// Like [`Stm::atomic`] but panics on explicit abort; convenient when
    /// the body never aborts.
    pub fn atomic_infallible<T>(&self, f: impl FnMut(&mut Txn) -> TxResult<T>) -> T {
        // This IS the sanctioned panic-on-abort wrapper the lint points
        // users at (the rule itself is off in runtime crates).
        self.atomic(f).expect("transaction aborted explicitly")
    }

    /// Begins a stepwise transaction outside the [`Stm::atomic`] retry
    /// loop. This is the schedule-explorer hook (`wtf-check` interleaves
    /// the read/write/commit steps of several transactions): the caller
    /// owns conflict handling, and a [`Txn::commit`] `Conflict` is final.
    /// Application code should use [`Stm::atomic`].
    pub fn begin_txn(&self) -> Txn<'_> {
        Txn::begin(self)
    }
}

/// Mutation hooks for `wtf-check`'s checker self-tests: deliberately
/// break one protocol branch so a test can assert the offline checker
/// catches the resulting bad history. Compiled only under the
/// `test-hooks` feature and off by default even then; never enable the
/// feature in production builds.
#[cfg(feature = "test-hooks")]
pub mod test_hooks {
    use std::sync::atomic::{AtomicBool, Ordering};

    // ordering: seqcst-store / seqcst-load — a cold test knob; strongest
    // ordering so the deliberately-broken branch is taken deterministically
    // right after the toggle.
    static SKIP_VALIDATION: AtomicBool = AtomicBool::new(false);

    /// When set, `commit_attributed` skips read-set validation entirely —
    /// the classic write-skew hole a serializable TM must not have.
    pub fn set_skip_validation(on: bool) {
        SKIP_VALIDATION.store(on, Ordering::SeqCst);
    }

    pub fn skip_validation() -> bool {
        SKIP_VALIDATION.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests;
