//! A small FxHash-style hasher for the hot read/write-set maps.
//!
//! The default `SipHash` is DoS-resistant but measurably slow for the
//! per-operation map lookups an STM does (see the Rust Performance Book's
//! hashing chapter). Transactional metadata is never attacker-controlled,
//! so we use the multiply-xor scheme popularized by Firefox/rustc
//! (`rustc-hash`), implemented here to stay within the approved dependency
//! set.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Fast non-cryptographic hasher (the rustc/Firefox "Fx" scheme).
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distributes_sequential_keys() {
        let mut seen = FxHashSet::default();
        for i in 0..10_000u64 {
            let mut h = FxHasher::default();
            h.write_u64(i);
            seen.insert(h.finish());
        }
        assert_eq!(seen.len(), 10_000, "no collisions on sequential u64 keys");
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..1000 {
            m.insert(i, i * 3);
        }
        for i in 0..1000 {
            assert_eq!(m[&i], i * 3);
        }
    }
}
