//! STM-level counters.

use std::sync::atomic::{AtomicU64, Ordering};

/// Internal atomic counters. Relaxed ordering throughout: these are
/// statistics, not synchronization.
pub struct StmStats {
    pub(crate) commits: AtomicU64,
    pub(crate) read_only_commits: AtomicU64,
    pub(crate) aborts: AtomicU64,
    pub(crate) versions_pruned: AtomicU64,
    pub(crate) publish_waits: AtomicU64,
}

impl StmStats {
    pub(crate) fn new() -> Self {
        StmStats {
            commits: AtomicU64::new(0),
            read_only_commits: AtomicU64::new(0),
            aborts: AtomicU64::new(0),
            versions_pruned: AtomicU64::new(0),
            publish_waits: AtomicU64::new(0),
        }
    }

    pub(crate) fn snapshot(&self) -> StmStatsSnapshot {
        StmStatsSnapshot {
            commits: self.commits.load(Ordering::Relaxed),
            read_only_commits: self.read_only_commits.load(Ordering::Relaxed),
            aborts: self.aborts.load(Ordering::Relaxed),
            versions_pruned: self.versions_pruned.load(Ordering::Relaxed),
            publish_waits: self.publish_waits.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of the [`StmStats`] counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StmStatsSnapshot {
    /// Successful top-level commits (update + read-only).
    pub commits: u64,
    /// Commits that needed no validation because the transaction read only.
    pub read_only_commits: u64,
    /// Commit- or read-time conflicts that forced a re-execution.
    pub aborts: u64,
    /// Old versions removed by commit-time GC.
    pub versions_pruned: u64,
    /// Commits that had to spin for an earlier version ticket before
    /// publishing (contention signal on the in-order publication step).
    pub publish_waits: u64,
}

impl StmStatsSnapshot {
    /// Aborts / (commits + aborts); 0 when idle.
    pub fn abort_rate(&self) -> f64 {
        let attempts = self.commits + self.aborts;
        if attempts == 0 {
            0.0
        } else {
            self.aborts as f64 / attempts as f64
        }
    }
}
