//! STM-level counters.

use std::sync::atomic::{AtomicU64, Ordering};

/// Internal atomic counters. Relaxed ordering throughout: these are
/// statistics, not synchronization.
pub struct StmStats {
    // ordering: relaxed-rmw, relaxed-load — a statistics counter.
    pub(crate) commits: AtomicU64,
    // ordering: relaxed-rmw, relaxed-load — a statistics counter.
    pub(crate) read_only_commits: AtomicU64,
    // ordering: relaxed-rmw, relaxed-load — a statistics counter.
    pub(crate) aborts: AtomicU64,
    // ordering: relaxed-rmw, relaxed-load — a statistics counter.
    pub(crate) versions_pruned: AtomicU64,
    // ordering: relaxed-rmw, relaxed-load — a statistics counter.
    pub(crate) publish_waits: AtomicU64,
}

impl StmStats {
    pub(crate) fn new() -> Self {
        StmStats {
            commits: AtomicU64::new(0),
            read_only_commits: AtomicU64::new(0),
            aborts: AtomicU64::new(0),
            versions_pruned: AtomicU64::new(0),
            publish_waits: AtomicU64::new(0),
        }
    }

    pub(crate) fn snapshot(&self) -> StmStatsSnapshot {
        StmStatsSnapshot {
            commits: self.commits.load(Ordering::Relaxed),
            read_only_commits: self.read_only_commits.load(Ordering::Relaxed),
            aborts: self.aborts.load(Ordering::Relaxed),
            versions_pruned: self.versions_pruned.load(Ordering::Relaxed),
            publish_waits: self.publish_waits.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of the [`StmStats`] counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StmStatsSnapshot {
    /// Successful top-level commits (update + read-only).
    pub commits: u64,
    /// Commits that needed no validation because the transaction read only.
    pub read_only_commits: u64,
    /// Commit- or read-time conflicts that forced a re-execution.
    pub aborts: u64,
    /// Old versions removed by commit-time GC.
    pub versions_pruned: u64,
    /// Commits that had to spin for an earlier version ticket before
    /// publishing (contention signal on the in-order publication step).
    pub publish_waits: u64,
}

impl StmStatsSnapshot {
    /// Aborts / (commits + aborts); 0 when idle.
    pub fn abort_rate(&self) -> f64 {
        let attempts = self.commits + self.aborts;
        if attempts == 0 {
            0.0
        } else {
            self.aborts as f64 / attempts as f64
        }
    }

    /// Counters gained since `earlier` (parity with
    /// `TmStatsSnapshot::delta_since`), so multi-run processes sharing
    /// one `Stm` don't double-count earlier runs' activity.
    pub fn delta_since(&self, earlier: &StmStatsSnapshot) -> StmStatsSnapshot {
        StmStatsSnapshot {
            commits: self.commits - earlier.commits,
            read_only_commits: self.read_only_commits - earlier.read_only_commits,
            aborts: self.aborts - earlier.aborts,
            versions_pruned: self.versions_pruned - earlier.versions_pruned,
            publish_waits: self.publish_waits - earlier.publish_waits,
        }
    }

    /// `(name, value)` pairs in declaration order — the single list the
    /// JSON exporters iterate, so they can't drift from the fields.
    pub fn fields(&self) -> [(&'static str, u64); 5] {
        [
            ("commits", self.commits),
            ("read_only_commits", self.read_only_commits),
            ("aborts", self.aborts),
            ("versions_pruned", self.versions_pruned),
            ("publish_waits", self.publish_waits),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta() {
        let stats = StmStats::new();
        stats.commits.fetch_add(5, Ordering::Relaxed);
        stats.aborts.fetch_add(2, Ordering::Relaxed);
        let before = stats.snapshot();
        stats.commits.fetch_add(3, Ordering::Relaxed);
        stats.publish_waits.fetch_add(1, Ordering::Relaxed);
        let d = stats.snapshot().delta_since(&before);
        assert_eq!(d.commits, 3);
        assert_eq!(d.aborts, 0);
        assert_eq!(d.publish_waits, 1);
        assert_eq!(d.abort_rate(), 0.0);
    }

    #[test]
    fn fields_cover_every_counter() {
        let snap = StmStatsSnapshot {
            commits: 1,
            read_only_commits: 2,
            aborts: 3,
            versions_pruned: 4,
            publish_waits: 5,
        };
        // Sum over fields() must equal the sum of all struct fields: a
        // counter missing from fields() breaks this identity.
        let total: u64 = snap.fields().iter().map(|(_, v)| v).sum();
        assert_eq!(total, 1 + 2 + 3 + 4 + 5);
    }
}
