//! Unit tests for the multi-versioned STM substrate.

use crate::{raw, Stm, StmError, VBox};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

#[test]
fn read_own_writes() {
    let stm = Stm::new();
    let b = VBox::new(&stm, 1i64);
    let out = stm
        .atomic(|tx| {
            tx.write(&b, 5)?;
            tx.read(&b)
        })
        .unwrap();
    assert_eq!(out, 5);
    assert_eq!(b.read_latest(), 5);
}

#[test]
fn snapshot_isolation_within_txn() {
    let stm = Stm::new();
    let b = VBox::new(&stm, 0i64);
    // Commit a few versions.
    for i in 1..=3 {
        stm.atomic(|tx| tx.write(&b, i)).unwrap();
    }
    assert_eq!(b.read_latest(), 3);
    assert_eq!(stm.clock(), 3);
}

#[test]
fn read_only_commit_is_validation_free() {
    let stm = Stm::new();
    let b = VBox::new(&stm, 7i64);
    stm.atomic(|tx| tx.read(&b)).unwrap();
    let s = stm.stats();
    assert_eq!(s.commits, 1);
    assert_eq!(s.read_only_commits, 1);
    assert_eq!(s.aborts, 0);
}

#[test]
fn conflicting_writers_abort_and_retry() {
    // Interleave two transactions by hand through the raw API: T1 reads x,
    // T2 commits x, T1's commit must fail validation.
    let stm = Stm::new();
    let x = VBox::new(&stm, 0i64);
    let y = VBox::new(&stm, 0i64);

    let snap1 = raw::acquire_snapshot(&stm);
    let body_x = raw::body_of(&x);
    let (v0, _) = raw::read_at(&body_x, snap1.version());
    assert_eq!(v0, 0);

    // T2 commits a write to x.
    stm.atomic(|tx| tx.write(&x, 99)).unwrap();

    // T1 tries to commit {read x, write y} at the old snapshot: conflict.
    let body_y = raw::body_of(&y);
    let err = raw::commit_raw(
        &stm,
        snap1.version(),
        [&body_x],
        vec![(body_y, Arc::new(1i64) as crate::Value)],
    )
    .unwrap_err();
    assert_eq!(err, StmError::Conflict);
}

#[test]
fn blind_write_commits_without_validation_failure() {
    let stm = Stm::new();
    let x = VBox::new(&stm, 0i64);

    let snap1 = raw::acquire_snapshot(&stm);
    // Concurrent committer bumps x.
    stm.atomic(|tx| tx.write(&x, 5)).unwrap();
    // Blind write (no reads) from the old snapshot still commits: the
    // transaction is logically instantaneous at commit time.
    let body_x = raw::body_of(&x);
    raw::commit_raw(
        &stm,
        snap1.version(),
        std::iter::empty(),
        vec![(body_x, Arc::new(10i64) as crate::Value)],
    )
    .unwrap();
    assert_eq!(x.read_latest(), 10);
}

#[test]
fn old_snapshot_reads_old_version() {
    let stm = Stm::new();
    let x = VBox::new(&stm, 1i64);
    let snap = raw::acquire_snapshot(&stm);
    stm.atomic(|tx| tx.write(&x, 2)).unwrap();
    stm.atomic(|tx| tx.write(&x, 3)).unwrap();
    let body = raw::body_of(&x);
    let (ver, val) = raw::read_at(&body, snap.version());
    assert_eq!(ver, 0);
    assert_eq!(*val.downcast_ref::<i64>().unwrap(), 1);
    // And the latest snapshot sees the newest.
    assert_eq!(x.read_latest(), 3);
}

#[test]
fn gc_prunes_unreachable_versions() {
    let stm = Stm::new();
    let x = VBox::new(&stm, 0i64);
    for i in 1..=50 {
        stm.atomic(|tx| tx.write(&x, i)).unwrap();
    }
    // No active snapshots: each commit prunes everything older than itself.
    assert_eq!(x.version_chain_len(), 1);
    assert!(stm.stats().versions_pruned >= 49);
}

#[test]
fn gc_respects_active_snapshots() {
    let stm = Stm::new();
    let x = VBox::new(&stm, 0i64);
    stm.atomic(|tx| tx.write(&x, 1)).unwrap();
    let snap = raw::acquire_snapshot(&stm); // pins version 1
    for i in 2..=20 {
        stm.atomic(|tx| tx.write(&x, i)).unwrap();
    }
    // Versions newer than the pinned snapshot are all kept, plus the
    // version the snapshot reads: 19 new + 1 pinned.
    assert_eq!(x.version_chain_len(), 20);
    let body = raw::body_of(&x);
    let (ver, val) = raw::read_at(&body, snap.version());
    assert_eq!((ver, *val.downcast_ref::<i64>().unwrap()), (1, 1));
    drop(snap);
    stm.atomic(|tx| tx.write(&x, 100)).unwrap();
    assert_eq!(x.version_chain_len(), 1);
}

#[test]
fn gc_can_be_disabled() {
    let stm = Stm::new();
    stm.set_gc_enabled(false);
    let x = VBox::new(&stm, 0i64);
    for i in 1..=10 {
        stm.atomic(|tx| tx.write(&x, i)).unwrap();
    }
    assert_eq!(x.version_chain_len(), 11);
}

#[test]
fn explicit_abort_propagates() {
    let stm = Stm::new();
    let x = VBox::new(&stm, 0i64);
    let res: Result<(), _> = stm.atomic(|tx| {
        tx.write(&x, 42)?;
        tx.abort()
    });
    assert!(res.is_err());
    // The aborted write must not be visible.
    assert_eq!(x.read_latest(), 0);
}

#[test]
fn atomic_retries_on_conflict_until_success() {
    // Force one conflict by committing a competing write between the
    // body's read and its commit, using a flag to only interfere once.
    let stm = Stm::new();
    let x = VBox::new(&stm, 0i64);
    let interfered = AtomicBool::new(false);
    let stm2 = stm.clone();
    let x2 = x.clone();
    let out = stm
        .atomic(|tx| {
            let v = tx.read(&x)?;
            if !interfered.swap(true, Ordering::SeqCst) {
                // Sneak in a conflicting commit from "another thread".
                stm2.atomic(|t2| {
                    let cur = t2.read(&x2)?;
                    t2.write(&x2, cur + 100)
                })
                .unwrap();
            }
            tx.write(&x, v + 1)?;
            Ok(v + 1)
        })
        .unwrap();
    // First attempt read 0 but aborted; retry read 100 and wrote 101.
    assert_eq!(out, 101);
    assert_eq!(x.read_latest(), 101);
    assert_eq!(stm.stats().aborts, 1);
}

#[test]
fn heterogeneous_box_types() {
    let stm = Stm::new();
    let a = VBox::new(&stm, String::from("hi"));
    let b = VBox::new(&stm, vec![1u8, 2, 3]);
    let c = VBox::new(&stm, 2.5f64);
    stm.atomic(|tx| {
        let s = tx.read(&a)?;
        tx.write(&a, format!("{s}!"))?;
        let mut v = tx.read(&b)?;
        v.push(4);
        tx.write(&b, v)?;
        let f = tx.read(&c)?;
        tx.write(&c, f * 2.0)
    })
    .unwrap();
    assert_eq!(a.read_latest(), "hi!");
    assert_eq!(b.read_latest(), vec![1, 2, 3, 4]);
    assert_eq!(c.read_latest(), 5.0);
}

#[test]
fn concurrent_bank_invariant_real_threads() {
    // Classic invariant stress: total balance is conserved under
    // concurrent random transfers.
    const ACCOUNTS: usize = 32;
    const THREADS: usize = 4;
    const TRANSFERS: usize = 500;
    let stm = Stm::new();
    let accounts: Arc<Vec<VBox<i64>>> = Arc::new(
        (0..ACCOUNTS)
            .map(|_| VBox::new(&stm, 1000i64))
            .collect::<Vec<_>>(),
    );
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let stm = stm.clone();
            let accounts = accounts.clone();
            std::thread::spawn(move || {
                let mut seed = 0x243f_6a88_85a3_08d3u64 ^ (t as u64);
                let mut next = || {
                    seed ^= seed << 13;
                    seed ^= seed >> 7;
                    seed ^= seed << 17;
                    seed
                };
                let mut done = 0;
                while done < TRANSFERS {
                    let from = (next() % ACCOUNTS as u64) as usize;
                    let to = (next() % ACCOUNTS as u64) as usize;
                    if from == to {
                        // A self-transfer with read-both-then-write-both
                        // ordering legitimately nets +amount; skip it so the
                        // conservation invariant stays exact.
                        continue;
                    }
                    done += 1;
                    let amount = (next() % 50) as i64;
                    stm.atomic(|tx| {
                        let f = tx.read(&accounts[from])?;
                        let t = tx.read(&accounts[to])?;
                        tx.write(&accounts[from], f - amount)?;
                        tx.write(&accounts[to], t + amount)?;
                        Ok(())
                    })
                    .unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let total = stm
        .atomic(|tx| {
            let mut sum = 0i64;
            for a in accounts.iter() {
                sum += tx.read(a)?;
            }
            Ok(sum)
        })
        .unwrap();
    assert_eq!(total, 1000 * ACCOUNTS as i64);
    assert_eq!(stm.stats().commits, THREADS as u64 * TRANSFERS as u64 + 1);
}

#[test]
fn snapshot_registry_counts() {
    let stm = Stm::new();
    assert_eq!(raw::active_snapshots(&stm), 0);
    let s1 = raw::acquire_snapshot(&stm);
    let s2 = raw::acquire_snapshot(&stm);
    assert_eq!(raw::active_snapshots(&stm), 1); // same version, one entry
    let x = VBox::new(&stm, 0i64);
    stm.atomic(|tx| tx.write(&x, 1)).unwrap();
    let s3 = raw::acquire_snapshot(&stm);
    assert_eq!(raw::active_snapshots(&stm), 2);
    drop(s1);
    drop(s2);
    drop(s3);
    assert_eq!(raw::active_snapshots(&stm), 0);
}

#[test]
fn tracer_attributes_conflicts_and_measures_commits() {
    use wtf_trace::{TraceLevel, Tracer};
    let tracer = Tracer::new(TraceLevel::Lifecycle);
    let stm = Stm::with_tracer(Arc::clone(&tracer));
    let x = VBox::new(&stm, 0i64);
    let y = VBox::new(&stm, 0i64);

    // Interleave by hand as in `conflicting_writers_abort_and_retry`:
    // T1 reads x at an old snapshot; T2 bumps x; T1's commit conflicts.
    let snap1 = raw::acquire_snapshot(&stm);
    let body_x = raw::body_of(&x);
    raw::read_at(&body_x, snap1.version());
    stm.atomic(|tx| tx.write(&x, 99)).unwrap();
    let body_y = raw::body_of(&y);
    let err = raw::commit_raw(
        &stm,
        snap1.version(),
        [&body_x],
        vec![(body_y, Arc::new(1i64) as crate::Value)],
    )
    .unwrap_err();
    assert_eq!(err, StmError::Conflict);

    // The abort is charged to x, the box whose validation failed.
    let summary = tracer.summary();
    assert_eq!(summary.conflict_total, 1);
    assert_eq!(summary.hotspots, vec![(raw::id_of(&raw::body_of(&x)).0, 1)]);
    // The successful commit fed the latency histograms.
    assert_eq!(summary.commit_latency.count, 1);
    assert_eq!(summary.validation_latency.count, 1);
    assert_eq!(summary.publish_wait.count, 1);
    assert!(tracer.events_recorded() > 0);
}

#[test]
fn disabled_tracer_stm_records_nothing() {
    let stm = Stm::new();
    let x = VBox::new(&stm, 0i64);
    for i in 0..10 {
        stm.atomic(|tx| tx.write(&x, i)).unwrap();
    }
    let summary = stm.tracer().summary();
    assert!(!summary.enabled());
    assert_eq!(summary.events_recorded, 0);
    assert_eq!(summary.commit_latency.count, 0);
    assert_eq!(summary.conflict_total, 0);
}

mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Sequential oracle check: a random sequence of single-threaded
    /// transactions over a few boxes behaves exactly like plain variables.
    #[derive(Debug, Clone)]
    enum Op {
        Add(usize, i64),
        Copy(usize, usize),
        Swap(usize, usize),
    }

    fn op_strategy(nboxes: usize) -> impl Strategy<Value = Op> {
        prop_oneof![
            (0..nboxes, -100i64..100).prop_map(|(i, d)| Op::Add(i, d)),
            (0..nboxes, 0..nboxes).prop_map(|(a, b)| Op::Copy(a, b)),
            (0..nboxes, 0..nboxes).prop_map(|(a, b)| Op::Swap(a, b)),
        ]
    }

    proptest! {
        #[test]
        fn matches_sequential_oracle(ops in proptest::collection::vec(op_strategy(4), 1..60)) {
            let stm = Stm::new();
            let boxes: Vec<VBox<i64>> = (0..4).map(|i| VBox::new(&stm, i as i64)).collect();
            let mut oracle = [0i64, 1, 2, 3];
            for op in &ops {
                match *op {
                    Op::Add(i, d) => {
                        stm.atomic(|tx| {
                            let v = tx.read(&boxes[i])?;
                            tx.write(&boxes[i], v + d)
                        }).unwrap();
                        oracle[i] += d;
                    }
                    Op::Copy(a, b) => {
                        stm.atomic(|tx| {
                            let v = tx.read(&boxes[a])?;
                            tx.write(&boxes[b], v)
                        }).unwrap();
                        oracle[b] = oracle[a];
                    }
                    Op::Swap(a, b) => {
                        stm.atomic(|tx| {
                            let va = tx.read(&boxes[a])?;
                            let vb = tx.read(&boxes[b])?;
                            tx.write(&boxes[a], vb)?;
                            tx.write(&boxes[b], va)
                        }).unwrap();
                        oracle.swap(a, b);
                    }
                }
            }
            for (i, b) in boxes.iter().enumerate() {
                prop_assert_eq!(b.read_latest(), oracle[i]);
            }
        }

        #[test]
        fn version_chains_never_lose_newest(writes in 1usize..40) {
            let stm = Stm::new();
            let x = VBox::new(&stm, 0usize);
            for i in 1..=writes {
                stm.atomic(|tx| tx.write(&x, i)).unwrap();
            }
            prop_assert_eq!(x.read_latest(), writes);
            prop_assert_eq!(x.version_chain_len(), 1);
        }
    }
}

/// Regression test for the snapshot-registration/GC race: readers begin
/// snapshots while writers commit-and-prune as fast as possible. Before
/// the fix (registration under the registry lock + pruning after clock
/// publication) this panicked with "no version visible at snapshot".
#[test]
fn snapshot_gc_race_regression() {
    let stm = Stm::new();
    let x = VBox::new(&stm, 0i64);
    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let stm = stm.clone();
        let x = x.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut i = 0i64;
            while !stop.load(Ordering::Relaxed) {
                stm.atomic(|tx| tx.write(&x, i)).unwrap();
                i += 1;
            }
        })
    };
    let readers: Vec<_> = (0..3)
        .map(|_| {
            let stm = stm.clone();
            let x = x.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    // begin a snapshot and read through it immediately
                    let snap = raw::acquire_snapshot(&stm);
                    let body = raw::body_of(&x);
                    let (ver, _) = raw::read_at(&body, snap.version());
                    assert!(ver <= snap.version());
                }
            })
        })
        .collect();
    std::thread::sleep(std::time::Duration::from_millis(300));
    stop.store(true, Ordering::Relaxed);
    writer.join().unwrap();
    for r in readers {
        r.join().unwrap();
    }
}

/// The commit path must have no global mutex: holding one stripe hostage
/// stalls only commits whose footprint includes that stripe, while
/// commits on disjoint stripes sail through.
#[test]
fn disjoint_commits_proceed_while_stripe_is_held() {
    let stm = Stm::new();
    let a = VBox::new(&stm, 0i64);
    let mut b = VBox::new(&stm, 0i64);
    while raw::stripe_index(b.id()) == raw::stripe_index(a.id()) {
        b = VBox::new(&stm, 0i64);
    }

    let hostage = raw::hold_stripe(&stm, raw::stripe_index(a.id()));

    // A commit touching only b's stripe completes while a's is hostage.
    // (With the old global commit mutex this join would hang forever.)
    {
        let stm = stm.clone();
        let b = b.clone();
        std::thread::spawn(move || stm.atomic(|tx| tx.write(&b, 1)).unwrap())
            .join()
            .unwrap();
    }
    assert_eq!(b.read_latest(), 1);

    // A commit touching a's stripe blocks until the hostage is released.
    let (done_tx, done_rx) = std::sync::mpsc::channel();
    let blocked = {
        let stm = stm.clone();
        let a = a.clone();
        std::thread::spawn(move || {
            stm.atomic(|tx| tx.write(&a, 1)).unwrap();
            done_tx.send(()).unwrap();
        })
    };
    assert!(
        done_rx
            .recv_timeout(std::time::Duration::from_millis(150))
            .is_err(),
        "commit on the held stripe should be blocked"
    );
    drop(hostage);
    done_rx
        .recv_timeout(std::time::Duration::from_secs(10))
        .expect("commit should complete once the stripe is released");
    blocked.join().unwrap();
    assert_eq!(a.read_latest(), 1);
}

/// Direct race on the sharded registry: while one snapshot stays pinned,
/// the GC horizon returned to a concurrent committer must never exceed
/// it, no matter how hard other threads churn register/deregister
/// against a moving clock.
#[test]
fn registry_horizon_never_exceeds_live_snapshot() {
    use crate::registry::ActiveRegistry;
    use std::sync::atomic::AtomicU64;

    let reg = Arc::new(ActiveRegistry::new());
    let clock = Arc::new(AtomicU64::new(0));
    let (pin_ver, pin_token) = reg.register_current(&clock);
    assert_eq!(pin_ver, 0);

    let stop = Arc::new(AtomicBool::new(false));
    let ticker = {
        let clock = clock.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                clock.fetch_add(1, Ordering::SeqCst);
            }
        })
    };
    let churners: Vec<_> = (0..4)
        .map(|_| {
            let reg = reg.clone();
            let clock = clock.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let (v, t) = reg.register_current(&clock);
                    reg.deregister(t, v);
                }
            })
        })
        .collect();

    let deadline = std::time::Instant::now() + std::time::Duration::from_millis(300);
    while std::time::Instant::now() < deadline {
        let fallback = clock.load(Ordering::SeqCst);
        let horizon = reg.min_active_excluding(u64::MAX, fallback);
        assert!(
            horizon <= pin_ver,
            "GC horizon {horizon} exceeded pinned live snapshot {pin_ver}"
        );
    }

    stop.store(true, Ordering::Relaxed);
    ticker.join().unwrap();
    for c in churners {
        c.join().unwrap();
    }
    reg.deregister(pin_token, pin_ver);
    assert_eq!(reg.min_active_excluding(u64::MAX, 12345), 12345);
    assert_eq!(reg.active_snapshots(), 0);
    assert_eq!(reg.occupancy(), 0);
}

/// The live gauges registered by a traced STM track retained versions,
/// GC horizon lag and registry occupancy through a pin-then-release
/// scenario.
#[test]
fn live_gauges_track_versions_and_horizon() {
    use wtf_trace::{TraceLevel, Tracer};
    let tracer = Tracer::new(TraceLevel::Lifecycle);
    let stm = Stm::with_tracer(tracer.clone());
    let gauge = |name: &str| {
        tracer
            .gauges
            .read_all()
            .into_iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v)
            .unwrap_or_else(|| panic!("gauge {name} registered"))
    };
    let b = VBox::new(&stm, 0i64);
    stm.atomic(|tx| tx.write(&b, 1)).unwrap();
    assert_eq!(gauge("stm_clock"), 1);
    assert_eq!(gauge("stm_gc_horizon_lag"), 0, "nothing active");
    assert_eq!(gauge("stm_registry_occupancy"), 0);
    // Pin the current snapshot, then commit twice more: GC cannot prune
    // past the pin, so retained versions and horizon lag both grow.
    let pin = raw::acquire_snapshot(&stm);
    for i in 2..=3 {
        stm.atomic(|tx| tx.write(&b, i)).unwrap();
    }
    assert_eq!(gauge("stm_clock"), 3);
    assert_eq!(gauge("stm_gc_horizon_lag"), 3 - pin.version());
    assert_eq!(gauge("stm_registry_occupancy"), 1);
    assert_eq!(gauge("stm_active_snapshots"), 1);
    assert!(
        gauge("stm_retained_versions") >= 2,
        "pinned chain retains the pinned version plus the head"
    );
    drop(pin);
    // Releasing the pin lets the next commit's GC collapse the chain.
    stm.atomic(|tx| tx.write(&b, 4)).unwrap();
    assert_eq!(gauge("stm_gc_horizon_lag"), 0);
    assert_eq!(gauge("stm_retained_versions"), stm.retained_versions());
    assert_eq!(stm.gc_horizon_lag(), 0);
}

/// End-to-end churn: snapshot register/deregister racing committing
/// pruners. Reads through a live snapshot must never fall off the chain,
/// and once everything quiesces GC collapses each chain to one version.
#[test]
fn registry_churn_vs_pruning_commits() {
    let stm = Stm::new();
    let boxes: Vec<VBox<i64>> = (0..4).map(|_| VBox::new(&stm, 0i64)).collect();
    let stop = Arc::new(AtomicBool::new(false));

    let writers: Vec<_> = (0..2)
        .map(|w| {
            let stm = stm.clone();
            let boxes = boxes.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut i = 0i64;
                while !stop.load(Ordering::Relaxed) {
                    let b = &boxes[(w * 2 + (i as usize & 1)) % boxes.len()];
                    stm.atomic(|tx| tx.write(b, i)).unwrap();
                    i += 1;
                }
            })
        })
        .collect();
    let churners: Vec<_> = (0..3)
        .map(|c| {
            let stm = stm.clone();
            let boxes = boxes.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let snap = raw::acquire_snapshot(&stm);
                    for b in boxes.iter().skip(c % boxes.len()) {
                        let body = raw::body_of(b);
                        let (ver, _) = raw::read_at(&body, snap.version());
                        assert!(ver <= snap.version());
                    }
                    // chain_len takes the box stripe: also races the pruners.
                    assert!(boxes[c % boxes.len()].version_chain_len() >= 1);
                }
            })
        })
        .collect();

    std::thread::sleep(std::time::Duration::from_millis(300));
    stop.store(true, Ordering::Relaxed);
    for w in writers {
        w.join().unwrap();
    }
    for c in churners {
        c.join().unwrap();
    }
    // Quiesce: one more pruning commit per box collapses every chain.
    for b in &boxes {
        stm.atomic(|tx| tx.write(b, -1)).unwrap();
        assert_eq!(b.version_chain_len(), 1);
    }
}

mod chain_proptests {
    use crate::stripe::StripeTable;
    use crate::value::Value;
    use crate::vbox::BoxBody;
    use crate::BoxId;
    use proptest::prelude::*;
    use std::sync::Arc;

    proptest! {
        /// Oracle check for the lock-free cons-list chain: arbitrary
        /// interleavings of install / read_at / prune behave exactly like
        /// a newest-first vector, `read_at` always returns the newest
        /// version at-or-below the snapshot, and prune never drops the
        /// newest version at-or-below its horizon.
        #[test]
        fn chain_matches_oracle(ops in proptest::collection::vec((0u8..3, 1u64..4, 0u64..64), 1..80)) {
            let stripes = Arc::new(StripeTable::new());
            let id = BoxId(0);
            let body = BoxBody::new(id, stripes.clone(), 0, Arc::new(0u64) as Value);
            // Oracle chain, newest first: (version, value).
            let mut oracle: Vec<(u64, u64)> = vec![(0, 0)];
            let mut last_version = 0u64;
            let mut next_value = 0u64;
            for &(kind, gap, pick) in &ops {
                match kind {
                    0 => {
                        last_version += gap; // gaps model skipped tickets elsewhere
                        next_value += 1;
                        {
                            let _stripe = stripes.lock_mask(StripeTable::mask_of(id));
                            body.install(last_version, Arc::new(next_value) as Value);
                        }
                        oracle.insert(0, (last_version, next_value));
                    }
                    1 => {
                        let snapshot = pick % (last_version + 2);
                        // When all versions <= snapshot were pruned away,
                        // read_at would (correctly) panic — no live
                        // transaction can hold such a snapshot — so only
                        // read when the oracle says something is visible.
                        if let Some(&(ev, eval)) = oracle.iter().find(|(v, _)| *v <= snapshot) {
                            let (rv, rval) = body.read_at(snapshot);
                            prop_assert_eq!(rv, ev);
                            prop_assert_eq!(*rval.downcast_ref::<u64>().unwrap(), eval);
                        }
                    }
                    _ => {
                        let min_active = pick % (last_version + 2);
                        {
                            let _stripe = stripes.lock_mask(StripeTable::mask_of(id));
                            body.prune(min_active);
                        }
                        if let Some(keep) = oracle.iter().position(|(v, _)| *v <= min_active) {
                            oracle.truncate(keep + 1);
                            // The newest version <= min_active must survive.
                            let (rv, _) = body.read_at(min_active);
                            prop_assert_eq!(rv, oracle[oracle.len() - 1].0);
                        }
                    }
                }
                prop_assert_eq!(body.chain_len(), oracle.len());
            }
        }
    }
}
