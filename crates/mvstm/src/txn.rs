//! User-level top-level transactions (the plain "JVSTM" baseline).

use crate::hash::FxHashMap;
use crate::raw::{self, Snapshot};
use crate::value::{downcast_value, BoxId, TxValue, Value};
use crate::vbox::BoxBody;
use crate::{Stm, VBox};
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Why a transactional operation could not proceed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StmError {
    /// Concurrency conflict; the transaction must be re-executed.
    Conflict,
    /// The program explicitly aborted the transaction.
    UserAbort,
}

/// The transaction was explicitly aborted by the program (not retried).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Aborted;

impl std::fmt::Display for Aborted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "transaction aborted explicitly")
    }
}

impl std::error::Error for Aborted {}

/// Result type of transactional operations and bodies.
pub type TxResult<T> = Result<T, StmError>;

/// An in-flight top-level transaction. Created by [`Stm::atomic`].
pub struct Txn<'s> {
    stm: &'s Stm,
    snapshot: Snapshot,
    /// Body plus the version the first read observed — the observed
    /// version is what the commit-time serialization record
    /// ([`EventKind::CommitRead`](wtf_trace::EventKind)) re-emits, and it
    /// must be captured at read time: after our own commit, GC may have
    /// pruned the version we actually read.
    read_set: FxHashMap<BoxId, (Arc<BoxBody>, u64)>,
    write_set: FxHashMap<BoxId, (Arc<BoxBody>, Value)>,
}

impl<'s> Txn<'s> {
    pub(crate) fn begin(stm: &'s Stm) -> Txn<'s> {
        Txn {
            stm,
            snapshot: raw::acquire_snapshot(stm),
            read_set: FxHashMap::default(),
            write_set: FxHashMap::default(),
        }
    }

    /// The snapshot version this transaction reads at.
    pub fn snapshot_version(&self) -> u64 {
        self.snapshot.version()
    }

    /// Transactional read. Sees the transaction's own writes, else the
    /// begin snapshot. Never observes an inconsistent state (opacity by
    /// multi-versioning), hence never fails on its own — the `TxResult`
    /// return type exists for signature uniformity with the futures-aware
    /// contexts in `wtf-core`, where reads can detect dooming.
    pub fn read<T: TxValue>(&mut self, vbox: &VBox<T>) -> TxResult<T> {
        if let Some((_, v)) = self.write_set.get(&vbox.body.id) {
            return Ok(downcast_value(v));
        }
        let (version, value) = vbox.body.read_at(self.snapshot.version());
        self.stm
            .inner
            .tracer
            .record_full(wtf_trace::EventKind::StmRead, vbox.body.id.0, version);
        self.read_set
            .entry(vbox.body.id)
            .or_insert_with(|| (vbox.body.clone(), version));
        Ok(downcast_value(&value))
    }

    /// Transactional write: buffered privately until commit.
    pub fn write<T: TxValue>(&mut self, vbox: &VBox<T>, value: T) -> TxResult<()> {
        self.write_set
            .insert(vbox.body.id, (vbox.body.clone(), Arc::new(value)));
        Ok(())
    }

    /// Explicitly aborts: [`Stm::atomic`] will *not* retry.
    pub fn abort<T>(&mut self) -> TxResult<T> {
        Err(StmError::UserAbort)
    }

    /// Number of boxes read so far (excluding write-only accesses).
    pub fn reads(&self) -> usize {
        self.read_set.len()
    }

    /// Number of boxes written so far.
    pub fn writes(&self) -> usize {
        self.write_set.len()
    }

    /// Validates and publishes the transaction. Outside [`Stm::atomic`]'s
    /// retry loop this is driven directly only by schedule explorers
    /// (`wtf-check`), which treat a `Conflict` as a final abort rather
    /// than retrying.
    pub fn commit(self) -> Result<(), StmError> {
        self.commit_attributed().map_err(|_| StmError::Conflict)
    }

    /// Like [`Txn::commit`], but a validation failure names the box whose
    /// version check failed — the attribution [`Stm::atomic`] feeds its
    /// contention manager. Read-only commits cannot conflict.
    pub fn commit_attributed(self) -> Result<(), BoxId> {
        let stm = self.stm;
        if self.write_set.is_empty() {
            // The multi-version property: read-only transactions observed a
            // consistent snapshot and can commit with no validation at all.
            stm.inner.stats.commits.fetch_add(1, Ordering::Relaxed);
            stm.inner
                .stats
                .read_only_commits
                .fetch_add(1, Ordering::Relaxed);
            // Serialization record: a read-only commit serializes at its
            // snapshot version.
            let snapshot = self.snapshot.version();
            Self::record_commit(stm, &self.read_set, snapshot, snapshot);
            return Ok(());
        }
        let snapshot = self.snapshot.version();
        let version = raw::commit_attributed(
            stm,
            snapshot,
            self.read_set.values().map(|(body, _)| body),
            self.write_set.into_values().collect(),
        )?;
        Self::record_commit(stm, &self.read_set, version, snapshot);
        Ok(())
    }

    /// Emits the commit-time serialization record at Full detail: one
    /// [`CommitRead`](wtf_trace::EventKind::CommitRead) per read-set entry
    /// followed by the [`TxnCommit`](wtf_trace::EventKind::TxnCommit)
    /// marker, contiguous on the committing thread's lane so offline
    /// checkers can attribute the reads to this commit.
    fn record_commit(
        stm: &Stm,
        read_set: &FxHashMap<BoxId, (Arc<BoxBody>, u64)>,
        version: u64,
        snapshot: u64,
    ) {
        let tracer = &stm.inner.tracer;
        let mut reads: Vec<(BoxId, u64)> = read_set
            .iter()
            .map(|(id, (_, observed))| (*id, *observed))
            .collect();
        reads.sort_unstable();
        for (id, observed) in reads {
            tracer.record_full(wtf_trace::EventKind::CommitRead, id.0, observed);
        }
        tracer.record_full(wtf_trace::EventKind::TxnCommit, version, snapshot);
    }
}
