//! Active-transaction registry: JVSTM's `ActiveTransactionsRecord`.
//!
//! Tracks which snapshot versions are still in use so that commit-time GC
//! can prune version chains down to the oldest live snapshot.

use parking_lot::Mutex;
use std::collections::BTreeMap;

pub(crate) struct ActiveRegistry {
    /// snapshot version -> number of active transactions begun there.
    active: Mutex<BTreeMap<u64, usize>>,
}

impl ActiveRegistry {
    pub(crate) fn new() -> Self {
        ActiveRegistry {
            active: Mutex::new(BTreeMap::new()),
        }
    }

    /// Atomically reads the clock and registers a transaction at that
    /// snapshot, under the registry lock.
    ///
    /// The lock closes the registration/GC race: a committer computes its
    /// GC horizon under the same lock *after* publishing the new clock
    /// value, so either this registration is visible to it (the snapshot's
    /// versions are kept) or the published clock is visible to us (we
    /// snapshot at the new version, which is never pruned).
    pub(crate) fn register_current(&self, clock: &std::sync::atomic::AtomicU64) -> u64 {
        let mut m = self.active.lock();
        let snapshot = clock.load(std::sync::atomic::Ordering::Acquire);
        *m.entry(snapshot).or_insert(0) += 1;
        snapshot
    }

    /// Deregisters a transaction that began at `snapshot`.
    pub(crate) fn deregister(&self, snapshot: u64) {
        let mut m = self.active.lock();
        match m.get_mut(&snapshot) {
            Some(n) if *n > 1 => *n -= 1,
            Some(_) => {
                m.remove(&snapshot);
            }
            None => unreachable!("deregister without matching register"),
        }
    }

    /// Oldest snapshot still in use, or `fallback` (the current clock) if
    /// no transaction is active: versions older than this are unreachable.
    ///
    /// `excluding` discounts one registration at that version — the
    /// committing transaction's own snapshot, which dies with the commit
    /// and must not pin old versions on its own behalf.
    pub(crate) fn min_active_excluding(&self, excluding: u64, fallback: u64) -> u64 {
        let m = self.active.lock();
        for (&version, &count) in m.iter() {
            if version == excluding && count == 1 {
                continue;
            }
            return version;
        }
        fallback
    }

    /// Number of distinct active snapshots (diagnostics).
    pub(crate) fn active_snapshots(&self) -> usize {
        self.active.lock().len()
    }
}
