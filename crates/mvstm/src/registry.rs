//! Active-transaction registry: JVSTM's `ActiveTransactionsRecord`.
//!
//! Tracks which snapshot versions are still in use so that commit-time GC
//! can prune version chains down to the oldest live snapshot.
//!
//! The registry is a sharded slot array rather than a mutex-protected
//! map: registration claims a per-shard atomic slot (threads cache their
//! last shard so repeat registrations hit a warm, uncontended line),
//! deregistration is a single store, and the GC horizon scan
//! ([`ActiveRegistry::min_active_excluding`]) reads the slots lock-free,
//! skipping whole shards whose occupancy counter is zero. A small
//! mutex-protected overflow map catches the (never-in-practice) case of
//! more than [`SLOT_COUNT`] simultaneous transactions.
//!
//! ## Why the lock-free registration/GC race is safe
//!
//! The danger is a GC horizon that *exceeds* a live snapshot: a committer
//! would then free versions that snapshot can still read. Every operation
//! in the registration/GC protocol uses `SeqCst` (the pure diagnostics
//! accessors at the bottom are relaxed — they decide nothing), so there
//! is a single total order `S` over them.
//! Consider a registrant R and a committer C publishing version `v`
//! (a `SeqCst` store of the clock in `commit_raw`):
//!
//! * R increments its shard's occupancy, claims a slot with some clock
//!   reading, then **re-reads the clock and republishes its slot until
//!   the value is stable** (a seqlock-style loop).
//! * C first publishes `clock = v`, then scans occupancy counters and
//!   slots.
//!
//! If R's final clock read precedes C's publication in `S`, R's snapshot
//! is `< v`; but then R's occupancy increment and slot store (which
//! precede that read in program order, hence in `S`) also precede C's
//! scan, so C sees the slot and keeps R's versions. If instead R's final
//! clock read follows the publication, R re-reads `>= v` and republishes
//! — its snapshot is at the new clock, which GC never prunes below.
//! Either way the horizon never exceeds a live snapshot. Stale *low*
//! values seen mid-loop only make GC more conservative, never less.

use parking_lot::Mutex;
use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Number of shards in the slot array.
pub(crate) const SHARDS: usize = 16;
/// Slots per shard.
pub(crate) const SLOTS_PER_SHARD: usize = 64;
/// Total fast-path capacity; registrations beyond this spill to the
/// overflow map.
pub(crate) const SLOT_COUNT: usize = SHARDS * SLOTS_PER_SHARD;

/// Slot value meaning "no registration here".
const EMPTY: u64 = u64::MAX;

/// Token returned for registrations that landed in the overflow map.
pub(crate) const OVERFLOW_TOKEN: usize = usize::MAX;

/// One registration slot, padded to a cache line so concurrent
/// register/deregister traffic on neighbouring slots does not false-share.
// ordering(Slot, slot, slots): seqcst-cas claims a free slot (the
// failure side is relaxed-cas — a busy slot is just skipped);
// seqcst-store republishes the chased clock and releases the slot;
// seqcst-load in the GC scan joins the single total order with the
// clock publication (module docs). relaxed-load only in the
// `active_snapshots` diagnostic probe. relaxed-guard: that probe's
// EMPTY filter gates reporting, never reclamation.
#[repr(align(64))]
struct Slot(AtomicU64);

/// Per-shard metadata, padded onto its own line.
#[repr(align(64))]
struct ShardMeta {
    /// Upper bound on the number of claimed slots in this shard. Always
    /// incremented *before* a slot is claimed and decremented *after* it
    /// is released, so `occupancy == 0` proves the shard is empty at some
    /// point during the scan and may be skipped.
    // ordering: seqcst-rmw on claim/release and seqcst-load in the GC
    // scan keep the increment-before-claim / decrement-after-release
    // discipline inside the registry's single total order; relaxed-load
    // only in the full-shard fast-path probe and the diagnostics
    // accessors. relaxed-guard: those probes are capacity hints — a
    // stale read sends registration to another shard or skews a gauge,
    // never frees a version.
    occupancy: AtomicUsize,
}

pub(crate) struct ActiveRegistry {
    slots: Box<[Slot]>,
    shards: Box<[ShardMeta]>,
    /// Spill map: snapshot version -> registration count. Only touched
    /// when the slot array is full.
    // lock-order: registry-overflow — a leaf lock: taken with stripe
    // locks already held on the commit/GC path, never the other way.
    overflow: Mutex<BTreeMap<u64, usize>>,
    /// Upper bound on overflow registrations; lets the scan skip the
    /// mutex entirely in the common case. Same increment-before /
    /// decrement-after discipline as shard occupancy.
    // ordering: seqcst-rmw register/deregister and seqcst-load in the GC
    // scan (module docs); relaxed-load in the diagnostics accessors.
    // relaxed-guard: the diagnostic nonzero checks only gate extra
    // reporting work, never reclamation.
    overflow_count: AtomicUsize,
}

thread_local! {
    /// Last slot index this thread registered in: repeat registrations
    /// re-claim the same (warm, thread-private in steady state) slot.
    static SLOT_HINT: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// Round-robin seed so threads start probing different shards.
// ordering: relaxed-rmw — a pure distribution hint; nothing is published
// through it.
static NEXT_THREAD: AtomicUsize = AtomicUsize::new(0);

impl ActiveRegistry {
    pub(crate) fn new() -> Self {
        ActiveRegistry {
            slots: (0..SLOT_COUNT)
                .map(|_| Slot(AtomicU64::new(EMPTY)))
                .collect(),
            shards: (0..SHARDS)
                .map(|_| ShardMeta {
                    occupancy: AtomicUsize::new(0),
                })
                .collect(),
            overflow: Mutex::new(BTreeMap::new()),
            overflow_count: AtomicUsize::new(0),
        }
    }

    /// Registers a transaction at the current clock value and returns
    /// `(snapshot, slot_token)`. The token must be passed back to
    /// [`ActiveRegistry::deregister`].
    ///
    /// See the module docs for why the slot-claim / clock-recheck loop
    /// makes this safe against a concurrent committer's GC scan.
    pub(crate) fn register_current(&self, clock: &AtomicU64) -> (u64, usize) {
        let hint = SLOT_HINT.with(|h| h.get());
        let start_shard = if hint != usize::MAX {
            hint / SLOTS_PER_SHARD
        } else {
            NEXT_THREAD.fetch_add(1, Ordering::Relaxed) % SHARDS
        };
        for probe in 0..SHARDS {
            let shard = (start_shard + probe) % SHARDS;
            let meta = &self.shards[shard];
            if meta.occupancy.load(Ordering::Relaxed) >= SLOTS_PER_SHARD {
                continue;
            }
            // Claim occupancy before touching any slot (see ShardMeta).
            meta.occupancy.fetch_add(1, Ordering::SeqCst);
            let base = shard * SLOTS_PER_SHARD;
            let first = if hint != usize::MAX && hint / SLOTS_PER_SHARD == shard {
                hint - base
            } else {
                0
            };
            for i in 0..SLOTS_PER_SHARD {
                let idx = base + (first + i) % SLOTS_PER_SHARD;
                let slot = &self.slots[idx].0;
                let mut snapshot = clock.load(Ordering::SeqCst);
                if slot
                    .compare_exchange(EMPTY, snapshot, Ordering::SeqCst, Ordering::Relaxed)
                    .is_err()
                {
                    continue;
                }
                // Republish until the clock is stable: any commit that
                // published between our clock read and the slot store
                // might have scanned before the store, so chase the
                // clock up to a value the next scan must honour.
                loop {
                    let now = clock.load(Ordering::SeqCst);
                    if now == snapshot {
                        break;
                    }
                    slot.store(now, Ordering::SeqCst);
                    snapshot = now;
                }
                SLOT_HINT.with(|h| h.set(idx));
                return (snapshot, idx);
            }
            // Shard turned out full; give the occupancy back.
            meta.occupancy.fetch_sub(1, Ordering::SeqCst);
        }
        self.register_overflow(clock)
    }

    /// Slow path: every slot busy. Registers in the mutex-protected map
    /// with the same publish-then-recheck discipline.
    #[cold]
    fn register_overflow(&self, clock: &AtomicU64) -> (u64, usize) {
        self.overflow_count.fetch_add(1, Ordering::SeqCst);
        let mut map = self.overflow.lock();
        let mut snapshot = clock.load(Ordering::SeqCst);
        *map.entry(snapshot).or_insert(0) += 1;
        loop {
            let now = clock.load(Ordering::SeqCst);
            if now == snapshot {
                break;
            }
            match map.get_mut(&snapshot) {
                Some(n) if *n > 1 => *n -= 1,
                _ => {
                    map.remove(&snapshot);
                }
            }
            *map.entry(now).or_insert(0) += 1;
            snapshot = now;
        }
        (snapshot, OVERFLOW_TOKEN)
    }

    /// Deregisters a transaction. `token` is the slot token returned by
    /// [`ActiveRegistry::register_current`]; `snapshot` is only consulted
    /// for overflow registrations.
    pub(crate) fn deregister(&self, token: usize, snapshot: u64) {
        if token == OVERFLOW_TOKEN {
            let mut map = self.overflow.lock();
            match map.get_mut(&snapshot) {
                Some(n) if *n > 1 => *n -= 1,
                Some(_) => {
                    map.remove(&snapshot);
                }
                None => unreachable!("overflow deregister without matching register"),
            }
            drop(map);
            self.overflow_count.fetch_sub(1, Ordering::SeqCst);
        } else {
            self.slots[token].0.store(EMPTY, Ordering::SeqCst);
            self.shards[token / SLOTS_PER_SHARD]
                .occupancy
                .fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// Oldest snapshot still in use, or `fallback` (the just-published
    /// clock) if no transaction is active: versions older than the result
    /// are unreachable and may be pruned.
    ///
    /// `excluding` discounts **one** registration at that version — the
    /// committing transaction's own snapshot, which dies with the commit
    /// and must not pin old versions on its own behalf. The scan is
    /// lock-free over the slot array (empty shards are skipped via their
    /// occupancy counters) and only takes the overflow mutex when the
    /// overflow count is nonzero.
    pub(crate) fn min_active_excluding(&self, excluding: u64, fallback: u64) -> u64 {
        let mut min: Option<u64> = None;
        let mut excluded = false;
        for shard in 0..SHARDS {
            if self.shards[shard].occupancy.load(Ordering::SeqCst) == 0 {
                continue;
            }
            let base = shard * SLOTS_PER_SHARD;
            for i in 0..SLOTS_PER_SHARD {
                let v = self.slots[base + i].0.load(Ordering::SeqCst);
                if v == EMPTY {
                    continue;
                }
                if !excluded && v == excluding {
                    excluded = true;
                    continue;
                }
                min = Some(min.map_or(v, |m| m.min(v)));
            }
        }
        if self.overflow_count.load(Ordering::SeqCst) > 0 {
            let map = self.overflow.lock();
            for (&version, &count) in map.iter() {
                let mut count = count;
                if !excluded && version == excluding {
                    excluded = true;
                    count -= 1;
                }
                if count > 0 {
                    min = Some(min.map_or(version, |m| m.min(version)));
                    break; // BTreeMap iterates ascending: first hit is the min.
                }
            }
        }
        min.unwrap_or(fallback)
    }

    /// Number of distinct active snapshot versions (diagnostics). Exact
    /// only when no registrations are racing the call; relaxed loads
    /// suffice because nothing is decided from the answer.
    pub(crate) fn active_snapshots(&self) -> usize {
        let mut versions: Vec<u64> = Vec::new();
        for shard in 0..SHARDS {
            if self.shards[shard].occupancy.load(Ordering::Relaxed) == 0 {
                continue;
            }
            let base = shard * SLOTS_PER_SHARD;
            for i in 0..SLOTS_PER_SHARD {
                let v = self.slots[base + i].0.load(Ordering::Relaxed);
                if v != EMPTY {
                    versions.push(v);
                }
            }
        }
        if self.overflow_count.load(Ordering::Relaxed) > 0 {
            versions.extend(self.overflow.lock().keys().copied());
        }
        versions.sort_unstable();
        versions.dedup();
        versions.len()
    }

    /// Total occupied registration slots (shards plus overflow), i.e.
    /// how full the fixed-size registry is. Counter-based and O(shards),
    /// unlike the slot scan in [`ActiveRegistry::active_snapshots`].
    /// Relaxed: a gauge read, racy by construction.
    pub(crate) fn occupancy(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.occupancy.load(Ordering::Relaxed))
            .sum::<usize>()
            + self.overflow_count.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_deregister_roundtrip() {
        let reg = ActiveRegistry::new();
        let clock = AtomicU64::new(7);
        let (snap, token) = reg.register_current(&clock);
        assert_eq!(snap, 7);
        assert_ne!(token, OVERFLOW_TOKEN);
        assert_eq!(reg.min_active_excluding(u64::MAX, 99), 7);
        reg.deregister(token, snap);
        assert_eq!(reg.min_active_excluding(u64::MAX, 99), 99);
    }

    #[test]
    fn excluding_discounts_exactly_one_registration() {
        let reg = ActiveRegistry::new();
        let clock = AtomicU64::new(5);
        let (s1, t1) = reg.register_current(&clock);
        // Only registration at 5 is the committer's own: horizon falls through.
        assert_eq!(reg.min_active_excluding(5, 42), 42);
        let (s2, t2) = reg.register_current(&clock);
        // A second registration at 5 still pins it.
        assert_eq!(reg.min_active_excluding(5, 42), 5);
        reg.deregister(t1, s1);
        reg.deregister(t2, s2);
    }

    #[test]
    fn overflow_path_engages_past_capacity() {
        let reg = ActiveRegistry::new();
        let clock = AtomicU64::new(3);
        let mut tokens = Vec::new();
        for _ in 0..SLOT_COUNT + 5 {
            tokens.push(reg.register_current(&clock));
        }
        assert!(tokens.iter().filter(|(_, t)| *t == OVERFLOW_TOKEN).count() == 5);
        assert_eq!(reg.min_active_excluding(u64::MAX, 99), 3);
        assert_eq!(reg.active_snapshots(), 1);
        for (snap, token) in tokens {
            reg.deregister(token, snap);
        }
        assert_eq!(reg.min_active_excluding(u64::MAX, 99), 99);
        assert_eq!(reg.active_snapshots(), 0);
    }

    #[test]
    fn slot_hint_reuses_same_slot() {
        let reg = ActiveRegistry::new();
        let clock = AtomicU64::new(1);
        let (s1, t1) = reg.register_current(&clock);
        reg.deregister(t1, s1);
        let (s2, t2) = reg.register_current(&clock);
        assert_eq!(t1, t2, "thread-local hint should re-claim the warm slot");
        reg.deregister(t2, s2);
    }
}
