//! Low-level hooks used by `wtf-core` to layer transactional futures on
//! top of the multi-versioned substrate, mirroring how WTF-TM layers on
//! JVSTM. Regular applications should use [`Stm::atomic`] instead.
//!
//! This module owns the scalable commit protocol (see `DESIGN.md`
//! § "Commit-path concurrency"):
//!
//! 1. lock the stripes covering the read- and write-set, in ascending
//!    index order (deadlock-free);
//! 2. validate every read against its head version under those stripes;
//! 3. reserve a version ticket (`next_version.fetch_add` — the only
//!    global atomic RMW on the path) and install the write-set at it,
//!    O(1) per box;
//! 4. wait for the published clock to reach `ticket - 1`, then publish
//!    `clock = ticket` so the clock only ever exposes fully installed
//!    prefixes (opacity);
//! 5. GC the written boxes' chains down to the registry's horizon, still
//!    under the stripes.
//!
//! Because tickets are reserved only *after* all stripes are held and
//! validation has passed, a committer spinning in step 4 waits only on
//! earlier ticket holders, each of which already holds every lock it
//! needs — so publication always makes progress, in ticket order.

use crate::stripe::StripeTable;
use crate::value::{BoxId, TxValue, Value};
pub use crate::vbox::BoxBody;
use crate::{Stm, StmError, VBox};
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Number of commit-lock stripes (re-exported for tests/diagnostics).
pub const STRIPES: usize = crate::stripe::STRIPES;

/// RAII registration of a begin-snapshot with the active-transaction
/// registry; keeps versions at-or-after the snapshot from being pruned.
pub struct Snapshot {
    stm: Stm,
    version: u64,
    /// Registry slot token (or the overflow sentinel) to release on drop.
    slot: usize,
}

impl Snapshot {
    /// The version this snapshot reads at.
    pub fn version(&self) -> u64 {
        self.version
    }
}

impl Drop for Snapshot {
    fn drop(&mut self) {
        self.stm.inner.registry.deregister(self.slot, self.version);
    }
}

/// Begins a snapshot at the current clock, registered against concurrent
/// GC via the registry's publish-then-recheck protocol (see
/// `ActiveRegistry::register_current` for the race argument).
pub fn acquire_snapshot(stm: &Stm) -> Snapshot {
    let (version, slot) = stm.inner.registry.register_current(&stm.inner.clock);
    Snapshot {
        stm: stm.clone(),
        version,
        slot,
    }
}

/// The untyped body behind a typed box handle.
pub fn body_of<T: TxValue>(vbox: &VBox<T>) -> Arc<BoxBody> {
    vbox.body.clone()
}

/// Creates an untyped box body initialized to `value`, stamped at the
/// current clock — [`VBox::new`] minus the typed facade. Backend adapters
/// (`wtf-backend`) create boxes through this because their values arrive
/// already erased.
pub fn new_box_body(stm: &Stm, value: Value) -> Arc<BoxBody> {
    let id = BoxId(stm.inner.next_box.fetch_add(1, Ordering::Relaxed));
    let version = stm.inner.clock.load(Ordering::Acquire);
    Arc::new(BoxBody::new(id, stm.inner.stripes.clone(), version, value))
}

/// Counts one transaction abort (conflict retry) against this STM's
/// stats. Retry loops living outside this crate (`wtf-backend`'s generic
/// `atomic`) report through here; [`Stm::atomic`] counts its own.
pub fn note_abort(stm: &Stm) {
    stm.inner.stats.aborts.fetch_add(1, Ordering::Relaxed);
}

/// Counts one read-only commit (which never reaches [`commit_raw`] — the
/// multi-version property lets it commit with no validation at all).
pub fn note_read_only_commit(stm: &Stm) {
    stm.inner.stats.commits.fetch_add(1, Ordering::Relaxed);
    stm.inner
        .stats
        .read_only_commits
        .fetch_add(1, Ordering::Relaxed);
}

/// Id of an untyped body.
pub fn id_of(body: &BoxBody) -> BoxId {
    body.id
}

/// Reads the newest version of `body` visible at `snapshot`, returning
/// `(observed_version, value)`. The caller must hold a live [`Snapshot`]
/// at a version `<= snapshot` for the duration of the call (that is what
/// fences the lock-free chain walk against concurrent pruning).
pub fn read_at(body: &BoxBody, snapshot: u64) -> (u64, Value) {
    body.read_at(snapshot)
}

/// Newest committed version number of `body` (no snapshot filtering).
pub fn head_version(body: &BoxBody) -> u64 {
    body.head_version()
}

/// Validates-and-publishes a write-set against `snapshot`.
///
/// Under the stripes covering `reads` ∪ `writes`, every body in `reads`
/// must have no version newer than `snapshot` (i.e. every value the
/// transaction read is still current), after which all `writes` are
/// installed atomically at a freshly reserved version. Returns the new
/// commit version.
///
/// With all reads re-validated at the commit point, the transaction is
/// logically instantaneous at commit time, which yields serializability
/// even in the presence of blind writes. Locking the *read* stripes too
/// (not just the write stripes) is what makes validation stable: no
/// concurrent commit can install into a read box between our check and
/// our publication, because it would need one of the stripes we hold.
pub fn commit_raw<'a>(
    stm: &Stm,
    snapshot: u64,
    reads: impl IntoIterator<Item = &'a Arc<BoxBody>>,
    writes: Vec<(Arc<BoxBody>, Value)>,
) -> Result<u64, StmError> {
    commit_attributed(stm, snapshot, reads, writes).map_err(|_| StmError::Conflict)
}

/// Like [`commit_raw`], but a validation failure reports the id of the
/// box whose version check failed — the input higher layers need for
/// abort attribution (`wtf-trace` conflict hotspots).
pub fn commit_attributed<'a>(
    stm: &Stm,
    snapshot: u64,
    reads: impl IntoIterator<Item = &'a Arc<BoxBody>>,
    writes: Vec<(Arc<BoxBody>, Value)>,
) -> Result<u64, BoxId> {
    debug_assert!(!writes.is_empty(), "read-only commits skip commit_raw");
    let inner = &stm.inner;
    let tracer = &inner.tracer;
    let commit_start = tracer.span_start();
    let read_bodies: Vec<&Arc<BoxBody>> = reads.into_iter().collect();
    let mut mask = 0u64;
    for body in &read_bodies {
        mask |= StripeTable::mask_of(body.id);
    }
    for (body, _) in &writes {
        mask |= StripeTable::mask_of(body.id);
    }
    let stripes = inner.stripes.lock_mask(mask);
    // Mutation hook (`test-hooks` feature only): checker self-tests flip
    // this to skip validation and assert `wtf-check` rejects the
    // resulting non-serializable history.
    #[cfg(feature = "test-hooks")]
    let validate = !crate::test_hooks::skip_validation();
    #[cfg(not(feature = "test-hooks"))]
    let validate = true;
    if validate {
        for body in &read_bodies {
            if body.head_version() > snapshot {
                // Attribute the abort to the box whose version check
                // failed — the input to the per-run conflict hotspot
                // report. The `TxnAttemptAbort` event additionally closes
                // the attempt for retry-lineage profiling (both backends
                // emit the identical record on this path).
                tracer.charge_conflict(body.id.0);
                tracer.record(wtf_trace::EventKind::TxnAttemptAbort, body.id.0, snapshot);
                return Err(body.id);
            }
        }
    }
    let validated = tracer.span_end(
        wtf_trace::EventKind::StmValidationSpan,
        commit_start,
        read_bodies.len() as u64,
    );
    if tracer.on() {
        tracer.metrics.validation_latency.record(validated);
    }
    // Reserve the version ticket only now, after validation under locks:
    // every reserved ticket is certain to publish, so the clock (advanced
    // strictly in ticket order below) can never stall on an aborted
    // commit.
    let version = inner.next_version.fetch_add(1, Ordering::AcqRel) + 1;
    let gc = inner.gc_enabled.load(Ordering::Relaxed);
    let bodies: Vec<Arc<BoxBody>> = writes.iter().map(|(b, _)| b.clone()).collect();
    inner
        .versions_installed
        .fetch_add(bodies.len() as u64, Ordering::Relaxed);
    for (body, value) in writes {
        body.install(version, value);
        tracer.record_full(wtf_trace::EventKind::StmInstall, body.id.0, version);
    }
    // Publish in ticket order: wait until every earlier ticket is fully
    // installed, then expose ours. A snapshot at clock value `c` therefore
    // always sees a fully installed prefix `0..=c` (opacity). The wait is
    // only ever on earlier ticket holders, each of which already holds all
    // the locks it needs (see module docs), so this cannot deadlock.
    let mut spins = 0u32;
    let publish_start = tracer.span_start();
    while inner.clock.load(Ordering::Acquire) != version - 1 {
        spins += 1;
        if spins < 1 << 12 {
            std::hint::spin_loop();
        } else {
            std::thread::yield_now();
        }
    }
    // SeqCst: orders the publication against the registry's slot stores
    // and the horizon scan below (see `registry` module docs).
    inner.clock.store(version, Ordering::SeqCst);
    if spins > 0 {
        inner.stats.publish_waits.fetch_add(1, Ordering::Relaxed);
    }
    if tracer.on() {
        // The histogram replaces the single-integer `publish_waits` as
        // the contention signal: it shows *how long* publication stalls,
        // not just that it did. The span is only worth a trace row when
        // the committer actually waited.
        let waited = tracer.now().saturating_sub(publish_start);
        tracer.metrics.publish_wait.record(waited);
        if spins > 0 {
            tracer.record_at(
                publish_start,
                wtf_trace::EventKind::PublishWaitSpan,
                waited,
                version,
            );
        }
    }
    // GC after publication, still under our stripes (prune requires the
    // box's stripe): the horizon is the oldest live snapshot other than
    // our own dying one.
    let mut pruned = 0usize;
    if gc {
        let min_active = inner.registry.min_active_excluding(snapshot, version);
        for body in &bodies {
            let freed = body.prune(min_active);
            if freed > 0 {
                tracer.record_full(wtf_trace::EventKind::StmPrune, body.id.0, freed as u64);
            }
            pruned += freed;
        }
    }
    drop(stripes);
    inner.stats.commits.fetch_add(1, Ordering::Relaxed);
    inner
        .stats
        .versions_pruned
        .fetch_add(pruned as u64, Ordering::Relaxed);
    if tracer.on() {
        let dur = tracer.span_end(wtf_trace::EventKind::StmCommitSpan, commit_start, version);
        tracer.metrics.commit_latency.record(dur);
    }
    Ok(version)
}

/// Number of distinct snapshots currently registered (diagnostics).
pub fn active_snapshots(stm: &Stm) -> usize {
    stm.inner.registry.active_snapshots()
}

/// The commit-lock stripe `id` hashes to (tests/diagnostics).
pub fn stripe_index(id: BoxId) -> usize {
    StripeTable::index_of(id)
}

/// RAII hold of a single commit-lock stripe, for tests that need to prove
/// commits on *other* stripes proceed independently (there is no global
/// commit mutex to get stuck on).
pub struct StripeHold<'a> {
    _guard: parking_lot::MutexGuard<'a, ()>,
}

/// Acquires stripe `index` and holds it until the returned guard drops.
/// Any commit whose footprint includes this stripe will block; commits on
/// disjoint stripes are unaffected.
pub fn hold_stripe(stm: &Stm, index: usize) -> StripeHold<'_> {
    StripeHold {
        _guard: stm.inner.stripes.lock_one(index),
    }
}
