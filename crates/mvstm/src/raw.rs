//! Low-level hooks used by `wtf-core` to layer transactional futures on
//! top of the multi-versioned substrate, mirroring how WTF-TM layers on
//! JVSTM. Regular applications should use [`Stm::atomic`] instead.

use crate::value::{BoxId, TxValue, Value};
pub use crate::vbox::BoxBody;
use crate::{Stm, StmError, VBox};
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// RAII registration of a begin-snapshot with the active-transaction
/// registry; keeps versions at-or-after the snapshot from being pruned.
pub struct Snapshot {
    stm: Stm,
    version: u64,
}

impl Snapshot {
    /// The version this snapshot reads at.
    pub fn version(&self) -> u64 {
        self.version
    }
}

impl Drop for Snapshot {
    fn drop(&mut self) {
        self.stm.inner.registry.deregister(self.version);
    }
}

/// Begins a snapshot at the current clock (registered atomically with the
/// clock read; see `ActiveRegistry::register_current` for the GC-race
/// argument).
pub fn acquire_snapshot(stm: &Stm) -> Snapshot {
    let version = stm.inner.registry.register_current(&stm.inner.clock);
    Snapshot {
        stm: stm.clone(),
        version,
    }
}

/// The untyped body behind a typed box handle.
pub fn body_of<T: TxValue>(vbox: &VBox<T>) -> Arc<BoxBody> {
    vbox.body.clone()
}

/// Id of an untyped body.
pub fn id_of(body: &BoxBody) -> BoxId {
    body.id
}

/// Reads the newest version of `body` visible at `snapshot`, returning
/// `(observed_version, value)`.
pub fn read_at(body: &BoxBody, snapshot: u64) -> (u64, Value) {
    body.read_at(snapshot)
}

/// Newest committed version number of `body` (no snapshot filtering).
pub fn head_version(body: &BoxBody) -> u64 {
    body.head_version()
}

/// Validates-and-publishes a write-set against `snapshot`.
///
/// Under the global commit lock, every body in `reads` must have no
/// version newer than `snapshot` (i.e. every value the transaction read is
/// still current), after which all `writes` are installed atomically at
/// `clock + 1`. Returns the new commit version.
///
/// With all reads re-validated at the commit point, the transaction is
/// logically instantaneous at commit time, which yields serializability
/// even in the presence of blind writes.
pub fn commit_raw<'a>(
    stm: &Stm,
    snapshot: u64,
    reads: impl IntoIterator<Item = &'a Arc<BoxBody>>,
    writes: Vec<(Arc<BoxBody>, Value)>,
) -> Result<u64, StmError> {
    debug_assert!(!writes.is_empty(), "read-only commits skip commit_raw");
    let inner = &stm.inner;
    let _guard = inner.commit_lock.lock();
    for body in reads {
        if body.head_version() > snapshot {
            return Err(StmError::Conflict);
        }
    }
    let new_version = inner.clock.load(Ordering::Acquire) + 1;
    let gc = inner.gc_enabled.load(Ordering::Relaxed);
    let bodies: Vec<Arc<BoxBody>> = writes.iter().map(|(b, _)| b.clone()).collect();
    for (body, value) in writes {
        body.install(new_version, value);
    }
    // Publish: the release store pairs with the acquire loads in
    // `acquire_snapshot`, making all installed versions visible to any
    // transaction that snapshots at `new_version`. GC runs only after
    // publication, so its horizon (taken under the registry lock) cannot
    // miss a concurrent registration at the pre-publication clock.
    inner.clock.store(new_version, Ordering::Release);
    let mut pruned = 0usize;
    if gc {
        let min_active = inner.registry.min_active_excluding(snapshot, new_version);
        for body in &bodies {
            pruned += body.prune(min_active);
        }
    }
    inner.stats.commits.fetch_add(1, Ordering::Relaxed);
    inner
        .stats
        .versions_pruned
        .fetch_add(pruned as u64, Ordering::Relaxed);
    Ok(new_version)
}

/// Number of distinct snapshots currently registered (diagnostics).
pub fn active_snapshots(stm: &Stm) -> usize {
    stm.inner.registry.active_snapshots()
}
