//! Versioned boxes: the JVSTM storage cell.
//!
//! Each box stores its committed history as an immutable singly linked
//! chain of [`VersionNode`]s, newest first, reached through an atomic
//! head pointer. Snapshot reads walk the chain lock-free; installing a
//! new version is a single pointer swing (O(1), vs the old
//! `Vec::insert(0, ..)` which shifted the whole history); pruning
//! detaches and frees the dead tail. The mutating operations are
//! serialized per box by the owning [`Stm`]'s stripe locks (see
//! `crate::stripe`), which is also what makes `chain_len` need a stripe.
//!
//! ## Memory reclamation
//!
//! `prune` frees detached nodes immediately — no epochs, no hazard
//! pointers. That is sound because of the registry invariant: the GC
//! horizon `min_active` computed at commit time never exceeds any live
//! registered snapshot (see `crate::registry`). A reader walking on
//! behalf of snapshot `s >= min_active` only dereferences nodes at or
//! above the newest node with `version <= s`, all of which sit at or
//! above the keep node (newest `version <= min_active`); `prune` frees
//! only nodes strictly *below* the keep node and never touches the
//! `next` pointer of any node above it, so the reader can never reach a
//! freed node. The head node in particular is never freed while the box
//! is alive, which is why [`BoxBody::head_version`] and
//! [`VBox::read_latest`] are unconditionally safe.

use crate::stripe::StripeTable;
use crate::value::{downcast_value, BoxId, TxValue, Value};
use crate::Stm;
use std::marker::PhantomData;
use std::ptr;
use std::sync::atomic::{AtomicPtr, Ordering};
use std::sync::Arc;

/// One committed version of a box's value: a node in the immutable
/// newest-first chain.
pub(crate) struct VersionNode {
    pub(crate) version: u64,
    pub(crate) value: Value,
    /// Next-older version; null at the chain's tail. Only ever mutated by
    /// `prune` (at the keep node, to detach the dead tail).
    // ordering: acquire-load on traversal pairs with the installer's
    // release head store (the node's fields were published before it
    // became reachable); acqrel-swap detaches the dead tail under the
    // stripe lock; relaxed-load only on nodes already private to the
    // freeing thread (prune's detached tail, Drop's exclusive chain).
    next: AtomicPtr<VersionNode>,
}

/// The untyped body shared by all handles to one box.
pub struct BoxBody {
    pub(crate) id: BoxId,
    /// Newest version; never null (boxes are born with one version).
    // ordering: release-store in `install` publishes the new node and
    // the chain behind it to acquire-load readers (`read_at`,
    // `head_version`, `read_latest`, `chain_len`, `prune`); relaxed-load
    // is permitted only in `install` itself, which re-reads its own head
    // under the box's stripe lock. relaxed-guard: install's
    // monotonicity debug_assert reads through that stripe-locked head.
    head: AtomicPtr<VersionNode>,
    /// The owning STM's stripe table: `chain_len` takes this box's stripe
    /// to walk safely against a concurrent committer's prune.
    pub(crate) stripes: Arc<StripeTable>,
}

impl BoxBody {
    pub(crate) fn new(id: BoxId, stripes: Arc<StripeTable>, version: u64, value: Value) -> BoxBody {
        let node = Box::into_raw(Box::new(VersionNode {
            version,
            value,
            next: AtomicPtr::new(ptr::null_mut()),
        }));
        BoxBody {
            id,
            head: AtomicPtr::new(node),
            stripes,
        }
    }

    /// Newest committed version number. Lock-free: the head node is never
    /// freed while the box is alive.
    pub(crate) fn head_version(&self) -> u64 {
        // SAFETY: `head` is never null, and the head node is never freed
        // while the box is alive (module docs), so the deref is valid.
        unsafe { (*self.head.load(Ordering::Acquire)).version }
    }

    /// Reads the newest version with `version <= snapshot`, returning the
    /// version number observed alongside the value. Lock-free.
    ///
    /// Callers must hold a live registration (see `crate::raw::Snapshot`)
    /// at a version `<= snapshot`; that is what keeps every node this walk
    /// dereferences out of reach of concurrent pruning (module docs).
    pub(crate) fn read_at(&self, snapshot: u64) -> (u64, Value) {
        let mut node = self.head.load(Ordering::Acquire);
        let mut oldest_seen = u64::MAX;
        while !node.is_null() {
            // SAFETY: the caller's live registration keeps every node on
            // this walk above the GC horizon (module docs), and the
            // acquire loads of `head`/`next` ordered the node's fields.
            let n = unsafe { &*node };
            if n.version <= snapshot {
                return (n.version, n.value.clone());
            }
            oldest_seen = n.version;
            node = n.next.load(Ordering::Acquire);
        }
        // Unreachable through the public API: every box is born with a
        // version stamped at-or-before any snapshot taken after its
        // creation, and GC never removes the last version <= min_active.
        panic!(
            "VBox {:?}: no version visible at snapshot {} (oldest retained: {}); \
             was the box created after the reading transaction began?",
            self.id, snapshot, oldest_seen
        );
    }

    /// Installs `value` at `version` (new head). O(1): allocates one node
    /// and swings the head pointer. Callers must hold this box's stripe
    /// lock — that is the per-box serialization of installers.
    pub(crate) fn install(&self, version: u64, value: Value) {
        let old_head = self.head.load(Ordering::Relaxed);
        debug_assert!(
            // SAFETY: `head` is never null and the head node is never
            // freed while the box is alive (module docs).
            unsafe { (*old_head).version } < version,
            "versions must be monotonic"
        );
        let node = Box::into_raw(Box::new(VersionNode {
            version,
            value,
            next: AtomicPtr::new(old_head),
        }));
        // Release pairs with the Acquire head loads in read_at: a reader
        // that sees the new node sees its fields and the old chain.
        self.head.store(node, Ordering::Release);
    }

    /// Drops versions no active snapshot can observe: keeps every version
    /// newer than `min_active` plus the newest one at-or-below it (the
    /// keep node), detaching and freeing the rest. Callers must hold this
    /// box's stripe lock. Returns the number of versions freed.
    pub(crate) fn prune(&self, min_active: u64) -> usize {
        // SAFETY: callers hold this box's stripe lock, so we are the only
        // mutator of `head`/`next`; the registry horizon invariant
        // (module docs) keeps concurrent readers off every node we free.
        unsafe {
            // The stripe lock excludes other mutators, so plain loads of
            // our own pointers suffice; Acquire on traversal keeps us
            // paired with installers on other boxes' freshly read heads.
            let mut keep = self.head.load(Ordering::Acquire);
            while !keep.is_null() && (*keep).version > min_active {
                keep = (*keep).next.load(Ordering::Acquire);
            }
            if keep.is_null() {
                return 0;
            }
            // Detach the dead tail below the keep node. Readers never load
            // `next` of the keep node (its version is <= min_active, hence
            // <= their snapshot: they stop there), so the freed nodes are
            // unreachable the moment this swap completes.
            let mut dead = (*keep).next.swap(ptr::null_mut(), Ordering::AcqRel);
            let mut pruned = 0;
            while !dead.is_null() {
                let next = (*dead).next.load(Ordering::Relaxed);
                drop(Box::from_raw(dead));
                pruned += 1;
                dead = next;
            }
            pruned
        }
    }

    /// Number of retained versions (diagnostics / GC tests). Takes the
    /// box's stripe lock so the walk cannot race a committer's prune.
    pub(crate) fn chain_len(&self) -> usize {
        let _stripe = self.stripes.lock_mask(StripeTable::mask_of(self.id));
        let mut len = 0;
        let mut node = self.head.load(Ordering::Acquire);
        while !node.is_null() {
            len += 1;
            // SAFETY: the stripe lock taken above excludes `prune`, so
            // every node on the chain stays allocated for this walk.
            node = unsafe { (*node).next.load(Ordering::Acquire) };
        }
        len
    }
}

impl Drop for BoxBody {
    fn drop(&mut self) {
        // Exclusive access: free the whole chain.
        let mut node = *self.head.get_mut();
        while !node.is_null() {
            // SAFETY: `&mut self` proves exclusive access; every chain
            // node was created by `Box::into_raw` and is owned solely by
            // this chain, so reclaiming each exactly once is sound.
            let boxed = unsafe { Box::from_raw(node) };
            node = boxed.next.load(Ordering::Relaxed);
        }
    }
}

/// A transactional memory location holding values of type `T`.
///
/// The typed, clonable handle over a shared [`BoxBody`]. All access goes
/// through a transaction ([`Txn::read`](crate::Txn::read) /
/// [`Txn::write`](crate::Txn::write)) or through the `wtf-core`
/// futures-aware contexts layered on [`crate::raw`].
pub struct VBox<T> {
    pub(crate) body: Arc<BoxBody>,
    _marker: PhantomData<fn() -> T>,
}

impl<T> Clone for VBox<T> {
    fn clone(&self) -> Self {
        VBox {
            body: self.body.clone(),
            _marker: PhantomData,
        }
    }
}

impl<T: TxValue> VBox<T> {
    /// Creates a box initialized to `value`.
    ///
    /// The initial version is stamped with the *current* clock value, so
    /// the box is visible to every transaction whose snapshot is at or
    /// after the creation point. (Creating boxes *inside* a transaction
    /// and publishing them through another box is supported: the handle
    /// value committed through the STM carries the `Arc`.)
    pub fn new(stm: &Stm, value: T) -> VBox<T> {
        let id = BoxId(stm.inner.next_box.fetch_add(1, Ordering::Relaxed));
        let version = stm.inner.clock.load(Ordering::Acquire);
        VBox {
            body: Arc::new(BoxBody::new(
                id,
                stm.inner.stripes.clone(),
                version,
                Arc::new(value),
            )),
            _marker: PhantomData,
        }
    }

    /// This box's id.
    pub fn id(&self) -> BoxId {
        self.body.id
    }

    /// Reads the latest committed value, outside any transaction.
    ///
    /// Useful for inspecting results after a benchmark run; not
    /// serializable with respect to anything. Touches only the head node,
    /// which is never reclaimed while the box is alive, so no snapshot
    /// registration is needed.
    pub fn read_latest(&self) -> T {
        let node = self.body.head.load(Ordering::Acquire);
        // SAFETY: `head` is never null and the head node is never freed
        // while the box is alive (module docs).
        let value = unsafe { (*node).value.clone() };
        downcast_value(&value)
    }

    /// Number of retained versions (GC diagnostics).
    pub fn version_chain_len(&self) -> usize {
        self.body.chain_len()
    }
}

impl<T> std::fmt::Debug for VBox<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "VBox({:?})", self.body.id)
    }
}
