//! Versioned boxes: the JVSTM storage cell.

use crate::value::{downcast_value, BoxId, TxValue, Value};
use crate::Stm;
use parking_lot::RwLock;
use std::marker::PhantomData;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// One committed version of a box's value.
pub(crate) struct Version {
    pub(crate) version: u64,
    pub(crate) value: Value,
}

/// The untyped body shared by all handles to one box.
pub struct BoxBody {
    pub(crate) id: BoxId,
    /// Version chain, **newest first**. Guarded by a read-write lock: reads
    /// take the shared lock for a short binary search; only committing
    /// writers take it exclusively (briefly, under the global commit lock).
    pub(crate) versions: RwLock<Vec<Version>>,
}

impl BoxBody {
    /// Newest committed version number.
    pub(crate) fn head_version(&self) -> u64 {
        self.versions.read()[0].version
    }

    /// Reads the newest version with `version <= snapshot`, returning the
    /// version number observed alongside the value.
    pub(crate) fn read_at(&self, snapshot: u64) -> (u64, Value) {
        let chain = self.versions.read();
        for v in chain.iter() {
            if v.version <= snapshot {
                return (v.version, v.value.clone());
            }
        }
        // Unreachable through the public API: every box is born with a
        // version stamped at-or-before any snapshot taken after its
        // creation, and GC never removes the last version <= min_active.
        panic!(
            "VBox {:?}: no version visible at snapshot {} (oldest retained: {}); \
             was the box created after the reading transaction began?",
            self.id,
            snapshot,
            chain.last().map(|v| v.version).unwrap_or(u64::MAX)
        );
    }

    /// Installs `value` at `version` (newest). Called only under the
    /// commit lock. Pruning happens separately ([`BoxBody::prune`]) after
    /// the commit publishes the new clock value.
    pub(crate) fn install(&self, version: u64, value: Value) {
        let mut chain = self.versions.write();
        debug_assert!(chain[0].version < version, "versions must be monotonic");
        chain.insert(0, Version { version, value });
    }

    /// Drops versions no active snapshot can observe: keeps every version
    /// newer than `min_active` plus the newest one at-or-below it.
    pub(crate) fn prune(&self, min_active: u64) -> usize {
        let mut chain = self.versions.write();
        if let Some(keep_idx) = chain.iter().position(|v| v.version <= min_active) {
            let pruned = chain.len() - keep_idx - 1;
            chain.truncate(keep_idx + 1);
            pruned
        } else {
            0
        }
    }

    /// Number of retained versions (diagnostics / GC tests).
    pub(crate) fn chain_len(&self) -> usize {
        self.versions.read().len()
    }
}

/// A transactional memory location holding values of type `T`.
///
/// The typed, clonable handle over a shared [`BoxBody`]. All access goes
/// through a transaction ([`Txn::read`](crate::Txn::read) /
/// [`Txn::write`](crate::Txn::write)) or through the `wtf-core`
/// futures-aware contexts layered on [`crate::raw`].
pub struct VBox<T> {
    pub(crate) body: Arc<BoxBody>,
    _marker: PhantomData<fn() -> T>,
}

impl<T> Clone for VBox<T> {
    fn clone(&self) -> Self {
        VBox {
            body: self.body.clone(),
            _marker: PhantomData,
        }
    }
}

impl<T: TxValue> VBox<T> {
    /// Creates a box initialized to `value`.
    ///
    /// The initial version is stamped with the *current* clock value, so
    /// the box is visible to every transaction whose snapshot is at or
    /// after the creation point. (Creating boxes *inside* a transaction
    /// and publishing them through another box is supported: the handle
    /// value committed through the STM carries the `Arc`.)
    pub fn new(stm: &Stm, value: T) -> VBox<T> {
        let id = BoxId(stm.inner.next_box.fetch_add(1, Ordering::Relaxed));
        let version = stm.inner.clock.load(Ordering::Acquire);
        VBox {
            body: Arc::new(BoxBody {
                id,
                versions: RwLock::new(vec![Version {
                    version,
                    value: Arc::new(value),
                }]),
            }),
            _marker: PhantomData,
        }
    }

    /// This box's id.
    pub fn id(&self) -> BoxId {
        self.body.id
    }

    /// Reads the latest committed value, outside any transaction.
    ///
    /// Useful for inspecting results after a benchmark run; not
    /// serializable with respect to anything.
    pub fn read_latest(&self) -> T {
        let (_, v) = self.body.read_at(u64::MAX);
        downcast_value(&v)
    }

    /// Number of retained versions (GC diagnostics).
    pub fn version_chain_len(&self) -> usize {
        self.body.chain_len()
    }
}

impl<T> std::fmt::Debug for VBox<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "VBox({:?})", self.body.id)
    }
}
