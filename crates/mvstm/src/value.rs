//! Type-erased values stored in version chains.

use std::any::Any;
use std::sync::Arc;

/// Unique identifier of a [`VBox`](crate::VBox) within its [`Stm`](crate::Stm).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BoxId(pub u64);

/// A type-erased, immutably shared transactional value.
///
/// Version chains are heterogeneous (one `Stm` holds boxes of many types),
/// so values are stored erased and downcast at the typed [`VBox`]
/// facade. Values are immutable once installed — mutation happens by
/// installing a *new* version — which is what makes lock-free snapshot
/// reads safe.
pub type Value = Arc<dyn Any + Send + Sync>;

/// Marker trait for types storable in a `VBox`. Blanket-implemented.
pub trait TxValue: Any + Send + Sync + Clone {}
impl<T: Any + Send + Sync + Clone> TxValue for T {}

/// Downcasts a stored [`Value`] to `T`, cloning the payload out.
///
/// Panics on type mismatch — impossible through the typed `VBox<T>` API,
/// so a failure here always indicates internal corruption.
pub fn downcast_value<T: TxValue>(v: &Value) -> T {
    v.downcast_ref::<T>()
        .expect("VBox type invariant violated: stored value has wrong type")
        .clone()
}
