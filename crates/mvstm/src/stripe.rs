//! Striped commit locks: per-location synchronization for the commit path.
//!
//! Instead of one global commit mutex, the STM hashes every [`BoxId`] to
//! one of [`STRIPES`] cache-line-padded mutexes. An update transaction
//! locks the stripes covering its read- and write-set (as a bitmask,
//! acquired in ascending index order so overlapping commits cannot
//! deadlock) and validates + installs under only those stripes. Commits
//! whose footprints hash to disjoint stripe sets proceed fully in
//! parallel; the only remaining global synchronization is the version
//! ticket fetch-add and the in-order publication of the version clock
//! (see `raw::commit_raw`).

use crate::value::BoxId;
use parking_lot::{Mutex, MutexGuard};

/// Number of commit-lock stripes. Must stay ≤ 64 so a stripe set fits in
/// a `u64` bitmask.
pub const STRIPES: usize = 64;

/// A commit-lock stripe, padded to its own cache line so committers on
/// different stripes do not false-share.
#[repr(align(64))]
struct Stripe {
    // lock-order: stripe — multi-acquisition only through `lock_mask`'s
    // ascending bitmask walk, the single source of the stripe ordering.
    lock: Mutex<()>,
}

/// The table of [`STRIPES`] commit locks shared by an [`Stm`](crate::Stm)
/// and all of its boxes.
pub struct StripeTable {
    stripes: Vec<Stripe>,
}

/// RAII set of held stripe locks, released together on drop.
pub struct StripeGuards<'a> {
    #[allow(dead_code)]
    guards: Vec<MutexGuard<'a, ()>>,
}

impl StripeTable {
    pub(crate) fn new() -> StripeTable {
        StripeTable {
            stripes: (0..STRIPES)
                .map(|_| Stripe {
                    lock: Mutex::new(()),
                })
                .collect(),
        }
    }

    /// Maps a box to its stripe: Fibonacci multiplicative hash, taking the
    /// top `log2(STRIPES)` bits so sequentially allocated ids spread
    /// across stripes instead of clustering.
    #[inline]
    pub fn index_of(id: BoxId) -> usize {
        (id.0.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 58) as usize
    }

    /// Bit for `id`'s stripe in a stripe mask.
    #[inline]
    pub fn mask_of(id: BoxId) -> u64 {
        1u64 << Self::index_of(id)
    }

    /// Acquires every stripe in `mask`, in ascending index order.
    ///
    /// The global ordering is what keeps concurrent committers with
    /// overlapping stripe sets deadlock-free: all lock sequences are
    /// sorted, so there can be no cycle in the waits-for graph.
    pub(crate) fn lock_mask(&self, mask: u64) -> StripeGuards<'_> {
        let mut guards = Vec::with_capacity(mask.count_ones() as usize);
        let mut rest = mask;
        while rest != 0 {
            let idx = rest.trailing_zeros() as usize;
            guards.push(self.stripes[idx].lock.lock());
            rest &= rest - 1;
        }
        StripeGuards { guards }
    }

    /// Acquires a single stripe by index (testing/diagnostics; see
    /// [`crate::raw::hold_stripe`]).
    pub(crate) fn lock_one(&self, index: usize) -> MutexGuard<'_, ()> {
        self.stripes[index].lock.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_stays_in_range_and_spreads() {
        let mut seen = [false; STRIPES];
        for i in 0..10_000u64 {
            let idx = StripeTable::index_of(BoxId(i));
            assert!(idx < STRIPES);
            seen[idx] = true;
        }
        let covered = seen.iter().filter(|&&s| s).count();
        assert!(covered > STRIPES / 2, "hash should cover most stripes");
    }

    #[test]
    fn lock_mask_acquires_and_releases() {
        let t = StripeTable::new();
        {
            let _g = t.lock_mask(0b1011);
            // Disjoint mask is still acquirable while the first is held.
            let _h = t.lock_mask(0b0100);
        }
        // All released: full mask acquirable.
        let _all = t.lock_mask(u64::MAX);
    }
}
