//! Litmus tests for `wtf-mvstm`'s published ordering contracts — the
//! dynamic counterpart of `wtf-audit`'s static checks. Each test is
//! named after the inventory entry (`results/audit_inventory.json`)
//! whose protocol it drives, and runs under Miri and TSan in CI; the
//! iteration counts scale down under Miri so the interpreted runs stay
//! in budget while still interleaving.

use std::sync::Arc;
use wtf_mvstm::{Stm, VBox};

const ROUNDS: u64 = if cfg!(miri) { 40 } else { 20_000 };

/// MP shape over `head` + `clock`: `install`'s release head-store (and
/// the SeqCst clock republish behind it) must pair with the reader's
/// acquire traversal, so a transaction that observes `flag == i` also
/// observes `data == i` — the two are written in one commit.
#[test]
fn mp_head_release_install_pairs_with_acquire_read() {
    let stm = Arc::new(Stm::new());
    let data = Arc::new(VBox::new(&stm, 0u64));
    let flag = Arc::new(VBox::new(&stm, 0u64));

    let writer = {
        let (stm, data, flag) = (Arc::clone(&stm), Arc::clone(&data), Arc::clone(&flag));
        std::thread::spawn(move || {
            for i in 1..=ROUNDS {
                stm.atomic(|tx| {
                    tx.write(&data, i)?;
                    tx.write(&flag, i)
                })
                .unwrap();
            }
        })
    };

    let readers: Vec<_> = (0..2)
        .map(|_| {
            let (stm, data, flag) = (Arc::clone(&stm), Arc::clone(&data), Arc::clone(&flag));
            std::thread::spawn(move || {
                let mut last = 0u64;
                while last < ROUNDS {
                    let (f, d) = stm
                        .atomic(|tx| {
                            let f = tx.read(&flag)?;
                            let d = tx.read(&data)?;
                            Ok((f, d))
                        })
                        .unwrap();
                    assert_eq!(f, d, "flag and data are committed together");
                    assert!(f >= last, "clock publication is monotonic");
                    last = f;
                }
            })
        })
        .collect();

    writer.join().unwrap();
    for r in readers {
        r.join().unwrap();
    }
}

/// SB shape over `Slot` + `clock`: a reader claims a registry slot
/// (SeqCst CAS + republish) while the writer advances the clock and GC
/// prunes behind the minimum registered snapshot. If the republish
/// protocol were weaker, GC could prune a version a just-registered
/// snapshot is entitled to read — observable as a torn or backwards
/// double-read inside one transaction.
#[test]
fn sb_registry_slot_claim_vs_clock_republish() {
    let stm = Arc::new(Stm::new());
    stm.set_gc_enabled(true);
    let counter = Arc::new(VBox::new(&stm, 0u64));

    let writer = {
        let (stm, counter) = (Arc::clone(&stm), Arc::clone(&counter));
        std::thread::spawn(move || {
            for _ in 0..ROUNDS {
                stm.atomic(|tx| {
                    let v = tx.read(&counter)?;
                    tx.write(&counter, v + 1)
                })
                .unwrap();
            }
        })
    };

    let readers: Vec<_> = (0..2)
        .map(|_| {
            let (stm, counter) = (Arc::clone(&stm), Arc::clone(&counter));
            std::thread::spawn(move || {
                let mut last = 0u64;
                loop {
                    let (a, b) = stm
                        .atomic(|tx| {
                            let a = tx.read(&counter)?;
                            let b = tx.read(&counter)?;
                            Ok((a, b))
                        })
                        .unwrap();
                    assert_eq!(a, b, "double-read within one snapshot is stable");
                    assert!(a >= last, "snapshots never travel backwards");
                    last = a;
                    if a >= ROUNDS {
                        break;
                    }
                }
            })
        })
        .collect();

    writer.join().unwrap();
    for r in readers {
        r.join().unwrap();
    }
}
