//! End-to-end tests of the `wtf-bench-diff` gate binary: feed it a
//! synthetically regressed report and assert the nonzero exit the CI
//! gate relies on.

use std::path::{Path, PathBuf};
use std::process::Command;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_wtf-bench-diff")
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wtf_bench_diff_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A minimal report with the shape the gate expects: one sweep row plus
/// the trailing comparative-substrate rows (one per backend).
fn write_report_rows(dir: &Path, figure: &str, speedup: f64, backend_rows: &[&str]) {
    let mut rows = vec![format!(
        r#"{{"threads":4,"wtf_speedup":{speedup},"wtf":{{"makespan":1000,"completed":96,"trace":{{"events_recorded":0}}}}}}"#
    )];
    for backend in backend_rows {
        rows.push(format!(
            r#"{{"system":"{backend}","speedup":1.0,"result":{{"makespan":1000,"completed":96,"backend":"{backend}"}}}}"#
        ));
    }
    let body = format!(
        r#"{{"figure":"{figure}","clock":"virtual","rows":[{}]}}"#,
        rows.join(",")
    );
    std::fs::write(dir.join(format!("{figure}.json")), body).unwrap();
}

fn write_report(dir: &Path, figure: &str, speedup: f64) {
    write_report_rows(dir, figure, speedup, &["mvstm", "tl2"]);
}

fn run(args: &[&str]) -> (i32, String) {
    let out = Command::new(bin())
        .args(args)
        .output()
        .expect("run wtf-bench-diff");
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    (out.status.code().unwrap_or(-1), text)
}

#[test]
fn identical_reports_exit_zero() {
    let base = scratch("id_base");
    let fresh = scratch("id_fresh");
    write_report(&base, "fig7", 2.0);
    write_report(&fresh, "fig7", 2.0);
    let (code, text) = run(&[
        "--check",
        "--baseline",
        base.to_str().unwrap(),
        "--fresh",
        fresh.to_str().unwrap(),
    ]);
    assert_eq!(code, 0, "{text}");
    assert!(text.contains("fig7: OK"), "{text}");
}

#[test]
fn regressed_report_exits_nonzero() {
    let base = scratch("reg_base");
    let fresh = scratch("reg_fresh");
    write_report(&base, "fig7", 2.0);
    write_report(&fresh, "fig7", 1.2); // -40%: far past the ±15% gate
    let (code, text) = run(&[
        "--check",
        "--baseline",
        base.to_str().unwrap(),
        "--fresh",
        fresh.to_str().unwrap(),
    ]);
    assert_eq!(code, 1, "{text}");
    assert!(text.contains("fig7: FAIL"), "{text}");
    assert!(text.contains("wtf_speedup"), "{text}");
}

#[test]
fn check_fails_when_fresh_missing() {
    let base = scratch("miss_base");
    let fresh = scratch("miss_fresh");
    write_report(&base, "fig7", 2.0);
    // fresh dir exists but has no fig7.json
    let (code, text) = run(&[
        "--check",
        "--baseline",
        base.to_str().unwrap(),
        "--fresh",
        fresh.to_str().unwrap(),
    ]);
    assert_eq!(code, 1, "{text}");
    assert!(text.contains("FRESH MISSING"), "{text}");
}

#[test]
fn without_check_missing_fresh_is_skipped() {
    let base = scratch("skip_base");
    let fresh = scratch("skip_fresh");
    write_report(&base, "fig7", 2.0);
    let (code, text) = run(&[
        "--baseline",
        base.to_str().unwrap(),
        "--fresh",
        fresh.to_str().unwrap(),
    ]);
    assert_eq!(code, 0, "{text}");
    assert!(text.contains("skipped"), "{text}");
}

#[test]
fn missing_backend_rows_fail_under_check() {
    let base = scratch("br_base");
    let fresh = scratch("br_fresh");
    // Both sides agree numerically, but the fresh report dropped its tl2
    // comparative row — the structural backend gate must catch that.
    write_report_rows(&base, "fig7", 2.0, &["mvstm"]);
    write_report_rows(&fresh, "fig7", 2.0, &["mvstm"]);
    let (code, text) = run(&[
        "--check",
        "--baseline",
        base.to_str().unwrap(),
        "--fresh",
        fresh.to_str().unwrap(),
    ]);
    assert_eq!(code, 1, "{text}");
    assert!(text.contains("backend rows malformed"), "{text}");
    assert!(text.contains("tl2"), "{text}");
}

#[test]
fn trace_exports_are_not_gated() {
    let base = scratch("tr_base");
    let fresh = scratch("tr_fresh");
    write_report(&base, "fig7", 2.0);
    write_report(&fresh, "fig7", 2.0);
    // A trace export present only in the baseline dir must be ignored by
    // discovery, not reported as missing fresh.
    std::fs::write(base.join("fig3_trace_so.json"), "{}").unwrap();
    let (code, text) = run(&[
        "--check",
        "--baseline",
        base.to_str().unwrap(),
        "--fresh",
        fresh.to_str().unwrap(),
    ]);
    assert_eq!(code, 0, "{text}");
    assert!(!text.contains("fig3_trace"), "{text}");
}
