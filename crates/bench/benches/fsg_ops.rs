//! Costs of the formal-semantics machinery: FSG construction and
//! polygraph acyclicity solving (exponential in bipaths in the worst case;
//! these benches show the practical range).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wtf_fsg::{build_fsg, History, Semantics, Var};

/// A single-top history with `futures` evaluated futures touching
/// disjoint variables (no conflicts): `futures` bipaths, trivially
/// satisfiable.
fn disjoint_history(futures: usize) -> History {
    let mut h = History::new();
    let t = h.begin_top();
    let mut fs = Vec::new();
    for i in 0..futures {
        let f = h.submit(t);
        h.read(f, Var(i as u32));
        h.write(f, Var(i as u32));
        h.commit(f);
        fs.push(f);
    }
    for f in fs {
        h.evaluate(t, f);
    }
    h.commit(t);
    h
}

/// Conflicting history: every future reads/writes the same variable as
/// the continuation — bipath choices interact.
fn conflicting_history(futures: usize) -> History {
    let mut h = History::new();
    let t = h.begin_top();
    let x = Var(0);
    h.write(t, x);
    let mut fs = Vec::new();
    for _ in 0..futures {
        let f = h.submit(t);
        h.read_observing(f, x, t);
        h.commit(f);
        fs.push(f);
    }
    for f in fs {
        h.evaluate(t, f);
    }
    h.commit(t);
    h
}

fn bench_fsg(c: &mut Criterion) {
    let mut g = c.benchmark_group("fsg");
    g.sample_size(30);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(300));

    for &n in &[4usize, 8, 12] {
        let disjoint = disjoint_history(n);
        g.bench_function(format!("build_{n}_futures"), |b| {
            b.iter(|| black_box(build_fsg(&disjoint, Semantics::WO_GAC)))
        });
        g.bench_function(format!("solve_disjoint_{n}"), |b| {
            let fsg = build_fsg(&disjoint, Semantics::WO_GAC);
            b.iter(|| black_box(fsg.acceptable()))
        });
        let conflicting = conflicting_history(n);
        g.bench_function(format!("solve_conflicting_{n}"), |b| {
            let fsg = build_fsg(&conflicting, Semantics::WO_GAC);
            b.iter(|| black_box(fsg.acceptable()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fsg);
criterion_main!(benches);
