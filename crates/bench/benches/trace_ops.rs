//! Overhead of the `wtf-trace` hooks on the VBox commit path (real time).
//!
//! The acceptance bar for the observability layer: a *disabled* tracer —
//! what every `Stm::new()` carries — must cost no more than one relaxed
//! atomic load per hook, i.e. `commit/disabled` must sit within noise of
//! the pre-instrumentation commit cost (compare against
//! `vbox/txn_write_commit_10` from `vbox_ops`, measured on the same
//! machine). The enabled levels are measured alongside so the *price* of
//! turning tracing on is a number, not a guess.
//!
//! The `wtf-telemetry` hub rides the same sampling hook, so its
//! steady-state bar is pinned here too: with no hub attached the hook
//! costs exactly what `hook_enabled_gauge_not_due` costs, and with a hub
//! attached but no epoch due (`hook_telemetry_tick_not_due`) it adds one
//! relaxed load + compare against the precomputed epoch end.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wtf_mvstm::{Stm, VBox};
use wtf_trace::{TraceLevel, Tracer};

fn commit_loop(stm: &Stm, boxes: &[VBox<i64>]) {
    stm.atomic(|tx| {
        for i in 0..10 {
            tx.write(&boxes[(i * 91) % boxes.len()], i as i64)?;
        }
        Ok(())
    })
    .unwrap();
}

fn bench_trace_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("trace");
    g.sample_size(30);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(300));

    for (name, level) in [
        ("commit_10_disabled", TraceLevel::Off),
        ("commit_10_lifecycle", TraceLevel::Lifecycle),
        ("commit_10_full", TraceLevel::Full),
    ] {
        let stm = Stm::with_tracer(Tracer::new(level));
        let boxes: Vec<VBox<i64>> = (0..1024).map(|i| VBox::new(&stm, i as i64)).collect();
        g.bench_function(name, |b| b.iter(|| commit_loop(&stm, &boxes)));
    }

    // The raw hook, isolated: record() against an off tracer is the cost
    // added to *every* instrumented operation when tracing is unused.
    let off = Tracer::new(TraceLevel::Off);
    g.bench_function("hook_disabled_record", |b| {
        b.iter(|| off.record(black_box(wtf_trace::EventKind::TopCommit), 1, 2))
    });
    let on = Tracer::new(TraceLevel::Lifecycle);
    g.bench_function("hook_enabled_record", |b| {
        b.iter(|| on.record(black_box(wtf_trace::EventKind::TopCommit), 1, 2))
    });

    // The wtf-inspect sampling hook with everything off — the acceptance
    // bar for the gauge layer is that this sits within the noise floor of
    // `hook_disabled_record` (one relaxed level load and out).
    g.bench_function("hook_disabled_gauge_sample", |b| {
        b.iter(|| black_box(&off).maybe_sample_gauges())
    });
    // And enabled-but-not-due: the steady-state cost on commit paths when
    // gauges are registered and the period has not elapsed.
    let gauged = Tracer::new(TraceLevel::Lifecycle);
    gauged.gauges.set_period(1 << 40); // effectively never due
    let c1 = gauged.gauges.counter("bench_counter");
    c1.set(7);
    g.bench_function("hook_enabled_gauge_not_due", |b| {
        b.iter(|| black_box(&gauged).maybe_sample_gauges())
    });

    // Telemetry attached, epoch not due: the hub's steady-state cost on
    // every sampling hook is one atomic load + compare. This is the
    // disabled-telemetry overhead pin for the wtf-telemetry PR — compare
    // against `hook_enabled_gauge_not_due` (no hub) on the same machine.
    let ticked = Tracer::new(TraceLevel::Lifecycle);
    ticked.gauges.set_period(1 << 40);
    let cfg = wtf_telemetry::TelemetryConfig {
        epoch_len: 1 << 40, // first epoch never closes during the bench
        ..wtf_telemetry::TelemetryConfig::default()
    };
    let _hub = wtf_telemetry::TelemetryHub::attach(
        std::sync::Arc::clone(&ticked),
        cfg.clone(),
        "mvstm",
        "bench",
    );
    g.bench_function("hook_telemetry_tick_not_due", |b| {
        b.iter(|| black_box(&ticked).maybe_sample_gauges())
    });

    // And the end-to-end version of the same pin: the commit loop on a
    // lifecycle tracer with a hub attached (no epoch closes) should sit
    // within noise of `commit_10_lifecycle`.
    let traced = Tracer::new(TraceLevel::Lifecycle);
    let _hub2 =
        wtf_telemetry::TelemetryHub::attach(std::sync::Arc::clone(&traced), cfg, "mvstm", "bench");
    let stm = Stm::with_tracer(traced);
    let boxes: Vec<VBox<i64>> = (0..1024).map(|i| VBox::new(&stm, i as i64)).collect();
    g.bench_function("commit_10_telemetry_attached", |b| {
        b.iter(|| commit_loop(&stm, &boxes))
    });

    // One full gauge sweep over an Stm with live transactions having come
    // and gone. The `stm_active_snapshots` / `stm_registry_occupancy`
    // probes scan every registry slot; since the concurrency-audit pass
    // those scans are `Relaxed` (they decide nothing — see the ordering
    // contract in `registry.rs`), so this row pins the diagnostic-probe
    // cost the SeqCst→Relaxed downgrade bought back.
    g.bench_function("gauge_read_all_registry_probe", |b| {
        b.iter(|| black_box(stm.tracer().gauges.read_all()))
    });

    g.finish();
}

criterion_group!(benches, bench_trace_overhead);
criterion_main!(benches);
