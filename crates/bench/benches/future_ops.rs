//! Future lifecycle costs: submit, evaluate, serialization paths, and the
//! read-path overhead of futures-aware contexts vs plain transactions
//! (the inherent WO bookkeeping measured in §5.1).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wtf_core::{FutureTm, Semantics};

fn bench_futures(c: &mut Criterion) {
    let mut g = c.benchmark_group("future");
    g.sample_size(20);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(300));

    let tm = FutureTm::builder()
        .semantics(Semantics::WO_GAC)
        .workers(8)
        .build();
    let boxes: Vec<_> = (0..256).map(|i| tm.new_vbox(i as i64)).collect();

    g.bench_function("submit_evaluate_roundtrip", |b| {
        let x = boxes[0].clone();
        b.iter(|| {
            let x = x.clone();
            tm.atomic(move |ctx| {
                let x2 = x.clone();
                let f = ctx.submit(move |c| c.read(&x2))?;
                ctx.evaluate(&f)
            })
            .unwrap()
        })
    });

    g.bench_function("ctx_read_100_no_futures", |b| {
        let boxes = boxes.clone();
        b.iter(|| {
            let boxes = boxes.clone();
            tm.atomic(move |ctx| {
                let mut acc = 0i64;
                for i in 0..100 {
                    acc += ctx.read(&boxes[(i * 37) % 256])?;
                }
                Ok(black_box(acc))
            })
            .unwrap()
        })
    });

    // Ancestor-view cache ablation: reads inside a deep continuation chain
    // (each step adds a node, so the view must overlay more ancestors).
    g.bench_function("ctx_read_deep_chain", |b| {
        let boxes = boxes.clone();
        b.iter(|| {
            let boxes = boxes.clone();
            tm.atomic(move |ctx| {
                for bx in boxes.iter().take(8) {
                    let b2 = bx.clone();
                    ctx.step(move |c| {
                        let v = c.read(&b2)?;
                        c.write(&b2, v + 1)
                    })?;
                }
                // Reads now overlay 8 iCommitted segments.
                let mut acc = 0i64;
                for i in 0..50 {
                    acc += ctx.read(&boxes[(i * 13) % 256])?;
                }
                Ok(black_box(acc))
            })
            .unwrap()
        })
    });

    g.bench_function("fanout_8_futures", |b| {
        let boxes = boxes.clone();
        b.iter(|| {
            let boxes = boxes.clone();
            tm.atomic(move |ctx| {
                let futs: Vec<_> = (0..8)
                    .map(|i| {
                        let b2 = boxes[i].clone();
                        ctx.submit(move |c| c.read(&b2))
                    })
                    .collect::<Result<_, _>>()?;
                let mut acc = 0i64;
                for f in &futs {
                    acc += ctx.evaluate(f)?;
                }
                Ok(black_box(acc))
            })
            .unwrap()
        })
    });

    g.finish();
    tm.shutdown();
}

criterion_group!(benches, bench_futures);
criterion_main!(benches);
