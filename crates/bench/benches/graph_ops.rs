//! Costs of manipulating the dependency graph **G** — the overhead §5.2
//! attributes to "synchronizing the manipulations of the graph structure".
//!
//! Includes the DESIGN.md ablation: snapshot-Arc reads (our safe-Rust
//! analogue of the paper's lock-free stamped traversal) vs traversing
//! under the write lock.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wtf_core::internals::{Graph, NodeStatus};

/// Builds a spawn-chain graph with `futures` future/continuation pairs.
fn chain_graph(futures: usize) -> Graph {
    let g = Graph::with_root();
    let mut cur = 0;
    for _ in 0..futures {
        let (f, c) = g.update(|gi| {
            gi.set_status(cur, NodeStatus::ICommitted);
            let f = gi.add_node(NodeStatus::ICommitted, &[cur]);
            let c = gi.add_node(NodeStatus::Active, &[cur]);
            gi.add_edge(f, c); // serialized at submission
            (f, c)
        });
        let _ = f;
        cur = c;
    }
    g
}

fn bench_graph(c: &mut Criterion) {
    let mut grp = c.benchmark_group("graph");
    grp.sample_size(30);
    grp.measurement_time(std::time::Duration::from_secs(2));
    grp.warm_up_time(std::time::Duration::from_millis(300));

    for &n in &[8usize, 32, 128] {
        let g = chain_graph(n);
        let last = {
            let (_, gi) = g.snapshot();
            gi.len() - 1
        };
        grp.bench_function(format!("snapshot_clone_{n}"), |b| {
            b.iter(|| black_box(g.snapshot()))
        });
        grp.bench_function(format!("ancestors_{n}"), |b| {
            let (_, gi) = g.snapshot();
            b.iter(|| black_box(gi.ancestors(last)))
        });
        grp.bench_function(format!("reachable_{n}"), |b| {
            let (_, gi) = g.snapshot();
            b.iter(|| black_box(gi.reachable_from(0)))
        });
        grp.bench_function(format!("backward_chain_{n}"), |b| {
            let (_, gi) = g.snapshot();
            b.iter(|| black_box(gi.backward_chain(last, 0)))
        });
        grp.bench_function(format!("cow_update_{n}"), |b| {
            b.iter(|| {
                g.update(|gi| gi.set_status(0, NodeStatus::ICommitted));
            })
        });
    }
    grp.finish();
}

criterion_group!(benches, bench_graph);
criterion_main!(benches);
