//! Per-operation costs of the multi-versioned substrate (real time).
//!
//! Includes the version-GC ablation called out in DESIGN.md: commits with
//! GC on vs off (off lets chains grow, making snapshot reads walk).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;
use wtf_mvstm::{raw, Stm, VBox};

fn bench_reads(c: &mut Criterion) {
    let mut g = c.benchmark_group("vbox");
    g.sample_size(30);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(300));

    let stm = Stm::new();
    let boxes: Vec<VBox<i64>> = (0..1024).map(|i| VBox::new(&stm, i as i64)).collect();

    g.bench_function("txn_read_100", |b| {
        b.iter(|| {
            stm.atomic(|tx| {
                let mut acc = 0i64;
                for i in 0..100 {
                    acc += tx.read(&boxes[(i * 37) % 1024])?;
                }
                Ok(black_box(acc))
            })
            .unwrap()
        })
    });

    g.bench_function("txn_write_commit_10", |b| {
        b.iter(|| {
            stm.atomic(|tx| {
                for i in 0..10 {
                    tx.write(&boxes[(i * 91) % 1024], i as i64)?;
                }
                Ok(())
            })
            .unwrap()
        })
    });

    g.bench_function("read_only_commit", |b| {
        b.iter(|| stm.atomic(|tx| tx.read(&boxes[7])).unwrap())
    });

    g.bench_function("raw_read_at", |b| {
        let body = raw::body_of(&boxes[0]);
        let snap = raw::acquire_snapshot(&stm);
        b.iter(|| black_box(raw::read_at(&body, snap.version())))
    });

    // GC ablation: long version chains (GC off) vs pruned chains (GC on).
    g.bench_function("versioned_read_gc_on", |b| {
        let stm = Stm::new();
        let x = VBox::new(&stm, 0i64);
        for i in 0..256 {
            stm.atomic(|tx| tx.write(&x, i)).unwrap();
        }
        assert_eq!(x.version_chain_len(), 1);
        b.iter(|| black_box(x.read_latest()))
    });
    g.bench_function("versioned_read_gc_off_deep_chain", |b| {
        let stm = Stm::new();
        stm.set_gc_enabled(false);
        let x = VBox::new(&stm, 0i64);
        let pin = raw::acquire_snapshot(&stm); // pin so chains keep length
        for i in 0..256 {
            stm.atomic(|tx| tx.write(&x, i)).unwrap();
        }
        assert!(x.version_chain_len() > 200);
        // Reading at the pinned snapshot walks the whole chain.
        let body = raw::body_of(&x);
        b.iter(|| black_box(raw::read_at(&body, pin.version())));
        drop(pin);
    });

    // Install is O(1): commit cost into a box with thousands of retained
    // versions (GC off, snapshot pinned) must not scale with chain depth —
    // the new version is consed onto the head, never shifting the history.
    g.bench_function("txn_write_commit_shallow_chain", |b| {
        let stm = Stm::new();
        let x = VBox::new(&stm, 0i64);
        b.iter(|| stm.atomic(|tx| tx.write(&x, 1)).unwrap())
    });
    g.bench_function("txn_write_commit_deep_chain_4096", |b| {
        let stm = Stm::new();
        stm.set_gc_enabled(false);
        let x = VBox::new(&stm, 0i64);
        let pin = raw::acquire_snapshot(&stm); // pin so chains keep length
        for i in 0..4096 {
            stm.atomic(|tx| tx.write(&x, i)).unwrap();
        }
        assert!(x.version_chain_len() > 4000);
        b.iter(|| stm.atomic(|tx| tx.write(&x, 1)).unwrap());
        drop(pin);
    });

    g.bench_function("begin_snapshot", |b| {
        b.iter_batched(
            || (),
            |_| black_box(raw::acquire_snapshot(&stm)),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_reads);
criterion_main!(benches);
