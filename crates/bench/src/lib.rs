//! # wtf-bench — figure regeneration and micro-benchmarks
//!
//! One binary per figure of the paper's evaluation (§5):
//!
//! | binary | paper figure | what it prints |
//! |---|---|---|
//! | `fig3_stragglers` | Fig. 3 | per-future completion timeline, SO vs WO |
//! | `fig6_left` | Fig. 6 (left) | read-only speedup vs 2 NT threads, by tx length × iter |
//! | `fig6_right` | Fig. 6 (right) | contended speedup vs 48 top-levels, by split × length |
//! | `fig7` | Fig. 7a/7b | speedup vs sequential + abort rates, by contention × threads |
//! | `fig8` | Fig. 8 | Bank speedups + internal abort rates, by update% × threads |
//! | `fig9` | Fig. 9 | Vacation speedups + top-level abort rates |
//! | `fig10_cm` | — (extension) | contention-manager speedups vs immediate retry on the Zipf hot-box |
//!
//! All binaries run under the deterministic virtual clock, so their output
//! is bit-reproducible. Parameters are scaled down from the paper's
//! 56-core testbed sizes; the mapping is recorded in `EXPERIMENTS.md`.
//! Criterion micro-benchmarks (`cargo bench`) measure real-time per-op
//! costs of the substrate (versioned boxes, graph manipulation, future
//! lifecycle, FSG solving).

pub mod diff;

use std::fmt::Display;
use std::path::PathBuf;
use wtf_core::{with_backend, BackendKind};
use wtf_trace::Json;
use wtf_workloads::RunResult;

/// Prints a table header: `# <title>` followed by tab-separated columns.
pub fn table_header(title: &str, columns: &[&str]) {
    println!("# {title}");
    println!("{}", columns.join("\t"));
}

/// Prints one tab-separated row.
pub fn table_row(cells: &[&dyn Display]) {
    let rendered: Vec<String> = cells.iter().map(|c| format!("{c}")).collect();
    println!("{}", rendered.join("\t"));
}

/// Formats a speedup/rate to 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// The thread counts the paper sweeps in Figs. 7–9.
pub const PAPER_THREADS: [usize; 5] = [4, 8, 14, 28, 56];

/// Shared scaling note printed by every figure binary.
pub fn print_scaling_note(figure: &str) {
    println!("## {figure} — regenerated under the deterministic virtual clock");
    println!("## (paper-scale parameters reduced; see EXPERIMENTS.md for the mapping)");
}

/// Where the figure binaries write their JSON artifacts: `WTF_RESULTS_DIR`
/// if set (CI points this at a scratch directory), else `results/` under
/// the current directory (the workspace root when run via `cargo run`).
pub fn results_dir() -> PathBuf {
    std::env::var_os("WTF_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"))
}

/// True when the binary was invoked with `--check-json`: after writing the
/// report, re-read it and fail loudly unless it parses back to the same
/// document (CI's exporter-regression guard).
pub fn check_json_requested() -> bool {
    std::env::args().any(|a| a == "--check-json")
}

/// Writes `report` as `<results_dir>/<name>.json` and returns the path.
/// Rendering is deterministic (fixed key order, `u64`-preserving), so
/// under the virtual clock two runs produce byte-identical files. With
/// `--check-json` the file is read back and re-parsed; any mismatch
/// aborts the process with a nonzero exit.
pub fn emit_report(name: &str, report: &Json) -> PathBuf {
    let dir = results_dir();
    std::fs::create_dir_all(&dir)
        .unwrap_or_else(|e| panic!("create results dir {}: {e}", dir.display()));
    let path = dir.join(format!("{name}.json"));
    let text = report.to_string();
    std::fs::write(&path, &text).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    println!("## wrote {}", path.display());
    if check_json_requested() {
        let read_back =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("re-read {name}.json: {e}"));
        match Json::parse(&read_back) {
            Ok(parsed) if parsed == *report => {
                println!("## --check-json: {name}.json OK ({} bytes)", text.len());
            }
            Ok(_) => {
                eprintln!("--check-json: {name}.json parsed but did not round-trip");
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("--check-json: {name}.json failed to parse: {e}");
                std::process::exit(1);
            }
        }
    }
    path
}

/// A figure report under construction: named rows of parameters plus the
/// full [`RunResult`](wtf_workloads::RunResult) dumps for each system.
pub struct FigReport {
    figure: &'static str,
    rows: Vec<Json>,
}

impl FigReport {
    pub fn new(figure: &'static str) -> FigReport {
        FigReport {
            figure,
            rows: Vec::new(),
        }
    }

    /// The shared preamble of every figure binary: scaling note, table
    /// header, empty report. Keeps the six `fig*` mains down to their
    /// actual parameter sweeps.
    pub fn begin(
        figure: &'static str,
        note: &str,
        table_title: &str,
        columns: &[&str],
    ) -> FigReport {
        print_scaling_note(note);
        table_header(table_title, columns);
        FigReport::new(figure)
    }

    /// Adds one row (an insertion-ordered object from `(key, value)` pairs).
    pub fn row(&mut self, fields: Vec<(&str, Json)>) {
        self.rows.push(Json::obj(fields));
    }

    /// The shared emission shape of Figs. 6–8: parameter columns, one
    /// `{name}_speedup` per system (each vs `baseline`), then the full
    /// [`RunResult`] dumps — baseline first, systems in order. Key order
    /// is part of the baseline format, so keep params/systems ordered.
    pub fn comparison_row(
        &mut self,
        params: Vec<(&str, Json)>,
        baseline: (&str, &RunResult),
        systems: &[(&str, &RunResult)],
    ) {
        let speedup_keys: Vec<String> = systems
            .iter()
            .map(|(name, _)| format!("{name}_speedup"))
            .collect();
        let mut fields = params;
        for (key, &(_, r)) in speedup_keys.iter().zip(systems) {
            fields.push((key.as_str(), Json::F64(r.speedup_vs(baseline.1))));
        }
        fields.push((baseline.0, baseline.1.to_json()));
        for &(name, r) in systems {
            fields.push((name, r.to_json()));
        }
        self.row(fields);
    }

    /// Fig. 9-style row: one system, its parameters, a precomputed
    /// speedup, and the full result dump.
    pub fn system_row(
        &mut self,
        system: &str,
        params: Vec<(&str, Json)>,
        speedup: f64,
        result: &RunResult,
    ) {
        let mut fields = vec![("system", Json::from(system))];
        fields.extend(params);
        fields.push(("speedup", Json::F64(speedup)));
        fields.push(("result", result.to_json()));
        self.row(fields);
    }

    /// The comparative-substrate section every figure binary appends:
    /// one representative configuration of the figure re-run on every
    /// [`BackendKind`] (via [`with_backend`], so the whole TM stack under
    /// `run` lands on that substrate), emitted as [`FigReport::system_row`]s
    /// labelled by backend name with speedups relative to the first
    /// backend (mvstm). This puts an mvstm/tl2 comparison into every
    /// `results/*.json` regardless of how `WTF_BACKEND` was set for the
    /// main sweep.
    pub fn backend_comparison(&mut self, params: &[(&str, Json)], run: impl Fn() -> RunResult) {
        println!();
        table_header(
            "backend comparison (one representative configuration per substrate)",
            &[
                "backend",
                "makespan",
                "speedup_vs_mvstm",
                "top_abort_rate",
                "internal_abort_rate",
            ],
        );
        let mut base: Option<RunResult> = None;
        for kind in BackendKind::ALL {
            let r = with_backend(kind, &run);
            let speedup = match &base {
                None => 1.0,
                Some(b) => r.speedup_vs(b),
            };
            table_row(&[
                &kind.name(),
                &r.makespan,
                &f3(speedup),
                &f3(r.top_abort_rate()),
                &f3(r.internal_abort_rate()),
            ]);
            self.system_row(kind.name(), params.to_vec(), speedup, &r);
            if base.is_none() {
                base = Some(r);
            }
        }
    }

    /// The assembled report document.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("figure", self.figure.into()),
            ("clock", "virtual".into()),
            ("rows", Json::Arr(self.rows.clone())),
        ])
    }

    /// Writes the report into the results directory as `<figure>.json`.
    pub fn emit(&self) -> PathBuf {
        emit_report(self.figure, &self.to_json())
    }
}
