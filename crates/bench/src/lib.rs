//! # wtf-bench — figure regeneration and micro-benchmarks
//!
//! One binary per figure of the paper's evaluation (§5):
//!
//! | binary | paper figure | what it prints |
//! |---|---|---|
//! | `fig3_stragglers` | Fig. 3 | per-future completion timeline, SO vs WO |
//! | `fig6_left` | Fig. 6 (left) | read-only speedup vs 2 NT threads, by tx length × iter |
//! | `fig6_right` | Fig. 6 (right) | contended speedup vs 48 top-levels, by split × length |
//! | `fig7` | Fig. 7a/7b | speedup vs sequential + abort rates, by contention × threads |
//! | `fig8` | Fig. 8 | Bank speedups + internal abort rates, by update% × threads |
//! | `fig9` | Fig. 9 | Vacation speedups + top-level abort rates |
//!
//! All binaries run under the deterministic virtual clock, so their output
//! is bit-reproducible. Parameters are scaled down from the paper's
//! 56-core testbed sizes; the mapping is recorded in `EXPERIMENTS.md`.
//! Criterion micro-benchmarks (`cargo bench`) measure real-time per-op
//! costs of the substrate (versioned boxes, graph manipulation, future
//! lifecycle, FSG solving).

use std::fmt::Display;

/// Prints a table header: `# <title>` followed by tab-separated columns.
pub fn table_header(title: &str, columns: &[&str]) {
    println!("# {title}");
    println!("{}", columns.join("\t"));
}

/// Prints one tab-separated row.
pub fn table_row(cells: &[&dyn Display]) {
    let rendered: Vec<String> = cells.iter().map(|c| format!("{c}")).collect();
    println!("{}", rendered.join("\t"));
}

/// Formats a speedup/rate to 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// The thread counts the paper sweeps in Figs. 7–9.
pub const PAPER_THREADS: [usize; 5] = [4, 8, 14, 28, 56];

/// Shared scaling note printed by every figure binary.
pub fn print_scaling_note(figure: &str) {
    println!("## {figure} — regenerated under the deterministic virtual clock");
    println!("## (paper-scale parameters reduced; see EXPERIMENTS.md for the mapping)");
}
