//! Baseline comparison for `results/*.json` — the perf-regression gate.
//!
//! The figure binaries are deterministic under the virtual clock, so a
//! *behavioural* change shows up as a numeric drift between a freshly
//! generated report and the checked-in baseline. [`compare_reports`]
//! walks the two JSON documents in lockstep and flags every gated
//! metric whose drift exceeds its tolerance — in **either** direction:
//! an unexplained improvement means the baseline is stale and must be
//! regenerated, which is exactly what a gate should force.
//!
//! What is gated (see [`tolerance_for`]):
//!
//! | key | tolerance |
//! |---|---|
//! | `completed` | exact |
//! | `makespan`, `throughput` | ±10% relative |
//! | `*speedup` | ±15% relative |
//! | `*abort_rate` | ±0.05 absolute |
//!
//! Everything else — run parameters, raw `tm`/`stm` counters — is
//! compared *structurally* (same shape, same parameter values) but not
//! gated numerically; `trace`, `telemetry` and `profile` subtrees are
//! skipped entirely (tracing volume and observability schema are allowed
//! to evolve without invalidating perf baselines).
//!
//! [`check_backend_rows`] is the companion structural gate for the
//! comparative-substrate section every figure report ends with: the
//! trailing rows must cover every expected backend, in order, each with
//! a numeric speedup and a result dump that really ran on that backend.

use std::path::Path;
use wtf_trace::Json;

/// How much drift a gated metric tolerates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Tolerance {
    /// Any change fails (deterministic integer outputs).
    Exact,
    /// `|fresh - baseline| > t` fails.
    Absolute(f64),
    /// `|fresh - baseline| > t * |baseline|` fails (with an absolute
    /// fallback of `t` when the baseline is ~0).
    Relative(f64),
}

impl Tolerance {
    fn exceeded(self, baseline: f64, fresh: f64) -> bool {
        let d = (fresh - baseline).abs();
        match self {
            Tolerance::Exact => d != 0.0,
            Tolerance::Absolute(t) => d > t,
            Tolerance::Relative(t) => {
                if baseline.abs() < 1e-9 {
                    d > t
                } else {
                    d / baseline.abs() > t
                }
            }
        }
    }
}

impl std::fmt::Display for Tolerance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Tolerance::Exact => write!(f, "exact"),
            Tolerance::Absolute(t) => write!(f, "±{t} abs"),
            Tolerance::Relative(t) => write!(f, "±{:.0}% rel", t * 100.0),
        }
    }
}

/// The gating policy, by JSON key.
pub fn tolerance_for(key: &str) -> Option<Tolerance> {
    if key == "completed" {
        Some(Tolerance::Exact)
    } else if key == "makespan" || key == "throughput" {
        Some(Tolerance::Relative(0.10))
    } else if key.ends_with("speedup") {
        Some(Tolerance::Relative(0.15))
    } else if key.ends_with("abort_rate") {
        Some(Tolerance::Absolute(0.05))
    } else {
        None
    }
}

/// One gated metric that drifted beyond its tolerance.
#[derive(Debug, Clone)]
pub struct Regression {
    /// JSON path of the metric, e.g. `rows[3].wtf.makespan`.
    pub path: String,
    pub baseline: f64,
    pub fresh: f64,
    pub tolerance: Tolerance,
}

impl std::fmt::Display for Regression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let dir = if self.fresh > self.baseline {
            "up"
        } else {
            "down"
        };
        write!(
            f,
            "{}: {} -> {} ({dir}, tolerance {})",
            self.path, self.baseline, self.fresh, self.tolerance
        )
    }
}

/// Outcome of diffing one figure report against its baseline.
#[derive(Debug, Clone, Default)]
pub struct DiffReport {
    /// Gated metrics compared.
    pub compared: usize,
    pub regressions: Vec<Regression>,
    /// Shape or parameter mismatches (row counts, renamed keys, changed
    /// sweep parameters) — always failures: the reports aren't comparable.
    pub structural: Vec<String>,
}

impl DiffReport {
    pub fn ok(&self) -> bool {
        self.regressions.is_empty() && self.structural.is_empty()
    }
}

/// Diffs `fresh` against `baseline` (parsed figure reports).
pub fn compare_reports(baseline: &Json, fresh: &Json) -> DiffReport {
    let mut out = DiffReport::default();
    walk("", "", baseline, fresh, &mut out);
    out
}

fn walk(path: &str, key: &str, base: &Json, fresh: &Json, out: &mut DiffReport) {
    if key == "trace" || key == "telemetry" || key == "profile" {
        return;
    }
    match (base, fresh) {
        (Json::Obj(b), Json::Obj(_)) => {
            for (k, bv) in b {
                let sub = if path.is_empty() {
                    k.clone()
                } else {
                    format!("{path}.{k}")
                };
                match fresh.get(k) {
                    Some(fv) => walk(&sub, k, bv, fv, out),
                    None => out.structural.push(format!("{sub}: missing in fresh")),
                }
            }
            if let Json::Obj(f) = fresh {
                for (k, _) in f {
                    if base.get(k).is_none() {
                        out.structural.push(format!(
                            "{}{k}: new key not in baseline",
                            if path.is_empty() {
                                String::new()
                            } else {
                                format!("{path}.")
                            }
                        ));
                    }
                }
            }
        }
        (Json::Arr(b), Json::Arr(f)) => {
            if b.len() != f.len() {
                out.structural.push(format!(
                    "{path}: length {} in baseline vs {} in fresh",
                    b.len(),
                    f.len()
                ));
                return;
            }
            for (i, (bv, fv)) in b.iter().zip(f).enumerate() {
                walk(&format!("{path}[{i}]"), key, bv, fv, out);
            }
        }
        _ => match (base.as_f64(), fresh.as_f64()) {
            (Some(b), Some(f)) => {
                if let Some(tol) = tolerance_for(key) {
                    out.compared += 1;
                    if tol.exceeded(b, f) {
                        out.regressions.push(Regression {
                            path: path.to_string(),
                            baseline: b,
                            fresh: f,
                            tolerance: tol,
                        });
                    }
                }
            }
            // Non-numeric leaves are run parameters/labels: any change
            // means the sweeps aren't comparable.
            _ => {
                if base != fresh {
                    out.structural
                        .push(format!("{path}: parameter changed ({base} -> {fresh})"));
                }
            }
        },
    }
}

/// Structurally validates the trailing comparative-substrate rows of a
/// figure report: the last `backends.len()` rows of `rows` must be
/// `system_row`s labelled with each expected backend in order, carry a
/// numeric `speedup`, and embed a `result` whose own `backend` field
/// matches the row label (i.e. the run really executed on that
/// substrate). Returns the list of problems; empty means the section is
/// well-formed.
pub fn check_backend_rows(report: &Json, backends: &[&str]) -> Vec<String> {
    let mut problems = Vec::new();
    let Some(Json::Arr(rows)) = report.get("rows") else {
        return vec!["report has no rows array".to_string()];
    };
    if rows.len() < backends.len() {
        return vec![format!(
            "only {} rows, need at least one trailing row per backend ({})",
            rows.len(),
            backends.join(",")
        )];
    }
    let tail = &rows[rows.len() - backends.len()..];
    for (i, (row, &want)) in tail.iter().zip(backends).enumerate() {
        let at = rows.len() - backends.len() + i;
        let system = row.get("system").and_then(|s| s.as_str());
        if system != Some(want) {
            problems.push(format!(
                "rows[{at}]: expected backend row for {want:?}, found system {system:?}"
            ));
            continue;
        }
        if row.get("speedup").and_then(|s| s.as_f64()).is_none() {
            problems.push(format!(
                "rows[{at}] ({want}): speedup missing or non-numeric"
            ));
        }
        match row.get("result").and_then(|r| r.get("backend")) {
            Some(b) if b.as_str() == Some(want) => {}
            other => problems.push(format!(
                "rows[{at}] ({want}): result.backend is {other:?}, not {want:?}"
            )),
        }
    }
    problems
}

/// Reads and diffs two report files.
pub fn diff_files(baseline: &Path, fresh: &Path) -> Result<DiffReport, String> {
    let read = |p: &Path| -> Result<Json, String> {
        let text = std::fs::read_to_string(p).map_err(|e| format!("read {}: {e}", p.display()))?;
        Json::parse(&text).map_err(|e| format!("parse {}: {e}", p.display()))
    };
    Ok(compare_reports(&read(baseline)?, &read(fresh)?))
}

/// Figure names (file stems) with baselines in `dir`: every `*.json`
/// except the `fig3_trace_*` Perfetto exports, which are event logs, not
/// perf reports.
pub fn discover_figures(dir: &Path) -> Vec<String> {
    let mut out = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return out;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) != Some("json") {
            continue;
        }
        let Some(stem) = path.file_stem().and_then(|s| s.to_str()) else {
            continue;
        };
        if stem.starts_with("fig3_trace_") {
            continue;
        }
        out.push(stem.to_string());
    }
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(speedup: f64, makespan: u64, completed: u64, abort: f64) -> Json {
        Json::obj(vec![
            ("figure", "figX".into()),
            ("clock", "virtual".into()),
            (
                "rows",
                Json::Arr(vec![Json::obj(vec![
                    ("threads", 4u64.into()),
                    ("wtf_speedup", Json::F64(speedup)),
                    (
                        "wtf",
                        Json::obj(vec![
                            ("makespan", makespan.into()),
                            ("completed", completed.into()),
                            ("top_abort_rate", Json::F64(abort)),
                            ("trace", Json::obj(vec![("events_recorded", 0u64.into())])),
                        ]),
                    ),
                ])]),
            ),
        ])
    }

    #[test]
    fn identical_reports_pass() {
        let b = report(2.0, 1000, 96, 0.1);
        let d = compare_reports(&b, &b.clone());
        assert!(d.ok(), "{:?}", d);
        // speedup + makespan + completed + abort_rate all gated.
        assert_eq!(d.compared, 4);
    }

    #[test]
    fn drift_within_tolerance_passes() {
        let d = compare_reports(&report(2.0, 1000, 96, 0.10), &report(2.2, 1050, 96, 0.13));
        assert!(d.ok(), "{:?}", d.regressions);
    }

    #[test]
    fn speedup_regression_flagged() {
        let d = compare_reports(&report(2.0, 1000, 96, 0.1), &report(1.5, 1000, 96, 0.1));
        assert_eq!(d.regressions.len(), 1);
        assert!(d.regressions[0].path.contains("wtf_speedup"));
    }

    #[test]
    fn improvement_beyond_tolerance_also_flagged() {
        let d = compare_reports(&report(2.0, 1000, 96, 0.1), &report(3.0, 1000, 96, 0.1));
        assert_eq!(d.regressions.len(), 1, "stale baseline must fail the gate");
    }

    #[test]
    fn completed_is_exact() {
        let d = compare_reports(&report(2.0, 1000, 96, 0.1), &report(2.0, 1000, 95, 0.1));
        assert_eq!(d.regressions.len(), 1);
        assert!(d.regressions[0].path.contains("completed"));
        assert_eq!(d.regressions[0].tolerance, Tolerance::Exact);
    }

    #[test]
    fn trace_subtree_ignored() {
        let mut fresh = report(2.0, 1000, 96, 0.1);
        // Rewrite the nested trace object to something wildly different.
        if let Json::Obj(top) = &mut fresh {
            if let Json::Arr(rows) = &mut top[2].1 {
                if let Json::Obj(row) = &mut rows[0] {
                    if let Json::Obj(wtf) = &mut row[2].1 {
                        wtf[3].1 = Json::obj(vec![("events_recorded", 999_999u64.into())]);
                    }
                }
            }
        }
        let d = compare_reports(&report(2.0, 1000, 96, 0.1), &fresh);
        assert!(d.ok(), "{:?}", d);
    }

    #[test]
    fn telemetry_subtree_ignored() {
        let with_telemetry = |enabled: bool, commits: u64| {
            Json::obj(vec![
                ("figure", "figX".into()),
                (
                    "rows",
                    Json::Arr(vec![Json::obj(vec![
                        ("makespan", 1000u64.into()),
                        (
                            "telemetry",
                            Json::obj(vec![
                                ("enabled", Json::Bool(enabled)),
                                ("commits_total", commits.into()),
                            ]),
                        ),
                    ])]),
                ),
            ])
        };
        // Wildly different telemetry blocks (even different shapes) never
        // trip the perf gate.
        let d = compare_reports(&with_telemetry(false, 0), &with_telemetry(true, 123_456));
        assert!(d.ok(), "{:?}", d);
    }

    #[test]
    fn profile_subtree_ignored() {
        let with_profile = |makespan: u64, profile: Json| {
            Json::obj(vec![
                ("figure", "figX".into()),
                (
                    "rows",
                    Json::Arr(vec![Json::obj(vec![
                        ("makespan", makespan.into()),
                        ("profile", profile),
                    ])]),
                ),
            ])
        };
        // A baseline generated without WTF_PROFILE (null) against a fresh
        // run with a full report block — and vice versa — never trips the
        // perf gate, exactly like `trace`/`telemetry`.
        let block = Json::obj(vec![
            ("schema", "wtf-profile/v1".into()),
            ("makespan", 999u64.into()),
        ]);
        let d = compare_reports(&with_profile(1000, Json::Null), &with_profile(1000, block));
        assert!(d.ok(), "{:?}", d);
    }

    fn backend_report(tail: Vec<(&str, &str, bool)>) -> Json {
        // (system label, result.backend, has speedup)
        let mut rows = vec![Json::obj(vec![
            ("threads", 4u64.into()),
            ("wtf_speedup", Json::F64(2.0)),
        ])];
        for (system, inner, with_speedup) in tail {
            let mut fields = vec![("system", Json::from(system))];
            if with_speedup {
                fields.push(("speedup", Json::F64(1.0)));
            }
            fields.push(("result", Json::obj(vec![("backend", inner.into())])));
            rows.push(Json::obj(fields));
        }
        Json::obj(vec![("figure", "figX".into()), ("rows", Json::Arr(rows))])
    }

    #[test]
    fn backend_rows_well_formed_pass() {
        let r = backend_report(vec![("mvstm", "mvstm", true), ("tl2", "tl2", true)]);
        assert!(check_backend_rows(&r, &["mvstm", "tl2"]).is_empty());
    }

    #[test]
    fn backend_rows_missing_backend_flagged() {
        let r = backend_report(vec![("mvstm", "mvstm", true)]);
        let problems = check_backend_rows(&r, &["mvstm", "tl2"]);
        assert_eq!(problems.len(), 2, "{problems:?}"); // both tail rows wrong
    }

    #[test]
    fn backend_rows_mislabelled_result_flagged() {
        // The row claims tl2 but the embedded run executed on mvstm.
        let r = backend_report(vec![("mvstm", "mvstm", true), ("tl2", "mvstm", true)]);
        let problems = check_backend_rows(&r, &["mvstm", "tl2"]);
        assert_eq!(problems.len(), 1, "{problems:?}");
        assert!(problems[0].contains("result.backend"));
    }

    #[test]
    fn backend_rows_missing_speedup_flagged() {
        let r = backend_report(vec![("mvstm", "mvstm", false), ("tl2", "tl2", true)]);
        let problems = check_backend_rows(&r, &["mvstm", "tl2"]);
        assert_eq!(problems.len(), 1, "{problems:?}");
        assert!(problems[0].contains("speedup"));
    }

    #[test]
    fn row_count_mismatch_is_structural() {
        let b = report(2.0, 1000, 96, 0.1);
        let mut fresh = b.clone();
        if let Json::Obj(top) = &mut fresh {
            if let Json::Arr(rows) = &mut top[2].1 {
                let extra = rows[0].clone();
                rows.push(extra);
            }
        }
        let d = compare_reports(&b, &fresh);
        assert!(!d.ok());
        assert_eq!(d.structural.len(), 1);
    }

    #[test]
    fn changed_string_parameter_is_structural() {
        let b = report(2.0, 1000, 96, 0.1);
        let mut fresh = b.clone();
        if let Json::Obj(top) = &mut fresh {
            top[1].1 = Json::from("real"); // clock: virtual -> real
        }
        let d = compare_reports(&b, &fresh);
        assert!(!d.ok());
        assert!(d.structural[0].contains("clock"));
    }

    #[test]
    fn discover_skips_trace_exports() {
        let dir = std::env::temp_dir().join(format!("wtf_diff_discover_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("fig7.json"), "{}").unwrap();
        std::fs::write(dir.join("fig3_trace_so.json"), "{}").unwrap();
        std::fs::write(dir.join("notes.txt"), "x").unwrap();
        assert_eq!(discover_figures(&dir), vec!["fig7".to_string()]);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
