//! Fig. 9: the Vacation benchmark (STAMP) with transactional futures.
//!
//! `MakeReservation` lookups split across futures; 10% of futures suffer a
//! remote-database delay right after beginning. The x-axis is the total
//! degree of parallelism = top-level clients × futures in flight. WTF and
//! JTF run with 1, 2 and 7 top-level clients; JVSTM uses the whole budget
//! as concurrent top-level transactions. Speedups are against 1 top-level
//! with no futures.
//!
//! Expected shape: WTF best (out-of-order streaming hides stragglers),
//! JTF second (futures shorten transactions but commit in spawn order),
//! JVSTM worst and abort-prone at high parallelism.

use wtf_bench::{f3, table_row, FigReport};
use wtf_core::Semantics;
use wtf_workloads::vacation::{
    vacation_futures, vacation_sequential, vacation_toplevel, VacationConfig,
};

fn cfg(futures_per_tx: usize, txs_per_client: usize) -> VacationConfig {
    VacationConfig {
        relations: 128,
        customers: 64,
        queries_per_tx: 96,
        chunks_per_tx: 24,
        futures_per_tx,
        user_percent: 98,
        txs_per_client,
        iter: 1_000,
        straggler_per_mille: 100,
        delay: 1_000_000,
        seed: 0x9acc,
    }
}

const TOTAL_TXS: usize = 28;

fn main() {
    let mut report = FigReport::begin(
        "fig9",
        "Fig. 9 (Vacation / STAMP)",
        "Fig 9: speedup vs 1 sequential top-level + top-level abort rate",
        &[
            "system",
            "tops",
            "futures",
            "total_threads",
            "speedup",
            "top_abort_rate",
        ],
    );
    let seq = vacation_sequential(&cfg(1, TOTAL_TXS));
    // JVSTM: budget used entirely as top-level clients.
    for threads in [1usize, 2, 7, 14, 28, 56] {
        let txs = (TOTAL_TXS / threads).max(1);
        let r = vacation_toplevel(&cfg(1, txs), threads);
        table_row(&[
            &"JVSTM",
            &threads,
            &1,
            &threads,
            &f3(r.speedup_vs(&seq)),
            &f3(r.top_abort_rate()),
        ]);
        report.system_row(
            "jvstm",
            vec![("tops", threads.into()), ("futures", 1usize.into())],
            r.speedup_vs(&seq),
            &r,
        );
    }
    // WTF / JTF: 1, 2 and 7 top-level clients, rest of the budget as futures.
    for tops in [1usize, 2, 7] {
        for futures in [2usize, 4, 8] {
            let total = tops * futures;
            let txs = (TOTAL_TXS / tops).max(1);
            let wtf = vacation_futures(&cfg(futures, txs), Semantics::WO_GAC, false, tops);
            let jtf = vacation_futures(&cfg(futures, txs), Semantics::SO, true, tops);
            table_row(&[
                &"WTF",
                &tops,
                &futures,
                &total,
                &f3(wtf.speedup_vs(&seq)),
                &f3(wtf.top_abort_rate()),
            ]);
            table_row(&[
                &"JTF",
                &tops,
                &futures,
                &total,
                &f3(jtf.speedup_vs(&seq)),
                &f3(jtf.top_abort_rate()),
            ]);
            for (system, r) in [("wtf", &wtf), ("jtf", &jtf)] {
                report.system_row(
                    system,
                    vec![("tops", tops.into()), ("futures", futures.into())],
                    r.speedup_vs(&seq),
                    r,
                );
            }
        }
    }
    report.system_row(
        "sequential",
        vec![("tops", 1usize.into()), ("futures", 1usize.into())],
        1.0,
        &seq,
    );
    report.backend_comparison(
        &[("tops", 2usize.into()), ("futures", 4usize.into())],
        || vacation_futures(&cfg(4, TOTAL_TXS / 2), Semantics::WO_GAC, false, 2),
    );
    report.emit();
}
