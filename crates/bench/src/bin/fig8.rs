//! Fig. 8: the Bank benchmark — throughput and internal abort rate for
//! 10% / 50% / 90% update mixes.
//!
//! Compares WTF-OutOfOrder (evaluate any completed future), WTF-InOrder
//! (evaluate in spawn order) and JTF (SO, spawn-order commits), all
//! normalized against a sequential replay. The long `getTotalAmount`
//! scans straggle the short `transfer`s, which is where out-of-order
//! evaluation pays (the paper: >2x in the 50%/90% mixes).

use wtf_bench::{f3, table_row, FigReport, PAPER_THREADS};
use wtf_core::Semantics;
use wtf_workloads::bank::{futures_replay, sequential_replay, BankConfig, EvalPolicy};

fn cfg(update_percent: u64, concurrent_futures: usize) -> BankConfig {
    BankConfig {
        accounts: 1_000,
        pairs_per_transfer: 10,
        update_percent,
        iter: 1_000,
        chunk_size: 64,
        chunks_per_client: 1,
        concurrent_futures,
        initial_balance: 1_000,
        seed: 0x8a88,
    }
}

fn main() {
    let mut report = FigReport::begin(
        "fig8",
        "Fig. 8 (Bank log replay)",
        "Fig 8: speedup vs sequential (top) and internal abort rate (bottom)",
        &[
            "update%",
            "threads",
            "WTF-OutOfOrder",
            "WTF-InOrder",
            "JTF",
            "abort_WTF-OoO",
            "abort_WTF-InO",
            "abort_JTF",
        ],
    );
    for update in [10u64, 50, 90] {
        let seq = sequential_replay(&cfg(update, 1));
        for &threads in &PAPER_THREADS {
            let c = cfg(update, threads);
            let ooo = futures_replay(&c, Semantics::WO_GAC, EvalPolicy::OutOfOrder, 1);
            let ino = futures_replay(&c, Semantics::WO_GAC, EvalPolicy::InOrder, 1);
            let jtf = futures_replay(&c, Semantics::SO, EvalPolicy::InOrder, 1);
            table_row(&[
                &update,
                &threads,
                &f3(ooo.speedup_vs(&seq)),
                &f3(ino.speedup_vs(&seq)),
                &f3(jtf.speedup_vs(&seq)),
                &f3(ooo.internal_abort_rate()),
                &f3(ino.internal_abort_rate()),
                &f3(jtf.internal_abort_rate()),
            ]);
            report.comparison_row(
                vec![
                    ("update_percent", update.into()),
                    ("threads", threads.into()),
                ],
                ("sequential", &seq),
                &[("wtf_ooo", &ooo), ("wtf_ino", &ino), ("jtf", &jtf)],
            );
        }
    }
    report.backend_comparison(
        &[("update_percent", 50u64.into()), ("threads", 8usize.into())],
        || futures_replay(&cfg(50, 8), Semantics::WO_GAC, EvalPolicy::OutOfOrder, 1),
    );
    report.emit();
}
