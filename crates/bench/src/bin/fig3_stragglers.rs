//! Fig. 3: "SO, unlike WO, suffers from stragglers."
//!
//! A top-level transaction logically composed of 8 commutative sub-tasks,
//! parallelized with up to 3 concurrent futures. A new future is activated
//! whenever the continuation detects that a previously submitted future
//! completed — the *oldest* one under SO (JTF can only commit futures in
//! spawn order), *any* one under WO. Future 1 is a straggler (10x the
//! work); under SO it blocks the whole pipeline, under WO the other tasks
//! stream around it.

use std::sync::Arc;
use wtf_bench::{emit_report, f3, table_header, table_row, FigReport};
use wtf_core::{with_backend, BackendKind, FutureTm, Semantics, TxFuture};
use wtf_trace::{chrome, Json, Tracer};
use wtf_vclock::Clock;

const TASKS: usize = 8;
const CONCURRENT: usize = 3;
const BASE_WORK: u64 = 10_000;
const STRAGGLER_FACTOR: u64 = 10;

/// Runs the Fig. 3 scenario; returns (per-task completion times, makespan)
/// plus the tracer (recording at the `WTF_TRACE` level) for export.
/// `mode` labels the telemetry series when `WTF_TELEMETRY` /
/// `WTF_METRICS_FILE` is set (the CI smoke job scrapes this binary).
fn run(semantics: Semantics, in_order: bool, mode: &str) -> (Vec<(usize, u64)>, u64, Arc<Tracer>) {
    let clock = Clock::virtual_time();
    let tracer = Tracer::from_env();
    // Telemetry rides the tracer's sampling hooks, so it only observes
    // anything when tracing is live (WTF_TRACE >= 1).
    let hub = wtf_telemetry::TelemetryConfig::from_env()
        .filter(|_| tracer.summary().enabled())
        .map(|cfg| {
            wtf_telemetry::TelemetryHub::attach(
                Arc::clone(&tracer),
                cfg,
                wtf_core::BackendKind::from_env().name(),
                if mode == "so" { "fig3_so" } else { "fig3_wo" },
            )
        });
    let t2 = Arc::clone(&tracer);
    let completions = clock.enter(move || {
        let tm = FutureTm::builder()
            .semantics(semantics)
            .workers(CONCURRENT + 1)
            .tracer(t2)
            .build();
        let log = tm.new_vbox::<Vec<(usize, u64)>>(Vec::new());
        let log2 = log.clone();
        tm.atomic_infallible(move |ctx| {
            let mut in_flight: Vec<(usize, TxFuture<u64>)> = Vec::new();
            let mut done: Vec<(usize, u64)> = Vec::new();
            let mut next = 0usize;
            while next < TASKS || !in_flight.is_empty() {
                while next < TASKS && in_flight.len() < CONCURRENT {
                    let work = if next == 0 {
                        BASE_WORK * STRAGGLER_FACTOR
                    } else {
                        BASE_WORK
                    };
                    in_flight.push((
                        next,
                        ctx.submit(move |c| {
                            c.work(work);
                            Ok(Clock::current().now())
                        })?,
                    ));
                    next += 1;
                }
                let (slot, finished_at) = if in_order {
                    (0, ctx.evaluate(&in_flight[0].1)?)
                } else {
                    let futs: Vec<TxFuture<u64>> =
                        in_flight.iter().map(|(_, f)| f.clone()).collect();
                    let (i, v) = ctx.evaluate_any(&futs)?;
                    (i, v)
                };
                let (task, _) = in_flight.remove(slot);
                done.push((task, finished_at));
            }
            ctx.write(&log2, done.clone())?;
            Ok(())
        });
        let out = log.read_latest();
        // Final gauge sample: closes every series at end-of-run virtual
        // time (deterministic, so safe for the byte-stable baselines).
        tm.tracer().sample_gauges();
        if let Some(h) = &hub {
            h.finish(Clock::current().now());
        }
        tm.shutdown();
        out
    });
    (completions, clock.makespan(), tracer)
}

fn main() {
    let mut report = FigReport::begin(
        "fig3_stragglers",
        "Fig. 3 (straggler illustration)",
        "Fig 3: task completion order and times (task 0 is the 10x straggler)",
        &["mode", "evaluation order (task@time)", "makespan"],
    );
    for (name, mode, sem, in_order) in [
        ("SO (strongly ordered)", "so", Semantics::SO, true),
        ("WO (weakly ordered)", "wo", Semantics::WO_GAC, false),
    ] {
        let (completions, makespan, tracer) = run(sem, in_order, mode);
        // WTF_CHECK=1: re-derive a serialization witness for the run we
        // just traced, independently of the TM's own bookkeeping.
        if std::env::var("WTF_CHECK").is_ok_and(|v| v != "0" && !v.is_empty()) {
            match wtf_check::HistoryChecker::from_tracer(&tracer).verify() {
                Ok(rep) => eprintln!("wtf-check[{mode}]: {}", rep.summary()),
                Err(e) => panic!("WTF_CHECK failed for fig3 {mode}: {e}"),
            }
        }
        // WTF_PROFILE=1: causal critical-path profile of the run we just
        // traced — under SO the report should finger the straggler future
        // as the dominant culprit. The partition invariant (category
        // totals == makespan) is enforced here, so CI smoke fails loudly
        // if attribution ever leaks time.
        if std::env::var("WTF_PROFILE").is_ok_and(|v| v != "0" && !v.is_empty())
            && tracer.summary().enabled()
        {
            match wtf_profile::Profile::from_tracer_with_makespan(&tracer, makespan) {
                Ok(p) => {
                    if let Err(e) = p.verify_partition() {
                        panic!("WTF_PROFILE partition check failed for fig3 {mode}: {e}");
                    }
                    emit_report(&format!("fig3_profile_{mode}"), &p.report(10));
                    let folded =
                        wtf_bench::results_dir().join(format!("fig3_profile_{mode}.folded"));
                    std::fs::write(&folded, p.folded_stacks())
                        .unwrap_or_else(|e| panic!("write {}: {e}", folded.display()));
                    eprintln!("wtf-profile[{mode}]: wrote {}", folded.display());
                }
                Err(e) => panic!("WTF_PROFILE failed for fig3 {mode}: {e}"),
            }
        }
        let order: Vec<String> = completions
            .iter()
            .map(|(t, at)| format!("T{t}@{at}"))
            .collect();
        table_row(&[&name, &order.join(" "), &makespan]);
        report.row(vec![
            ("mode", mode.into()),
            ("makespan", makespan.into()),
            (
                "completions",
                Json::Arr(
                    completions
                        .iter()
                        .map(|&(t, at)| {
                            Json::obj(vec![("task", t.into()), ("completed_at", at.into())])
                        })
                        .collect(),
                ),
            ),
            ("trace", tracer.summary().to_json()),
        ]);
        // The headline deliverable of the tracing PR: a Perfetto-loadable
        // timeline of the straggler pipeline (only when tracing is on —
        // an empty trace would overwrite a useful baseline with noise).
        if tracer.summary().enabled() {
            let trace = chrome::chrome_trace(&tracer.lanes());
            emit_report(&format!("fig3_trace_{mode}"), &trace);
        }
    }
    let (_, so, _) = run(Semantics::SO, true, "so");
    let (_, wo, _) = run(Semantics::WO_GAC, false, "wo");
    println!();
    println!(
        "WO completes the 8 tasks {}x faster than SO (paper: WO is immune to stragglers)",
        f3(so as f64 / wo as f64)
    );
    let ideal = (BASE_WORK * (STRAGGLER_FACTOR + TASKS as u64 - 1)).div_ceil(CONCURRENT as u64);
    println!(
        "(straggler-bound lower bound ≈ {}, WO achieved {wo})",
        ideal.max(BASE_WORK * STRAGGLER_FACTOR)
    );
    // Comparative substrate rows: the WO pipeline re-run on each backend.
    // This scenario is one uncontended transaction, so the substrates
    // should agree on the makespan to within commit-path cost noise.
    println!();
    table_header(
        "backend comparison (WO pipeline per substrate)",
        &["backend", "makespan"],
    );
    for kind in BackendKind::ALL {
        let (_, makespan, _) = with_backend(kind, || run(Semantics::WO_GAC, false, "wo"));
        table_row(&[&kind.name(), &makespan]);
        report.row(vec![
            ("system", kind.name().into()),
            ("mode", "wo".into()),
            ("makespan", makespan.into()),
        ]);
    }
    report.emit();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wo_beats_so_on_stragglers() {
        let (_, so, _) = run(Semantics::SO, true, "so");
        let (_, wo, _) = run(Semantics::WO_GAC, false, "wo");
        assert!(wo < so, "WO {wo} should beat SO {so}");
        // WO is bounded by the straggler itself.
        assert!(wo <= BASE_WORK * STRAGGLER_FACTOR + BASE_WORK);
    }
}
